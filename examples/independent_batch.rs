//! Independent tasks: the strongly NP-complete setting of Proposition 2.
//!
//! A batch of independent simulation runs must be executed on a failure-prone
//! platform. Choosing the execution order *and* the checkpoint positions to
//! minimise the expected makespan is NP-complete in the strong sense
//! (Proposition 2), so this example:
//!
//! 1. solves a small batch exactly by exhaustive search,
//! 2. runs the practical heuristic (LPT order + Young-periodic placement +
//!    local search) and reports its optimality gap,
//! 3. builds the paper's 3-PARTITION reduction and shows that a YES instance
//!    meets the decision bound exactly while a NO instance cannot.
//!
//! Run with:
//!
//! ```text
//! cargo run --example independent_batch
//! ```

use ckpt_workflows::core::three_partition::ThreePartitionInstance;
use ckpt_workflows::core::{brute_force, evaluate, heuristics, ProblemInstance};
use ckpt_workflows::dag::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A small batch solved exactly ---------------------------------------
    let run_durations = [2_400.0, 650.0, 3_100.0, 1_200.0, 1_750.0, 820.0, 2_050.0];
    let graph = generators::independent(&run_durations)?;
    let instance = ProblemInstance::builder(graph)
        .uniform_checkpoint_cost(180.0)
        .uniform_recovery_cost(240.0)
        .downtime(60.0)
        .platform_lambda(1.0 / 4_000.0)
        .build()?;

    println!(
        "batch of {} independent runs, total work {:.0} s",
        run_durations.len(),
        instance.total_weight()
    );

    let exact = brute_force::optimal_schedule(&instance)?;
    println!("\nexhaustive optimum ({} candidates evaluated):", exact.candidates_evaluated);
    println!("  schedule: {}", exact.schedule);
    println!("  expected makespan: {:.1} s", exact.expected_makespan);

    let heuristic = heuristics::independent_tasks_heuristic(&instance, 200)?;
    println!("\nLPT + periodic + local-search heuristic:");
    println!("  schedule: {}", heuristic.schedule);
    println!("  expected makespan: {:.1} s", heuristic.expected_makespan);
    println!(
        "  optimality gap: {:.3}%",
        100.0 * (heuristic.expected_makespan / exact.expected_makespan - 1.0)
    );

    // Simple baselines for context.
    let lpt = heuristics::lpt_order(&instance)?;
    let everywhere = ckpt_workflows::core::Schedule::checkpoint_everywhere(&instance, lpt)?;
    println!(
        "  (checkpoint-after-every-run baseline: {:.1} s)",
        evaluate::expected_makespan(&instance, &everywhere)?
    );

    // --- The Proposition 2 reduction ----------------------------------------
    println!("\n--- 3-PARTITION reduction (Proposition 2) ---");
    let yes = ThreePartitionInstance::new(vec![30, 35, 35, 26, 33, 41], 100)?;
    let reduction = yes.reduce()?;
    println!(
        "YES instance {:?}, target {}: λ = {:.5}, C = R = {:.2}, bound K = {:.4}",
        yes.values(),
        yes.target(),
        reduction.lambda,
        reduction.checkpoint_cost,
        reduction.bound
    );
    let partition = yes.solve_exact()?.expect("instance is YES");
    let schedule = yes.schedule_from_partition(&reduction, &partition)?;
    let value = evaluate::expected_makespan(&reduction.instance, &schedule)?;
    println!(
        "  partition {:?} → schedule expected makespan {:.4} (meets K exactly: {})",
        partition,
        value,
        (value - reduction.bound).abs() / reduction.bound < 1e-9
    );

    let no = ThreePartitionInstance::new(vec![26, 26, 26, 40, 41, 41], 100)?;
    let no_reduction = no.reduce()?;
    let best = brute_force::optimal_schedule(&no_reduction.instance)?;
    println!(
        "NO instance {:?}: best achievable expected makespan {:.4} > K = {:.4}",
        no.values(),
        best.expected_makespan,
        no_reduction.bound
    );

    Ok(())
}

//! Quickstart: optimal checkpoint placement for a linear workflow.
//!
//! Builds a small six-stage pipeline, computes the optimal checkpoint
//! placement with the paper's Algorithm 1, compares it against the obvious
//! baselines (checkpoint after every task / only at the end), and verifies the
//! analytical expectation with the Monte-Carlo simulator.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ckpt_workflows::core::{chain_dp, evaluate, ProblemInstance, Schedule};
use ckpt_workflows::dag::generators;
use ckpt_workflows::simulator::SimulationScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The workflow -------------------------------------------------------
    // Six pipeline stages (durations in seconds).
    let stage_durations = [1_800.0, 600.0, 3_600.0, 900.0, 2_700.0, 1_200.0];
    let graph = generators::chain(&stage_durations)?;

    // --- The platform -------------------------------------------------------
    // 256 processors, each with a 30-day MTBF: the platform fails roughly
    // every 2.8 hours. Checkpointing a stage costs 90 s, recovering 120 s,
    // and replacing a failed node takes 60 s of downtime.
    let processors = 256u32;
    let per_processor_mtbf_days = 30.0;
    let lambda_proc = 1.0 / (per_processor_mtbf_days * 86_400.0);

    let instance = ProblemInstance::builder(graph)
        .uniform_checkpoint_cost(90.0)
        .uniform_recovery_cost(120.0)
        .downtime(60.0)
        .per_processor_lambda(lambda_proc, processors)
        .build()?;

    println!("platform MTBF: {:.0} s", 1.0 / instance.lambda());
    println!("total work:    {:.0} s\n", instance.total_weight());

    // --- Optimal checkpoint placement (Algorithm 1) -------------------------
    let optimal = chain_dp::optimal_chain_schedule(&instance)?;
    println!("optimal schedule:      {}", optimal.schedule);
    println!(
        "  checkpoints: {} / {} stages",
        optimal.schedule.checkpoint_count(),
        stage_durations.len()
    );
    println!("  expected makespan: {:.1} s", optimal.expected_makespan);

    // --- Baselines -----------------------------------------------------------
    let order = optimal.schedule.order().to_vec();
    let everywhere = Schedule::checkpoint_everywhere(&instance, order.clone())?;
    let final_only = Schedule::checkpoint_final_only(&instance, order)?;
    let e_everywhere = evaluate::expected_makespan(&instance, &everywhere)?;
    let e_final = evaluate::expected_makespan(&instance, &final_only)?;
    println!("\nbaselines:");
    println!(
        "  checkpoint after every stage: {:.1} s  (+{:.1}%)",
        e_everywhere,
        100.0 * (e_everywhere / optimal.expected_makespan - 1.0)
    );
    println!(
        "  single final checkpoint:      {:.1} s  (+{:.1}%)",
        e_final,
        100.0 * (e_final / optimal.expected_makespan - 1.0)
    );

    // --- Monte-Carlo cross-check ---------------------------------------------
    let segments = optimal.schedule.to_segments(&instance)?;
    let outcome = SimulationScenario::exponential(instance.lambda())
        .with_downtime(instance.downtime())
        .with_trials(20_000)
        .with_seed(42)
        .run(&segments);
    println!("\nMonte-Carlo check (20 000 trials):");
    println!(
        "  simulated mean makespan: {:.1} s  (analytical {:.1} s, relative error {:.2}%)",
        outcome.makespan.mean,
        optimal.expected_makespan,
        100.0 * outcome.makespan.relative_error(optimal.expected_makespan)
    );
    println!(
        "  mean failures per run: {:.2}, 95th percentile makespan: {:.1} s",
        outcome.failures.mean,
        outcome.makespan_quantile(0.95)
    );

    Ok(())
}

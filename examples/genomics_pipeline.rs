//! A realistic linear-chain workload: a genomics-style analysis pipeline.
//!
//! The paper's introduction motivates linear chains as the most frequent shape
//! of scientific workflows (DataCutter-style filtering pipelines). This
//! example models a sequencing pipeline whose stages have very different
//! durations *and* very different state sizes — so per-stage checkpoint and
//! recovery costs differ — and shows how the optimal checkpoint placement
//! shifts as the platform failure rate grows.
//!
//! Run with:
//!
//! ```text
//! cargo run --example genomics_pipeline
//! ```

use ckpt_workflows::core::{chain_dp, evaluate, ProblemInstance, Schedule};
use ckpt_workflows::dag::generators;

struct Stage {
    name: &'static str,
    duration: f64,
    checkpoint: f64,
    recovery: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage durations in seconds; checkpoint cost grows with the size of the
    // intermediate data each stage produces.
    let stages = [
        Stage { name: "quality-control", duration: 1_200.0, checkpoint: 20.0, recovery: 30.0 },
        Stage { name: "read-alignment", duration: 14_400.0, checkpoint: 600.0, recovery: 900.0 },
        Stage { name: "dedup", duration: 2_700.0, checkpoint: 450.0, recovery: 600.0 },
        Stage { name: "variant-calling", duration: 10_800.0, checkpoint: 120.0, recovery: 180.0 },
        Stage { name: "annotation", duration: 1_800.0, checkpoint: 60.0, recovery: 90.0 },
        Stage { name: "report", duration: 600.0, checkpoint: 10.0, recovery: 15.0 },
    ];

    let durations: Vec<f64> = stages.iter().map(|s| s.duration).collect();
    let graph = generators::chain(&durations)?;

    println!("{:<18} {:>10} {:>10} {:>10}", "stage", "duration", "ckpt cost", "recovery");
    for s in &stages {
        println!("{:<18} {:>10.0} {:>10.0} {:>10.0}", s.name, s.duration, s.checkpoint, s.recovery);
    }
    let total: f64 = durations.iter().sum();
    println!("{:<18} {total:>10.0}\n", "total");

    // Sweep the platform MTBF from "very reliable" to "fails every hour".
    println!(
        "{:>14} {:>12} {:>14} {:>14} {:>14} {:>24}",
        "platform MTBF",
        "#ckpts",
        "optimal E[T]",
        "all-ckpt E[T]",
        "final-only",
        "checkpointed stages"
    );
    for &mtbf in &[1_000_000.0, 100_000.0, 30_000.0, 10_000.0, 3_600.0] {
        let instance = ProblemInstance::builder(graph.clone())
            .checkpoint_costs(stages.iter().map(|s| s.checkpoint).collect())
            .recovery_costs(stages.iter().map(|s| s.recovery).collect())
            .downtime(120.0)
            .platform_lambda(1.0 / mtbf)
            .build()?;

        let optimal = chain_dp::optimal_chain_schedule(&instance)?;
        let order = optimal.schedule.order().to_vec();
        let everywhere = Schedule::checkpoint_everywhere(&instance, order.clone())?;
        let final_only = Schedule::checkpoint_final_only(&instance, order)?;

        let picked: Vec<&str> =
            optimal.checkpoint_positions.iter().map(|&pos| stages[pos].name).collect();

        println!(
            "{:>14.0} {:>12} {:>14.0} {:>14.0} {:>14.0} {:>24}",
            mtbf,
            optimal.schedule.checkpoint_count(),
            optimal.expected_makespan,
            evaluate::expected_makespan(&instance, &everywhere)?,
            evaluate::expected_makespan(&instance, &final_only)?,
            picked.join(",")
        );
    }

    println!(
        "\nReading the table: as the platform gets less reliable the optimal \
         policy moves from a single final checkpoint to checkpointing the \
         expensive-to-recompute stages (alignment, variant calling) and \
         eventually almost every stage — while always avoiding checkpoints \
         whose cost exceeds the work they protect."
    );

    Ok(())
}

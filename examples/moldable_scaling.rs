//! Moldable tasks and platform scaling (paper §3 scenarios + §6 extension 2).
//!
//! How many processors should a task use when more processors mean both more
//! speed *and* more failures (λ = p·λ_proc), and when checkpoint cost may or
//! may not shrink with p? This example sweeps the paper's workload models
//! (perfectly parallel, Amdahl, numerical kernel) against its two
//! checkpoint-overhead models (proportional, constant), then allocates
//! processors to a chain of moldable tasks.
//!
//! Run with:
//!
//! ```text
//! cargo run --example moldable_scaling
//! ```

use ckpt_workflows::core::moldable::{best_allocation, plan_moldable_chain, MoldableTask};
use ckpt_workflows::expectation::overhead::{OverheadModel, ScalingScenario};
use ckpt_workflows::expectation::workload::WorkloadModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda_proc = 1.0 / (5.0 * 365.0 * 86_400.0); // five-year per-processor MTBF
    let base_checkpoint = 600.0; // single-processor checkpoint cost (s)

    let workloads: Vec<(&str, WorkloadModel)> = vec![
        ("perfectly parallel", WorkloadModel::PerfectlyParallel),
        ("amdahl gamma=0.01", WorkloadModel::amdahl(0.01)?),
        ("amdahl gamma=0.10", WorkloadModel::amdahl(0.10)?),
        ("numerical kernel", WorkloadModel::numerical_kernel(0.1)?),
    ];
    let overheads = [
        ("proportional C(p)=C/p", OverheadModel::Proportional),
        ("constant C(p)=C", OverheadModel::Constant),
    ];

    // --- Best allocation for a single large task -----------------------------
    let task = MoldableTask::new(5.0e6)?; // ~58 days of sequential work
    println!(
        "single moldable task of {:.1e} s sequential work, p_max = 65 536\n",
        task.sequential_work
    );
    println!(
        "{:<22} {:<24} {:>10} {:>16}",
        "workload model", "overhead model", "best p", "expected time"
    );
    for (wname, workload) in &workloads {
        for (oname, overhead) in &overheads {
            let scenario = ScalingScenario {
                lambda_proc,
                base_checkpoint,
                base_recovery: base_checkpoint,
                downtime: 60.0,
                workload: *workload,
                overhead: *overhead,
            };
            let alloc = best_allocation(task, &scenario, 1 << 16)?;
            println!(
                "{:<22} {:<24} {:>10} {:>16.0}",
                wname, oname, alloc.processors, alloc.expected_time
            );
        }
    }

    // --- A chain of moldable tasks -------------------------------------------
    println!("\nchain of moldable tasks (Amdahl gamma=0.05, constant overhead), p_max = 4 096");
    let scenario = ScalingScenario {
        lambda_proc,
        base_checkpoint,
        base_recovery: base_checkpoint,
        downtime: 60.0,
        workload: WorkloadModel::amdahl(0.05)?,
        overhead: OverheadModel::Constant,
    };
    let tasks: Vec<MoldableTask> = [2.0e5, 1.5e6, 8.0e5, 4.0e6, 3.0e5]
        .iter()
        .map(|&w| MoldableTask::new(w))
        .collect::<Result<_, _>>()?;
    let plan = plan_moldable_chain(&tasks, &scenario, 4_096)?;
    println!("{:>6} {:>16} {:>10} {:>16}", "task", "sequential work", "best p", "expected time");
    for (i, (task, alloc)) in tasks.iter().zip(plan.allocations.iter()).enumerate() {
        println!(
            "{:>6} {:>16.0} {:>10} {:>16.0}",
            i + 1,
            task.sequential_work,
            alloc.processors,
            alloc.expected_time
        );
    }
    println!("total expected makespan: {:.0} s", plan.expected_makespan);

    println!(
        "\nTakeaway (matches the paper's §3 discussion): with proportional \
         overhead and perfectly parallel work, bigger is always better; with a \
         sequential fraction or constant checkpoint cost, the optimal \
         allocation is an interior point — failures eventually outweigh the \
         diminishing speed-up."
    );

    Ok(())
}

//! Non-memoryless failures (paper §6, third extension): scheduling a chain on
//! a platform whose failures follow a Weibull law or a recorded trace.
//!
//! Real clusters exhibit "infant mortality": Weibull-distributed inter-arrival
//! times with shape < 1. The closed form of Proposition 1 no longer applies,
//! so the example compares, *by simulation against the true platform*:
//!
//! * the schedule planned by Algorithm 1 under the exponential-equivalent
//!   rate (same platform MTBF),
//! * the work-before-failure greedy schedule that only uses the survival
//!   function of the true law,
//! * the two trivial baselines.
//!
//! It also replays the same comparison against a synthetic failure trace, the
//! substitution this reproduction uses in place of the Failure Trace Archive
//! logs cited by the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example unreliable_cloud
//! ```

use ckpt_workflows::core::{general_failures, ProblemInstance, Schedule};
use ckpt_workflows::dag::{generators, properties};
use ckpt_workflows::failure::{TraceGenerator, TraceReplay, Weibull};
use ckpt_workflows::simulator::{simulate, TraceStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-stage chain of one-hour-ish tasks.
    let durations: Vec<f64> = (0..12).map(|i| 2_400.0 + 600.0 * (i % 4) as f64).collect();
    let graph = generators::chain(&durations)?;

    let processors = 64usize;
    let per_processor_mtbf = 400_000.0; // seconds
    let lambda = processors as f64 / per_processor_mtbf;

    let instance = ProblemInstance::builder(graph)
        .uniform_checkpoint_cost(120.0)
        .uniform_recovery_cost(180.0)
        .downtime(60.0)
        .platform_lambda(lambda)
        .build()?;

    // The true platform law: Weibull with shape 0.7 and the same MTBF.
    let law = Weibull::with_mean(0.7, per_processor_mtbf)?;

    // --- Candidate schedules -------------------------------------------------
    let exp_equivalent =
        general_failures::exponential_equivalent_schedule(&instance, &law, processors)?;
    let greedy = general_failures::work_before_failure_schedule(&instance, &law, processors)?;
    let order = properties::as_chain(instance.graph()).expect("built as a chain");
    let everywhere = Schedule::checkpoint_everywhere(&instance, order.clone())?;
    let final_only = Schedule::checkpoint_final_only(&instance, order)?;

    let candidates: Vec<(&str, &Schedule)> = vec![
        ("exponential-equivalent DP", &exp_equivalent),
        ("work-before-failure greedy", &greedy),
        ("checkpoint every task", &everywhere),
        ("single final checkpoint", &final_only),
    ];

    println!("--- Weibull platform (shape 0.7, {processors} processors) ---");
    println!("{:<28} {:>8} {:>16} {:>14}", "strategy", "#ckpts", "mean makespan", "mean failures");
    let trials = 3_000;
    for (name, schedule) in &candidates {
        let outcome = general_failures::simulate_under_law(
            &instance, schedule, law, processors, trials, 2_024,
        )?;
        println!(
            "{:<28} {:>8} {:>16.1} {:>14.2}",
            name,
            schedule.checkpoint_count(),
            outcome.makespan.mean,
            outcome.failures.mean
        );
    }

    // --- Replay against a synthetic failure trace ---------------------------
    println!("\n--- Synthetic failure-trace replay (one long recorded trace) ---");
    let horizon = 20.0 * instance.total_weight();
    let trace = TraceGenerator::new(processors, 7)?.generate(law, horizon);
    println!(
        "trace: {} failures over {:.0} s (mean platform inter-arrival {:.0} s)",
        trace.len(),
        trace.horizon(),
        trace.mean_interarrival().unwrap_or(f64::NAN)
    );
    println!("{:<28} {:>8} {:>16} {:>10}", "strategy", "#ckpts", "makespan", "failures");
    for (name, schedule) in &candidates {
        let segments = schedule.to_segments(&instance)?;
        let mut stream = TraceStream::new(TraceReplay::new(trace.clone()));
        let record = simulate(&segments, instance.downtime(), &mut stream)?;
        println!(
            "{:<28} {:>8} {:>16.1} {:>10}",
            name,
            schedule.checkpoint_count(),
            record.makespan,
            record.failures
        );
    }

    println!(
        "\nThe exponential-equivalent plan is a solid default, but the greedy \
         rule that looks at the actual survival function checkpoints earlier \
         under infant-mortality failures, which pays off when the trace front- \
         loads its failures."
    );

    Ok(())
}

//! The differential-testing wall around the plan cache: **every** response
//! the service produces — cold solve, sweep solve, cache hit, coalesced
//! duplicate, suffix re-plan — must be bitwise identical to a cold
//! one-shot solve of the same chain at the response's effective rate,
//! including under forced fingerprint collisions and at rate-bucket
//! boundaries.

use std::collections::HashMap;

use ckpt_bench::testgen;
use ckpt_core::chain_dp::{optimal_chain_schedule, ResumableDp};
use ckpt_core::evaluate::segment_cost_table;
use ckpt_core::ProblemInstance;
use ckpt_dag::properties;
use ckpt_failure::{Pcg64, RandomSource};
use ckpt_service::{PlanInstance, PlanRequest, Planner, RateBucketing, ResponseSource};
use proptest::prelude::*;

/// One workload shape of a differential run, reconstructible at any rate.
#[derive(Clone, Copy)]
struct Shape {
    seed: u64,
    n: usize,
}

impl Shape {
    /// The chain at rate `lambda` — `heterogeneous_chain_instance` draws
    /// its cost data before `lambda` is used, so every rate sees the
    /// bitwise-same chain.
    fn at(self, lambda: f64) -> ProblemInstance {
        testgen::heterogeneous_chain_instance(self.seed, self.n, lambda)
    }
}

/// The cold reference for a full plan: a fresh one-shot solve at `lambda`.
fn cold_full(shape: Shape, lambda: f64) -> (f64, Vec<usize>) {
    let solution = optimal_chain_schedule(&shape.at(lambda)).expect("chain instance");
    (solution.expected_makespan, solution.checkpoint_positions)
}

/// The cold reference for a re-plan: a fresh full-order table at `lambda`
/// and a fresh suffix solve — never a suffix-only table, whose prefix sums
/// would be rebuilt from zero and differ in the last ulp.
fn cold_replan(shape: Shape, lambda: f64, from: usize) -> (f64, Vec<usize>) {
    let instance = shape.at(lambda);
    let order = properties::as_chain(instance.graph()).expect("chain graph");
    let table = segment_cost_table(&instance, &order).expect("valid instance");
    let mut dp = ResumableDp::new();
    let value = dp.solve_suffix(&table, from);
    (value, dp.suffix_positions(from))
}

/// Asserts one response against its cold reference, bit for bit.
fn assert_matches_cold(
    response: &ckpt_service::PlanResponse,
    shape: Shape,
    context: &str,
) -> Result<(), TestCaseError> {
    let (value, positions) = if response.resume_from == 0 {
        cold_full(shape, response.effective_lambda)
    } else {
        cold_replan(shape, response.effective_lambda, response.resume_from)
    };
    prop_assert!(
        *response.checkpoint_positions == positions,
        "positions diverge: {} (id {}): {:?} != {:?}",
        context,
        response.id,
        response.checkpoint_positions,
        positions
    );
    prop_assert!(
        response.expected_makespan.to_bits() == value.to_bits(),
        "value diverges: {} (id {}): {} != {}",
        context,
        response.id,
        response.expected_makespan,
        value
    );
    Ok(())
}

/// The seven-point grid every property below buckets onto.
fn grid() -> Vec<f64> {
    match RateBucketing::log_grid(1e-6, 1e-3, 7).expect("valid grid") {
        RateBucketing::Grid(rates) => rates,
        RateBucketing::Exact => unreachable!("log_grid returns a grid"),
    }
}

/// A rate-request mix that deliberately stresses the bucketing: exact grid
/// points, geometric bucket midpoints (the tie boundary), off-grid rates,
/// and out-of-range rates that clamp to the end buckets.
fn draw_rate(rng: &mut Pcg64, grid: &[f64]) -> f64 {
    match rng.next_bounded(5) {
        0 => grid[rng.next_bounded(grid.len() as u64) as usize],
        1 => {
            let i = rng.next_bounded(grid.len() as u64 - 1) as usize;
            (grid[i] * grid[i + 1]).sqrt()
        }
        2 => 10f64.powf(rng.next_range(-6.5, -2.5)),
        3 => grid[0] * rng.next_range(0.01, 0.99),
        _ => grid[grid.len() - 1] * rng.next_range(1.5, 50.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random chains × random rate sequences, served twice: every response
    /// of both passes matches a cold solve at its effective rate, and the
    /// second pass's full plans are all cache hits with identical payloads.
    #[test]
    fn every_response_is_bitwise_identical_to_a_cold_solve(
        seed in any::<u64>(),
        shape_count in 1usize..4,
        mask_choice in 0u32..3,
    ) {
        let grid = grid();
        // mask u64::MAX = production; 0x7 / 0 = forced fingerprint
        // collisions funnelling unrelated orders into shared shards.
        let mask = [u64::MAX, 0x7, 0][mask_choice as usize];
        let mut planner = Planner::new(RateBucketing::grid(grid.clone()).expect("sorted"))
            .with_threads(3)
            .with_fingerprint_mask(mask);

        let mut rng = Pcg64::seed_from_u64(seed);
        let shapes: Vec<Shape> = (0..shape_count)
            .map(|k| Shape {
                seed: seed.wrapping_add(k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                n: 2 + rng.next_bounded(26) as usize,
            })
            .collect();
        let instances: Vec<PlanInstance> = shapes
            .iter()
            .map(|shape| PlanInstance::from_chain_instance(&shape.at(1e-4)).expect("chain"))
            .collect();

        let mut requests = Vec::new();
        let mut request_shapes = Vec::new();
        for id in 0..14u64 {
            let which = rng.next_bounded(shapes.len() as u64) as usize;
            let rate = draw_rate(&mut rng, &grid);
            let request = if shapes[which].n > 1 && rng.next_bool(0.3) {
                let from = 1 + rng.next_bounded(shapes[which].n as u64 - 1) as usize;
                PlanRequest::replan(id, instances[which].clone(), rate, from).expect("valid")
            } else {
                PlanRequest::plan(id, instances[which].clone(), rate).expect("valid")
            };
            requests.push(request);
            request_shapes.push(shapes[which]);
        }

        let first = planner.serve_batch(&requests);
        let second = planner.serve_batch(&requests);
        for (response, &shape) in first.iter().zip(&request_shapes) {
            assert_matches_cold(response, shape, "first pass")?;
        }
        for ((response, cold), &shape) in second.iter().zip(&first).zip(&request_shapes) {
            assert_matches_cold(response, shape, "second pass")?;
            if response.resume_from == 0 {
                prop_assert_eq!(response.source, ResponseSource::CacheHit);
            } else {
                prop_assert_eq!(response.source, ResponseSource::SuffixReplan);
            }
            prop_assert_eq!(&response.checkpoint_positions, &cold.checkpoint_positions);
            prop_assert_eq!(
                response.expected_makespan.to_bits(),
                cold.expected_makespan.to_bits()
            );
            prop_assert_eq!(
                response.effective_lambda.to_bits(),
                cold.effective_lambda.to_bits()
            );
        }
    }

    /// Rates straddling a bucket boundary either quantise to the same
    /// bucket (identical responses) or to adjacent buckets — and in both
    /// cases each response is the exact optimum for its own effective rate.
    #[test]
    fn bucket_boundaries_stay_consistent(seed in any::<u64>(), n in 2usize..24) {
        let grid = grid();
        let mut planner =
            Planner::new(RateBucketing::grid(grid.clone()).expect("sorted")).with_threads(2);
        let shape = Shape { seed, n };
        let instance = PlanInstance::from_chain_instance(&shape.at(1e-4)).expect("chain");

        let mut id = 0u64;
        for window in grid.windows(2) {
            let boundary = (window[0] * window[1]).sqrt();
            // The boundary itself plus one rate just inside each side.
            for rate in [boundary, boundary * (1.0 - 1e-9), boundary * (1.0 + 1e-9)] {
                let request = PlanRequest::plan(id, instance.clone(), rate).expect("valid");
                id += 1;
                let response = planner.serve_batch(&[request]).remove(0);
                prop_assert!(
                    response.effective_lambda.to_bits() == window[0].to_bits()
                        || response.effective_lambda.to_bits() == window[1].to_bits(),
                    "rate {rate:e} left its straddled buckets"
                );
                assert_matches_cold(&response, shape, "boundary")?;
            }
        }
    }
}

/// Exact (bit-pattern) bucketing never quantises: a planner serving a
/// hostile mix of nearly-identical rates answers each with the optimum for
/// precisely that rate.
#[test]
fn exact_bucketing_matches_cold_solves_per_bit_pattern() {
    let mut planner = Planner::new(RateBucketing::Exact).with_threads(2);
    let shape = Shape { seed: 7, n: 12 };
    let instance = PlanInstance::from_chain_instance(&shape.at(1e-4)).expect("chain");
    let base = 1e-4f64;
    let rates = [base, f64::from_bits(base.to_bits() + 1), f64::from_bits(base.to_bits() - 1)];
    let requests: Vec<PlanRequest> = rates
        .iter()
        .enumerate()
        .map(|(id, &rate)| PlanRequest::plan(id as u64, instance.clone(), rate).expect("valid"))
        .collect();
    let responses = planner.serve_batch(&requests);
    let mut distinct = HashMap::new();
    for (response, &rate) in responses.iter().zip(&rates) {
        assert_eq!(response.effective_lambda.to_bits(), rate.to_bits());
        let (value, positions) = cold_full(shape, rate);
        assert_eq!(*response.checkpoint_positions, positions);
        assert_eq!(response.expected_makespan.to_bits(), value.to_bits());
        distinct.insert(rate.to_bits(), ());
    }
    // Adjacent bit patterns really are distinct buckets under Exact.
    assert_eq!(distinct.len(), 3);
    assert_eq!(planner.cached_plans(), 3);
}

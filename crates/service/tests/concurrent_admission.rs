//! Concurrent-admission determinism: the same request stream must produce
//! bitwise-identical responses at every worker count, and a shuffled
//! arrival order must produce the identical numeric payload per request
//! id (the `source` label is admission-order dependent by contract; the
//! plans are not).

use std::collections::HashMap;
use std::sync::Arc;

use ckpt_bench::testgen;
use ckpt_failure::{Pcg64, RandomSource};
use ckpt_service::{PlanInstance, PlanRequest, PlanResponse, Planner, RateBucketing};

/// A deterministic Zipf-flavoured request stream: a few hot shapes take
/// most of the traffic, a tail of cold shapes the rest; ~25% of requests
/// are mid-run re-plans; rates are drawn from a small telemetry-like set.
fn build_stream(seed: u64, shapes: usize, max_n: usize, count: usize) -> Vec<PlanRequest> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let instances: Vec<(PlanInstance, usize)> = (0..shapes)
        .map(|k| {
            let n = 2 + (k * 37) % (max_n - 1);
            let problem = testgen::heterogeneous_chain_instance(seed ^ (k as u64) << 17, n, 1e-4);
            (PlanInstance::from_chain_instance(&problem).expect("chain"), n)
        })
        .collect();
    let rates = [2e-5, 1e-4, 1.07e-4, 5e-4];
    (0..count as u64)
        .map(|id| {
            // Hot set: half the traffic hits the first two shapes.
            let which = if rng.next_bool(0.5) {
                rng.next_bounded(2.min(shapes as u64)) as usize
            } else {
                rng.next_bounded(shapes as u64) as usize
            };
            let (instance, n) = &instances[which];
            let rate = rates[rng.next_bounded(rates.len() as u64) as usize];
            if *n > 1 && rng.next_bool(0.25) {
                let from = 1 + rng.next_bounded(*n as u64 - 1) as usize;
                PlanRequest::replan(id, instance.clone(), rate, from).expect("valid")
            } else {
                PlanRequest::plan(id, instance.clone(), rate).expect("valid")
            }
        })
        .collect()
}

/// Serves the stream in batches on a fresh planner with the given worker
/// count.
fn serve(stream: &[PlanRequest], threads: usize, batch: usize) -> Vec<PlanResponse> {
    let mut planner = Planner::new(RateBucketing::log_grid(1e-6, 1e-3, 13).expect("valid grid"))
        .with_threads(threads);
    stream.chunks(batch).flat_map(|chunk| planner.serve_batch(chunk)).collect()
}

/// The order-invariant payload of a response (everything but `source`,
/// which by contract reflects arrival order).
fn payload(response: &PlanResponse) -> (u64, u64, usize, u64, Arc<Vec<usize>>) {
    (
        response.lambda.to_bits(),
        response.effective_lambda.to_bits(),
        response.resume_from,
        response.expected_makespan.to_bits(),
        Arc::clone(&response.checkpoint_positions),
    )
}

fn assert_thread_count_invariance(stream: &[PlanRequest], batch: usize) {
    let serial = serve(stream, 1, batch);
    for threads in [2usize, 3, 8] {
        let parallel = serve(stream, threads, batch);
        assert_eq!(
            parallel, serial,
            "responses diverge between 1 and {threads} workers (batch size {batch})"
        );
    }
}

fn assert_shuffle_invariance(stream: &[PlanRequest], seed: u64, batch: usize) {
    let baseline: HashMap<u64, _> =
        serve(stream, 3, batch).iter().map(|r| (r.id, payload(r))).collect();
    let mut shuffled = stream.to_vec();
    let mut rng = Pcg64::seed_from_u64(seed);
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.next_bounded(i as u64 + 1) as usize);
    }
    let reordered = serve(&shuffled, 3, batch);
    assert_eq!(reordered.len(), baseline.len());
    for response in &reordered {
        let expected = &baseline[&response.id];
        assert_eq!(&payload(response), expected, "request {} diverges under shuffle", response.id);
    }
}

#[test]
fn responses_are_bit_identical_at_every_worker_count() {
    let stream = build_stream(11, 6, 40, 160);
    assert_thread_count_invariance(&stream, 64);
    // A different batching still matches itself across worker counts.
    assert_thread_count_invariance(&stream, 7);
}

#[test]
fn shuffled_arrival_order_serves_identical_plans() {
    let stream = build_stream(23, 6, 40, 160);
    assert_shuffle_invariance(&stream, 99, 64);
}

#[test]
fn batch_split_does_not_change_plans() {
    // Serving one big batch vs many small ones: same payload per id
    // (sources may differ — a coalesced duplicate in one batch becomes a
    // cache hit across batches).
    let stream = build_stream(37, 5, 32, 120);
    let one_batch: HashMap<u64, _> =
        serve(&stream, 2, stream.len()).iter().map(|r| (r.id, payload(r))).collect();
    for response in serve(&stream, 2, 9) {
        assert_eq!(payload(&response), one_batch[&response.id]);
    }
}

/// The Monte-Carlo-sized version of the determinism wall: thousands of
/// requests over larger chains, every worker count, plus a shuffle pass.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-sized determinism sweep; run with --release")]
fn release_sized_stream_is_deterministic() {
    let stream = build_stream(2024, 24, 512, 4000);
    assert_thread_count_invariance(&stream, 256);
    assert_shuffle_invariance(&stream, 4242, 256);
}

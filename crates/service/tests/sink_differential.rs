//! The differential wall around the service tier's telemetry: attaching any
//! live sink to `serve_batch_with_sink` must leave every response — and the
//! serving counters — bitwise identical to the sink-less path, at every
//! worker-thread count, while the sink observes one wall-domain
//! `service_batch` event per batch.

use ckpt_bench::testgen;
use ckpt_failure::{Pcg64, RandomSource};
use ckpt_service::{PlanInstance, PlanRequest, PlanResponse, Planner, RateBucketing};
use ckpt_telemetry::{JsonlSink, NoopSink, RingBufferSink, TelemetrySink, TimeDomain};

const BATCH: usize = 32;

fn bucketing() -> RateBucketing {
    RateBucketing::log_grid(1e-6, 1e-3, 9).expect("valid grid")
}

/// A small mixed stream: a handful of shapes, three rates, ~25% re-plans.
fn stream() -> Vec<PlanRequest> {
    let shapes: Vec<PlanInstance> = (0..5)
        .map(|k| {
            let problem =
                testgen::heterogeneous_chain_instance(0x51D ^ (k as u64), 12 + k * 9, 1e-4);
            PlanInstance::from_chain_instance(&problem).expect("chain instance")
        })
        .collect();
    let mut rng = Pcg64::seed_from_u64(0x51D);
    let rates = [3e-5, 1e-4, 3e-4];
    (0..160u64)
        .map(|id| {
            let instance = &shapes[rng.next_bounded(shapes.len() as u64) as usize];
            let rate = rates[rng.next_bounded(3) as usize];
            if instance.len() > 1 && rng.next_bool(0.25) {
                let from = 1 + rng.next_bounded(instance.len() as u64 - 1) as usize;
                PlanRequest::replan(id, instance.clone(), rate, from).expect("valid request")
            } else {
                PlanRequest::plan(id, instance.clone(), rate).expect("valid request")
            }
        })
        .collect()
}

fn serve(
    requests: &[PlanRequest],
    threads: usize,
    sink: &mut dyn TelemetrySink,
) -> (Vec<PlanResponse>, Planner) {
    let mut planner = Planner::new(bucketing()).with_threads(threads);
    let responses = requests
        .chunks(BATCH)
        .flat_map(|chunk| planner.serve_batch_with_sink(chunk, sink))
        .collect();
    (responses, planner)
}

#[test]
fn live_sinks_never_change_responses_or_counters() {
    let requests = stream();
    let batches = requests.len().div_ceil(BATCH);

    let mut plain_planner = Planner::new(bucketing());
    let plain: Vec<PlanResponse> =
        requests.chunks(BATCH).flat_map(|chunk| plain_planner.serve_batch(chunk)).collect();

    for threads in [1usize, 2, 3, 8] {
        let (noop, noop_planner) = serve(&requests, threads, &mut NoopSink);
        assert_eq!(noop, plain, "no-op sink diverges at {threads} workers");
        assert_eq!(noop_planner.stats(), plain_planner.stats());

        let mut ring = RingBufferSink::new(256);
        let (ringed, ring_planner) = serve(&requests, threads, &mut ring);
        assert_eq!(ringed, plain, "ring sink diverges at {threads} workers");
        assert_eq!(ring_planner.stats(), plain_planner.stats());
        assert_eq!(ring.len(), batches, "one service_batch event per batch");
        assert!(ring
            .events()
            .all(|e| e.name() == "service_batch" && e.domain() == TimeDomain::Wall));

        let mut jsonl = JsonlSink::new(Vec::new());
        let (streamed, _) = serve(&requests, threads, &mut jsonl);
        assert_eq!(streamed, plain, "jsonl sink diverges at {threads} workers");
        assert_eq!(jsonl.lines(), batches as u64);
        let bytes = jsonl.finish().expect("in-memory writer");
        let text = String::from_utf8(bytes).expect("utf-8 trace");
        assert_eq!(text.lines().count(), batches);
        assert!(text.lines().all(|l| l.starts_with("{\"domain\":\"wall\",")));
    }
}

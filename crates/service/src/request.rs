//! Request/response types of the planner service.
//!
//! A [`PlanInstance`] is a *validated, fingerprinted* chain workload — the
//! deserialised body of an admission request. Construction does all the
//! per-order work once ([`LambdaSweep`] validation, prefix sums, FNV-1a
//! fingerprint); the instance itself is then a couple of `Arc`s, so cloning
//! it into thousands of [`PlanRequest`]s is free and the planner can adopt
//! its λ-independent sweep directly into the cache on a cold miss.

use std::sync::Arc;

use ckpt_core::evaluate::lambda_sweep_for_order;
use ckpt_core::ProblemInstance;
use ckpt_dag::properties;
use ckpt_expectation::sweep::LambdaSweep;
use ckpt_expectation::ExpectationError;

use crate::error::ServiceError;

/// A validated chain workload, ready to be planned at any failure rate.
///
/// Two instances constructed from bitwise-equal cost vectors fingerprint
/// identically and compare equal, so the planner's cache recognises the
/// "same" workload across independently constructed requests (the service
/// never relies on `Arc` identity — see
/// [`Planner`](crate::Planner)'s collision handling).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanInstance {
    sweep: Arc<LambdaSweep>,
    fingerprint: u64,
}

impl PlanInstance {
    /// Validates one execution order positionally — exactly as
    /// [`LambdaSweep::new`]: `weights[j]` is position `j`'s work,
    /// `checkpoints[j]` its checkpoint cost, and `recoveries[x]` the
    /// recovery protecting the segment that starts at position `x`
    /// (`recoveries[0]` is the initial recovery).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Invalid`] if `downtime` is negative, any
    /// weight is not strictly positive, or any cost is negative.
    pub fn new(
        downtime: f64,
        weights: &[f64],
        checkpoints: &[f64],
        recoveries: &[f64],
    ) -> Result<Self, ServiceError> {
        let sweep = LambdaSweep::new(downtime, weights, checkpoints, recoveries)?;
        Ok(PlanInstance::from_sweep(sweep))
    }

    /// Builds the instance from a linear-chain [`ProblemInstance`], along
    /// its unique topological order — producing the *bitwise same* sweep as
    /// `ckpt_core::chain_dp::optimal_chain_schedule` builds internally, so a
    /// served plan can be compared bit-for-bit against a one-shot solve of
    /// the same instance (the differential suites do exactly that).
    ///
    /// The instance's own `lambda` is ignored: the failure rate is a
    /// per-request parameter ([`PlanRequest::plan`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Instance`] if the graph is not a linear chain
    /// or the cost data fails validation.
    pub fn from_chain_instance(instance: &ProblemInstance) -> Result<Self, ServiceError> {
        let order = properties::as_chain(instance.graph())
            .ok_or(ServiceError::Instance(ckpt_core::ScheduleError::NotAChain))?;
        let sweep = lambda_sweep_for_order(instance, &order)?;
        Ok(PlanInstance::from_sweep(sweep))
    }

    fn from_sweep(sweep: LambdaSweep) -> Self {
        let fingerprint = sweep.fingerprint();
        PlanInstance { sweep: Arc::new(sweep), fingerprint }
    }

    /// The number of positions of the order.
    pub fn len(&self) -> usize {
        self.sweep.len()
    }

    /// Whether the order covers no positions (never true: construction
    /// requires at least one position).
    pub fn is_empty(&self) -> bool {
        self.sweep.is_empty()
    }

    /// The order's FNV-1a fingerprint ([`LambdaSweep::fingerprint`]) — the
    /// cache key's first half (the second is the rate bucket).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The order's λ-independent sweep, shared (`Arc`) with the planner's
    /// cache once the instance has been admitted.
    pub fn sweep(&self) -> &Arc<LambdaSweep> {
        &self.sweep
    }
}

/// One plan or re-plan request, validated at construction so that serving
/// is infallible.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    id: u64,
    instance: PlanInstance,
    lambda: f64,
    resume_from: usize,
}

impl PlanRequest {
    /// A full-plan request: the optimal checkpoint placement for the whole
    /// chain at failure rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Invalid`] if `lambda` is not strictly
    /// positive and finite.
    pub fn plan(id: u64, instance: PlanInstance, lambda: f64) -> Result<Self, ServiceError> {
        ensure_rate(lambda)?;
        Ok(PlanRequest { id, instance, lambda, resume_from: 0 })
    }

    /// A re-plan request: the workflow has a durable checkpoint right before
    /// position `resume_from` and asks for the optimal placement of the
    /// remaining positions `resume_from..n` (the
    /// [`ResumableDp::solve_suffix`](ckpt_core::chain_dp::ResumableDp::solve_suffix)
    /// path).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Invalid`] for an invalid rate, or
    /// [`ServiceError::ResumeOutOfRange`] unless `1 ≤ resume_from < n`
    /// (use [`PlanRequest::plan`] for a fresh plan).
    pub fn replan(
        id: u64,
        instance: PlanInstance,
        lambda: f64,
        resume_from: usize,
    ) -> Result<Self, ServiceError> {
        ensure_rate(lambda)?;
        if resume_from == 0 || resume_from >= instance.len() {
            return Err(ServiceError::ResumeOutOfRange { resume_from, len: instance.len() });
        }
        Ok(PlanRequest { id, instance, lambda, resume_from })
    }

    /// The caller-chosen request id, echoed verbatim in the response.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The validated workload the request plans for.
    pub fn instance(&self) -> &PlanInstance {
        &self.instance
    }

    /// The requested platform failure rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// First position of the suffix to plan (0 for a full plan).
    pub fn resume_from(&self) -> usize {
        self.resume_from
    }
}

fn ensure_rate(lambda: f64) -> Result<(), ServiceError> {
    if !lambda.is_finite() {
        return Err(ExpectationError::NonFiniteParameter { name: "lambda", value: lambda }.into());
    }
    if lambda <= 0.0 {
        return Err(ExpectationError::NonPositiveParameter { name: "lambda", value: lambda }.into());
    }
    Ok(())
}

/// How the planner produced a response.
///
/// The label reflects the cache's state *at admission*, so it depends on the
/// order requests arrive in (the first request for a new order is the
/// [`ColdSolve`](ResponseSource::ColdSolve); an identical one right behind
/// it coalesces onto the same solve and inherits its label). The numeric
/// payload — positions, expected makespan, effective rate — is a pure
/// function of (instance, effective rate, resume position) and never
/// depends on arrival order or worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Full plan answered straight from the cache (no DP ran).
    CacheHit,
    /// Full solve for an order the cache had never seen: the instance's
    /// λ-independent sweep was adopted, a per-rate table stamped, and the
    /// chain DP run.
    ColdSolve,
    /// Full solve for a *cached* order at a new rate bucket: the cached
    /// sweep stamped the table (no re-validation, no prefix sums), then the
    /// chain DP ran.
    SweepSolve,
    /// Suffix re-plan: the DP solved only positions `resume_from..n` on the
    /// cached (or freshly stamped) table. Re-plans are always computed —
    /// only full plans are cached.
    SuffixReplan,
}

/// The answer to one [`PlanRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResponse {
    /// The request's id, echoed.
    pub id: u64,
    /// The rate the client asked for.
    pub lambda: f64,
    /// The rate the plan is exactly optimal for: `lambda` under
    /// [`RateBucketing::Exact`](crate::RateBucketing::Exact), the nearest
    /// grid rate under a log grid.
    pub effective_lambda: f64,
    /// First position the plan covers (0 for a full plan).
    pub resume_from: usize,
    /// The optimal expected makespan of the planned positions at
    /// `effective_lambda` (for a re-plan: the expected time to finish the
    /// remaining chain).
    pub expected_makespan: f64,
    /// The optimal checkpoint positions over `resume_from..n`, increasing,
    /// ending with the mandatory final checkpoint at `n − 1`. Shared
    /// (`Arc`) with the cache on a hit.
    pub checkpoint_positions: Arc<Vec<usize>>,
    /// How the response was produced (admission-order dependent; the
    /// numeric fields are not).
    pub source: ResponseSource,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> PlanInstance {
        PlanInstance::new(30.0, &[400.0, 100.0, 900.0], &[60.0; 3], &[15.0, 60.0, 20.0])
            .expect("valid order")
    }

    #[test]
    fn equal_vectors_fingerprint_and_compare_equal() {
        let a = instance();
        let b = instance();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert!(!Arc::ptr_eq(a.sweep(), b.sweep()));
        let c = PlanInstance::new(30.0, &[400.0, 100.0, 901.0], &[60.0; 3], &[15.0, 60.0, 20.0])
            .expect("valid order");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            PlanInstance::new(30.0, &[400.0, -1.0], &[60.0; 2], &[15.0; 2]),
            Err(ServiceError::Invalid(_))
        ));
        let inst = instance();
        assert!(PlanRequest::plan(0, inst.clone(), 0.0).is_err());
        assert!(PlanRequest::plan(0, inst.clone(), f64::INFINITY).is_err());
        assert!(PlanRequest::plan(0, inst.clone(), 1e-4).is_ok());
        assert!(matches!(
            PlanRequest::replan(0, inst.clone(), 1e-4, 0),
            Err(ServiceError::ResumeOutOfRange { .. })
        ));
        assert!(matches!(
            PlanRequest::replan(0, inst.clone(), 1e-4, 3),
            Err(ServiceError::ResumeOutOfRange { .. })
        ));
        assert_eq!(PlanRequest::replan(7, inst, 1e-4, 2).expect("valid").resume_from(), 2);
    }

    #[test]
    fn chain_instance_round_trip_matches_positional_construction() {
        use ckpt_dag::generators;
        let graph = generators::chain(&[400.0, 100.0, 900.0]).expect("chain");
        let problem = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(60.0)
            .downtime(30.0)
            .initial_recovery(15.0)
            .platform_lambda(1e-4)
            .recovery_costs(vec![60.0, 20.0, 5.0])
            .build()
            .expect("valid instance");
        let via_instance = PlanInstance::from_chain_instance(&problem).expect("chain");
        // Positional recoveries: initial, then task x−1's recovery cost.
        let positional = instance();
        assert_eq!(via_instance, positional);
    }
}

//! Planner-as-a-service: batched, cached, bit-deterministic plan and
//! re-plan serving for thousands of concurrent chain workflows.
//!
//! The analytical stack below this crate answers *one* question exactly:
//! given a chain of tasks and a failure rate, where should the checkpoints
//! go (the DSN 2012 Algorithm 1 DP on the Proposition 1 closed form)? A
//! production planner faces that question thousands of times a second —
//! fleets of workflows asking for plans, workflows interrupted by failures
//! asking for *re*-plans of their remaining work, and rate estimates
//! drifting with platform telemetry. This crate is that serving tier:
//!
//! * **Requests** ([`PlanRequest`]) carry a validated, fingerprinted
//!   workload ([`PlanInstance`]) plus a failure rate (and, for re-plans, a
//!   resume position). Validation happens at construction; serving is
//!   infallible.
//! * **The cache** is keyed by *instance fingerprint × rate bucket*
//!   ([`RateBucketing`]): the fingerprint hashes the order's defining cost
//!   vectors (FNV-1a over exact bit patterns), the bucket quantises the
//!   rate onto a log grid. A hit answers with no DP at all; a miss at a new
//!   rate of a known order reuses the cached λ-independent
//!   [`LambdaSweep`](ckpt_expectation::sweep::LambdaSweep) — only an order
//!   the service has never seen pays full admission.
//! * **The solve phase** dispatches misses over the workspace's
//!   deterministic contiguous-chunk worker pattern
//!   ([`chunked_map_with`](ckpt_core::parallel::chunked_map_with)) with one
//!   reusable [`ResumableDp`](ckpt_core::chain_dp::ResumableDp) arena per
//!   worker; re-plans run its `O((n − from)²)` suffix path. Every response
//!   is **bitwise identical** to a one-shot
//!   [`optimal_chain_schedule`](ckpt_core::chain_dp::optimal_chain_schedule)
//!   solve at the effective rate, at every worker count — the differential
//!   suites in `tests/` hold that wall.
//!
//! # Example
//!
//! ```
//! use ckpt_service::{PlanInstance, PlanRequest, Planner, RateBucketing, ResponseSource};
//!
//! // A planner quantising rates onto a 13-point grid per decade span.
//! let mut planner = Planner::new(RateBucketing::log_grid(1e-6, 1e-3, 13)?);
//! let chain = PlanInstance::new(
//!     30.0,                               // downtime D
//!     &[400.0, 100.0, 900.0, 250.0],      // task weights along the order
//!     &[60.0, 60.0, 60.0, 60.0],          // checkpoint costs
//!     &[15.0, 60.0, 60.0, 60.0],          // protecting recoveries
//! )?;
//!
//! // Two estimates of the same platform's rate land in the same bucket…
//! let responses = planner.serve_batch(&[
//!     PlanRequest::plan(1, chain.clone(), 1.00e-4)?,
//!     PlanRequest::plan(2, chain.clone(), 1.05e-4)?,
//! ]);
//! assert_eq!(responses[0].effective_lambda, responses[1].effective_lambda);
//! // …so the second coalesces onto the first's solve, bit for bit.
//! assert_eq!(responses[0].checkpoint_positions, responses[1].checkpoint_positions);
//!
//! // A failure at position 2: re-plan the remaining chain only.
//! let replan = planner.serve_batch(&[PlanRequest::replan(3, chain, 1e-4, 2)?]).remove(0);
//! assert_eq!(replan.source, ResponseSource::SuffixReplan);
//! assert!(replan.checkpoint_positions.iter().all(|&j| j >= 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bucketing;
pub mod error;
pub mod planner;
pub mod request;

pub use bucketing::RateBucketing;
pub use error::ServiceError;
pub use planner::{Planner, ServiceStats};
pub use request::{PlanInstance, PlanRequest, PlanResponse, ResponseSource};

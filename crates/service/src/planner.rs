//! The planner: batched admission, the fingerprint × rate-bucket cache,
//! and the deterministic parallel solve phase.
//!
//! # Serving pipeline
//!
//! [`Planner::serve_batch`] runs three phases:
//!
//! 1. **Admission** (serial, in request order): each request is keyed by
//!    its instance's fingerprint (masked by the collision-test hook) and
//!    its rate bucket. Cache hits are answered immediately; misses become
//!    *work items*, deduplicated so that many identical requests in one
//!    batch coalesce onto a single solve. A never-seen order adopts the
//!    instance's λ-independent [`LambdaSweep`] into the cache.
//! 2. **Solve** (parallel): the work items are mapped over
//!    [`chunked_map_with`] — the workspace's deterministic contiguous-chunk
//!    worker pattern — with one arena-allocated [`ResumableDp`] scratch per
//!    worker. Each item stamps (or reuses) the bucket's
//!    [`SegmentCostTable`] and runs the pruned Algorithm 1 DP, full or
//!    suffix-only. Every result is a pure function of the item, so the
//!    phase is **bit-identical for every worker count**.
//! 3. **Commit + assembly** (serial, in request order): freshly stamped
//!    tables and full plans enter the cache, and responses are assembled
//!    in arrival order.
//!
//! Determinism falls out of the structure: hash maps are only ever probed
//! by key (never iterated for results), admission and commit are serial,
//! and the parallel phase uses the same chunking contract as every other
//! thread-parallel path of the workspace.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ckpt_core::chain_dp::ResumableDp;
use ckpt_core::parallel::chunked_map_with;
use ckpt_expectation::segment_cost::SegmentCostTable;
use ckpt_expectation::sweep::LambdaSweep;
use ckpt_telemetry::{wall_seconds, MetricsRegistry, NoopSink, TelemetrySink, TraceEvent};

use crate::bucketing::RateBucketing;
use crate::request::{PlanRequest, PlanResponse, ResponseSource};

/// A cached full plan: the DP value and the shared checkpoint positions.
#[derive(Debug, Clone)]
struct CachedPlan {
    expected_makespan: f64,
    checkpoint_positions: Arc<Vec<usize>>,
}

/// One cached execution order: its λ-independent sweep plus the per-bucket
/// tables and full plans stamped so far. Orders that collide on the
/// (masked) fingerprint live side by side in a `Vec` and are told apart by
/// comparing their sweeps' defining vectors.
#[derive(Debug)]
struct OrderShard {
    sweep: Arc<LambdaSweep>,
    tables: HashMap<u64, Arc<SegmentCostTable>>,
    plans: HashMap<u64, CachedPlan>,
}

/// Running counters of how requests were served (monotonic; one increment
/// per request, keyed by its [`ResponseSource`]).
///
/// Since the telemetry migration this is a *view*: the counters live on the
/// planner's [`MetricsRegistry`] (under the `service_*_total` names, see
/// `docs/OBSERVABILITY.md`) and [`Planner::stats`] materialises this struct
/// from them, keeping the original accessor and its semantics intact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests served in total.
    pub requests: u64,
    /// Full plans answered from the cache without running a DP.
    pub cache_hits: u64,
    /// Full solves that introduced a new order to the cache.
    pub cold_solves: u64,
    /// Full solves at a new rate bucket of an already-cached order.
    pub sweep_solves: u64,
    /// Suffix re-plans (always computed, never cached).
    pub suffix_replans: u64,
}

/// The planner-as-a-service core: a plan cache keyed by *instance
/// fingerprint × rate bucket* in front of the deterministic chain-DP
/// solvers.
///
/// # Example
///
/// ```
/// use ckpt_service::{PlanInstance, PlanRequest, Planner, RateBucketing, ResponseSource};
///
/// let mut planner = Planner::new(RateBucketing::Exact);
/// let chain = PlanInstance::new(30.0, &[400.0, 100.0, 900.0], &[60.0; 3], &[15.0; 3])?;
/// let first = PlanRequest::plan(1, chain.clone(), 1e-4)?;
/// let again = PlanRequest::plan(2, chain, 1e-4)?;
///
/// let cold = planner.serve_batch(&[first.clone()]);
/// assert_eq!(cold[0].source, ResponseSource::ColdSolve);
/// let warm = planner.serve_batch(&[again]);
/// assert_eq!(warm[0].source, ResponseSource::CacheHit);
/// // Same plan, no DP ran the second time.
/// assert_eq!(warm[0].checkpoint_positions, cold[0].checkpoint_positions);
/// assert_eq!(warm[0].expected_makespan.to_bits(), cold[0].expected_makespan.to_bits());
/// # Ok::<(), ckpt_service::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct Planner {
    bucketing: RateBucketing,
    threads: usize,
    fingerprint_mask: u64,
    shards: HashMap<u64, Vec<OrderShard>>,
    metrics: MetricsRegistry,
    pending: Vec<PlanRequest>,
}

/// Where a work item's per-rate table comes from.
enum TableSource {
    /// Already stamped for this (order, bucket) — reuse it.
    Cached(Arc<SegmentCostTable>),
    /// Stamp it from the order's sweep inside the worker.
    Stamp(Arc<LambdaSweep>),
}

/// One deduplicated solve: the table (or the sweep to stamp it from), the
/// effective rate, and the suffix start (0 = full plan).
struct WorkItem {
    table: TableSource,
    effective_lambda: f64,
    resume_from: usize,
    /// Cache coordinates for the commit phase.
    masked: u64,
    shard: usize,
    bucket: u64,
    source: ResponseSource,
}

/// A worker's result for one [`WorkItem`].
struct SolveOutcome {
    expected_makespan: f64,
    checkpoint_positions: Arc<Vec<usize>>,
    /// The table, iff the worker stamped it fresh (for the commit phase).
    stamped: Option<Arc<SegmentCostTable>>,
}

/// Per-request admission verdict.
enum Admitted {
    /// Answered from the cache; payload cloned out of the shard.
    Ready { expected_makespan: f64, checkpoint_positions: Arc<Vec<usize>>, effective_lambda: f64 },
    /// Answered by work item `index` (possibly shared with other requests).
    Computed { index: usize },
}

impl Planner {
    /// A planner with the given rate-bucketing policy, solving on all
    /// available cores ([`with_threads`](Planner::with_threads) overrides).
    pub fn new(bucketing: RateBucketing) -> Self {
        Planner {
            bucketing,
            threads: 0,
            fingerprint_mask: u64::MAX,
            shards: HashMap::new(),
            metrics: MetricsRegistry::new(),
            pending: Vec::new(),
        }
    }

    /// Sets the solve phase's worker count (`0` = one per core). Responses
    /// are bit-identical for every choice; this only trades latency for
    /// cores.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// **Differential-testing hook**: fingerprints are AND-masked with
    /// `mask` before keying the cache, so a small mask (e.g. `0x3`) forces
    /// unrelated orders to collide and exercises the collision-resolution
    /// path (shards compare their orders' defining vectors, so collisions
    /// cost a probe, never a wrong plan). Production planners keep the
    /// default `u64::MAX`.
    pub fn with_fingerprint_mask(mut self, mask: u64) -> Self {
        self.fingerprint_mask = mask;
        self
    }

    /// The serving counters so far (materialised from the metrics registry;
    /// see [`Planner::metrics`] for the full set including phase timings).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.metrics.counter("service_requests_total"),
            cache_hits: self.metrics.counter("service_cache_hits_total"),
            cold_solves: self.metrics.counter("service_cold_solves_total"),
            sweep_solves: self.metrics.counter("service_sweep_solves_total"),
            suffix_replans: self.metrics.counter("service_suffix_replans_total"),
        }
    }

    /// The planner's full metrics registry: the [`ServiceStats`] counters
    /// plus batch/coalescing counters and per-phase wall-time histograms
    /// (`service_admission_us` / `service_solve_us` / `service_commit_us` /
    /// `service_batch_us`). Wall-time values are in the non-deterministic
    /// domain; the counters are deterministic for a deterministic request
    /// stream. Export with [`ckpt_telemetry::export::prometheus_text`] or
    /// [`MetricsRegistry::to_json`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Distinct execution orders currently cached.
    pub fn cached_orders(&self) -> usize {
        self.shards.values().map(Vec::len).sum()
    }

    /// Full plans currently cached, over all orders and rate buckets.
    pub fn cached_plans(&self) -> usize {
        self.shards.values().flatten().map(|shard| shard.plans.len()).sum()
    }

    /// Queues a request for the next [`flush`](Planner::flush); returns the
    /// queue's new length.
    pub fn enqueue(&mut self, request: PlanRequest) -> usize {
        self.pending.push(request);
        self.pending.len()
    }

    /// Serves every queued request as one batch (in enqueue order).
    pub fn flush(&mut self) -> Vec<PlanResponse> {
        let batch = std::mem::take(&mut self.pending);
        self.serve_batch(&batch)
    }

    /// Serves a batch of requests, returning one response per request in
    /// request order. Infallible: requests are validated at construction.
    pub fn serve_batch(&mut self, requests: &[PlanRequest]) -> Vec<PlanResponse> {
        self.serve_batch_with_sink(requests, &mut NoopSink)
    }

    /// [`serve_batch`](Planner::serve_batch) with a telemetry sink: one
    /// **wall-domain** `service_batch` event is emitted per batch, carrying
    /// the batch composition and per-phase timings. Responses are bitwise
    /// identical to the sink-less path for every sink and thread count —
    /// instrumentation is observation-only.
    pub fn serve_batch_with_sink(
        &mut self,
        requests: &[PlanRequest],
        sink: &mut dyn TelemetrySink,
    ) -> Vec<PlanResponse> {
        let batch_started = Instant::now();
        // Phase 1 — serial admission in request order.
        let mut work: Vec<WorkItem> = Vec::new();
        let mut seen: HashMap<(u64, usize, u64, usize), usize> = HashMap::new();
        let admitted: Vec<Admitted> = requests
            .iter()
            .map(|request| {
                let masked = request.instance().fingerprint() & self.fingerprint_mask;
                let (bucket, effective_lambda) = self.bucketing.bucket(request.lambda());
                let colliders = self.shards.entry(masked).or_default();
                let (shard_index, is_new_order) = match colliders.iter().position(|candidate| {
                    Arc::ptr_eq(&candidate.sweep, request.instance().sweep())
                        || *candidate.sweep == **request.instance().sweep()
                }) {
                    Some(index) => (index, false),
                    None => {
                        colliders.push(OrderShard {
                            sweep: Arc::clone(request.instance().sweep()),
                            tables: HashMap::new(),
                            plans: HashMap::new(),
                        });
                        (colliders.len() - 1, true)
                    }
                };
                let shard = &colliders[shard_index];
                let resume_from = request.resume_from();
                if resume_from == 0 {
                    if let Some(plan) = shard.plans.get(&bucket) {
                        return Admitted::Ready {
                            expected_makespan: plan.expected_makespan,
                            checkpoint_positions: Arc::clone(&plan.checkpoint_positions),
                            effective_lambda,
                        };
                    }
                }
                let index =
                    *seen.entry((masked, shard_index, bucket, resume_from)).or_insert_with(|| {
                        let table = match shard.tables.get(&bucket) {
                            Some(table) => TableSource::Cached(Arc::clone(table)),
                            None => TableSource::Stamp(Arc::clone(&shard.sweep)),
                        };
                        let source = if resume_from > 0 {
                            ResponseSource::SuffixReplan
                        } else if is_new_order {
                            ResponseSource::ColdSolve
                        } else {
                            ResponseSource::SweepSolve
                        };
                        work.push(WorkItem {
                            table,
                            effective_lambda,
                            resume_from,
                            masked,
                            shard: shard_index,
                            bucket,
                            source,
                        });
                        work.len() - 1
                    });
                Admitted::Computed { index }
            })
            .collect();
        let admission_us = batch_started.elapsed().as_secs_f64() * 1e6;

        // Phase 2 — deterministic parallel solve, one `ResumableDp` arena
        // per worker (allocation-free after its first items).
        let solve_started = Instant::now();
        let outcomes: Vec<SolveOutcome> =
            chunked_map_with(&work, self.threads, ResumableDp::new, |dp, _, item| {
                let table = match &item.table {
                    TableSource::Cached(table) => Arc::clone(table),
                    TableSource::Stamp(sweep) => Arc::new(
                        sweep
                            .table_for(item.effective_lambda)
                            .expect("rates are validated at request construction"),
                    ),
                };
                let expected_makespan = if item.resume_from == 0 {
                    dp.solve(&table)
                } else {
                    dp.solve_suffix(&table, item.resume_from)
                };
                let checkpoint_positions = Arc::new(dp.suffix_positions(item.resume_from));
                let stamped =
                    matches!(item.table, TableSource::Stamp(_)).then(|| Arc::clone(&table));
                SolveOutcome { expected_makespan, checkpoint_positions, stamped }
            });

        let solve_us = solve_started.elapsed().as_secs_f64() * 1e6;

        // Phase 3 — serial commit (in work order) and assembly (in request
        // order).
        let commit_started = Instant::now();
        for (item, outcome) in work.iter().zip(&outcomes) {
            let shard =
                &mut self.shards.get_mut(&item.masked).expect("admitted shard exists")[item.shard];
            if let Some(table) = &outcome.stamped {
                shard.tables.entry(item.bucket).or_insert_with(|| Arc::clone(table));
            }
            if item.resume_from == 0 {
                shard.plans.entry(item.bucket).or_insert_with(|| CachedPlan {
                    expected_makespan: outcome.expected_makespan,
                    checkpoint_positions: Arc::clone(&outcome.checkpoint_positions),
                });
            }
        }

        let responses: Vec<PlanResponse> = requests
            .iter()
            .zip(admitted)
            .map(|(request, verdict)| match verdict {
                Admitted::Ready { expected_makespan, checkpoint_positions, effective_lambda } => {
                    PlanResponse {
                        id: request.id(),
                        lambda: request.lambda(),
                        effective_lambda,
                        resume_from: 0,
                        expected_makespan,
                        checkpoint_positions,
                        source: ResponseSource::CacheHit,
                    }
                }
                Admitted::Computed { index } => {
                    let (item, outcome) = (&work[index], &outcomes[index]);
                    PlanResponse {
                        id: request.id(),
                        lambda: request.lambda(),
                        effective_lambda: item.effective_lambda,
                        resume_from: item.resume_from,
                        expected_makespan: outcome.expected_makespan,
                        checkpoint_positions: Arc::clone(&outcome.checkpoint_positions),
                        source: item.source,
                    }
                }
            })
            .collect();

        let commit_us = commit_started.elapsed().as_secs_f64() * 1e6;

        let mut cache_hits = 0u64;
        let mut cold_solves = 0u64;
        let mut sweep_solves = 0u64;
        let mut suffix_replans = 0u64;
        for response in &responses {
            match response.source {
                ResponseSource::CacheHit => cache_hits += 1,
                ResponseSource::ColdSolve => cold_solves += 1,
                ResponseSource::SweepSolve => sweep_solves += 1,
                ResponseSource::SuffixReplan => suffix_replans += 1,
            }
        }
        // Requests that shared (coalesced onto) another request's solve.
        let computed = (responses.len() as u64) - cache_hits;
        let coalesced = computed - work.len() as u64;

        self.metrics.counter_add("service_requests_total", responses.len() as u64);
        self.metrics.counter_add("service_cache_hits_total", cache_hits);
        self.metrics.counter_add("service_cold_solves_total", cold_solves);
        self.metrics.counter_add("service_sweep_solves_total", sweep_solves);
        self.metrics.counter_add("service_suffix_replans_total", suffix_replans);
        self.metrics.counter_add("service_coalesced_total", coalesced);
        self.metrics.counter_add("service_work_items_total", work.len() as u64);
        self.metrics.counter_add("service_batches_total", 1);
        let batch_us = batch_started.elapsed().as_secs_f64() * 1e6;
        self.metrics.observe("service_admission_us", admission_us);
        self.metrics.observe("service_solve_us", solve_us);
        self.metrics.observe("service_commit_us", commit_us);
        self.metrics.observe("service_batch_us", batch_us);

        if sink.enabled() {
            sink.record(
                &TraceEvent::wall("service_batch", wall_seconds())
                    .with("requests", responses.len())
                    .with("work_items", work.len())
                    .with("cache_hits", cache_hits)
                    .with("coalesced", coalesced)
                    .with("admission_us", admission_us)
                    .with("solve_us", solve_us)
                    .with("commit_us", commit_us),
            );
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanInstance;
    use ckpt_core::chain_dp::optimal_chain_schedule;
    use ckpt_core::ProblemInstance;
    use ckpt_dag::generators;

    fn chain_problem(lambda: f64) -> ProblemInstance {
        let graph = generators::chain(&[400.0, 100.0, 900.0, 250.0, 650.0, 300.0]).expect("chain");
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(60.0)
            .uniform_recovery_cost(60.0)
            .downtime(30.0)
            .platform_lambda(lambda)
            .build()
            .expect("valid instance")
    }

    fn instance() -> PlanInstance {
        PlanInstance::from_chain_instance(&chain_problem(1e-4)).expect("chain")
    }

    #[test]
    fn serves_the_one_shot_optimum_bit_for_bit() {
        let mut planner = Planner::new(RateBucketing::Exact).with_threads(1);
        let request = PlanRequest::plan(1, instance(), 1e-4).expect("valid");
        let response = planner.serve_batch(&[request]).remove(0);
        let reference = optimal_chain_schedule(&chain_problem(1e-4)).expect("solvable");
        assert_eq!(*response.checkpoint_positions, reference.checkpoint_positions);
        assert_eq!(response.expected_makespan.to_bits(), reference.expected_makespan.to_bits());
        assert_eq!(response.source, ResponseSource::ColdSolve);
        assert_eq!(response.effective_lambda, 1e-4);
    }

    #[test]
    fn cache_hit_sweep_solve_and_replan_sources() {
        let mut planner = Planner::new(RateBucketing::Exact).with_threads(2);
        let inst = instance();
        let batch = [
            PlanRequest::plan(1, inst.clone(), 1e-4).expect("valid"),
            PlanRequest::plan(2, inst.clone(), 1e-4).expect("valid"), // coalesces onto 1
            PlanRequest::plan(3, inst.clone(), 1e-3).expect("valid"), // new bucket
            PlanRequest::replan(4, inst.clone(), 1e-4, 3).expect("valid"),
        ];
        let responses = planner.serve_batch(&batch);
        assert_eq!(responses[0].source, ResponseSource::ColdSolve);
        // Coalesced onto the same solve: same label, same shared payload.
        assert_eq!(responses[1].source, ResponseSource::ColdSolve);
        assert!(Arc::ptr_eq(
            &responses[0].checkpoint_positions,
            &responses[1].checkpoint_positions
        ));
        assert_eq!(responses[2].source, ResponseSource::SweepSolve);
        assert_eq!(responses[3].source, ResponseSource::SuffixReplan);
        assert_eq!(responses[3].resume_from, 3);

        // A later identical full plan is a pure cache hit…
        let warm = planner
            .serve_batch(&[PlanRequest::plan(5, inst.clone(), 1e-4).expect("valid")])
            .remove(0);
        assert_eq!(warm.source, ResponseSource::CacheHit);
        assert_eq!(warm.expected_makespan.to_bits(), responses[0].expected_makespan.to_bits());
        // …and re-plans always recompute.
        let replan_again =
            planner.serve_batch(&[PlanRequest::replan(6, inst, 1e-4, 3).expect("valid")]).remove(0);
        assert_eq!(replan_again.source, ResponseSource::SuffixReplan);
        assert_eq!(
            replan_again.expected_makespan.to_bits(),
            responses[3].expected_makespan.to_bits()
        );

        let stats = planner.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cold_solves, 2);
        assert_eq!(stats.sweep_solves, 1);
        assert_eq!(stats.suffix_replans, 2);
        assert_eq!(planner.cached_orders(), 1);
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn replan_matches_full_plan_tail_and_suffix_value() {
        let mut planner = Planner::new(RateBucketing::Exact);
        let inst = instance();
        let full = planner
            .serve_batch(&[PlanRequest::plan(1, inst.clone(), 1e-4).expect("valid")])
            .remove(0);
        for from in 1..inst.len() {
            let replan = planner
                .serve_batch(&[PlanRequest::replan(2, inst.clone(), 1e-4, from).expect("valid")])
                .remove(0);
            // Optimal substructure: once the full plan passes `from` at a
            // checkpoint boundary, the suffix plans coincide.
            if full.checkpoint_positions.contains(&(from - 1)) {
                let tail: Vec<usize> =
                    full.checkpoint_positions.iter().copied().filter(|&j| j >= from).collect();
                assert_eq!(*replan.checkpoint_positions, tail, "suffix from {from}");
            }
            assert!(replan.expected_makespan <= full.expected_makespan);
        }
    }

    #[test]
    fn grid_bucketing_reports_the_effective_rate() {
        let bucketing = RateBucketing::grid(vec![1e-5, 1e-4, 1e-3]).expect("valid grid");
        let mut planner = Planner::new(bucketing).with_threads(1);
        let inst = instance();
        let responses = planner.serve_batch(&[
            PlanRequest::plan(1, inst.clone(), 9e-5).expect("valid"),
            PlanRequest::plan(2, inst.clone(), 1.2e-4).expect("valid"),
        ]);
        // Both quantise to the 1e-4 bucket: one solve, one coalesced.
        assert_eq!(responses[0].effective_lambda, 1e-4);
        assert_eq!(responses[1].effective_lambda, 1e-4);
        assert_eq!(responses[0].lambda, 9e-5);
        assert_eq!(
            responses[0].expected_makespan.to_bits(),
            responses[1].expected_makespan.to_bits()
        );
        // The served plan is the exact optimum for the effective rate.
        let reference = optimal_chain_schedule(&chain_problem(1e-4)).expect("solvable");
        assert_eq!(*responses[0].checkpoint_positions, reference.checkpoint_positions);
        assert_eq!(responses[0].expected_makespan.to_bits(), reference.expected_makespan.to_bits());
        assert_eq!(planner.cached_plans(), 1);
    }

    #[test]
    fn forced_fingerprint_collisions_never_cross_plans() {
        // Mask every fingerprint to one bucket: all orders collide, and the
        // shard scan must still tell them apart by their defining vectors.
        let mut planner = Planner::new(RateBucketing::Exact).with_fingerprint_mask(0);
        let chains: Vec<PlanInstance> = (0..5)
            .map(|k| {
                PlanInstance::new(
                    30.0,
                    &[400.0 + f64::from(k), 100.0, 900.0],
                    &[60.0; 3],
                    &[15.0; 3],
                )
                .expect("valid order")
            })
            .collect();
        let batch: Vec<PlanRequest> = chains
            .iter()
            .enumerate()
            .map(|(id, inst)| PlanRequest::plan(id as u64, inst.clone(), 1e-4).expect("valid"))
            .collect();
        let cold = planner.serve_batch(&batch);
        let warm = planner.serve_batch(&batch);
        assert_eq!(planner.cached_orders(), 5);
        for (before, after) in cold.iter().zip(&warm) {
            assert_eq!(after.source, ResponseSource::CacheHit);
            assert_eq!(after.checkpoint_positions, before.checkpoint_positions);
            assert_eq!(after.expected_makespan.to_bits(), before.expected_makespan.to_bits());
        }
        // Distinct chains got distinct optima (the values differ).
        assert!(cold[0].expected_makespan != cold[4].expected_makespan);
    }

    #[test]
    fn enqueue_flush_equals_one_batch() {
        let inst = instance();
        let requests: Vec<PlanRequest> = (0..6)
            .map(|id| {
                let rate = 1e-4 * (id % 3 + 1) as f64;
                PlanRequest::plan(id, inst.clone(), rate).expect("valid")
            })
            .collect();
        let mut direct = Planner::new(RateBucketing::Exact).with_threads(2);
        let expected = direct.serve_batch(&requests);
        let mut queued = Planner::new(RateBucketing::Exact).with_threads(2);
        for request in &requests {
            queued.enqueue(request.clone());
        }
        let got = queued.flush();
        assert_eq!(got, expected);
        assert!(queued.flush().is_empty());
    }
}

//! Rate quantisation: turning a continuum of client λ estimates into a
//! small set of cache buckets.
//!
//! Failure-rate estimates arrive with at best one significant digit of
//! confidence (they come from MTBF telemetry), so serving the *exact*
//! optimum for a nearby canonical rate is statistically indistinguishable
//! from serving the optimum of the noisy estimate — and it turns the plan
//! cache's key space from `f64` bit patterns into a few dozen buckets. The
//! quantisation is honest: the response carries both the requested and the
//! effective rate, and the served plan is the bit-exact optimum *for the
//! effective rate* (the differential suites verify it against a cold solve
//! at that rate).

use ckpt_expectation::sweep::{log_lambda_grid, nearest_rate_bucket};
use ckpt_expectation::ExpectationError;

use crate::error::ServiceError;

/// The planner's rate-quantisation policy.
#[derive(Debug, Clone, PartialEq)]
pub enum RateBucketing {
    /// No quantisation: every distinct `f64` rate is its own bucket
    /// (keyed by bit pattern) and the effective rate is the requested one.
    Exact,
    /// Quantise onto a fixed ascending grid of rates: a request's bucket is
    /// the grid rate nearest in **log space**
    /// ([`nearest_rate_bucket`]); rates outside the grid clamp to its end
    /// buckets. Build one with [`RateBucketing::log_grid`] or
    /// [`RateBucketing::grid`].
    Grid(Vec<f64>),
}

impl RateBucketing {
    /// A logarithmic grid of `points` rates spanning
    /// `[lambda_min, lambda_max]` — the common sensitivity-sweep layout
    /// ([`log_lambda_grid`]).
    ///
    /// # Errors
    ///
    /// Forwards [`log_lambda_grid`]'s validation
    /// (positive finite bounds, `lambda_min < lambda_max`, `points ≥ 2`).
    pub fn log_grid(
        lambda_min: f64,
        lambda_max: f64,
        points: usize,
    ) -> Result<Self, ExpectationError> {
        Ok(RateBucketing::Grid(log_lambda_grid(lambda_min, lambda_max, points)?))
    }

    /// An explicit grid. Must be non-empty, strictly increasing and
    /// strictly positive (finite).
    ///
    /// # Errors
    ///
    /// [`ServiceError::EmptyGrid`] or [`ServiceError::UnsortedGrid`].
    pub fn grid(rates: Vec<f64>) -> Result<Self, ServiceError> {
        if rates.is_empty() {
            return Err(ServiceError::EmptyGrid);
        }
        let mut previous = 0.0;
        for (index, &rate) in rates.iter().enumerate() {
            if !rate.is_finite() || rate <= previous {
                return Err(ServiceError::UnsortedGrid { index });
            }
            previous = rate;
        }
        Ok(RateBucketing::Grid(rates))
    }

    /// Quantises a (validated, strictly positive finite) rate: the bucket's
    /// cache key and the effective rate the plan will be exactly optimal
    /// for.
    pub fn bucket(&self, lambda: f64) -> (u64, f64) {
        match self {
            RateBucketing::Exact => (lambda.to_bits(), lambda),
            RateBucketing::Grid(rates) => {
                let index = nearest_rate_bucket(rates, lambda);
                (index as u64, rates[index])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_by_bit_pattern() {
        let (key, eff) = RateBucketing::Exact.bucket(1e-4);
        assert_eq!(key, 1e-4f64.to_bits());
        assert_eq!(eff, 1e-4);
    }

    #[test]
    fn grid_quantises_and_clamps() {
        let bucketing = RateBucketing::grid(vec![1e-5, 1e-4, 1e-3]).expect("valid grid");
        assert_eq!(bucketing.bucket(1e-4), (1, 1e-4));
        // Log-space midpoint rounds to the nearer decade either side.
        assert_eq!(bucketing.bucket(2e-5), (0, 1e-5));
        assert_eq!(bucketing.bucket(5e-4), (2, 1e-3));
        // Out-of-range rates clamp to the end buckets.
        assert_eq!(bucketing.bucket(1e-9), (0, 1e-5));
        assert_eq!(bucketing.bucket(1.0), (2, 1e-3));
    }

    #[test]
    fn grid_validation() {
        assert_eq!(RateBucketing::grid(vec![]), Err(ServiceError::EmptyGrid));
        assert_eq!(
            RateBucketing::grid(vec![1e-4, 1e-4]),
            Err(ServiceError::UnsortedGrid { index: 1 })
        );
        assert_eq!(
            RateBucketing::grid(vec![0.0, 1e-4]),
            Err(ServiceError::UnsortedGrid { index: 0 })
        );
        assert!(RateBucketing::log_grid(1e-6, 1e-3, 13).is_ok());
        assert!(RateBucketing::log_grid(1e-3, 1e-6, 13).is_err());
    }
}

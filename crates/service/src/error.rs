//! Error type of the request-serving tier.

use std::error::Error;
use std::fmt;

use ckpt_core::ScheduleError;
use ckpt_expectation::ExpectationError;

/// Error returned when a request or a planner configuration is invalid.
///
/// Everything that can fail is rejected at *construction* time
/// ([`PlanInstance::new`](crate::PlanInstance::new),
/// [`PlanRequest::plan`](crate::PlanRequest::plan), the bucketing
/// constructors) — serving itself ([`Planner::serve_batch`](crate::Planner::serve_batch))
/// is infallible, which keeps the hot path free of per-request error
/// plumbing.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The chain's cost data failed the §2 model validation (non-positive
    /// weight, negative cost, non-finite parameter, …).
    Invalid(ExpectationError),
    /// [`PlanInstance::from_chain_instance`](crate::PlanInstance::from_chain_instance)
    /// was given an instance whose graph is not a linear chain, or whose
    /// cost data failed validation.
    Instance(ScheduleError),
    /// A re-plan's resume position does not satisfy `1 ≤ resume_from < n`.
    ResumeOutOfRange {
        /// Resume position supplied by the caller.
        resume_from: usize,
        /// Number of positions of the instance's order.
        len: usize,
    },
    /// A rate-bucketing grid was empty.
    EmptyGrid,
    /// A rate-bucketing grid was not strictly increasing and positive at
    /// the given index.
    UnsortedGrid {
        /// First index violating the strictly-increasing-positive invariant.
        index: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Invalid(err) => write!(f, "invalid chain data: {err}"),
            ServiceError::Instance(err) => write!(f, "invalid problem instance: {err}"),
            ServiceError::ResumeOutOfRange { resume_from, len } => {
                write!(f, "resume position {resume_from} must satisfy 1 <= resume_from < {len}")
            }
            ServiceError::EmptyGrid => write!(f, "rate-bucketing grid needs at least one bucket"),
            ServiceError::UnsortedGrid { index } => {
                write!(
                    f,
                    "rate-bucketing grid must be strictly increasing and positive (violated at index {index})"
                )
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Invalid(err) => Some(err),
            ServiceError::Instance(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ExpectationError> for ServiceError {
    fn from(err: ExpectationError) -> Self {
        ServiceError::Invalid(err)
    }
}

impl From<ScheduleError> for ServiceError {
    fn from(err: ScheduleError) -> Self {
        ServiceError::Instance(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err: ServiceError =
            ExpectationError::NonPositiveParameter { name: "lambda", value: 0.0 }.into();
        assert!(err.to_string().contains("lambda"));
        let err = ServiceError::ResumeOutOfRange { resume_from: 9, len: 4 };
        assert!(err.to_string().contains('9') && err.to_string().contains('4'));
        assert!(ServiceError::EmptyGrid.to_string().contains("grid"));
        assert!(ServiceError::UnsortedGrid { index: 3 }.to_string().contains('3'));
    }
}

//! Quickstart for the planner-as-a-service tier: a small fleet of
//! workflows asking for plans and re-plans through one [`Planner`].
//!
//! Run with `cargo run --example service_quickstart -p ckpt-service`.

use ckpt_service::{PlanInstance, PlanRequest, Planner, RateBucketing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planner quantising client rate estimates onto a log grid spanning
    // MTBFs from ~17 minutes to ~12 days, 13 buckets per the whole span.
    let mut planner = Planner::new(RateBucketing::log_grid(1e-6, 1e-3, 13)?);

    // Three workload shapes shared by the fleet (e.g. three pipeline
    // templates); each instance validates and fingerprints once.
    let shapes: Vec<PlanInstance> = [
        vec![400.0, 100.0, 900.0, 250.0, 650.0, 300.0],
        vec![1_200.0, 1_200.0, 1_200.0, 1_200.0],
        vec![150.0; 12],
    ]
    .into_iter()
    .map(|weights| {
        let n = weights.len();
        PlanInstance::new(30.0, &weights, &vec![60.0; n], &vec![45.0; n])
    })
    .collect::<Result<_, _>>()?;

    // A batch of fleet requests: fresh plans at slightly different rate
    // estimates (they coalesce per bucket), plus one mid-run re-plan after
    // a failure recovered at position 3.
    let mut batch = Vec::new();
    for (workflow, shape) in (0..8u64).map(|w| (w, &shapes[w as usize % shapes.len()])) {
        let estimate = 1e-4 * (1.0 + 0.03 * workflow as f64);
        batch.push(PlanRequest::plan(workflow, shape.clone(), estimate)?);
    }
    batch.push(PlanRequest::replan(8, shapes[0].clone(), 1e-4, 3)?);

    for response in planner.serve_batch(&batch) {
        println!(
            "workflow {:>2}  λ={:.2e} (served {:.2e})  E[T]={:>9.1}s  checkpoints after {:?}  [{:?}]",
            response.id,
            response.lambda,
            response.effective_lambda,
            response.expected_makespan,
            response.checkpoint_positions,
            response.source,
        );
    }

    let stats = planner.stats();
    println!(
        "served {} requests: {} cache hits, {} cold solves, {} sweep solves, {} re-plans \
         ({} orders, {} plans cached)",
        stats.requests,
        stats.cache_hits,
        stats.cold_solves,
        stats.sweep_solves,
        stats.suffix_replans,
        planner.cached_orders(),
        planner.cached_plans(),
    );
    Ok(())
}

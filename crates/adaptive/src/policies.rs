//! The four online checkpoint policies.
//!
//! All four implement [`ckpt_simulator::Policy`] and are driven by the
//! policy engine at every task boundary:
//!
//! * [`StaticPlan`] — replay a fixed offline placement (no adaptation; the
//!   paper's model, used both as the planning-rate baseline and, solved at
//!   the *true* rate, as the clairvoyant reference);
//! * [`PeriodicYoung`] — checkpoint whenever the accumulated uncheckpointed
//!   work reaches the Young period `√(2·C̄/λ_plan)` (the §7 divisible-load
//!   baseline transplanted to task boundaries);
//! * [`AdaptiveResolve`] — after **every** observed failure, update a
//!   Bayesian rate estimate (Gamma prior centred on the planning rate) and
//!   re-solve the remaining chain with Algorithm 1 on a fresh
//!   [`SegmentCostTable`](ckpt_expectation::segment_cost::SegmentCostTable)
//!   at the new estimate — a **suffix-only**
//!   [`ResumableDp::solve_suffix`] solve, since everything before the last
//!   durable checkpoint is already executed;
//! * [`RateLearning`] — maintain the pure maximum-likelihood rate from
//!   observed inter-failure times
//!   ([`OnlineExponentialMle`])
//!   and re-solve only when the estimate drifts past a configurable factor
//!   from the rate the current plan was solved at (fewer re-plans, no
//!   prior).
//!
//! With **no observed failures**, `AdaptiveResolve` and `RateLearning`
//! never re-plan and follow their initial full solve exactly — so on a
//! failure-free stream they reproduce the offline DP optimum bit for bit
//! (property-tested in the crate tests).

use ckpt_core::chain_dp::{scalable_placement_on_table, ResumableDp, TablePlacement};
use ckpt_expectation::approximations::young_period;
use ckpt_failure::fitting::OnlineExponentialMle;
use ckpt_simulator::{DecisionContext, Policy};

use crate::chain::ChainSpec;
use crate::error::AdaptiveError;

/// Solves the offline Algorithm 1 optimum of `spec` at `rate` — the plan
/// [`StaticPlan`] replays and the adaptive policies start from.
///
/// # Errors
///
/// Returns an [`AdaptiveError`] if `rate` is not strictly positive.
pub fn optimal_static_plan(spec: &ChainSpec, rate: f64) -> Result<TablePlacement, AdaptiveError> {
    let table = spec.sweep().table_for(rate)?;
    Ok(scalable_placement_on_table(&table))
}

/// Replays a fixed checkpoint placement, ignoring everything the execution
/// observes. `StaticPlan` of the offline optimum is the paper's §5 policy;
/// `StaticPlan` of the optimum **at the true rate** is the clairvoyant
/// reference the evaluation harness measures regret against.
#[derive(Debug, Clone)]
pub struct StaticPlan {
    checkpoint_after: Vec<bool>,
}

impl StaticPlan {
    /// A policy replaying per-position decisions (`checkpoint_after[i]` is
    /// whether to checkpoint right after position `i`; the engine forces the
    /// final checkpoint regardless).
    pub fn new(checkpoint_after: Vec<bool>) -> Self {
        StaticPlan { checkpoint_after }
    }

    /// A policy replaying a [`TablePlacement`] (e.g. the chain DP optimum).
    pub fn from_placement(placement: &TablePlacement) -> Self {
        StaticPlan { checkpoint_after: placement.checkpoint_after() }
    }
}

impl Policy for StaticPlan {
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
        self.checkpoint_after.get(ctx.position).copied().unwrap_or(false)
    }
}

/// Young-periodic checkpointing at task granularity: checkpoint after the
/// first task that pushes the uncheckpointed work to the period or beyond
/// (the same walk as `ckpt_core::heuristics::checkpoint_by_period`, applied
/// online so it also re-triggers during re-execution).
#[derive(Debug, Clone)]
pub struct PeriodicYoung {
    spec: ChainSpec,
    period: f64,
}

impl PeriodicYoung {
    /// The Young period `√(2·C̄/λ_plan)` of the chain's mean checkpoint cost
    /// at the planning rate.
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveError`] if the mean checkpoint cost is zero or
    /// the rate not strictly positive (the period is then undefined).
    pub fn new(spec: &ChainSpec, planning_rate: f64) -> Result<Self, AdaptiveError> {
        let period = young_period(spec.mean_checkpoint_cost(), planning_rate)?;
        PeriodicYoung::with_period(spec, period)
    }

    /// A fixed explicit period.
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveError`] if `period` is not strictly positive.
    pub fn with_period(spec: &ChainSpec, period: f64) -> Result<Self, AdaptiveError> {
        if !period.is_finite() || period <= 0.0 {
            return Err(AdaptiveError::NonPositiveParameter { name: "period", value: period });
        }
        Ok(PeriodicYoung { spec: spec.clone(), period })
    }

    /// The period the policy checkpoints at.
    pub fn period(&self) -> f64 {
        self.period
    }
}

impl Policy for PeriodicYoung {
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
        let start = ctx.resume_position();
        self.spec.work_between(start, ctx.position) >= self.period
    }
}

/// Failures observed so far, folded into a rate estimate with a Gamma prior
/// of `prior_strength` pseudo-failures centred on the planning rate: the
/// posterior-mean rate after `failures` observed failures over `clock`
/// seconds is `(k₀ + k) / (k₀/λ_plan + t)`. Shared by the chain policies
/// here and the DAG policies in [`crate::dag`].
pub(crate) fn posterior_rate(
    planning_rate: f64,
    prior_strength: f64,
    failures: usize,
    clock: f64,
) -> f64 {
    (prior_strength + failures as f64) / (prior_strength / planning_rate + clock)
}

/// Pseudo-failure weight of the planning-rate prior (the Gamma-conjugate
/// prior contributes `k₀` failures over `k₀/λ_plan` seconds of pseudo
/// exposure): one pseudo-failure keeps the very first observed failure from
/// yanking the plan arbitrarily far, while a genuinely misspecified rate
/// overtakes the prior within a handful of failures.
pub(crate) const DEFAULT_PRIOR_STRENGTH: f64 = 1.0;

/// Re-solves the remaining chain after **every** observed failure, at the
/// posterior-mean rate estimate (see the module docs). Decision lookups and
/// the plan walk are `O(1)`; each re-plan costs one `O(n)` table
/// instantiation plus a suffix-only Algorithm 1 solve.
#[derive(Debug, Clone)]
pub struct AdaptiveResolve {
    spec: ChainSpec,
    dp: ResumableDp,
    planning_rate: f64,
    prior_strength: f64,
    /// The rate the committed plan was solved at.
    plan_rate: f64,
    seen_failures: usize,
    replans: usize,
}

impl AdaptiveResolve {
    /// Plans `spec` at `planning_rate` (a full Algorithm 1 solve) and arms
    /// the re-planning machinery with the default prior strength.
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveError`] if `planning_rate` is not strictly
    /// positive.
    pub fn new(spec: &ChainSpec, planning_rate: f64) -> Result<Self, AdaptiveError> {
        let table = spec.sweep().table_for(planning_rate)?;
        let mut dp = ResumableDp::new();
        dp.solve(&table);
        Ok(AdaptiveResolve {
            spec: spec.clone(),
            dp,
            planning_rate,
            prior_strength: DEFAULT_PRIOR_STRENGTH,
            plan_rate: planning_rate,
            seen_failures: 0,
            replans: 0,
        })
    }

    /// Overrides the prior strength `k₀` (builder style): larger values
    /// trust the planning rate longer, `0 < k₀ ≪ 1` makes the estimate
    /// almost purely empirical after the first failure.
    pub fn with_prior_strength(mut self, prior_strength: f64) -> Self {
        assert!(
            prior_strength.is_finite() && prior_strength > 0.0,
            "prior strength must be strictly positive"
        );
        self.prior_strength = prior_strength;
        self
    }

    /// The rate the current committed plan was solved at.
    pub fn plan_rate(&self) -> f64 {
        self.plan_rate
    }

    /// Re-plans performed so far.
    pub fn replans(&self) -> usize {
        self.replans
    }
}

impl Policy for AdaptiveResolve {
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
        let start = ctx.resume_position();
        if ctx.failure_times.len() > self.seen_failures {
            self.seen_failures = ctx.failure_times.len();
            let estimate = posterior_rate(
                self.planning_rate,
                self.prior_strength,
                ctx.failure_times.len(),
                ctx.clock,
            );
            if let Ok(table) = self.spec.sweep().table_for(estimate) {
                self.dp.solve_suffix(&table, start);
                self.plan_rate = estimate;
                self.replans += 1;
                crate::stats::ADAPTIVE_RESOLVE_REPLANS.add(1);
            }
        }
        // `choice_at(start)` is the plan's next checkpoint for the suffix
        // the execution is in. Re-plans only happen at the first boundary
        // after a failure (where `position == start`), so the planned
        // position can never already be behind us; `<=` keeps the policy
        // safe (checkpoint at the earliest boundary) even if that invariant
        // is relaxed.
        self.dp.choice_at(start) <= ctx.position
    }
}

/// Re-solves the remaining chain only when the running maximum-likelihood
/// rate estimate drifts past a threshold factor from the rate the current
/// plan was solved at. The MLE is the pure `k / Σ gaps` from observed
/// inter-failure times — no prior — so the policy requires a minimum number
/// of observations before it trusts the estimate at all.
#[derive(Debug, Clone)]
pub struct RateLearning {
    spec: ChainSpec,
    dp: ResumableDp,
    mle: OnlineExponentialMle,
    /// Absolute time of the last failure folded into the MLE.
    last_failure_time: f64,
    plan_rate: f64,
    min_failures: u64,
    drift_factor: f64,
    seen_failures: usize,
    replans: usize,
}

/// Observations required before the MLE may override the planning rate.
const DEFAULT_MIN_FAILURES: u64 = 3;
/// Relative drift (either direction) that triggers a re-plan.
const DEFAULT_DRIFT_FACTOR: f64 = 1.5;

impl RateLearning {
    /// Plans `spec` at `planning_rate` and arms the estimator with the
    /// default thresholds (3 observed failures, 1.5× drift).
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveError`] if `planning_rate` is not strictly
    /// positive.
    pub fn new(spec: &ChainSpec, planning_rate: f64) -> Result<Self, AdaptiveError> {
        let table = spec.sweep().table_for(planning_rate)?;
        let mut dp = ResumableDp::new();
        dp.solve(&table);
        Ok(RateLearning {
            spec: spec.clone(),
            dp,
            mle: OnlineExponentialMle::new(),
            last_failure_time: 0.0,
            plan_rate: planning_rate,
            min_failures: DEFAULT_MIN_FAILURES,
            drift_factor: DEFAULT_DRIFT_FACTOR,
            seen_failures: 0,
            replans: 0,
        })
    }

    /// Overrides the re-plan thresholds (builder style): re-plan once at
    /// least `min_failures` inter-failure times are observed **and** the MLE
    /// is at least `drift_factor` away (in either direction) from the
    /// current plan's rate.
    pub fn with_thresholds(mut self, min_failures: u64, drift_factor: f64) -> Self {
        assert!(
            drift_factor.is_finite() && drift_factor >= 1.0,
            "the drift factor is a ratio and must be >= 1"
        );
        self.min_failures = min_failures.max(1);
        self.drift_factor = drift_factor;
        self
    }

    /// The rate the current committed plan was solved at.
    pub fn plan_rate(&self) -> f64 {
        self.plan_rate
    }

    /// Re-plans performed so far.
    pub fn replans(&self) -> usize {
        self.replans
    }
}

impl Policy for RateLearning {
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> bool {
        let start = ctx.resume_position();
        if ctx.failure_times.len() > self.seen_failures {
            for &t in &ctx.failure_times[self.seen_failures..] {
                self.mle.observe(t - self.last_failure_time);
                self.last_failure_time = t;
            }
            self.seen_failures = ctx.failure_times.len();
            if self.mle.count() >= self.min_failures {
                if let Some(estimate) = self.mle.rate() {
                    let drift = (estimate / self.plan_rate).max(self.plan_rate / estimate);
                    if drift >= self.drift_factor {
                        if let Ok(table) = self.spec.sweep().table_for(estimate) {
                            self.dp.solve_suffix(&table, start);
                            self.plan_rate = estimate;
                            self.replans += 1;
                            crate::stats::RATE_LEARNING_REPLANS.add(1);
                        }
                    }
                }
            }
        }
        self.dp.choice_at(start) <= ctx.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_simulator::stream::{NoFailureStream, ScriptedStream};
    use ckpt_simulator::{simulate_policy, simulate_policy_with_log, ExecutionEvent};

    fn spec() -> ChainSpec {
        ChainSpec::new(
            &[400.0, 100.0, 900.0, 250.0, 650.0, 300.0],
            &[60.0; 6],
            &[60.0; 6],
            30.0,
            30.0,
        )
        .unwrap()
    }

    /// The checkpoint positions a policy actually takes on a given stream.
    fn checkpoints_taken<P: Policy>(
        spec: &ChainSpec,
        policy: &mut P,
        stream: &mut dyn ckpt_simulator::FailureStream,
    ) -> Vec<usize> {
        let logged = simulate_policy_with_log(
            spec.tasks(),
            spec.initial_recovery(),
            spec.downtime(),
            policy,
            stream,
        )
        .unwrap();
        logged
            .events
            .iter()
            .filter_map(|e| match *e {
                ExecutionEvent::SegmentCompleted { segment, .. } => Some(segment),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn static_plan_replays_its_placement() {
        let spec = spec();
        let placement = optimal_static_plan(&spec, 1e-4).unwrap();
        let mut policy = StaticPlan::from_placement(&placement);
        let mut stream = NoFailureStream;
        let taken = checkpoints_taken(&spec, &mut policy, &mut stream);
        assert_eq!(taken, placement.checkpoint_positions);
    }

    #[test]
    fn periodic_young_triggers_on_accumulated_work() {
        let spec = spec();
        let mut policy = PeriodicYoung::with_period(&spec, 1_000.0).unwrap();
        assert_eq!(policy.period(), 1_000.0);
        let mut stream = NoFailureStream;
        let taken = checkpoints_taken(&spec, &mut policy, &mut stream);
        // Work prefix: 400, 500, 1400 (>= 1000 -> ckpt), 250, 900, 1200
        // (>= 1000 -> ckpt); final forced.
        assert_eq!(taken, vec![2, 5]);
        assert!(PeriodicYoung::with_period(&spec, 0.0).is_err());
        // Zero mean checkpoint cost has no Young period.
        let free = ChainSpec::new(&[100.0; 3], &[0.0; 3], &[0.0; 3], 0.0, 0.0).unwrap();
        assert!(PeriodicYoung::new(&free, 1e-4).is_err());
    }

    #[test]
    fn adaptive_resolve_without_failures_is_the_static_optimum() {
        let spec = spec();
        let placement = optimal_static_plan(&spec, 1e-4).unwrap();
        let mut policy = AdaptiveResolve::new(&spec, 1e-4).unwrap();
        let mut stream = NoFailureStream;
        let taken = checkpoints_taken(&spec, &mut policy, &mut stream);
        assert_eq!(taken, placement.checkpoint_positions);
        assert_eq!(policy.replans(), 0);
        assert_eq!(policy.plan_rate(), 1e-4);
    }

    #[test]
    fn adaptive_resolve_replans_on_failures() {
        let spec = spec();
        // A nearly uninformative prior: the posterior is dominated by the
        // three observed failures, far above the optimistic planning rate.
        let mut policy = AdaptiveResolve::new(&spec, 1e-6).unwrap().with_prior_strength(0.01);
        let mut stream = ScriptedStream::new(vec![200.0, 700.0, 1_400.0]);
        let outcome = simulate_policy(
            spec.tasks(),
            spec.initial_recovery(),
            spec.downtime(),
            &mut policy,
            &mut stream,
        )
        .unwrap();
        assert_eq!(outcome.record.failures, 3);
        assert_eq!(policy.replans(), 3);
        assert!(policy.plan_rate() > 1e-6, "posterior must move above the prior");
        // With the rate revised sharply upwards mid-run, the policy
        // checkpoints more than the one mandatory final time.
        assert!(outcome.checkpoints > 1, "checkpoints: {}", outcome.checkpoints);
    }

    #[test]
    fn rate_learning_replans_only_past_the_drift_threshold() {
        let spec = spec();
        let mut policy = RateLearning::new(&spec, 1e-3).unwrap().with_thresholds(2, 1.5);
        // Two failures 200 s apart: the MLE jumps to 2/400 = 5e-3, a 5×
        // drift above the planning rate — past the 1.5× threshold, so the
        // policy re-plans (once: both gaps arrive before the next decision).
        let mut stream = ScriptedStream::new(vec![200.0, 400.0]);
        let _ = simulate_policy(
            spec.tasks(),
            spec.initial_recovery(),
            spec.downtime(),
            &mut policy,
            &mut stream,
        )
        .unwrap();
        assert_eq!(policy.replans(), 1);
        assert!(policy.plan_rate() > 1e-3, "the MLE revised the rate upwards");
    }

    #[test]
    fn rate_learning_below_min_failures_keeps_the_plan() {
        let spec = spec();
        let mut policy = RateLearning::new(&spec, 1e-4).unwrap().with_thresholds(5, 1.1);
        let mut stream = ScriptedStream::new(vec![300.0, 900.0]);
        let _ = simulate_policy(
            spec.tasks(),
            spec.initial_recovery(),
            spec.downtime(),
            &mut policy,
            &mut stream,
        )
        .unwrap();
        assert_eq!(policy.replans(), 0);
        assert_eq!(policy.plan_rate(), 1e-4);
    }

    #[test]
    fn builders_validate() {
        let spec = spec();
        assert!(optimal_static_plan(&spec, 0.0).is_err());
        assert!(AdaptiveResolve::new(&spec, -1.0).is_err());
        assert!(RateLearning::new(&spec, f64::NAN).is_err());
    }
}

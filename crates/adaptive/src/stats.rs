//! Process-wide adaptive-policy counters (telemetry).
//!
//! The online policies already track their own per-instance `replans()`
//! counts; these [`StaticCounter`]s aggregate the same signals across
//! **every** policy instance in the process, so a Monte-Carlo sweep or the
//! planner service can report how much mid-run re-planning actually
//! happened without threading a registry through every policy
//! constructor. Counters are relaxed atomics: recording never perturbs
//! policy decisions, and snapshot deltas around a deterministic run are
//! themselves deterministic (single-threaded) or exact totals
//! (multi-threaded).

use ckpt_telemetry::{MetricsRegistry, StaticCounter};

/// Suffix re-solves performed by [`AdaptiveResolve`](crate::AdaptiveResolve)
/// (Bayesian posterior moved the rate estimate).
pub static ADAPTIVE_RESOLVE_REPLANS: StaticCounter = StaticCounter::new();

/// Suffix re-solves performed by [`RateLearning`](crate::RateLearning)
/// (MLE drifted past the threshold).
pub static RATE_LEARNING_REPLANS: StaticCounter = StaticCounter::new();

/// DAG re-linearisations performed by
/// [`DagRelinearise`](crate::DagRelinearise) after a failure.
pub static DAG_RELINEARISATIONS: StaticCounter = StaticCounter::new();

/// A point-in-time copy of the adaptive counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStatsSnapshot {
    /// [`ADAPTIVE_RESOLVE_REPLANS`] at snapshot time.
    pub adaptive_resolve_replans: u64,
    /// [`RATE_LEARNING_REPLANS`] at snapshot time.
    pub rate_learning_replans: u64,
    /// [`DAG_RELINEARISATIONS`] at snapshot time.
    pub dag_relinearisations: u64,
}

impl AdaptiveStatsSnapshot {
    /// The counter increments between `earlier` and `self` (saturating).
    pub fn since(&self, earlier: &AdaptiveStatsSnapshot) -> AdaptiveStatsSnapshot {
        AdaptiveStatsSnapshot {
            adaptive_resolve_replans: self
                .adaptive_resolve_replans
                .saturating_sub(earlier.adaptive_resolve_replans),
            rate_learning_replans: self
                .rate_learning_replans
                .saturating_sub(earlier.rate_learning_replans),
            dag_relinearisations: self
                .dag_relinearisations
                .saturating_sub(earlier.dag_relinearisations),
        }
    }

    /// Adds the snapshot to `metrics` under the `policy_*_total` names.
    pub fn record_into(&self, metrics: &mut MetricsRegistry) {
        metrics.counter_add("policy_adaptive_resolve_replans_total", self.adaptive_resolve_replans);
        metrics.counter_add("policy_rate_learning_replans_total", self.rate_learning_replans);
        metrics.counter_add("policy_dag_relinearisations_total", self.dag_relinearisations);
    }
}

/// Reads all adaptive counters at once.
pub fn snapshot() -> AdaptiveStatsSnapshot {
    AdaptiveStatsSnapshot {
        adaptive_resolve_replans: ADAPTIVE_RESOLVE_REPLANS.get(),
        rate_learning_replans: RATE_LEARNING_REPLANS.get(),
        dag_relinearisations: DAG_RELINEARISATIONS.get(),
    }
}

/// Resets all adaptive counters to zero (test isolation).
pub fn reset() {
    ADAPTIVE_RESOLVE_REPLANS.reset();
    RATE_LEARNING_REPLANS.reset();
    DAG_RELINEARISATIONS.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_registry_export() {
        let before = snapshot();
        ADAPTIVE_RESOLVE_REPLANS.add(2);
        RATE_LEARNING_REPLANS.add(1);
        let delta = snapshot().since(&before);
        assert_eq!(delta.adaptive_resolve_replans, 2);
        assert_eq!(delta.rate_learning_replans, 1);
        assert_eq!(delta.dag_relinearisations, 0);
        let mut metrics = MetricsRegistry::new();
        delta.record_into(&mut metrics);
        assert_eq!(metrics.counter("policy_adaptive_resolve_replans_total"), 2);
        assert_eq!(metrics.counter("policy_rate_learning_replans_total"), 1);
    }
}

//! Error type of the online-scheduling subsystem.

use std::error::Error;
use std::fmt;

use ckpt_core::ScheduleError;
use ckpt_expectation::ExpectationError;
use ckpt_failure::FailureModelError;
use ckpt_simulator::SimulationError;

/// Error returned by policy construction and the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveError {
    /// Online policies execute linear chains; the instance graph is not one.
    NotAChain,
    /// A numeric parameter must be strictly positive and finite.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A trace-replay evaluation produced a trial whose makespan exceeded
    /// the generated trace horizon: its tail ran spuriously failure-free,
    /// so the comparison would be silently optimistic. Use a less extreme
    /// truth (or a shorter chain) — the harness generates traces covering
    /// 64× the failure-free makespan.
    TraceHorizonExceeded {
        /// The generated trace horizon.
        horizon: f64,
        /// The worst offending trial's makespan.
        makespan: f64,
        /// How many of the run's trials outran the horizon — surfaced so
        /// harness robustness is observable (the experiment binaries report
        /// this count in their `--json` summaries instead of only dying).
        trials: usize,
    },
    /// A scheduling-layer error (instance or plan construction).
    Schedule(ScheduleError),
    /// An expectation-layer error (cost-table construction).
    Expectation(ExpectationError),
    /// A failure-model error (truth-model construction).
    FailureModel(FailureModelError),
    /// A simulation error (policy Monte-Carlo runs).
    Simulation(SimulationError),
}

impl fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptiveError::NotAChain => {
                write!(f, "online policies execute linear chains; the instance graph is not one")
            }
            AdaptiveError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be strictly positive, got {value}")
            }
            AdaptiveError::TraceHorizonExceeded { horizon, makespan, trials } => write!(
                f,
                "{trials} trial(s) exceeded the generated trace horizon ({horizon}, worst \
                 makespan {makespan}): their tails would have run spuriously failure-free"
            ),
            AdaptiveError::Schedule(e) => write!(f, "scheduling error: {e}"),
            AdaptiveError::Expectation(e) => write!(f, "expectation error: {e}"),
            AdaptiveError::FailureModel(e) => write!(f, "failure-model error: {e}"),
            AdaptiveError::Simulation(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for AdaptiveError {}

impl From<ScheduleError> for AdaptiveError {
    fn from(err: ScheduleError) -> Self {
        AdaptiveError::Schedule(err)
    }
}

impl From<ExpectationError> for AdaptiveError {
    fn from(err: ExpectationError) -> Self {
        AdaptiveError::Expectation(err)
    }
}

impl From<FailureModelError> for AdaptiveError {
    fn from(err: FailureModelError) -> Self {
        AdaptiveError::FailureModel(err)
    }
}

impl From<SimulationError> for AdaptiveError {
    fn from(err: SimulationError) -> Self {
        AdaptiveError::Simulation(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(AdaptiveError::NotAChain.to_string().contains("chain"));
        let e = AdaptiveError::NonPositiveParameter { name: "lambda", value: 0.0 };
        assert!(e.to_string().contains("lambda"));
        let wrapped: AdaptiveError = ScheduleError::EmptyInstance.into();
        assert!(wrapped.to_string().contains("scheduling"));
        let wrapped: AdaptiveError = SimulationError::EmptySchedule.into();
        assert!(wrapped.to_string().contains("simulation"));
    }
}

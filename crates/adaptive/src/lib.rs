//! Online checkpoint policies: observe failures, re-plan mid-execution.
//!
//! The source paper computes checkpoint schedules **once, offline**, from a
//! perfectly known Exponential failure rate. This crate closes the loop for
//! the realistic regime where the planning rate is wrong or the failure law
//! is not Exponential at all:
//!
//! * a [`ChainSpec`] carries one linear chain in both the simulator's and
//!   the planner's representation, so a policy can instantiate the chain's
//!   exp-free cost table at **any** rate estimate in `O(n)`;
//! * four [`policies`] implement the simulator's
//!   [`Policy`](ckpt_simulator::Policy) trait — [`StaticPlan`] (replay the
//!   offline optimum), [`PeriodicYoung`] (the §7 baseline),
//!   [`AdaptiveResolve`] (Bayesian rate update + suffix-only Algorithm 1
//!   re-solve after every failure) and [`RateLearning`] (running MLE from
//!   inter-failure times, re-plan on drift);
//! * the [`harness`] Monte-Carlo-compares all of them under misspecified
//!   truths (wrong rate, Weibull platform, trace replay) against the
//!   clairvoyant offline optimum, deterministically at any thread count;
//! * the [`dag`] module is the **DAG execution tier**: policies over
//!   linearised DAGs that may also **re-linearise the remaining graph**
//!   after a failure ([`DagRelinearise`]: suffix-subgraph extraction +
//!   bounded-budget seeded order search), with their own regret harness
//!   ([`compare_dag_policies`]).
//!
//! # Example
//!
//! A platform failing 8× more often than the plan assumed: the adaptive
//! policy observes the failures, revises its rate estimate and re-solves
//! the remaining chain, beating the stale static plan.
//!
//! ```
//! use ckpt_adaptive::harness::{compare_policies, EvaluationConfig, TruthModel};
//! use ckpt_adaptive::ChainSpec;
//!
//! let spec = ChainSpec::new(
//!     &[600.0; 24],  // task weights
//!     &[45.0; 24],   // checkpoint costs
//!     &[70.0; 24],   // recovery costs
//!     30.0,          // initial recovery R0
//!     15.0,          // downtime D
//! )?;
//! let planning_rate = 1.0 / 40_000.0;
//! let truth = TruthModel::Exponential { lambda: 8.0 / 40_000.0 };
//! let config = EvaluationConfig { trials: 300, seed: 42, threads: 1 };
//! let cmp = compare_policies(&spec, planning_rate, &truth, &config)?;
//! assert!(
//!     cmp.row("adaptive-resolve").mean_makespan < cmp.row("static-plan").mean_makespan
//! );
//! # Ok::<(), ckpt_adaptive::AdaptiveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chain;
pub mod dag;
pub mod error;
pub mod harness;
pub mod policies;
pub mod stats;

pub use chain::ChainSpec;
pub use dag::{
    compare_dag_policies, optimal_static_dag_plan, DagAdaptiveResolve, DagPlan,
    DagPolicyComparison, DagPolicyResult, DagRelinearise, DagSpec, DagStaticPlan,
};
pub use error::AdaptiveError;
pub use harness::{compare_policies, EvaluationConfig, PolicyComparison, PolicyResult, TruthModel};
pub use policies::{optimal_static_plan, AdaptiveResolve, PeriodicYoung, RateLearning, StaticPlan};

#[cfg(test)]
mod proptests {
    use super::*;
    use ckpt_failure::{Pcg64, RandomSource};
    use ckpt_simulator::stream::NoFailureStream;
    use ckpt_simulator::{simulate_policy_with_log, ExecutionEvent};
    use proptest::prelude::*;

    /// A deterministic pseudo-random heterogeneous chain spec.
    fn random_spec(seed: u64, n: usize) -> ChainSpec {
        let mut rng = Pcg64::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n).map(|_| 50.0 + rng.next_f64() * 1_500.0).collect();
        let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * 200.0).collect();
        let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * 200.0).collect();
        ChainSpec::new(&weights, &ckpt, &rec, rng.next_f64() * 60.0, rng.next_f64() * 30.0).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The satellite acceptance property: with **no observed failures**,
        /// `AdaptiveResolve` never re-plans and reproduces the offline DP
        /// optimum exactly — same checkpoint positions, same makespan, on
        /// any chain and at any planning rate.
        #[test]
        fn prop_adaptive_resolve_without_failures_is_the_dp_plan(
            seed in any::<u64>(),
            n in 1usize..40,
            rate_exp in -7.0f64..-2.5,
        ) {
            let spec = random_spec(seed, n);
            let rate = 10f64.powf(rate_exp);
            let placement = optimal_static_plan(&spec, rate).unwrap();

            let mut policy = AdaptiveResolve::new(&spec, rate).unwrap();
            let mut stream = NoFailureStream;
            let logged = simulate_policy_with_log(
                spec.tasks(),
                spec.initial_recovery(),
                spec.downtime(),
                &mut policy,
                &mut stream,
            )
            .unwrap();
            let taken: Vec<usize> = logged
                .events
                .iter()
                .filter_map(|e| match *e {
                    ExecutionEvent::SegmentCompleted { segment, .. } => Some(segment),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(&taken, &placement.checkpoint_positions);
            prop_assert_eq!(policy.replans(), 0);

            // Bitwise the same execution as replaying the DP plan statically.
            let mut static_policy = StaticPlan::from_placement(&placement);
            let static_run = simulate_policy_with_log(
                spec.tasks(),
                spec.initial_recovery(),
                spec.downtime(),
                &mut static_policy,
                &mut NoFailureStream,
            )
            .unwrap();
            prop_assert_eq!(logged.outcome.record, static_run.outcome.record);
        }

        /// Policy-driven Monte-Carlo outcomes are bit-identical across
        /// 1/2/3/8 worker threads for every policy (the other satellite
        /// acceptance property).
        #[test]
        fn prop_policy_monte_carlo_is_thread_count_invariant(
            seed in any::<u64>(),
            n in 2usize..24,
        ) {
            let spec = random_spec(seed, n);
            let planning = 1.0 / 10_000.0;
            let truth = TruthModel::Exponential { lambda: 1.0 / 2_500.0 };
            let base = EvaluationConfig { trials: 64, seed, threads: 1 };
            let single = compare_policies(&spec, planning, &truth, &base).unwrap();
            for threads in [2usize, 3, 8] {
                let config = EvaluationConfig { threads, ..base };
                let multi = compare_policies(&spec, planning, &truth, &config).unwrap();
                prop_assert_eq!(&single, &multi);
            }
        }
    }
}

//! The positional chain data every online policy plans against.

use std::sync::Arc;

use ckpt_core::ProblemInstance;
use ckpt_dag::properties;
use ckpt_expectation::sweep::LambdaSweep;
use ckpt_simulator::ChainTask;

use crate::error::AdaptiveError;

/// One linear chain in both representations the online subsystem needs:
///
/// * **simulator form** — a [`ChainTask`] per position (work, the cost of
///   checkpointing after it, the cost of recovering *from* that checkpoint)
///   plus the initial recovery `R₀` and the downtime `D`, consumed by
///   [`ckpt_simulator::simulate_policy`];
/// * **planner form** — a [`LambdaSweep`] over the same positions in the
///   protecting-recovery convention of
///   [`SegmentCostTable`](ckpt_expectation::segment_cost::SegmentCostTable)
///   (position `x` protected by the recovery of position `x − 1`, `R₀` at
///   `x = 0`), so a policy can instantiate the chain's cost table **at any
///   failure-rate estimate** without re-validating or re-copying the
///   λ-independent data — that is what makes mid-execution re-plans cheap.
///
/// Built once per chain ([`ChainSpec::from_instance`] or
/// [`ChainSpec::new`]) and shared by every policy and every Monte-Carlo
/// trial (cloning shares the heavy vectors by `Arc`).
#[derive(Debug, Clone)]
pub struct ChainSpec {
    tasks: Arc<Vec<ChainTask>>,
    /// `prefix[k] = w_0 + … + w_{k−1}` (`n + 1` values).
    prefix: Arc<Vec<f64>>,
    mean_checkpoint_cost: f64,
    initial_recovery: f64,
    downtime: f64,
    sweep: LambdaSweep,
}

impl ChainSpec {
    /// Builds the spec from per-position data: `weights[i]` is the work of
    /// the task at position `i`, `checkpoints[i]` the cost of checkpointing
    /// right after it, and `recoveries[i]` the cost of recovering **from
    /// that task's checkpoint**.
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveError`] if any weight is not strictly positive,
    /// any cost is negative, or `downtime`/`initial_recovery` is negative.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or are empty (a
    /// programming error, not a data error).
    pub fn new(
        weights: &[f64],
        checkpoints: &[f64],
        recoveries: &[f64],
        initial_recovery: f64,
        downtime: f64,
    ) -> Result<Self, AdaptiveError> {
        let n = weights.len();
        assert!(n > 0, "the chain needs at least one task");
        assert_eq!(checkpoints.len(), n, "one checkpoint cost per task");
        assert_eq!(recoveries.len(), n, "one recovery cost per task");
        if !initial_recovery.is_finite() || initial_recovery < 0.0 {
            return Err(AdaptiveError::NonPositiveParameter {
                name: "initial_recovery",
                value: initial_recovery,
            });
        }

        let tasks: Vec<ChainTask> = (0..n)
            .map(|i| ChainTask::new(weights[i], checkpoints[i], recoveries[i]))
            .collect::<Result<_, _>>()?;

        // Protecting-recovery convention for the planner: position 0 is
        // protected by R₀, position x > 0 by the recovery of position x − 1.
        let mut protecting = Vec::with_capacity(n);
        protecting.push(initial_recovery);
        protecting.extend(recoveries.iter().take(n - 1).copied());
        let sweep = LambdaSweep::new(downtime, weights, checkpoints, &protecting)?;

        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for &w in weights {
            prefix.push(prefix[prefix.len() - 1] + w);
        }
        let mean_checkpoint_cost = checkpoints.iter().sum::<f64>() / n as f64;

        Ok(ChainSpec {
            tasks: Arc::new(tasks),
            prefix: Arc::new(prefix),
            mean_checkpoint_cost,
            initial_recovery,
            downtime,
            sweep,
        })
    }

    /// Builds the spec from a chain-shaped [`ProblemInstance`] (the offline
    /// planners' input type), so online policies plan against exactly the
    /// same costs as `ckpt_core::chain_dp`.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptiveError::NotAChain`] if the instance graph is not a
    /// linear chain.
    pub fn from_instance(instance: &ProblemInstance) -> Result<Self, AdaptiveError> {
        let order = properties::as_chain(instance.graph()).ok_or(AdaptiveError::NotAChain)?;
        let weights: Vec<f64> = order.iter().map(|&t| instance.weight(t)).collect();
        let checkpoints: Vec<f64> = order.iter().map(|&t| instance.checkpoint_cost(t)).collect();
        let recoveries: Vec<f64> = order.iter().map(|&t| instance.recovery_cost(t)).collect();
        ChainSpec::new(
            &weights,
            &checkpoints,
            &recoveries,
            instance.initial_recovery(),
            instance.downtime(),
        )
    }

    /// The number of tasks in the chain.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the chain is empty (never true: construction requires at
    /// least one task).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The simulator view of the chain.
    pub fn tasks(&self) -> &[ChainTask] {
        &self.tasks
    }

    /// The initial recovery `R₀`.
    pub fn initial_recovery(&self) -> f64 {
        self.initial_recovery
    }

    /// The downtime `D`.
    pub fn downtime(&self) -> f64 {
        self.downtime
    }

    /// The total work of the chain.
    pub fn total_work(&self) -> f64 {
        *self.prefix.last().expect("prefix always has n + 1 entries")
    }

    /// The work of positions `start..=end` (prefix-sum difference).
    pub fn work_between(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.len());
        self.prefix[end + 1] - self.prefix[start]
    }

    /// The mean per-task checkpoint cost (what the Young baseline's period
    /// is computed from).
    pub fn mean_checkpoint_cost(&self) -> f64 {
        self.mean_checkpoint_cost
    }

    /// The planner view: the chain's λ-batched cost tables.
    pub fn sweep(&self) -> &LambdaSweep {
        &self.sweep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::generators;

    fn instance() -> ProblemInstance {
        let graph = generators::chain(&[400.0, 100.0, 900.0, 250.0]).unwrap();
        ProblemInstance::builder(graph)
            .checkpoint_costs(vec![60.0, 10.0, 45.0, 30.0])
            .recovery_costs(vec![15.0, 60.0, 20.0, 10.0])
            .initial_recovery(25.0)
            .downtime(30.0)
            .platform_lambda(1e-4)
            .build()
            .unwrap()
    }

    #[test]
    fn from_instance_carries_both_views() {
        let spec = ChainSpec::from_instance(&instance()).unwrap();
        assert_eq!(spec.len(), 4);
        assert!(!spec.is_empty());
        assert_eq!(spec.tasks()[2].work(), 900.0);
        assert_eq!(spec.tasks()[2].checkpoint(), 45.0);
        assert_eq!(spec.tasks()[2].recovery(), 20.0);
        assert_eq!(spec.initial_recovery(), 25.0);
        assert_eq!(spec.downtime(), 30.0);
        assert_eq!(spec.total_work(), 1650.0);
        assert_eq!(spec.work_between(1, 2), 1000.0);
        assert!((spec.mean_checkpoint_cost() - 36.25).abs() < 1e-12);
        // The planner view agrees with the core evaluator's table.
        let table = spec.sweep().table_for(1e-4).unwrap();
        let inst = instance();
        let order = properties::as_chain(inst.graph()).unwrap();
        let core_table = ckpt_core::evaluate::segment_cost_table(&inst, &order).unwrap();
        for x in 0..4 {
            for j in x..4 {
                assert_eq!(table.cost(x, j), core_table.cost(x, j), "cost({x}, {j})");
            }
        }
    }

    #[test]
    fn rejects_non_chain_instances_and_bad_parameters() {
        let graph = generators::independent(&[1.0, 2.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        assert!(matches!(ChainSpec::from_instance(&inst), Err(AdaptiveError::NotAChain)));
        assert!(ChainSpec::new(&[1.0], &[0.0], &[0.0], -1.0, 0.0).is_err());
        assert!(ChainSpec::new(&[0.0], &[0.0], &[0.0], 0.0, 0.0).is_err());
        assert!(ChainSpec::new(&[1.0], &[0.0], &[0.0], 0.0, -1.0).is_err());
    }
}

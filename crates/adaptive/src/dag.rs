//! The DAG execution tier of the online subsystem: policies that
//! re-linearise the remaining graph after failures.
//!
//! PR 4's chain policies re-plan checkpoint *placement* online but keep the
//! execution order frozen — for a chain there is nothing else to decide.
//! General DAGs have a whole order space, and when the failure rate turns
//! out misspecified, the stale order is wrong together with the stale
//! placement: the tasks worth putting at segment boundaries (cheap
//! checkpoints, small live sets) change with the checkpoint density. The
//! policies here close that loop on top of
//! [`ckpt_simulator::simulate_dag_policy`]:
//!
//! * [`DagStaticPlan`] — replay a fixed offline plan (order + placement);
//!   solved at the *true* rate it is the clairvoyant regret reference;
//! * [`DagAdaptiveResolve`] — after every observed failure, update the
//!   Gamma-posterior rate estimate and re-solve the checkpoint placement of
//!   the **remaining suffix on the current order**
//!   ([`ResumableDp::solve_suffix`]); the order itself never changes;
//! * [`DagRelinearise`] — additionally extract the **remaining graph**
//!   ([`ckpt_dag::subgraph::suffix_subgraph`]: surviving tasks, induced
//!   edges, live-set seed) and run a bounded-budget
//!   [`order_search`](ckpt_core::order_search) restart over it, seeded with
//!   the incumbent suffix order — the chosen order is never worse, under
//!   the planning model at the posterior rate, than keeping the current one
//!   — then splice the winner back and re-solve the placement.
//!
//! Execution semantics: the simulator charges each task its **own**
//! checkpoint/recovery cost (the paper's §2 baseline, exactly what
//! [`Schedule::to_segments`](ckpt_core::Schedule) replays). The §6
//! live-set models remain available as *planning objectives*
//! ([`DagSpec::new`] takes the [`CheckpointCostModel`]), mirroring the
//! offline `expected_makespan` / `expected_makespan_under_model` split; the
//! suffix re-linearisation then also ignores the frontier's live-set seed
//! contribution (exposed by `suffix_subgraph` for future refinement).
//!
//! [`compare_dag_policies`] is the misspecified-truth regret harness
//! (paired per-trial streams, deterministic at any thread count) and
//! experiment `e12_dag_adaptive` asserts the headline claims.

use std::sync::Arc;

use ckpt_core::chain_dp::ResumableDp;
use ckpt_core::cost_model::CheckpointCostModel;
use ckpt_core::order_search::{
    default_start_strategies, schedule_dag_search, search_from_starts, OrderSearchConfig,
    SeededSearchOutcome,
};
use ckpt_core::ProblemInstance;
use ckpt_dag::subgraph::{suffix_subgraph, SuffixSubgraph};
use ckpt_dag::{linearize, topo, TaskId};
use ckpt_expectation::sweep::LambdaSweep;
use ckpt_simulator::{
    ChainTask, DagDecision, DagDecisionContext, DagPolicy, DagPolicyMonteCarloOutcome,
};

use crate::error::AdaptiveError;
use crate::harness::{EvaluationConfig, TruthModel};
use crate::policies::{posterior_rate, DEFAULT_PRIOR_STRENGTH};

/// One DAG instance in both representations the online subsystem needs:
/// the planner's [`ProblemInstance`] (graph, per-task costs, planning
/// objective) and the simulator's per-task [`ChainTask`] view (indexed by
/// task id; execution orders index into it). Cloning shares the heavy data
/// by `Arc`.
#[derive(Debug, Clone)]
pub struct DagSpec {
    instance: Arc<ProblemInstance>,
    model: CheckpointCostModel,
    tasks: Arc<Vec<ChainTask>>,
    mean_checkpoint_cost: f64,
}

impl DagSpec {
    /// Builds the spec from a planner instance and the cost model every
    /// policy of this spec plans under.
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveError`] if the instance is empty or a task's
    /// parameters do not form a valid simulator task (cannot occur for
    /// instances built through [`ProblemInstance::builder`]).
    pub fn new(
        instance: ProblemInstance,
        model: CheckpointCostModel,
    ) -> Result<Self, AdaptiveError> {
        if instance.task_count() == 0 {
            return Err(ckpt_core::ScheduleError::EmptyInstance.into());
        }
        let tasks: Vec<ChainTask> = instance
            .graph()
            .task_ids()
            .map(|t| {
                ChainTask::new(
                    instance.weight(t),
                    instance.checkpoint_cost(t),
                    instance.recovery_cost(t),
                )
            })
            .collect::<Result<_, _>>()?;
        let mean_checkpoint_cost =
            instance.checkpoint_costs().iter().sum::<f64>() / instance.task_count() as f64;
        Ok(DagSpec {
            instance: Arc::new(instance),
            model,
            tasks: Arc::new(tasks),
            mean_checkpoint_cost,
        })
    }

    /// The planner view of the DAG.
    pub fn instance(&self) -> &ProblemInstance {
        &self.instance
    }

    /// The cost model the policies plan under.
    pub fn model(&self) -> CheckpointCostModel {
        self.model
    }

    /// The simulator view: one [`ChainTask`] per task id.
    pub fn tasks(&self) -> &[ChainTask] {
        &self.tasks
    }

    /// The number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the spec is empty (never true: construction requires at
    /// least one task).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The downtime `D`.
    pub fn downtime(&self) -> f64 {
        self.instance.downtime()
    }

    /// The initial recovery `R₀`.
    pub fn initial_recovery(&self) -> f64 {
        self.instance.initial_recovery()
    }

    /// The total work of the DAG.
    pub fn total_work(&self) -> f64 {
        self.instance.total_weight()
    }

    /// The mean per-task checkpoint cost (used for trace horizons).
    pub fn mean_checkpoint_cost(&self) -> f64 {
        self.mean_checkpoint_cost
    }
}

/// An offline DAG plan: a linearisation plus its optimal checkpoint
/// placement, the unit the DAG policies replay, re-solve and re-linearise.
#[derive(Debug, Clone, PartialEq)]
pub struct DagPlan {
    /// The execution order (a topological order of the spec graph).
    pub order: Vec<TaskId>,
    /// Per-position checkpoint decisions (final position always `true`).
    pub checkpoint_after: Vec<bool>,
    /// The plan's expected makespan under the spec's planning model at the
    /// rate it was solved for.
    pub value_under_model: f64,
}

impl DagPlan {
    /// The order as task indices, the form the simulator engine consumes.
    pub fn order_indices(&self) -> Vec<usize> {
        self.order.iter().map(|t| t.index()).collect()
    }
}

/// Solves the offline plan of `spec` at `rate`: a full
/// [`schedule_dag_search`] (the strongest offline planner of the workspace)
/// on the instance re-rated to `rate`, under the spec's model. This is the
/// plan [`DagStaticPlan`] replays and the adaptive DAG policies start from;
/// solved at the truth's rate it is the clairvoyant reference.
///
/// # Errors
///
/// Returns an [`AdaptiveError`] for a non-positive rate or invalid search
/// parameters.
pub fn optimal_static_dag_plan(
    spec: &DagSpec,
    rate: f64,
    search: &OrderSearchConfig,
) -> Result<DagPlan, AdaptiveError> {
    let instance = spec.instance().with_lambda(rate)?;
    let found = schedule_dag_search(&instance, spec.model(), search)?;
    Ok(DagPlan {
        order: found.solution.schedule.order().to_vec(),
        checkpoint_after: found.solution.schedule.checkpoint_after().to_vec(),
        value_under_model: found.expected_makespan_under_model(),
    })
}

/// The λ-batched planner view of one fixed order of a spec: a
/// [`LambdaSweep`] over the order's positional cost vectors under the
/// spec's model, so a policy can instantiate the order's cost table at any
/// rate estimate in `O(n)`, plus the raw (unshifted) positional recovery
/// costs the suffix re-linearisation reads its protecting recovery from.
#[derive(Debug, Clone)]
struct OrderPlanner {
    sweep: LambdaSweep,
    /// `raw_rec[j]` is the recovery cost of a checkpoint taken right after
    /// position `j`, under the spec's model.
    raw_rec: Vec<f64>,
}

impl OrderPlanner {
    /// Builds the planner view of `order`, which must be a topological
    /// order of the spec graph.
    fn new(spec: &DagSpec, order: &[TaskId]) -> Result<Self, AdaptiveError> {
        if !topo::is_topological_order(spec.instance().graph(), order) {
            return Err(ckpt_core::ScheduleError::InvalidOrder.into());
        }
        let weights: Vec<f64> = order.iter().map(|&t| spec.instance().weight(t)).collect();
        let (ckpt, raw_rec) = spec.model().costs_along_order(spec.instance(), order);
        // Protecting-recovery convention of the cost tables: position 0 is
        // protected by R₀, position x > 0 by the recovery of the checkpoint
        // at position x − 1 (exactly `dag_schedule::model_cost_table`).
        let mut protecting = Vec::with_capacity(order.len());
        protecting.push(spec.initial_recovery());
        protecting.extend(raw_rec.iter().take(raw_rec.len() - 1).copied());
        let sweep = LambdaSweep::new(spec.downtime(), &weights, &ckpt, &protecting)?;
        Ok(OrderPlanner { sweep, raw_rec })
    }
}

/// Replays a fixed DAG plan: checkpoint flags by position, never reordering
/// — the DAG twin of [`crate::StaticPlan`]. Replaying the plan solved at
/// the truth's rate is the clairvoyant baseline of
/// [`compare_dag_policies`].
#[derive(Debug, Clone)]
pub struct DagStaticPlan {
    checkpoint_after: Vec<bool>,
}

impl DagStaticPlan {
    /// A policy replaying per-position decisions (the engine forces the
    /// final checkpoint regardless).
    pub fn new(checkpoint_after: Vec<bool>) -> Self {
        DagStaticPlan { checkpoint_after }
    }

    /// A policy replaying an offline [`DagPlan`]'s placement (the plan's
    /// order is handed to the engine separately).
    pub fn from_plan(plan: &DagPlan) -> Self {
        DagStaticPlan { checkpoint_after: plan.checkpoint_after.clone() }
    }
}

impl DagPolicy for DagStaticPlan {
    fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
        DagDecision::keep_order(self.checkpoint_after.get(ctx.position).copied().unwrap_or(false))
    }
}

/// Re-solves the checkpoint placement of the remaining suffix **on the
/// current order** after every observed failure, at the Gamma-posterior
/// rate estimate — the DAG twin of [`crate::AdaptiveResolve`]. The
/// execution order itself is never touched; [`DagRelinearise`] adds that.
#[derive(Debug, Clone)]
pub struct DagAdaptiveResolve {
    planner: OrderPlanner,
    dp: ResumableDp,
    planning_rate: f64,
    prior_strength: f64,
    plan_rate: f64,
    seen_failures: usize,
    replans: usize,
}

impl DagAdaptiveResolve {
    /// Arms the policy with `plan` (solved at `planning_rate`): builds the
    /// λ-batched planner view of the plan's order and solves the full DP
    /// once, so a failure-free execution replays the plan exactly.
    ///
    /// # Errors
    ///
    /// Returns an [`AdaptiveError`] if the plan's order is not a
    /// topological order of the spec graph or the rate is not strictly
    /// positive.
    pub fn new(spec: &DagSpec, plan: &DagPlan, planning_rate: f64) -> Result<Self, AdaptiveError> {
        let planner = OrderPlanner::new(spec, &plan.order)?;
        let table = planner.sweep.table_for(planning_rate)?;
        let mut dp = ResumableDp::new();
        dp.solve(&table);
        Ok(DagAdaptiveResolve {
            planner,
            dp,
            planning_rate,
            prior_strength: DEFAULT_PRIOR_STRENGTH,
            plan_rate: planning_rate,
            seen_failures: 0,
            replans: 0,
        })
    }

    /// Overrides the prior strength `k₀` (builder style); see
    /// [`crate::AdaptiveResolve::with_prior_strength`].
    pub fn with_prior_strength(mut self, prior_strength: f64) -> Self {
        assert!(
            prior_strength.is_finite() && prior_strength > 0.0,
            "prior strength must be strictly positive"
        );
        self.prior_strength = prior_strength;
        self
    }

    /// The rate the current committed plan was solved at.
    pub fn plan_rate(&self) -> f64 {
        self.plan_rate
    }

    /// Re-plans performed so far.
    pub fn replans(&self) -> usize {
        self.replans
    }
}

impl DagPolicy for DagAdaptiveResolve {
    fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
        let start = ctx.resume_position();
        if ctx.failure_times.len() > self.seen_failures {
            self.seen_failures = ctx.failure_times.len();
            let estimate = posterior_rate(
                self.planning_rate,
                self.prior_strength,
                ctx.failure_times.len(),
                ctx.clock,
            );
            if let Ok(table) = self.planner.sweep.table_for(estimate) {
                self.dp.solve_suffix(&table, start);
                self.plan_rate = estimate;
                self.replans += 1;
            }
        }
        // Same safety argument as the chain policy: re-plans happen at the
        // first boundary after a failure (`position == start`), `<=` keeps
        // the policy checkpointing at the earliest planned boundary even if
        // that invariant is ever relaxed.
        DagDecision::keep_order(self.dp.choice_at(start) <= ctx.position)
    }
}

/// Re-plans **both layers** after every observed failure: updates the
/// Gamma-posterior rate, re-linearises the unexecuted suffix by a
/// bounded-budget order search over the remaining graph
/// ([`suffix_subgraph`] + [`search_from_starts`] seeded with the incumbent
/// suffix), splices the winner into its execution order, and re-solves the
/// checkpoint placement on the updated order. With no observed failures it
/// replays its initial plan exactly, like every other policy here.
#[derive(Debug, Clone)]
pub struct DagRelinearise {
    spec: DagSpec,
    /// The policy's view of the current execution order (kept in lockstep
    /// with the engine: every accepted reorder updates both).
    order: Vec<TaskId>,
    planner: OrderPlanner,
    dp: ResumableDp,
    planning_rate: f64,
    prior_strength: f64,
    plan_rate: f64,
    seen_failures: usize,
    replans: usize,
    reorders: usize,
    /// Budget of each suffix re-linearisation; `threads` is forced to 1
    /// (the search runs inside a Monte-Carlo trial).
    search: OrderSearchConfig,
}

/// Default re-linearisation budget: a handful of random restarts on top of
/// the deterministic strategies and the incumbent, with a short move
/// budget. Re-plans run once per observed failure, so the budget is paid
/// `O(failures)` times per trial.
fn default_replan_budget() -> OrderSearchConfig {
    OrderSearchConfig { restarts: 2, steps: 48, threads: 1, ..Default::default() }
}

impl DagRelinearise {
    /// Arms the policy with `plan` (solved at `planning_rate`) and the
    /// default re-linearisation budget.
    ///
    /// # Errors
    ///
    /// Same contract as [`DagAdaptiveResolve::new`].
    pub fn new(spec: &DagSpec, plan: &DagPlan, planning_rate: f64) -> Result<Self, AdaptiveError> {
        let planner = OrderPlanner::new(spec, &plan.order)?;
        let table = planner.sweep.table_for(planning_rate)?;
        let mut dp = ResumableDp::new();
        dp.solve(&table);
        Ok(DagRelinearise {
            spec: spec.clone(),
            order: plan.order.clone(),
            planner,
            dp,
            planning_rate,
            prior_strength: DEFAULT_PRIOR_STRENGTH,
            plan_rate: planning_rate,
            seen_failures: 0,
            replans: 0,
            reorders: 0,
            search: default_replan_budget(),
        })
    }

    /// Overrides the suffix re-linearisation budget (builder style):
    /// `restarts` seeded random starts on top of the deterministic
    /// strategies and the incumbent suffix, `steps` move proposals per
    /// start.
    pub fn with_search_budget(mut self, restarts: u64, steps: usize) -> Self {
        self.search.restarts = restarts;
        self.search.steps = steps;
        self
    }

    /// Overrides the prior strength `k₀` (builder style).
    pub fn with_prior_strength(mut self, prior_strength: f64) -> Self {
        assert!(
            prior_strength.is_finite() && prior_strength > 0.0,
            "prior strength must be strictly positive"
        );
        self.prior_strength = prior_strength;
        self
    }

    /// The rate the current committed plan was solved at.
    pub fn plan_rate(&self) -> f64 {
        self.plan_rate
    }

    /// Re-plans performed so far.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Suffix reorders actually taken so far.
    pub fn reorders(&self) -> usize {
        self.reorders
    }

    /// Runs the bounded-budget order search on the remaining graph of
    /// `self.order[suffix_start..]` at `rate` and returns the winning
    /// suffix (original task ids), or `None` when the incumbent suffix
    /// wins (no reorder worth taking) or the search fails.
    ///
    /// The incumbent suffix is always among the starts, and
    /// [`search_from_starts`] never returns a worse value than any start —
    /// so under the planning model at `rate`, reordering is never a
    /// planned-value regression over [`DagAdaptiveResolve`]'s keep-the-
    /// order behaviour.
    fn relinearised_suffix(&self, suffix_start: usize, rate: f64) -> Option<Vec<TaskId>> {
        let sub: SuffixSubgraph =
            suffix_subgraph(self.spec.instance().graph(), &self.order, suffix_start);
        let instance = self.spec.instance();
        let ckpt: Vec<f64> = sub.tasks.iter().map(|&t| instance.checkpoint_cost(t)).collect();
        let rec: Vec<f64> = sub.tasks.iter().map(|&t| instance.recovery_cost(t)).collect();
        // The suffix's first segment is protected by the checkpoint
        // candidate right before it (position suffix_start − 1 of the
        // current order) — the natural R₀ of the sub-problem.
        let r0 = self.planner.raw_rec[suffix_start - 1];
        let mut builder = ProblemInstance::builder(sub.graph.clone());
        builder
            .checkpoint_costs(ckpt)
            .recovery_costs(rec)
            .initial_recovery(r0)
            .downtime(self.spec.downtime())
            .platform_lambda(rate);
        let sub_instance = builder.build().ok()?;

        // Starts: the incumbent suffix (sub-ids follow suffix positions, so
        // the identity order IS the incumbent) plus exactly the strategy
        // set `schedule_dag_search` would try on the subgraph (shared
        // through `default_start_strategies`, so the two can never drift).
        let mut starts: Vec<Vec<TaskId>> = vec![(0..sub.len()).map(TaskId).collect()];
        starts.extend(
            default_start_strategies(self.search.restarts)
                .into_iter()
                .map(|s| linearize::linearize(&sub.graph, s)),
        );

        let found: SeededSearchOutcome =
            search_from_starts(&sub_instance, self.spec.model(), &self.search, &starts).ok()?;
        let new_suffix = sub.to_original_order(&found.order);
        if new_suffix == self.order[suffix_start..] {
            None
        } else {
            Some(new_suffix)
        }
    }
}

impl DagPolicy for DagRelinearise {
    fn decide(&mut self, ctx: &DagDecisionContext<'_>) -> DagDecision {
        debug_assert!(
            ctx.order.iter().zip(&self.order).all(|(&a, &b)| a == b.index()),
            "the policy's order drifted from the engine's"
        );
        let start = ctx.resume_position();
        let mut reorder_suffix: Option<Vec<usize>> = None;
        if ctx.failure_times.len() > self.seen_failures {
            self.seen_failures = ctx.failure_times.len();
            let estimate = posterior_rate(
                self.planning_rate,
                self.prior_strength,
                ctx.failure_times.len(),
                ctx.clock,
            );
            // Re-linearise the unexecuted suffix (positions strictly after
            // the current boundary) when there are at least two tasks to
            // permute.
            let suffix_start = ctx.position + 1;
            if self.spec.len().saturating_sub(suffix_start) >= 2 {
                if let Some(new_suffix) = self.relinearised_suffix(suffix_start, estimate) {
                    let mut candidate = self.order.clone();
                    candidate[suffix_start..].copy_from_slice(&new_suffix);
                    // The spliced order is topological by construction, so
                    // the planner rebuild cannot fail; guarding keeps the
                    // policy's plan and the engine's order in lockstep even
                    // if it ever did.
                    if let Ok(planner) = OrderPlanner::new(&self.spec, &candidate) {
                        self.order = candidate;
                        self.planner = planner;
                        reorder_suffix = Some(new_suffix.iter().map(|t| t.index()).collect());
                        self.reorders += 1;
                        crate::stats::DAG_RELINEARISATIONS.add(1);
                    }
                }
            }
            if let Ok(table) = self.planner.sweep.table_for(estimate) {
                self.dp.solve_suffix(&table, start);
                self.plan_rate = estimate;
                self.replans += 1;
            }
        }
        DagDecision { checkpoint: self.dp.choice_at(start) <= ctx.position, reorder_suffix }
    }
}

/// One DAG policy's aggregate outcome in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DagPolicyResult {
    /// Policy name (`clairvoyant`, `dag-static`, `dag-adaptive-resolve`,
    /// `dag-relinearise`).
    pub policy: &'static str,
    /// Mean makespan across trials.
    pub mean_makespan: f64,
    /// Mean number of failures observed per trial.
    pub mean_failures: f64,
    /// Mean number of checkpoints taken per trial.
    pub mean_checkpoints: f64,
    /// Mean number of suffix reorders per trial (0 for the non-reordering
    /// policies).
    pub mean_reorders: f64,
    /// `mean_makespan − clairvoyant mean makespan`.
    pub regret: f64,
}

/// The outcome of [`compare_dag_policies`].
#[derive(Debug, Clone, PartialEq)]
pub struct DagPolicyComparison {
    /// Mean makespan of the clairvoyant baseline (the offline
    /// [`schedule_dag_search`] plan at the truth's effective rate, replayed
    /// statically).
    pub clairvoyant_makespan: f64,
    /// The (mis)planned offline plan every non-clairvoyant policy starts
    /// from.
    pub planned: DagPlan,
    /// The clairvoyant plan.
    pub clairvoyant_plan: DagPlan,
    /// One row per policy, in a fixed order: `clairvoyant`, `dag-static`,
    /// `dag-adaptive-resolve`, `dag-relinearise`.
    pub results: Vec<DagPolicyResult>,
}

impl DagPolicyComparison {
    /// The row of a policy by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not one of the four fixed rows.
    pub fn row(&self, policy: &str) -> &DagPolicyResult {
        self.results
            .iter()
            .find(|r| r.policy == policy)
            .unwrap_or_else(|| panic!("unknown policy row `{policy}`"))
    }
}

/// Runs the three DAG policies (plus the clairvoyant static baseline) over
/// `spec`, planned at `planning_rate` with `search`, under the given truth
/// — the DAG twin of [`crate::compare_policies`]. All rows replay
/// identical per-trial failure streams (paired comparison) and the outcome
/// is bit-identical at any thread count.
///
/// # Errors
///
/// Returns an [`AdaptiveError`] for invalid rates, truth parameters or
/// search configuration, and propagates
/// [`AdaptiveError::TraceHorizonExceeded`] for trace truths whose horizon
/// a trial outruns.
pub fn compare_dag_policies(
    spec: &DagSpec,
    planning_rate: f64,
    truth: &TruthModel,
    config: &EvaluationConfig,
    search: &OrderSearchConfig,
) -> Result<DagPolicyComparison, AdaptiveError> {
    truth.validate()?;

    let planned = optimal_static_dag_plan(spec, planning_rate, search)?;
    let clairvoyant = optimal_static_dag_plan(spec, truth.effective_rate(), search)?;

    let clairvoyant_outcome = run_dag_policy(
        spec,
        truth,
        config,
        &clairvoyant.order_indices(),
        &DagStaticPlan::from_plan(&clairvoyant),
    )?;
    let clairvoyant_makespan = clairvoyant_outcome.makespan.mean;

    let planned_order = planned.order_indices();
    let mut results =
        vec![dag_result_row("clairvoyant", &clairvoyant_outcome, clairvoyant_makespan)];

    let static_outcome =
        run_dag_policy(spec, truth, config, &planned_order, &DagStaticPlan::from_plan(&planned))?;
    results.push(dag_result_row("dag-static", &static_outcome, clairvoyant_makespan));

    let resolve_proto = DagAdaptiveResolve::new(spec, &planned, planning_rate)?;
    let resolve_outcome = run_dag_policy(spec, truth, config, &planned_order, &resolve_proto)?;
    results.push(dag_result_row("dag-adaptive-resolve", &resolve_outcome, clairvoyant_makespan));

    let relin_proto = DagRelinearise::new(spec, &planned, planning_rate)?;
    let relin_outcome = run_dag_policy(spec, truth, config, &planned_order, &relin_proto)?;
    results.push(dag_result_row("dag-relinearise", &relin_outcome, clairvoyant_makespan));

    Ok(DagPolicyComparison {
        clairvoyant_makespan,
        planned,
        clairvoyant_plan: clairvoyant,
        results,
    })
}

fn dag_result_row(
    policy: &'static str,
    outcome: &DagPolicyMonteCarloOutcome,
    clairvoyant_makespan: f64,
) -> DagPolicyResult {
    DagPolicyResult {
        policy,
        mean_makespan: outcome.makespan.mean,
        mean_failures: outcome.failures.mean,
        mean_checkpoints: outcome.checkpoints.mean,
        mean_reorders: outcome.reorders.mean,
        regret: outcome.makespan.mean - clairvoyant_makespan,
    }
}

/// Runs one DAG policy prototype (cloned per trial) under the truth — the
/// DAG twin of the chain harness's `run_policy`, sharing the scenario seed
/// so trial `i` sees the same failure stream whichever policy is running
/// (and the chain harness's truth driver, so the two harnesses can never
/// disagree on scenario construction or the trace-horizon guard).
fn run_dag_policy<P>(
    spec: &DagSpec,
    truth: &TruthModel,
    config: &EvaluationConfig,
    order: &[usize],
    prototype: &P,
) -> Result<DagPolicyMonteCarloOutcome, AdaptiveError>
where
    P: DagPolicy + Clone + Sync,
{
    let make_policy = |_trial: usize| prototype.clone();
    crate::harness::run_under_truth(
        truth,
        spec.downtime(),
        config,
        spec.total_work() + spec.len() as f64 * spec.mean_checkpoint_cost(),
        |scenario| {
            scenario.run_dag_policy(spec.tasks(), order, spec.initial_recovery(), make_policy)
        },
        |scenario, make_stream| {
            scenario.run_dag_policy_with_streams(
                spec.tasks(),
                order,
                spec.initial_recovery(),
                make_policy,
                make_stream,
            )
        },
        |outcome| &outcome.samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_simulator::stream::{NoFailureStream, ScriptedStream};
    use ckpt_simulator::{simulate_dag_policy, simulate_dag_policy_with_log, ExecutionEvent};

    /// A heterogeneous layered DAG spec (per-last-task planning model).
    fn layered_spec(seed: u64) -> DagSpec {
        use ckpt_failure::{Pcg64, RandomSource};
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut coin_rng = rng.derive(7);
        let graph = ckpt_dag::generators::layered_random(
            &[2, 4, 3, 4, 2],
            |lvl, idx| 150.0 + 120.0 * ((lvl * 3 + idx) % 5) as f64,
            0.4,
            move || coin_rng.next_f64(),
        )
        .unwrap();
        let n = graph.task_count();
        let ckpt: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 80.0).collect();
        let rec: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 80.0).collect();
        let instance = ProblemInstance::builder(graph)
            .checkpoint_costs(ckpt)
            .recovery_costs(rec)
            .initial_recovery(20.0)
            .downtime(10.0)
            .platform_lambda(1e-4)
            .build()
            .unwrap();
        DagSpec::new(instance, CheckpointCostModel::PerLastTask).unwrap()
    }

    fn quick_search() -> OrderSearchConfig {
        OrderSearchConfig { restarts: 3, steps: 80, threads: 1, ..Default::default() }
    }

    /// The checkpoint positions a DAG policy takes on a given stream.
    fn run_logged<P: DagPolicy>(
        spec: &DagSpec,
        order: &[usize],
        policy: &mut P,
        stream: &mut dyn ckpt_simulator::FailureStream,
    ) -> ckpt_simulator::DagPolicyLoggedExecution {
        simulate_dag_policy_with_log(
            spec.tasks(),
            order,
            spec.initial_recovery(),
            spec.downtime(),
            policy,
            stream,
        )
        .unwrap()
    }

    #[test]
    fn static_plan_replays_its_placement() {
        let spec = layered_spec(1);
        let plan = optimal_static_dag_plan(&spec, 1e-4, &quick_search()).unwrap();
        let mut policy = DagStaticPlan::from_plan(&plan);
        let logged = run_logged(&spec, &plan.order_indices(), &mut policy, &mut NoFailureStream);
        let taken: Vec<usize> = logged
            .events
            .iter()
            .filter_map(|e| match *e {
                ExecutionEvent::SegmentCompleted { segment, .. } => Some(segment),
                _ => None,
            })
            .collect();
        let expected: Vec<usize> =
            plan.checkpoint_after.iter().enumerate().filter_map(|(p, &c)| c.then_some(p)).collect();
        assert_eq!(taken, expected);
        assert_eq!(logged.outcome.reorders, 0);
    }

    #[test]
    fn adaptive_policies_without_failures_replay_the_offline_plan() {
        for seed in [1u64, 5] {
            let spec = layered_spec(seed);
            let plan = optimal_static_dag_plan(&spec, 1e-4, &quick_search()).unwrap();
            let mut static_policy = DagStaticPlan::from_plan(&plan);
            let reference =
                run_logged(&spec, &plan.order_indices(), &mut static_policy, &mut NoFailureStream);
            let mut resolve = DagAdaptiveResolve::new(&spec, &plan, 1e-4).unwrap();
            let run = run_logged(&spec, &plan.order_indices(), &mut resolve, &mut NoFailureStream);
            assert_eq!(run.outcome, reference.outcome, "seed {seed}: resolve drifted");
            assert_eq!(resolve.replans(), 0);

            let mut relin = DagRelinearise::new(&spec, &plan, 1e-4).unwrap();
            let run = run_logged(&spec, &plan.order_indices(), &mut relin, &mut NoFailureStream);
            assert_eq!(run.outcome, reference.outcome, "seed {seed}: relinearise drifted");
            assert_eq!(relin.replans(), 0);
            assert_eq!(relin.reorders(), 0);
        }
    }

    #[test]
    fn relinearise_replans_and_may_reorder_on_failures() {
        let spec = layered_spec(2);
        // Plan at a wildly optimistic rate, then hit early failures: the
        // posterior shoots up and the policy re-plans.
        let plan = optimal_static_dag_plan(&spec, 1e-6, &quick_search()).unwrap();
        let mut policy = DagRelinearise::new(&spec, &plan, 1e-6).unwrap().with_prior_strength(0.01);
        let mut stream = ScriptedStream::new(vec![300.0, 900.0, 1_700.0]);
        let outcome = simulate_dag_policy(
            spec.tasks(),
            &plan.order_indices(),
            spec.initial_recovery(),
            spec.downtime(),
            &mut policy,
            &mut stream,
        )
        .unwrap();
        assert_eq!(outcome.record.failures, 3);
        assert!(policy.replans() >= 1);
        assert!(policy.plan_rate() > 1e-6);
        // With the rate revised sharply upwards, more than just the final
        // checkpoint gets taken.
        assert!(outcome.checkpoints > 1, "checkpoints: {}", outcome.checkpoints);
        // The engine's applied reorders match the policy's accounting.
        assert_eq!(outcome.reorders as usize, policy.reorders());
    }

    #[test]
    fn relinearised_orders_stay_topological() {
        // Drive the policy through many scripted failures and let the
        // engine + instance validation check every spliced order.
        for seed in [3u64, 4, 8] {
            let spec = layered_spec(seed);
            let plan = optimal_static_dag_plan(&spec, 1e-6, &quick_search()).unwrap();
            let mut policy =
                DagRelinearise::new(&spec, &plan, 1e-6).unwrap().with_prior_strength(0.05);
            let mut stream =
                ScriptedStream::new(vec![250.0, 600.0, 1_000.0, 1_500.0, 2_200.0, 3_000.0]);
            let outcome = simulate_dag_policy(
                spec.tasks(),
                &plan.order_indices(),
                spec.initial_recovery(),
                spec.downtime(),
                &mut policy,
                &mut stream,
            )
            .unwrap();
            // The final order must be a topological order of the graph.
            let final_order: Vec<TaskId> = outcome.final_order.iter().map(|&i| TaskId(i)).collect();
            assert!(
                topo::is_topological_order(spec.instance().graph(), &final_order),
                "seed {seed}: final order is not topological"
            );
        }
    }

    #[test]
    fn comparison_is_deterministic_and_ranks_sanely() {
        let spec = layered_spec(1);
        let planning = 1.0 / 40_000.0;
        let truth = TruthModel::Exponential { lambda: 8.0 * planning };
        let config = EvaluationConfig { trials: 120, seed: 11, threads: 1 };
        let cmp = compare_dag_policies(&spec, planning, &truth, &config, &quick_search()).unwrap();
        assert_eq!(cmp.results.len(), 4);
        assert_eq!(cmp.row("clairvoyant").regret, 0.0);
        let again =
            compare_dag_policies(&spec, planning, &truth, &config, &quick_search()).unwrap();
        assert_eq!(cmp, again, "comparison must be deterministic");
        // Adapting must beat the stale static plan under an 8× truth.
        let stale = cmp.row("dag-static").mean_makespan;
        assert!(cmp.row("dag-adaptive-resolve").mean_makespan < stale);
        assert!(cmp.row("dag-relinearise").mean_makespan < stale);
    }

    #[test]
    fn spec_validates_and_exposes_both_views() {
        let spec = layered_spec(1);
        assert!(!spec.is_empty());
        assert_eq!(spec.len(), spec.instance().task_count());
        assert_eq!(spec.tasks().len(), spec.len());
        let t0 = spec.tasks()[0];
        assert_eq!(t0.work(), spec.instance().weight(TaskId(0)));
        assert_eq!(t0.checkpoint(), spec.instance().checkpoint_cost(TaskId(0)));
        assert!((spec.total_work() - spec.instance().total_weight()).abs() < 1e-12);
        let empty =
            ProblemInstance::builder(ckpt_dag::TaskGraph::new()).platform_lambda(1e-3).build();
        // An empty graph cannot even build an instance, or is rejected here.
        if let Ok(instance) = empty {
            assert!(DagSpec::new(instance, CheckpointCostModel::PerLastTask).is_err());
        }
    }

    #[test]
    fn policies_validate_their_plans() {
        let spec = layered_spec(1);
        let plan = optimal_static_dag_plan(&spec, 1e-4, &quick_search()).unwrap();
        let mut bad = plan.clone();
        bad.order.reverse();
        assert!(DagAdaptiveResolve::new(&spec, &bad, 1e-4).is_err());
        assert!(DagRelinearise::new(&spec, &bad, 1e-4).is_err());
        assert!(DagAdaptiveResolve::new(&spec, &plan, 0.0).is_err());
        assert!(optimal_static_dag_plan(&spec, -1.0, &quick_search()).is_err());
    }
}

//! Monte-Carlo evaluation of online policies under **misspecified** failure
//! models.
//!
//! The operationally interesting question is not how a policy behaves when
//! the planner knew the failure law exactly — the offline DP is provably
//! optimal there — but how it degrades when the *planning* rate and the
//! *true* failure process diverge: a platform failing 4–10× more often than
//! assumed, Weibull-bursty failures planned as Exponential, or a recorded
//! trace. [`compare_policies`] runs the four policies of
//! [`crate::policies`] through the policy-driven Monte-Carlo engine under
//! one [`TruthModel`], all on **identical per-trial failure streams**
//! (paired comparison: every policy sees the same failures, so differences
//! are policy effects, not sampling noise), and reports each policy's mean
//! makespan and its **regret** against the clairvoyant baseline — the
//! offline DP optimum solved at the truth's effective rate and replayed
//! statically.
//!
//! Everything is deterministic: trials derive their streams from the master
//! seed and the trial index, and the engine's contiguous-chunk threading
//! makes the outcome bit-identical at any thread count.

use ckpt_failure::{TraceGenerator, TraceReplay, Weibull};
use ckpt_simulator::stream::TraceStream;
use ckpt_simulator::{PolicyMonteCarloOutcome, SimulationScenario};

use crate::chain::ChainSpec;
use crate::error::AdaptiveError;
use crate::policies::{
    optimal_static_plan, AdaptiveResolve, PeriodicYoung, RateLearning, StaticPlan,
};

/// The failure process executions are actually subjected to (as opposed to
/// the rate the offline plan assumed).
#[derive(Debug, Clone)]
pub enum TruthModel {
    /// Platform-level Exponential failures of the given rate — the paper's
    /// model with a possibly wrong planning rate.
    Exponential {
        /// The true platform failure rate.
        lambda: f64,
    },
    /// `processors` per-processor Weibull streams (shape < 1 = infant
    /// mortality bursts) superposed, with the given **platform-level** MTBF.
    WeibullPlatform {
        /// Number of processors.
        processors: usize,
        /// Weibull shape parameter.
        shape: f64,
        /// Platform-level mean time between failures.
        platform_mtbf: f64,
    },
    /// Per-trial synthetic Weibull failure traces, replayed through
    /// [`TraceStream`] — the "recorded log" scenario: the policy sees a
    /// finite trace, not a generative law. Traces cover 64× the chain's
    /// failure-free makespan; a regime so extreme that a trial outruns its
    /// trace is rejected with [`AdaptiveError::TraceHorizonExceeded`]
    /// rather than evaluated optimistically.
    WeibullTrace {
        /// Number of processors recorded in the trace.
        processors: usize,
        /// Weibull shape parameter of each processor's process.
        shape: f64,
        /// Platform-level mean time between failures.
        platform_mtbf: f64,
    },
}

impl TruthModel {
    /// The platform-level failure rate of the truth — what a clairvoyant
    /// planner (knowing the truth's intensity, if not its law) would plan
    /// with.
    pub fn effective_rate(&self) -> f64 {
        match *self {
            TruthModel::Exponential { lambda } => lambda,
            TruthModel::WeibullPlatform { platform_mtbf, .. }
            | TruthModel::WeibullTrace { platform_mtbf, .. } => 1.0 / platform_mtbf,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), AdaptiveError> {
        let (name, value) = match *self {
            TruthModel::Exponential { lambda } => ("true lambda", lambda),
            TruthModel::WeibullPlatform { platform_mtbf, shape, processors }
            | TruthModel::WeibullTrace { platform_mtbf, shape, processors } => {
                if processors == 0 {
                    return Err(AdaptiveError::NonPositiveParameter {
                        name: "processors",
                        value: 0.0,
                    });
                }
                if !shape.is_finite() || shape <= 0.0 {
                    return Err(AdaptiveError::NonPositiveParameter {
                        name: "shape",
                        value: shape,
                    });
                }
                ("platform MTBF", platform_mtbf)
            }
        };
        if !value.is_finite() || value <= 0.0 {
            return Err(AdaptiveError::NonPositiveParameter { name, value });
        }
        Ok(())
    }
}

/// Monte-Carlo configuration of one policy comparison.
#[derive(Debug, Clone, Copy)]
pub struct EvaluationConfig {
    /// Trials per policy (every policy replays the same trial streams).
    pub trials: usize,
    /// Master seed; streams derive per-trial.
    pub seed: u64,
    /// Worker threads (`0` = one per core); the outcome is identical for
    /// every value.
    pub threads: usize,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        EvaluationConfig { trials: 1_000, seed: 0xADA7, threads: 0 }
    }
}

/// One policy's aggregate outcome in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResult {
    /// Policy name (`static-plan`, `periodic-young`, `adaptive-resolve`,
    /// `rate-learning`, `clairvoyant`).
    pub policy: &'static str,
    /// Mean makespan across trials.
    pub mean_makespan: f64,
    /// Mean number of failures observed per trial.
    pub mean_failures: f64,
    /// Mean number of checkpoints taken per trial.
    pub mean_checkpoints: f64,
    /// `mean_makespan − clairvoyant mean makespan` (0 for the clairvoyant
    /// row itself; negative values are possible only within Monte-Carlo
    /// noise, since the clairvoyant static plan is optimal in expectation
    /// only under an Exponential truth at exactly its rate).
    pub regret: f64,
}

/// The outcome of [`compare_policies`].
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyComparison {
    /// Mean makespan of the clairvoyant baseline (offline optimum at the
    /// truth's effective rate, replayed statically).
    pub clairvoyant_makespan: f64,
    /// One row per policy, in a fixed order: `clairvoyant`, `static-plan`,
    /// `periodic-young`, `adaptive-resolve`, `rate-learning`.
    pub results: Vec<PolicyResult>,
}

impl PolicyComparison {
    /// The row of a policy by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not one of the five fixed rows.
    pub fn row(&self, policy: &str) -> &PolicyResult {
        self.results
            .iter()
            .find(|r| r.policy == policy)
            .unwrap_or_else(|| panic!("unknown policy row `{policy}`"))
    }
}

/// Horizon multiple (× the chain's failure-free makespan) generated for
/// trace truths. A trial whose makespan exceeded the generated horizon
/// would have seen a spuriously failure-free tail, so [`compare_policies`]
/// **rejects** such runs with [`AdaptiveError::TraceHorizonExceeded`]
/// instead of returning silently optimistic means — with the slowdowns of
/// the regimes under study (≲ a few ×) the bound is never approached.
const TRACE_HORIZON_FACTOR: f64 = 64.0;

/// Runs the four online policies (plus the clairvoyant static baseline)
/// over `spec`, planned at `planning_rate`, under the given truth.
///
/// # Errors
///
/// Returns an [`AdaptiveError`] for invalid rates, truth parameters, or an
/// empty trial count.
pub fn compare_policies(
    spec: &ChainSpec,
    planning_rate: f64,
    truth: &TruthModel,
    config: &EvaluationConfig,
) -> Result<PolicyComparison, AdaptiveError> {
    truth.validate()?;

    // The plans: offline optimum at the planning rate, and at the truth's
    // effective rate (the clairvoyant reference).
    let planned = optimal_static_plan(spec, planning_rate)?;
    let clairvoyant = optimal_static_plan(spec, truth.effective_rate())?;

    let static_proto = StaticPlan::from_placement(&planned);
    let clairvoyant_proto = StaticPlan::from_placement(&clairvoyant);
    let young_proto = PeriodicYoung::new(spec, planning_rate)?;
    let adaptive_proto = AdaptiveResolve::new(spec, planning_rate)?;
    let learning_proto = RateLearning::new(spec, planning_rate)?;

    let clairvoyant_outcome = run_policy(spec, truth, config, &clairvoyant_proto)?;
    let clairvoyant_makespan = clairvoyant_outcome.makespan.mean;

    let mut results = vec![result_row("clairvoyant", &clairvoyant_outcome, clairvoyant_makespan)];
    let static_outcome = run_policy(spec, truth, config, &static_proto)?;
    results.push(result_row("static-plan", &static_outcome, clairvoyant_makespan));
    let young_outcome = run_policy(spec, truth, config, &young_proto)?;
    results.push(result_row("periodic-young", &young_outcome, clairvoyant_makespan));
    let adaptive_outcome = run_policy(spec, truth, config, &adaptive_proto)?;
    results.push(result_row("adaptive-resolve", &adaptive_outcome, clairvoyant_makespan));
    let learning_outcome = run_policy(spec, truth, config, &learning_proto)?;
    results.push(result_row("rate-learning", &learning_outcome, clairvoyant_makespan));

    Ok(PolicyComparison { clairvoyant_makespan, results })
}

fn result_row(
    policy: &'static str,
    outcome: &PolicyMonteCarloOutcome,
    clairvoyant_makespan: f64,
) -> PolicyResult {
    PolicyResult {
        policy,
        mean_makespan: outcome.makespan.mean,
        mean_failures: outcome.failures.mean,
        mean_checkpoints: outcome.checkpoints.mean,
        regret: outcome.makespan.mean - clairvoyant_makespan,
    }
}

/// Runs one policy prototype (cloned per trial) under the truth. All
/// policies of one comparison share the scenario seed, so trial `i` sees
/// the same failure stream whichever policy is running — paired
/// comparisons.
fn run_policy<P>(
    spec: &ChainSpec,
    truth: &TruthModel,
    config: &EvaluationConfig,
    prototype: &P,
) -> Result<PolicyMonteCarloOutcome, AdaptiveError>
where
    P: ckpt_simulator::Policy + Clone + Sync,
{
    let make_policy = |_trial: usize| prototype.clone();
    run_under_truth(
        truth,
        spec.downtime(),
        config,
        spec.total_work() + spec.len() as f64 * spec.mean_checkpoint_cost(),
        |scenario| scenario.run_policy(spec.tasks(), spec.initial_recovery(), make_policy),
        |scenario, make_stream| {
            scenario.run_policy_with_streams(
                spec.tasks(),
                spec.initial_recovery(),
                make_policy,
                make_stream,
            )
        },
        |outcome| &outcome.samples,
    )
}

/// The truth-model driver shared by the chain and the DAG harnesses: builds
/// the Monte-Carlo scenario of `truth` (downtime, trials, seed, threads
/// applied uniformly) and hands it to `run_direct` (model-generated
/// streams) — or, for trace truths, generates per-trial traces covering
/// [`TRACE_HORIZON_FACTOR`] × `failure_free_makespan` and hands the stream
/// factory to `run_with_traces`, then enforces the horizon guard on the
/// returned samples: a makespan beyond the generated horizon means that
/// trial's trace ran out and its tail executed spuriously failure-free, so
/// the run is rejected instead of reported optimistically.
///
/// Keeping the scenario construction, the Weibull platform derivation and
/// the horizon formula in exactly one place is what keeps the two
/// harnesses' notion of a valid trial from drifting apart.
pub(crate) fn run_under_truth<O>(
    truth: &TruthModel,
    downtime: f64,
    config: &EvaluationConfig,
    failure_free_makespan: f64,
    run_direct: impl Fn(SimulationScenario) -> Result<O, ckpt_simulator::SimulationError>,
    run_with_traces: impl Fn(
        SimulationScenario,
        &(dyn Fn(usize, u64) -> TraceStream + Sync),
    ) -> Result<O, ckpt_simulator::SimulationError>,
    samples: impl Fn(&O) -> &[f64],
) -> Result<O, AdaptiveError> {
    let configure = |scenario: SimulationScenario| {
        scenario
            .with_downtime(downtime)
            .with_trials(config.trials)
            .with_seed(config.seed)
            .with_threads(config.threads)
    };
    match *truth {
        TruthModel::Exponential { lambda } => {
            Ok(run_direct(configure(SimulationScenario::exponential(lambda)))?)
        }
        TruthModel::WeibullPlatform { processors, shape, platform_mtbf } => {
            let law = Weibull::with_mean(shape, platform_mtbf * processors as f64)?;
            Ok(run_direct(configure(SimulationScenario::platform(processors, law)))?)
        }
        TruthModel::WeibullTrace { processors, shape, platform_mtbf } => {
            let law = Weibull::with_mean(shape, platform_mtbf * processors as f64)?;
            let horizon = TRACE_HORIZON_FACTOR * failure_free_makespan;
            // The scenario's Exponential model is unused: streams come from
            // the factory. Every policy re-generates the same per-trial
            // trace from the derived seed, keeping the comparison paired.
            let make_stream = move |_trial: usize, derived_seed: u64| {
                let generator = TraceGenerator::new(processors, derived_seed)
                    .expect("processors validated before running");
                TraceStream::new(TraceReplay::new(generator.generate(law, horizon)))
            };
            let outcome =
                run_with_traces(configure(SimulationScenario::exponential(1.0)), &make_stream)?;
            if let Some(&worst) =
                samples(&outcome).iter().max_by(|a, b| a.total_cmp(b)).filter(|&&m| m > horizon)
            {
                let trials = samples(&outcome).iter().filter(|&&m| m > horizon).count();
                return Err(AdaptiveError::TraceHorizonExceeded {
                    horizon,
                    makespan: worst,
                    trials,
                });
            }
            Ok(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChainSpec {
        // 24 × 600 s of work; checkpoints cost 45, recoveries 70.
        ChainSpec::new(&[600.0; 24], &[45.0; 24], &[70.0; 24], 30.0, 15.0).unwrap()
    }

    #[test]
    fn truth_models_validate() {
        assert!(TruthModel::Exponential { lambda: 0.0 }.validate().is_err());
        assert!(TruthModel::WeibullPlatform { processors: 0, shape: 0.7, platform_mtbf: 1e4 }
            .validate()
            .is_err());
        assert!(TruthModel::WeibullPlatform { processors: 4, shape: 0.0, platform_mtbf: 1e4 }
            .validate()
            .is_err());
        assert!(TruthModel::WeibullTrace { processors: 2, shape: 0.7, platform_mtbf: -1.0 }
            .validate()
            .is_err());
        let ok = TruthModel::WeibullTrace { processors: 2, shape: 0.7, platform_mtbf: 5e3 };
        assert!(ok.validate().is_ok());
        assert!((ok.effective_rate() - 2e-4).abs() < 1e-18);
    }

    #[test]
    fn well_specified_truth_keeps_policies_near_the_clairvoyant() {
        // Truth == plan: the static plan IS the clairvoyant plan, and the
        // adaptive policies must stay within noise of it.
        let spec = spec();
        let rate = 1.0 / 8_000.0;
        let config = EvaluationConfig { trials: 400, seed: 11, threads: 1 };
        let cmp = compare_policies(&spec, rate, &TruthModel::Exponential { lambda: rate }, &config)
            .unwrap();
        assert_eq!(cmp.row("static-plan").regret, 0.0);
        let adaptive_gap = cmp.row("adaptive-resolve").regret.abs() / cmp.clairvoyant_makespan;
        assert!(adaptive_gap < 0.02, "adaptive gap {adaptive_gap}");
        let learning_gap = cmp.row("rate-learning").regret.abs() / cmp.clairvoyant_makespan;
        assert!(learning_gap < 0.02, "rate-learning gap {learning_gap}");
    }

    #[test]
    fn misspecified_truth_rewards_adaptation() {
        // The platform fails 8× more often than planned: policies that
        // observe and re-plan must beat the stale static plan.
        let spec = spec();
        let planning = 1.0 / 40_000.0;
        let truth = TruthModel::Exponential { lambda: 8.0 / 40_000.0 };
        let config = EvaluationConfig { trials: 400, seed: 13, threads: 1 };
        let cmp = compare_policies(&spec, planning, &truth, &config).unwrap();
        let stale = cmp.row("static-plan").mean_makespan;
        assert!(
            cmp.row("adaptive-resolve").mean_makespan < stale,
            "adaptive {} vs static {stale}",
            cmp.row("adaptive-resolve").mean_makespan
        );
        assert!(
            cmp.row("rate-learning").mean_makespan < stale,
            "learning {} vs static {stale}",
            cmp.row("rate-learning").mean_makespan
        );
        // And nobody beats the clairvoyant by more than noise.
        for row in &cmp.results {
            assert!(
                row.regret > -0.02 * cmp.clairvoyant_makespan,
                "{}: {}",
                row.policy,
                row.regret
            );
        }
    }

    #[test]
    fn comparisons_are_bit_identical_across_thread_counts() {
        let spec = spec();
        let planning = 1.0 / 20_000.0;
        let truth = TruthModel::Exponential { lambda: 1.0 / 5_000.0 };
        let base = EvaluationConfig { trials: 201, seed: 7, threads: 1 };
        let single = compare_policies(&spec, planning, &truth, &base).unwrap();
        for threads in [2usize, 3, 8] {
            let config = EvaluationConfig { threads, ..base };
            let multi = compare_policies(&spec, planning, &truth, &config).unwrap();
            assert_eq!(single, multi, "comparison differs at {threads} threads");
        }
    }

    #[test]
    fn trace_truth_rejects_exhausted_horizons() {
        // A 50 s platform MTBF against 600 s tasks: rework blows past the
        // 64× trace horizon, the tail would run spuriously failure-free,
        // and the harness must refuse instead of reporting optimistic means.
        let spec = spec();
        let truth = TruthModel::WeibullTrace { processors: 2, shape: 0.7, platform_mtbf: 50.0 };
        let config = EvaluationConfig { trials: 10, seed: 1, threads: 1 };
        match compare_policies(&spec, 1.0 / 20_000.0, &truth, &config) {
            Err(AdaptiveError::TraceHorizonExceeded { horizon, makespan, trials }) => {
                assert!(makespan > horizon, "worst makespan must exceed the horizon");
                assert!(
                    (1..=config.trials).contains(&trials),
                    "exceeded-trial count {trials} out of range"
                );
            }
            other => panic!("expected TraceHorizonExceeded, got {other:?}"),
        }
    }

    #[test]
    fn trace_truth_runs_and_is_deterministic() {
        let spec = spec();
        let planning = 1.0 / 20_000.0;
        let truth = TruthModel::WeibullTrace { processors: 4, shape: 0.7, platform_mtbf: 4_000.0 };
        let config = EvaluationConfig { trials: 101, seed: 3, threads: 1 };
        let a = compare_policies(&spec, planning, &truth, &config).unwrap();
        let b = compare_policies(&spec, planning, &truth, &config).unwrap();
        assert_eq!(a, b);
        let threaded =
            compare_policies(&spec, planning, &truth, &EvaluationConfig { threads: 3, ..config })
                .unwrap();
        assert_eq!(a, threaded);
        assert!(a.row("static-plan").mean_failures > 0.0);
    }
}

//! Seed-for-seed differential test: a single-machine cluster degenerates to
//! the chain engine **bitwise**.
//!
//! The cluster engine shares the simulator's `rollback` helpers with
//! `simulate_policy`, so a one-machine pool over an
//! [`ExponentialMachineSource`] (the exact per-trial stream the chain
//! Monte-Carlo driver builds) running a checkpoint-only, non-replicated job
//! must produce identical floating-point results — makespan, breakdown,
//! failure times and counters — to `simulate_policy` replaying the same
//! static plan over the same stream. Not approximately: `assert_eq!` on
//! every field, across many seeds and plan shapes.

use ckpt_adaptive::StaticPlan;
use ckpt_cluster::{
    run_cluster, BaselinePolicy, ClusterConfig, ClusterJob, ExponentialMachineSource,
};
use ckpt_simulator::{simulate_policy, ChainTask, ExponentialStream};

fn chain(works: &[f64], ckpt: f64, rec: f64) -> Vec<ChainTask> {
    works.iter().map(|&w| ChainTask::new(w, ckpt, rec).unwrap()).collect()
}

fn assert_degenerate(
    tasks: &[ChainTask],
    initial_recovery: f64,
    downtime: f64,
    plan: &[bool],
    lambda: f64,
    seed: u64,
) {
    let mut reference_stream = ExponentialStream::new(lambda, seed);
    let mut reference_policy = StaticPlan::new(plan.to_vec());
    let expected = simulate_policy(
        tasks,
        initial_recovery,
        downtime,
        &mut reference_policy,
        &mut reference_stream,
    )
    .unwrap();

    let job = ClusterJob::new(tasks.to_vec(), initial_recovery, downtime, plan.to_vec()).unwrap();
    let mut source = ExponentialMachineSource::new(lambda, &[seed]);
    let mut policy = BaselinePolicy::CheckpointOnly;
    let out = run_cluster(&[job], 1, &mut source, &mut policy, &ClusterConfig::default()).unwrap();
    let actual = &out.jobs[0];

    // Bitwise, not approximate: the two engines must have performed the
    // exact same float operations in the exact same order.
    assert_eq!(actual.record, expected.record, "seed {seed}");
    assert_eq!(actual.checkpoints, expected.checkpoints, "seed {seed}");
    assert_eq!(actual.decisions, expected.decisions, "seed {seed}");
    assert_eq!(actual.waiting, 0.0, "seed {seed}");
    assert_eq!(actual.migrations, 0, "seed {seed}");
    assert_eq!(actual.failovers, 0, "seed {seed}");
    assert_eq!(actual.completed_at, expected.record.makespan, "seed {seed}");
    assert_eq!(out.makespan, expected.record.makespan, "seed {seed}");
}

#[test]
fn single_machine_cluster_matches_chain_engine_bitwise() {
    let tasks = chain(&[120.0, 80.0, 200.0, 40.0, 160.0], 12.0, 6.0);
    let plan = [true, false, true, false, true];
    for seed in 0..200 {
        assert_degenerate(&tasks, 6.0, 2.5, &plan, 1.0 / 300.0, seed);
    }
}

#[test]
fn degeneracy_holds_across_plan_shapes_and_rates() {
    let cases: &[(&[f64], &[bool], f64)] = &[
        // Checkpoint everywhere, failure-heavy.
        (&[50.0, 50.0, 50.0], &[true, true, true], 1.0 / 60.0),
        // Checkpoint nowhere (the engine still forces the final one).
        (&[90.0, 30.0, 140.0], &[false, false, false], 1.0 / 150.0),
        // Single task.
        (&[400.0], &[true], 1.0 / 500.0),
        // Long sparse chain, rare failures.
        (&[25.0; 12], &[false; 12], 1.0 / 5000.0),
    ];
    for &(works, plan, lambda) in cases {
        let tasks = chain(works, 8.0, 4.0);
        for seed in 0..50 {
            assert_degenerate(&tasks, 4.0, 1.0, plan, lambda, 1000 + seed);
        }
    }
}

#[test]
fn zero_cost_checkpoints_preserve_stream_alignment() {
    // Zero-cost checkpoints skip the stream query entirely in the chain
    // engine; the cluster engine must skip it identically or every later
    // draw would diverge.
    let tasks = chain(&[70.0, 110.0, 90.0], 0.0, 0.0);
    for seed in 0..50 {
        assert_degenerate(&tasks, 0.0, 3.0, &[true, true, true], 1.0 / 120.0, 5000 + seed);
    }
}

//! Release-gated cluster Monte-Carlo suite: statistical claims that need
//! enough trials to be stable, far too slow under a debug build — they run
//! in CI's `cargo test --release` pass (where `debug_assertions` is off and
//! the gate evaporates).

use std::sync::Arc;

use ckpt_adaptive::ChainSpec;
use ckpt_cluster::{
    compare_baselines, run_cluster_monte_carlo, BaselinePolicy, ClusterConfig, ClusterPolicy,
    ClusterRepair, ClusterScenario,
};
use ckpt_failure::{Exponential, FailureDistribution, LogNormal, ShockConfig};

fn law(mtbf: f64) -> Arc<dyn FailureDistribution + Send + Sync> {
    Arc::new(Exponential::from_mtbf(mtbf).expect("valid MTBF"))
}

fn job_mix() -> Vec<ChainSpec> {
    vec![
        ChainSpec::new(&[180.0; 9], &[14.0; 9], &[22.0; 9], 20.0, 5.0).expect("valid chain"),
        ChainSpec::new(&[140.0; 8], &[12.0; 8], &[18.0; 8], 20.0, 5.0).expect("valid chain"),
        ChainSpec::new(&[120.0; 6], &[10.0; 6], &[16.0; 6], 20.0, 5.0).expect("valid chain"),
        ChainSpec::new(&[90.0; 5], &[10.0; 5], &[15.0; 5], 20.0, 5.0).expect("valid chain"),
    ]
}

fn config() -> ClusterConfig {
    ClusterConfig::default()
        .with_migration_overhead(120.0)
        .expect("valid overhead")
        .with_failover_overhead(10.0)
        .expect("valid overhead")
        .with_replication_checkpoint_factor(1.3)
        .expect("valid factor")
}

#[test]
#[cfg_attr(debug_assertions, ignore = "statistical suite, release-only (see CI)")]
fn mobility_beats_waiting_out_long_repairs() {
    // Long repairs and partial shocks: policies that can leave a broken
    // machine must strictly beat checkpoint-only on mean makespan.
    let scenario = ClusterScenario::new(6, law(20_000.0), 1.0 / 1_500.0, job_mix())
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(1.0 / 1_000.0, 0.6, 100.0).expect("valid shocks"))
        .with_repair(ClusterRepair::Fixed(1_000.0))
        .expect("valid repair")
        .with_config(config())
        .with_trials(500)
        .with_seed(0xC1);
    let cmp = compare_baselines(
        &scenario,
        &[
            ("checkpoint-only", BaselinePolicy::CheckpointOnly),
            ("always-migrate", BaselinePolicy::AlwaysMigrate),
            ("replicate-top-2", BaselinePolicy::ReplicateTopK { k: 2 }),
        ],
    )
    .expect("cluster runs");
    let stay = cmp.entries[0].outcome.makespan.mean;
    let migrate = cmp.entries[1].outcome.makespan.mean;
    let replicate = cmp.entries[2].outcome.makespan.mean;
    assert!(migrate < stay, "always-migrate {migrate} must beat checkpoint-only {stay}");
    assert!(replicate < stay, "replicate-top-2 {replicate} must beat checkpoint-only {stay}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "statistical suite, release-only (see CI)")]
fn full_pool_outages_queue_without_errors_under_random_repair() {
    // Every shock strikes every machine at the same instant, and repairs are
    // drawn from a heavy-tailed law: the harshest degradation regime the
    // injector can express. Jobs must still complete every trial.
    let repair_law: Arc<dyn FailureDistribution + Send + Sync> =
        Arc::new(LogNormal::with_mean(700.0, 1.2).expect("valid law"));
    let scenario = ClusterScenario::new(3, law(25_000.0), 1.0 / 1_200.0, job_mix())
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(1.0 / 900.0, 1.0, 0.0).expect("valid shocks"))
        .with_repair(ClusterRepair::Random(repair_law))
        .expect("valid repair")
        .with_config(config())
        .with_trials(400)
        .with_seed(0xC2);
    let outcome = run_cluster_monte_carlo(&scenario, || {
        Box::new(BaselinePolicy::AlwaysMigrate) as Box<dyn ClusterPolicy>
    })
    .expect("full-pool outages must queue jobs, not error");
    assert_eq!(outcome.trials, 400);
    assert!(outcome.waiting.mean > 0.0, "whole-pool outages must produce queue waiting");
    assert!(outcome.max_queue_depth > 1, "whole-pool outages must stack the ready queue");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "statistical suite, release-only (see CI)")]
fn comparison_is_bitwise_deterministic_across_thread_counts() {
    let base = ClusterScenario::new(5, law(10_000.0), 1.0 / 1_200.0, job_mix())
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(1.0 / 1_100.0, 0.7, 250.0).expect("valid shocks"))
        .with_repair(ClusterRepair::Fixed(800.0))
        .expect("valid repair")
        .with_config(config())
        .with_trials(300)
        .with_seed(0xC3);
    let entries = [
        ("checkpoint-only", BaselinePolicy::CheckpointOnly),
        ("always-migrate", BaselinePolicy::AlwaysMigrate),
        ("replicate-top-2", BaselinePolicy::ReplicateTopK { k: 2 }),
        ("setlur", BaselinePolicy::Setlur { replicate_fraction: 0.5, rate_factor: 0.6 }),
    ];
    let reference =
        compare_baselines(&base.clone().with_threads(1), &entries).expect("cluster runs");
    for threads in [2usize, 3, 8] {
        let other =
            compare_baselines(&base.clone().with_threads(threads), &entries).expect("cluster runs");
        for (a, b) in reference.entries.iter().zip(&other.entries) {
            assert_eq!(
                a.outcome.samples, b.outcome.samples,
                "policy {} differs at {threads} threads",
                a.name
            );
        }
    }
}

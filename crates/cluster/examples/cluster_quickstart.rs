//! Minimal cluster-tier walkthrough: plan two chain jobs with the chain DP,
//! run them on a 3-machine pool under correlated shock bursts, and compare
//! checkpoint-only against replicate-top-1.
//!
//! Run with `cargo run --release -p ckpt-cluster --example cluster_quickstart`.

use std::sync::Arc;

use ckpt_adaptive::ChainSpec;
use ckpt_cluster::{compare_baselines, BaselinePolicy, ClusterRepair, ClusterScenario};
use ckpt_failure::{Exponential, FailureDistribution, ShockConfig};

fn main() {
    let law: Arc<dyn FailureDistribution + Send + Sync> =
        Arc::new(Exponential::from_mtbf(2_000.0).expect("valid MTBF"));
    let big =
        ChainSpec::new(&[150.0; 10], &[12.0; 10], &[20.0; 10], 20.0, 5.0).expect("valid chain");
    let small =
        ChainSpec::new(&[100.0; 5], &[12.0; 5], &[20.0; 5], 20.0, 5.0).expect("valid chain");

    let scenario = ClusterScenario::new(3, law, 1.0 / 1_000.0, vec![big, small])
        .expect("valid scenario")
        .with_shocks(ShockConfig::new(1.0 / 1_500.0, 0.6, 120.0).expect("valid shocks"))
        .with_repair(ClusterRepair::Fixed(800.0))
        .expect("valid repair")
        .with_trials(200)
        .with_seed(42);

    let comparison = compare_baselines(
        &scenario,
        &[
            ("checkpoint-only", BaselinePolicy::CheckpointOnly),
            ("replicate-top-1", BaselinePolicy::ReplicateTopK { k: 1 }),
        ],
    )
    .expect("cluster runs");

    for entry in &comparison.entries {
        println!(
            "{:>16}: mean makespan {:8.1} s  (±{:.1} ci95, regret {:+.1})",
            entry.name,
            entry.outcome.makespan.mean,
            entry.outcome.makespan.ci95_half_width,
            entry.regret,
        );
    }
    println!("winner: {}", comparison.entries[comparison.best].name);
}

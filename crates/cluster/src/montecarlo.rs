//! Monte-Carlo driver and policy-comparison harness for the cluster tier.
//!
//! A [`ClusterScenario`] bundles everything a trial needs: the machine pool,
//! the per-machine failure law, the correlated-shock and repair models, the
//! cluster cost knobs, and the job mix (one [`ChainSpec`] per job).
//! Checkpoint plans are computed from the chain DP
//! ([`optimal_static_plan`]) at the scenario's planning rate — replicated
//! jobs optionally plan at a policy-chosen sparser rate (the Setlur
//! trade-off).
//!
//! Trials are scattered across threads with the simulator's
//! [`scatter_trials`] and aggregated **in trial order**, so results are
//! bit-identical at any thread count. Policy comparisons reuse the same
//! per-trial seeds for every policy (paired streams): regret differences are
//! never an artefact of different failure draws.

use std::sync::Arc;

use crate::engine::{run_cluster, ClusterConfig, ClusterOutcome};
use crate::error::{ensure_non_negative, ClusterError};
use crate::job::ClusterJob;
use crate::policy::{AdmissionContext, BaselinePolicy, ClusterPolicy};
use ckpt_adaptive::{optimal_static_plan, ChainSpec};
use ckpt_expectation::numeric::SampleStats;
use ckpt_failure::{
    ClusterFailureInjector, FailureDistribution, Pcg64, RandomSource, RepairModel, ShockConfig,
};
use ckpt_simulator::{scatter_trials, scatter_trials_with};
use ckpt_telemetry::MetricsRegistry;

/// Machine-repair model of a scenario — the clonable (per-trial) counterpart
/// of the injector's [`RepairModel`].
#[derive(Debug, Clone)]
pub enum ClusterRepair {
    /// Machines are available again at the failure instant.
    Immediate,
    /// Every repair takes a fixed interval.
    Fixed(f64),
    /// Repair durations are drawn from a law (fresh stream per trial).
    Random(Arc<dyn FailureDistribution + Send + Sync>),
}

impl ClusterRepair {
    fn to_model(&self) -> RepairModel {
        match self {
            ClusterRepair::Immediate => RepairModel::Immediate,
            ClusterRepair::Fixed(duration) => RepairModel::Fixed(*duration),
            ClusterRepair::Random(law) => RepairModel::Random(Box::new(Arc::clone(law))),
        }
    }
}

/// A reproducible cluster experiment: machines, failure model, cost knobs and
/// job mix.
#[derive(Debug, Clone)]
pub struct ClusterScenario {
    machines: usize,
    law: Arc<dyn FailureDistribution + Send + Sync>,
    planning_rate: f64,
    shocks: Option<ShockConfig>,
    repair: ClusterRepair,
    config: ClusterConfig,
    specs: Vec<ChainSpec>,
    arrivals: Vec<f64>,
    trials: usize,
    seed: u64,
    threads: usize,
}

impl ClusterScenario {
    /// Builds a scenario with default knobs: no shocks, immediate repair,
    /// default [`ClusterConfig`], all jobs arriving at time 0, 1000 trials,
    /// seed `0x5EED`, auto thread count.
    ///
    /// `planning_rate` is the failure rate the chain DP plans checkpoints
    /// for; `law` drives the per-machine failure processes.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if the pool or job mix is empty or the
    /// planning rate is not strictly positive and finite.
    pub fn new(
        machines: usize,
        law: Arc<dyn FailureDistribution + Send + Sync>,
        planning_rate: f64,
        specs: Vec<ChainSpec>,
    ) -> Result<Self, ClusterError> {
        if machines == 0 {
            return Err(ClusterError::EmptyCluster);
        }
        if specs.is_empty() {
            return Err(ClusterError::NoJobs);
        }
        if !planning_rate.is_finite() || planning_rate <= 0.0 {
            return Err(ClusterError::InvalidParameter {
                name: "planning_rate",
                value: planning_rate,
            });
        }
        let arrivals = vec![0.0; specs.len()];
        Ok(ClusterScenario {
            machines,
            law,
            planning_rate,
            shocks: None,
            repair: ClusterRepair::Immediate,
            config: ClusterConfig::default(),
            specs,
            arrivals,
            trials: 1000,
            seed: 0x5EED,
            threads: 0,
        })
    }

    /// Adds a correlated-shock process (builder style).
    pub fn with_shocks(mut self, shocks: ShockConfig) -> Self {
        self.shocks = Some(shocks);
        self
    }

    /// Sets the machine-repair model (builder style).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if a fixed repair duration is negative.
    pub fn with_repair(mut self, repair: ClusterRepair) -> Result<Self, ClusterError> {
        if let ClusterRepair::Fixed(duration) = repair {
            ensure_non_negative("repair_duration", duration)?;
        }
        self.repair = repair;
        Ok(self)
    }

    /// Sets the cluster cost knobs (builder style).
    pub fn with_config(mut self, config: ClusterConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets per-job arrival times (builder style).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if the length does not match the job mix or
    /// an arrival is negative.
    pub fn with_arrivals(mut self, arrivals: Vec<f64>) -> Result<Self, ClusterError> {
        if arrivals.len() != self.specs.len() {
            return Err(ClusterError::PlanLengthMismatch {
                job: 0,
                plan: arrivals.len(),
                tasks: self.specs.len(),
            });
        }
        for &a in &arrivals {
            ensure_non_negative("arrival", a)?;
        }
        self.arrivals = arrivals;
        Ok(self)
    }

    /// Sets the trial count (builder style).
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the root seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count; `0` = all available cores (builder
    /// style). Results are bit-identical at any setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The machine-pool size.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The number of Monte-Carlo trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The cluster cost knobs.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The planning failure rate handed to the chain DP.
    pub fn planning_rate(&self) -> f64 {
        self.planning_rate
    }

    fn workers(&self) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            self.threads
        };
        requested.min(self.trials).max(1)
    }

    /// Ranks jobs by total work, `0` = largest (ties broken by index).
    fn work_ranks(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.specs.len()).collect();
        order.sort_by(|&a, &b| {
            self.specs[b].total_work().total_cmp(&self.specs[a].total_work()).then(a.cmp(&b))
        });
        let mut ranks = vec![0usize; order.len()];
        for (rank, &job) in order.iter().enumerate() {
            ranks[job] = rank;
        }
        ranks
    }

    /// Materialises the job mix under `policy`'s admission decisions:
    /// consults [`ClusterPolicy::wants_replica`] per job and plans
    /// checkpoints with the chain DP — replicated jobs at
    /// `planning_rate × replicated_plan_rate_factor`.
    ///
    /// Admission decisions must be deterministic in the
    /// [`AdmissionContext`]: jobs are built once and shared by all trials.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Planning`] when the chain DP rejects a spec or
    /// rate.
    pub fn build_jobs<P: ClusterPolicy + ?Sized>(
        &self,
        policy: &mut P,
    ) -> Result<Vec<ClusterJob>, ClusterError> {
        let ranks = self.work_ranks();
        let mut jobs = Vec::with_capacity(self.specs.len());
        for (j, spec) in self.specs.iter().enumerate() {
            let ctx = AdmissionContext {
                job: j,
                total_work: spec.total_work(),
                work_rank: ranks[j],
                job_count: self.specs.len(),
                machine_count: self.machines,
            };
            let replicate = policy.wants_replica(&ctx);
            let rate = if replicate {
                self.planning_rate * policy.replicated_plan_rate_factor()
            } else {
                self.planning_rate
            };
            let plan = optimal_static_plan(spec, rate)
                .map_err(|e| ClusterError::Planning(e.to_string()))?
                .checkpoint_after()
                .to_vec();
            let mut job = ClusterJob::new(
                spec.tasks().to_vec(),
                spec.initial_recovery(),
                spec.downtime(),
                plan,
            )?
            .with_arrival(self.arrivals[j])?;
            if replicate {
                job = job.with_replica();
            }
            jobs.push(job);
        }
        Ok(jobs)
    }

    /// Builds the failure injector for one trial — the same streams the
    /// Monte-Carlo runners drive, exposed so a single trial can be replayed
    /// in isolation (e.g. traced through
    /// [`run_cluster_traced`](crate::run_cluster_traced) for a JSONL event
    /// dump).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] when the injector rejects the pool or
    /// repair model.
    pub fn trial_injector(&self, trial: usize) -> Result<ClusterFailureInjector, ClusterError> {
        self.injector(trial)
    }

    /// Builds the failure injector for one trial. Trial `t` of a scenario is
    /// always driven by the same streams, whatever policy runs on top —
    /// policy comparisons are paired.
    fn injector(&self, trial: usize) -> Result<ClusterFailureInjector, ClusterError> {
        let mut rng = Pcg64::seed_from_u64(self.seed).derive(trial as u64);
        let trial_seed = rng.next_u64();
        let mut injector =
            ClusterFailureInjector::homogeneous(self.machines, Arc::clone(&self.law), trial_seed)
                .map_err(|e| ClusterError::Planning(e.to_string()))?;
        if let Some(shocks) = self.shocks {
            injector = injector.with_shocks(shocks);
        }
        injector = injector
            .with_repair(self.repair.to_model())
            .map_err(|e| ClusterError::Planning(e.to_string()))?;
        Ok(injector)
    }
}

/// Aggregated Monte-Carlo outcome of one policy on one scenario.
#[derive(Debug, Clone)]
pub struct ClusterMonteCarloOutcome {
    /// Trials aggregated.
    pub trials: usize,
    /// Cluster makespan (completion of the last job) across trials.
    pub makespan: SampleStats,
    /// Per-trial mean job makespan.
    pub job_makespan: SampleStats,
    /// Per-trial total ready-queue waiting time.
    pub waiting: SampleStats,
    /// Per-trial useful machine utilisation.
    pub utilisation: SampleStats,
    /// Mean failures absorbed per trial (all jobs).
    pub mean_failures: f64,
    /// Mean migrations per trial.
    pub mean_migrations: f64,
    /// Mean failovers per trial.
    pub mean_failovers: f64,
    /// Largest ready-queue depth observed in any trial.
    pub max_queue_depth: usize,
    /// Per-trial cluster makespans in trial order (for bitwise determinism
    /// checks and paired comparisons).
    pub samples: Vec<f64>,
}

/// Runs `scenario` under policies produced by `factory` (one fresh policy per
/// trial; one more instance decides admissions when building the job mix).
///
/// # Errors
///
/// Propagates the first [`ClusterError`] from job building or any trial.
pub fn run_cluster_monte_carlo<F>(
    scenario: &ClusterScenario,
    factory: F,
) -> Result<ClusterMonteCarloOutcome, ClusterError>
where
    F: Fn() -> Box<dyn ClusterPolicy> + Sync,
{
    let mut admission = factory();
    let jobs = scenario.build_jobs(&mut admission)?;
    drop(admission);

    let results: Vec<Result<ClusterOutcome, ClusterError>> =
        scatter_trials(scenario.trials(), scenario.workers(), |trial| {
            let mut injector = scenario.injector(trial)?;
            let mut policy = factory();
            run_cluster(&jobs, scenario.machines, &mut injector, &mut policy, &scenario.config)
        });
    aggregate_trials(results)
}

/// [`run_cluster_monte_carlo`] that additionally records per-trial telemetry
/// into `metrics`.
///
/// Every trial observes its cluster makespan, mean job makespan, total
/// waiting time and utilisation into per-worker [`MetricsRegistry`] shards
/// (histograms `cluster_makespan`, `cluster_job_makespan`,
/// `cluster_waiting`, `cluster_utilisation`) and bumps the
/// `cluster_trials_total`, `cluster_failures_total`,
/// `cluster_migrations_total` and `cluster_failovers_total` counters. Shards
/// are merged into `metrics` **in chunk order** (worker 0 first), so the
/// merged registry — like the outcome itself — is bit-identical at any
/// thread count; `cluster_max_queue_depth` is set as a gauge from the
/// aggregated outcome. The returned outcome (including the `samples`
/// vector) is identical to the plain runner's: recording observes the
/// trials, it never perturbs them.
///
/// # Errors
///
/// Propagates the first [`ClusterError`] from job building or any trial.
pub fn run_cluster_monte_carlo_with_metrics<F>(
    scenario: &ClusterScenario,
    factory: F,
    metrics: &mut MetricsRegistry,
) -> Result<ClusterMonteCarloOutcome, ClusterError>
where
    F: Fn() -> Box<dyn ClusterPolicy> + Sync,
{
    let mut admission = factory();
    let jobs = scenario.build_jobs(&mut admission)?;
    drop(admission);

    let (results, shards) = scatter_trials_with(
        scenario.trials(),
        scenario.workers(),
        MetricsRegistry::new,
        |trial, shard: &mut MetricsRegistry| {
            let mut injector = scenario.injector(trial)?;
            let mut policy = factory();
            let outcome = run_cluster(
                &jobs,
                scenario.machines,
                &mut injector,
                &mut policy,
                &scenario.config,
            )?;
            let jobs_n = outcome.jobs.len() as f64;
            shard.counter_add("cluster_trials_total", 1);
            shard.counter_add(
                "cluster_failures_total",
                outcome.jobs.iter().map(|j| j.record.failures).sum(),
            );
            shard.counter_add(
                "cluster_migrations_total",
                outcome.jobs.iter().map(|j| j.migrations).sum(),
            );
            shard.counter_add(
                "cluster_failovers_total",
                outcome.jobs.iter().map(|j| j.failovers).sum(),
            );
            shard.observe("cluster_makespan", outcome.makespan);
            shard.observe(
                "cluster_job_makespan",
                outcome.jobs.iter().map(|j| j.record.makespan).sum::<f64>() / jobs_n,
            );
            shard.observe("cluster_waiting", outcome.jobs.iter().map(|j| j.waiting).sum::<f64>());
            shard.observe("cluster_utilisation", outcome.utilisation);
            Ok(outcome)
        },
    );
    for shard in &shards {
        metrics.merge_from(shard).map_err(|e| ClusterError::Planning(e.to_string()))?;
    }
    let outcome = aggregate_trials(results)?;
    metrics.gauge_set("cluster_max_queue_depth", outcome.max_queue_depth as f64);
    Ok(outcome)
}

/// Trial-order aggregation shared by the plain and metrics-recording
/// runners: one code path, so the two cannot drift apart numerically.
fn aggregate_trials(
    results: Vec<Result<ClusterOutcome, ClusterError>>,
) -> Result<ClusterMonteCarloOutcome, ClusterError> {
    let mut makespans = Vec::with_capacity(results.len());
    let mut job_makespans = Vec::with_capacity(results.len());
    let mut waits = Vec::with_capacity(results.len());
    let mut utilisations = Vec::with_capacity(results.len());
    let mut failures = 0.0f64;
    let mut migrations = 0.0f64;
    let mut failovers = 0.0f64;
    let mut max_queue_depth = 0usize;
    for result in results {
        let outcome = result?;
        makespans.push(outcome.makespan);
        let jobs_n = outcome.jobs.len() as f64;
        job_makespans.push(outcome.jobs.iter().map(|j| j.record.makespan).sum::<f64>() / jobs_n);
        waits.push(outcome.jobs.iter().map(|j| j.waiting).sum::<f64>());
        utilisations.push(outcome.utilisation);
        failures += outcome.jobs.iter().map(|j| j.record.failures as f64).sum::<f64>();
        migrations += outcome.jobs.iter().map(|j| j.migrations as f64).sum::<f64>();
        failovers += outcome.jobs.iter().map(|j| j.failovers as f64).sum::<f64>();
        max_queue_depth = max_queue_depth.max(outcome.peak_queue_depth);
    }
    let n = makespans.len() as f64;
    Ok(ClusterMonteCarloOutcome {
        trials: makespans.len(),
        makespan: SampleStats::from_values(&makespans),
        job_makespan: SampleStats::from_values(&job_makespans),
        waiting: SampleStats::from_values(&waits),
        utilisation: SampleStats::from_values(&utilisations),
        mean_failures: failures / n,
        mean_migrations: migrations / n,
        mean_failovers: failovers / n,
        max_queue_depth,
        samples: makespans,
    })
}

/// One row of a policy comparison.
#[derive(Debug, Clone)]
pub struct ClusterComparisonEntry {
    /// Policy name.
    pub name: String,
    /// The policy's Monte-Carlo outcome.
    pub outcome: ClusterMonteCarloOutcome,
    /// Mean-cluster-makespan regret against the best policy in the
    /// comparison (`0` for the winner).
    pub regret: f64,
}

/// The outcome of [`compare_cluster_policies`].
#[derive(Debug, Clone)]
pub struct ClusterComparison {
    /// One entry per compared policy, in input order.
    pub entries: Vec<ClusterComparisonEntry>,
    /// Index of the policy with the smallest mean cluster makespan.
    pub best: usize,
}

/// A thread-safe factory producing one fresh [`ClusterPolicy`] instance per
/// Monte-Carlo trial (borrowed form, as [`compare_cluster_policies`] takes
/// it).
pub type ClusterPolicyFactory<'a> = &'a (dyn Fn() -> Box<dyn ClusterPolicy> + Sync);

/// The owning form of [`ClusterPolicyFactory`].
type BoxedPolicyFactory = Box<dyn Fn() -> Box<dyn ClusterPolicy> + Sync>;

/// Runs every policy on the **same** per-trial failure streams and reports
/// mean-makespan regret against the best.
///
/// # Errors
///
/// Propagates the first [`ClusterError`] from any policy's run.
pub fn compare_cluster_policies(
    scenario: &ClusterScenario,
    entries: &[(&str, ClusterPolicyFactory<'_>)],
) -> Result<ClusterComparison, ClusterError> {
    if entries.is_empty() {
        return Err(ClusterError::NoJobs);
    }
    let mut rows = Vec::with_capacity(entries.len());
    for (name, factory) in entries {
        let outcome = run_cluster_monte_carlo(scenario, factory)?;
        rows.push(ClusterComparisonEntry { name: (*name).to_string(), outcome, regret: 0.0 });
    }
    let best = rows
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.outcome.makespan.mean.total_cmp(&b.outcome.makespan.mean))
        .map(|(i, _)| i)
        .expect("entries checked non-empty");
    let best_mean = rows[best].outcome.makespan.mean;
    for row in &mut rows {
        row.regret = row.outcome.makespan.mean - best_mean;
    }
    Ok(ClusterComparison { entries: rows, best })
}

/// [`compare_cluster_policies`] specialised to the [`BaselinePolicy`]
/// reference set — the form the e13 experiment uses.
///
/// # Errors
///
/// Propagates the first [`ClusterError`] from any policy's run.
pub fn compare_baselines(
    scenario: &ClusterScenario,
    entries: &[(&str, BaselinePolicy)],
) -> Result<ClusterComparison, ClusterError> {
    let factories: Vec<(&str, BoxedPolicyFactory)> = entries
        .iter()
        .map(|&(name, policy)| {
            let factory: BoxedPolicyFactory =
                Box::new(move || Box::new(policy) as Box<dyn ClusterPolicy>);
            (name, factory)
        })
        .collect();
    let refs: Vec<(&str, ClusterPolicyFactory<'_>)> =
        factories.iter().map(|(name, f)| (*name, f.as_ref())).collect();
    compare_cluster_policies(scenario, &refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_failure::Exponential;

    fn spec(works: &[f64]) -> ChainSpec {
        let n = works.len();
        ChainSpec::new(works, &vec![8.0; n], &vec![4.0; n], 4.0, 1.0).unwrap()
    }

    fn scenario(machines: usize, trials: usize) -> ClusterScenario {
        let law: Arc<dyn FailureDistribution + Send + Sync> =
            Arc::new(Exponential::from_mtbf(600.0).unwrap());
        ClusterScenario::new(
            machines,
            law,
            1.0 / 600.0,
            vec![spec(&[60.0; 8]), spec(&[40.0; 6]), spec(&[20.0; 4])],
        )
        .unwrap()
        .with_trials(trials)
        .with_seed(11)
    }

    #[test]
    fn outcome_is_bitwise_identical_across_thread_counts() {
        let base = scenario(3, 24);
        let reference = run_cluster_monte_carlo(&base.clone().with_threads(1), || {
            Box::new(BaselinePolicy::CheckpointOnly)
        })
        .unwrap();
        for threads in [2usize, 3, 8] {
            let other = run_cluster_monte_carlo(&base.clone().with_threads(threads), || {
                Box::new(BaselinePolicy::CheckpointOnly)
            })
            .unwrap();
            assert_eq!(reference.samples, other.samples, "threads={threads}");
        }
    }

    #[test]
    fn build_jobs_honours_admission_and_rate_factor() {
        let sc = scenario(4, 4);
        let mut replicate_all =
            BaselinePolicy::Setlur { replicate_fraction: 1.0, rate_factor: 0.2 };
        let replicated = sc.build_jobs(&mut replicate_all).unwrap();
        assert!(replicated.iter().all(|j| j.replica_requested()));
        let mut none = BaselinePolicy::CheckpointOnly;
        let plain = sc.build_jobs(&mut none).unwrap();
        assert!(plain.iter().all(|j| !j.replica_requested()));
        // Sparser planning rate ⇒ no more checkpoints than the base plan.
        for (r, p) in replicated.iter().zip(&plain) {
            let rc = r.plan().iter().filter(|&&b| b).count();
            let pc = p.plan().iter().filter(|&&b| b).count();
            assert!(rc <= pc, "replicated plan should be no denser ({rc} > {pc})");
        }
    }

    #[test]
    fn comparison_is_paired_and_reports_regret() {
        let sc = scenario(3, 16);
        let cmp = compare_baselines(
            &sc,
            &[
                ("checkpoint-only", BaselinePolicy::CheckpointOnly),
                ("always-migrate", BaselinePolicy::AlwaysMigrate),
            ],
        )
        .unwrap();
        assert_eq!(cmp.entries.len(), 2);
        assert_eq!(cmp.entries[cmp.best].regret, 0.0);
        assert!(cmp.entries.iter().all(|e| e.regret >= 0.0));
        // Immediate repair and zero migration overhead: the two policies see
        // the same streams; migration can only shed queueing, which this
        // 3-machine 3-job mix does not have — outcomes must be identical.
        assert_eq!(cmp.entries[0].outcome.makespan.mean, cmp.entries[1].outcome.makespan.mean);
    }

    #[test]
    fn metrics_runner_matches_plain_runner_and_merges_deterministically() {
        let base = scenario(3, 24);
        let factory = || Box::new(BaselinePolicy::AlwaysMigrate) as Box<dyn ClusterPolicy>;
        let plain = run_cluster_monte_carlo(&base.clone().with_threads(1), factory).unwrap();

        let mut reference = MetricsRegistry::new();
        let with_metrics = run_cluster_monte_carlo_with_metrics(
            &base.clone().with_threads(1),
            factory,
            &mut reference,
        )
        .unwrap();
        // Recording observes trials without perturbing them.
        assert_eq!(with_metrics.samples, plain.samples);
        assert_eq!(with_metrics.makespan.mean, plain.makespan.mean);
        assert_eq!(reference.counter("cluster_trials_total"), 24);
        let makespans = reference.histogram("cluster_makespan").unwrap();
        assert_eq!(makespans.count(), 24);

        // Shard-merged registries are bitwise identical at any thread count.
        for threads in [2usize, 3, 8] {
            let mut merged = MetricsRegistry::new();
            let outcome = run_cluster_monte_carlo_with_metrics(
                &base.clone().with_threads(threads),
                factory,
                &mut merged,
            )
            .unwrap();
            assert_eq!(outcome.samples, plain.samples, "threads={threads}");
            assert_eq!(merged, reference, "threads={threads}");
        }
    }

    #[test]
    fn scenario_validates() {
        let law: Arc<dyn FailureDistribution + Send + Sync> =
            Arc::new(Exponential::from_mtbf(100.0).unwrap());
        assert!(ClusterScenario::new(0, Arc::clone(&law), 0.01, vec![spec(&[1.0])]).is_err());
        assert!(ClusterScenario::new(1, Arc::clone(&law), 0.01, vec![]).is_err());
        assert!(ClusterScenario::new(1, Arc::clone(&law), -1.0, vec![spec(&[1.0])]).is_err());
        let sc = ClusterScenario::new(1, law, 0.01, vec![spec(&[1.0])]).unwrap();
        assert!(sc.clone().with_arrivals(vec![1.0, 2.0]).is_err());
        assert!(sc.clone().with_arrivals(vec![-1.0]).is_err());
        assert!(sc.with_repair(ClusterRepair::Fixed(-2.0)).is_err());
    }
}

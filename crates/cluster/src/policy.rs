//! Cluster scheduling policies: what to do when the machine under a job dies.
//!
//! The chain/DAG tiers decide *when to checkpoint*; the cluster tier adds the
//! orthogonal decision *where to keep running*. A [`ClusterPolicy`] is
//! consulted twice per job lifecycle:
//!
//! * at **admission** ([`ClusterPolicy::wants_replica`]) — whether to pay for
//!   a warm replica: a second machine reserved as a failover target, which
//!   inflates every checkpoint by the replication factor (state is shipped to
//!   the replica) and removes a machine from the pool while attached;
//! * at every **machine failure** ([`ClusterPolicy::on_failure`]) — choose a
//!   [`FailureAction`]: wait out the repair and restart from the checkpoint
//!   on the same machine, migrate the checkpoint to another machine (pay the
//!   migration overhead and possibly queue), or fail over to the replica
//!   (cheapest, if it is still alive — correlated bursts can fell the replica
//!   together with the primary).
//!
//! [`BaselinePolicy`] packages the four reference strategies the e13
//! experiment compares: checkpoint-only, always-migrate, replicate-top-k and
//! the Setlur-style heuristic (replicate the biggest jobs *and* checkpoint
//! them more sparsely, trading replication cost against checkpoint
//! frequency).

/// What a policy sees at job admission.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionContext {
    /// Index of the job being admitted.
    pub job: usize,
    /// Total work of the job's chain.
    pub total_work: f64,
    /// Rank of the job by total work, `0` = largest (ties broken by index).
    pub work_rank: usize,
    /// Number of jobs in the batch.
    pub job_count: usize,
    /// Number of machines in the pool.
    pub machine_count: usize,
}

/// What a policy sees when the machine under a job fails.
#[derive(Debug, Clone, Copy)]
pub struct FailureContext {
    /// Index of the failed job.
    pub job: usize,
    /// Machine the job was running on.
    pub machine: usize,
    /// Absolute failure time.
    pub failure_time: f64,
    /// When the failed machine finishes repairing.
    pub repair_done: f64,
    /// Failures this job has absorbed so far (this one included).
    pub retries: u64,
    /// Position execution would resume at (task after the last checkpoint).
    pub resume_position: usize,
    /// Work remaining from the resume position to the end of the chain.
    pub remaining_work: f64,
    /// Whether a replica is attached **and** was alive at the failure
    /// instant. [`FailureAction::Failover`] is only honoured when true.
    pub replica_alive: bool,
    /// Number of idle machines at the failure instant (the failed machine
    /// excluded) — migration targets that could start immediately.
    pub idle_machines: usize,
    /// The scenario's default migration overhead, for policies that pass it
    /// through.
    pub migration_overhead: f64,
}

/// The recovery action a [`ClusterPolicy`] chooses on a machine failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureAction {
    /// Wait for the machine to repair, then recover from the last checkpoint
    /// on the same machine (the single-machine §2 behaviour).
    RestartFromCheckpoint,
    /// Re-queue the job: pay `overhead` when it is next dispatched (on top of
    /// the normal recovery), resuming from the last checkpoint on whichever
    /// healthy machine picks it up.
    Migrate {
        /// Migration cost paid at re-dispatch (clamped to ≥ 0).
        overhead: f64,
    },
    /// Continue on the warm replica immediately (honoured only when
    /// [`FailureContext::replica_alive`] is true; otherwise the engine falls
    /// back to [`FailureAction::RestartFromCheckpoint`]).
    Failover,
}

/// A cluster scheduling policy (see the module docs).
pub trait ClusterPolicy {
    /// Whether to reserve a warm replica for this job at admission.
    fn wants_replica(&mut self, ctx: &AdmissionContext) -> bool;

    /// The action to take when the machine under a job fails.
    fn on_failure(&mut self, ctx: &FailureContext) -> FailureAction;

    /// Factor applied to the planning failure rate of **replicated** jobs
    /// (< 1.0 ⇒ sparser checkpoints: failover makes failures cheaper, so the
    /// checkpoint/risk balance shifts — the Setlur trade-off). Non-replicated
    /// jobs always plan at the base rate.
    fn replicated_plan_rate_factor(&self) -> f64 {
        1.0
    }
}

impl<P: ClusterPolicy + ?Sized> ClusterPolicy for &mut P {
    fn wants_replica(&mut self, ctx: &AdmissionContext) -> bool {
        (**self).wants_replica(ctx)
    }

    fn on_failure(&mut self, ctx: &FailureContext) -> FailureAction {
        (**self).on_failure(ctx)
    }

    fn replicated_plan_rate_factor(&self) -> f64 {
        (**self).replicated_plan_rate_factor()
    }
}

impl<P: ClusterPolicy + ?Sized> ClusterPolicy for Box<P> {
    fn wants_replica(&mut self, ctx: &AdmissionContext) -> bool {
        (**self).wants_replica(ctx)
    }

    fn on_failure(&mut self, ctx: &FailureContext) -> FailureAction {
        (**self).on_failure(ctx)
    }

    fn replicated_plan_rate_factor(&self) -> f64 {
        (**self).replicated_plan_rate_factor()
    }
}

/// The reference policies compared by the e13 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaselinePolicy {
    /// Never replicate, never migrate: every failure waits out the repair and
    /// restarts from the checkpoint — the single-machine model lifted to a
    /// pool.
    CheckpointOnly,
    /// Never replicate; every failure migrates the checkpoint to another
    /// machine (queuing if none is healthy).
    AlwaysMigrate,
    /// Keep warm replicas for the `k` largest jobs (by total work); fail over
    /// when the replica survived, migrate otherwise.
    ReplicateTopK {
        /// Number of jobs (largest first) that get replicas.
        k: usize,
    },
    /// Setlur-style heuristic: replicate the largest `replicate_fraction` of
    /// the batch **and** plan their checkpoints at `rate_factor × λ`
    /// (sparser checkpoints — replication already covers most failures).
    /// On failure: fail over if possible, migrate if a machine is idle,
    /// otherwise wait out the repair.
    Setlur {
        /// Fraction of jobs (largest first, rounded up) that get replicas.
        replicate_fraction: f64,
        /// Planning-rate factor for replicated jobs (in `(0, 1]`).
        rate_factor: f64,
    },
}

impl ClusterPolicy for BaselinePolicy {
    fn wants_replica(&mut self, ctx: &AdmissionContext) -> bool {
        match *self {
            BaselinePolicy::CheckpointOnly | BaselinePolicy::AlwaysMigrate => false,
            BaselinePolicy::ReplicateTopK { k } => ctx.work_rank < k,
            BaselinePolicy::Setlur { replicate_fraction, .. } => {
                let quota = (replicate_fraction * ctx.job_count as f64).ceil() as usize;
                ctx.work_rank < quota
            }
        }
    }

    fn on_failure(&mut self, ctx: &FailureContext) -> FailureAction {
        match *self {
            BaselinePolicy::CheckpointOnly => FailureAction::RestartFromCheckpoint,
            BaselinePolicy::AlwaysMigrate => {
                FailureAction::Migrate { overhead: ctx.migration_overhead }
            }
            BaselinePolicy::ReplicateTopK { .. } => {
                if ctx.replica_alive {
                    FailureAction::Failover
                } else {
                    FailureAction::Migrate { overhead: ctx.migration_overhead }
                }
            }
            BaselinePolicy::Setlur { .. } => {
                if ctx.replica_alive {
                    FailureAction::Failover
                } else if ctx.idle_machines > 0 {
                    FailureAction::Migrate { overhead: ctx.migration_overhead }
                } else {
                    FailureAction::RestartFromCheckpoint
                }
            }
        }
    }

    fn replicated_plan_rate_factor(&self) -> f64 {
        match *self {
            BaselinePolicy::Setlur { rate_factor, .. } => rate_factor,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(rank: usize) -> AdmissionContext {
        AdmissionContext {
            job: 0,
            total_work: 100.0,
            work_rank: rank,
            job_count: 4,
            machine_count: 4,
        }
    }

    fn failure(replica_alive: bool, idle: usize) -> FailureContext {
        FailureContext {
            job: 0,
            machine: 1,
            failure_time: 50.0,
            repair_done: 650.0,
            retries: 1,
            resume_position: 2,
            remaining_work: 300.0,
            replica_alive,
            idle_machines: idle,
            migration_overhead: 30.0,
        }
    }

    #[test]
    fn checkpoint_only_always_restarts() {
        let mut p = BaselinePolicy::CheckpointOnly;
        assert!(!p.wants_replica(&admission(0)));
        assert_eq!(p.on_failure(&failure(true, 3)), FailureAction::RestartFromCheckpoint);
    }

    #[test]
    fn always_migrate_passes_the_default_overhead_through() {
        let mut p = BaselinePolicy::AlwaysMigrate;
        assert!(!p.wants_replica(&admission(0)));
        assert_eq!(p.on_failure(&failure(false, 0)), FailureAction::Migrate { overhead: 30.0 });
    }

    #[test]
    fn replicate_top_k_ranks_by_work() {
        let mut p = BaselinePolicy::ReplicateTopK { k: 2 };
        assert!(p.wants_replica(&admission(0)));
        assert!(p.wants_replica(&admission(1)));
        assert!(!p.wants_replica(&admission(2)));
        assert_eq!(p.on_failure(&failure(true, 1)), FailureAction::Failover);
        assert_eq!(p.on_failure(&failure(false, 1)), FailureAction::Migrate { overhead: 30.0 });
    }

    #[test]
    fn setlur_trades_replication_against_checkpoints() {
        let mut p = BaselinePolicy::Setlur { replicate_fraction: 0.5, rate_factor: 0.5 };
        // 4 jobs × 0.5 → the 2 largest are replicated.
        assert!(p.wants_replica(&admission(1)));
        assert!(!p.wants_replica(&admission(2)));
        assert_eq!(p.replicated_plan_rate_factor(), 0.5);
        assert_eq!(p.on_failure(&failure(true, 0)), FailureAction::Failover);
        assert_eq!(p.on_failure(&failure(false, 2)), FailureAction::Migrate { overhead: 30.0 });
        assert_eq!(p.on_failure(&failure(false, 0)), FailureAction::RestartFromCheckpoint);
    }

    #[test]
    fn trait_objects_forward() {
        let mut boxed: Box<dyn ClusterPolicy> = Box::new(BaselinePolicy::CheckpointOnly);
        assert_eq!(boxed.on_failure(&failure(false, 0)), FailureAction::RestartFromCheckpoint);
        assert_eq!(boxed.replicated_plan_rate_factor(), 1.0);
    }
}

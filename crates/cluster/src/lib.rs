//! Fault-injected multi-machine cluster tier for checkpointed workflows.
//!
//! The chain and DAG tiers answer *when to checkpoint* on one machine; this
//! crate lifts the §2 execution model to a **pool of machines** under
//! correlated failures and asks *where to keep running*. A deterministic
//! event-driven engine ([`run_cluster`]) executes many chain jobs over a
//! machine pool whose failures come from a [`MachineFailureSource`] — in
//! production the correlated-shock
//! [`ClusterFailureInjector`](ckpt_failure::ClusterFailureInjector). On every
//! machine failure a [`ClusterPolicy`] chooses between restarting in place,
//! migrating the checkpoint, or failing over to a warm replica; when every
//! machine is down, jobs queue gracefully and finish after repairs.
//!
//! The engine shares its §2 inner loop with the single-machine chain engine
//! (the simulator's `rollback` helpers), so a degenerate one-machine cluster
//! reproduces [`simulate_policy`](ckpt_simulator::simulate_policy)
//! **bitwise** — the cluster tier provably generalises the validated chain
//! tier rather than re-implementing it.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ckpt_adaptive::ChainSpec;
//! use ckpt_cluster::{
//!     compare_baselines, BaselinePolicy, ClusterScenario,
//! };
//! use ckpt_failure::{Exponential, FailureDistribution, ShockConfig};
//!
//! let law: Arc<dyn FailureDistribution + Send + Sync> =
//!     Arc::new(Exponential::from_mtbf(500.0).unwrap());
//! let job = ChainSpec::new(&[50.0; 6], &[8.0; 6], &[4.0; 6], 4.0, 1.0).unwrap();
//! let scenario = ClusterScenario::new(3, law, 1.0 / 500.0, vec![job.clone(), job])
//!     .unwrap()
//!     .with_shocks(ShockConfig::new(1.0 / 2000.0, 1.0, 5.0).unwrap())
//!     .with_trials(64)
//!     .with_seed(7);
//! let comparison = compare_baselines(
//!     &scenario,
//!     &[
//!         ("checkpoint-only", BaselinePolicy::CheckpointOnly),
//!         ("replicate-top-1", BaselinePolicy::ReplicateTopK { k: 1 }),
//!     ],
//! )
//! .unwrap();
//! assert_eq!(comparison.entries[comparison.best].regret, 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod job;
mod montecarlo;
mod policy;
mod source;

pub use engine::{run_cluster, run_cluster_traced, ClusterConfig, ClusterOutcome};
pub use error::ClusterError;
pub use job::{ClusterJob, JobRecord};
pub use montecarlo::{
    compare_baselines, compare_cluster_policies, run_cluster_monte_carlo,
    run_cluster_monte_carlo_with_metrics, ClusterComparison, ClusterComparisonEntry,
    ClusterMonteCarloOutcome, ClusterPolicyFactory, ClusterRepair, ClusterScenario,
};
pub use policy::{AdmissionContext, BaselinePolicy, ClusterPolicy, FailureAction, FailureContext};
pub use source::{ExponentialMachineSource, MachineFailureSource};

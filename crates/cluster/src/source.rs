//! Machine-level failure sources: the engine's view of *when machines fail*.
//!
//! The cluster engine consumes failures one machine at a time through
//! [`MachineFailureSource`] — the multi-machine generalisation of the
//! simulator's [`FailureStream`]. The production implementation is
//! [`ClusterFailureInjector`] (correlated shocks, repair intervals); the
//! [`ExponentialMachineSource`] wraps one independent [`ExponentialStream`]
//! per machine with instantaneous repair, reproducing the exact stream
//! semantics of the single-machine chain engine — it exists so the
//! degenerate single-machine cluster run can be compared **bitwise** against
//! [`simulate_policy`](ckpt_simulator::simulate_policy).

use ckpt_failure::ClusterFailureInjector;
use ckpt_simulator::{ExponentialStream, FailureStream};

/// Per-machine failure streams plus the repair protocol.
///
/// Queries per machine must use non-decreasing `after` values; candidates
/// beyond `after` may be re-returned (the [`FailureStream`] discipline,
/// machine by machine). [`begin_repair`](Self::begin_repair) tells the source
/// a machine failed at `at` and is being repaired; the returned instant is
/// when the machine can run jobs again, and no failure may be reported inside
/// the repair interval afterwards.
pub trait MachineFailureSource {
    /// Number of machines the source covers.
    fn machine_count(&self) -> usize;

    /// First failure of `machine` strictly after `after`.
    fn next_failure_after(&mut self, machine: usize, after: f64) -> f64;

    /// Machine `machine` failed at `at`; returns the repair-completion time
    /// (`at` itself when repair is instantaneous).
    fn begin_repair(&mut self, machine: usize, at: f64) -> f64;
}

impl MachineFailureSource for ClusterFailureInjector {
    fn machine_count(&self) -> usize {
        ClusterFailureInjector::machine_count(self)
    }

    fn next_failure_after(&mut self, machine: usize, after: f64) -> f64 {
        ClusterFailureInjector::next_failure_after(self, machine, after)
    }

    fn begin_repair(&mut self, machine: usize, at: f64) -> f64 {
        ClusterFailureInjector::begin_repair(self, machine, at)
    }
}

/// Independent per-machine Exponential streams with instantaneous repair.
///
/// Machine `m`'s stream is `ExponentialStream::new(lambda, seeds[m])` — the
/// exact stream the chain Monte-Carlo driver builds per trial. A
/// single-machine pool over this source makes the cluster engine degenerate
/// to [`simulate_policy`](ckpt_simulator::simulate_policy) seed for seed.
#[derive(Debug)]
pub struct ExponentialMachineSource {
    streams: Vec<ExponentialStream>,
}

impl ExponentialMachineSource {
    /// One stream per entry of `seeds`, all with platform rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite (the
    /// [`ExponentialStream`] contract).
    pub fn new(lambda: f64, seeds: &[u64]) -> Self {
        ExponentialMachineSource {
            streams: seeds.iter().map(|&s| ExponentialStream::new(lambda, s)).collect(),
        }
    }
}

impl MachineFailureSource for ExponentialMachineSource {
    fn machine_count(&self) -> usize {
        self.streams.len()
    }

    fn next_failure_after(&mut self, machine: usize, after: f64) -> f64 {
        self.streams[machine].next_failure_after(after).expect("exponential streams never exhaust")
    }

    fn begin_repair(&mut self, _machine: usize, at: f64) -> f64 {
        at
    }
}

/// A single machine of a [`MachineFailureSource`] viewed as a
/// [`FailureStream`], so the engine can drive the shared rollback helpers
/// (`run_phase` and friends) unchanged.
pub(crate) struct MachineStream<'a, S: MachineFailureSource + ?Sized> {
    source: &'a mut S,
    machine: usize,
}

impl<'a, S: MachineFailureSource + ?Sized> MachineStream<'a, S> {
    pub(crate) fn new(source: &'a mut S, machine: usize) -> Self {
        MachineStream { source, machine }
    }
}

impl<S: MachineFailureSource + ?Sized> FailureStream for MachineStream<'_, S> {
    fn next_failure_after(&mut self, after: f64) -> Option<f64> {
        Some(self.source.next_failure_after(self.machine, after))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_failure::Exponential;

    #[test]
    fn exponential_source_matches_plain_streams() {
        let lambda = 1.0 / 500.0;
        let seeds = [7u64, 8, 9];
        let mut source = ExponentialMachineSource::new(lambda, &seeds);
        assert_eq!(source.machine_count(), 3);
        for (m, &seed) in seeds.iter().enumerate() {
            let mut reference = ExponentialStream::new(lambda, seed);
            let mut after = 0.0;
            for _ in 0..50 {
                let f = source.next_failure_after(m, after);
                assert_eq!(f, reference.next_failure_after(after).unwrap());
                after = f;
            }
        }
    }

    #[test]
    fn exponential_source_repair_is_instantaneous() {
        let mut source = ExponentialMachineSource::new(0.001, &[1]);
        assert_eq!(source.begin_repair(0, 123.5), 123.5);
    }

    #[test]
    fn injector_implements_the_trait() {
        let law = Exponential::from_mtbf(100.0).unwrap();
        let mut injector = ClusterFailureInjector::homogeneous(2, law, 3).unwrap();
        let src: &mut dyn MachineFailureSource = &mut injector;
        assert_eq!(src.machine_count(), 2);
        let f = src.next_failure_after(0, 0.0);
        assert!(f > 0.0);
        assert_eq!(src.begin_repair(0, f), f);
    }

    #[test]
    fn machine_stream_adapts_one_machine() {
        let mut source = ExponentialMachineSource::new(1.0 / 200.0, &[4, 5]);
        let expect = {
            let mut reference = ExponentialStream::new(1.0 / 200.0, 5);
            reference.next_failure_after(10.0).unwrap()
        };
        let mut view = MachineStream::new(&mut source, 1);
        assert_eq!(view.next_failure_after(10.0), Some(expect));
    }
}

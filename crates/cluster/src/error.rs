//! Error type for cluster construction and execution.

use std::error::Error;
use std::fmt;

/// Error returned by cluster construction, planning or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The machine pool is empty.
    EmptyCluster,
    /// No jobs were submitted.
    NoJobs,
    /// A job's checkpoint plan does not cover its task chain.
    PlanLengthMismatch {
        /// Index of the offending job.
        job: usize,
        /// Length of the supplied plan.
        plan: usize,
        /// Number of tasks in the chain.
        tasks: usize,
    },
    /// A numeric parameter was expected to be non-negative and finite.
    InvalidParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// The failure source covers fewer machines than the pool.
    MachineCountMismatch {
        /// Machines in the pool.
        machines: usize,
        /// Machines the failure source knows about.
        source: usize,
    },
    /// The event-driven simulation exceeded its safety cap (a policy /
    /// parameter combination that can never make progress).
    EventCapExceeded {
        /// The cap that was hit.
        cap: u64,
    },
    /// Computing a job's checkpoint plan failed.
    Planning(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyCluster => {
                write!(f, "a cluster must contain at least one machine")
            }
            ClusterError::NoJobs => write!(f, "a cluster run needs at least one job"),
            ClusterError::PlanLengthMismatch { job, plan, tasks } => {
                write!(
                    f,
                    "job {job}: checkpoint plan covers {plan} tasks but the chain has {tasks}"
                )
            }
            ClusterError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` must be non-negative and finite, got {value}")
            }
            ClusterError::MachineCountMismatch { machines, source } => {
                write!(f, "pool has {machines} machines but the failure source covers {source}")
            }
            ClusterError::EventCapExceeded { cap } => {
                write!(f, "cluster simulation exceeded the event cap of {cap} (livelock guard)")
            }
            ClusterError::Planning(msg) => write!(f, "checkpoint planning failed: {msg}"),
        }
    }
}

impl Error for ClusterError {}

/// Validates that `value` is finite and non-negative.
pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> Result<f64, ClusterError> {
    if !value.is_finite() || value < 0.0 {
        return Err(ClusterError::InvalidParameter { name, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(ClusterError, &str)> = vec![
            (ClusterError::EmptyCluster, "machine"),
            (ClusterError::NoJobs, "job"),
            (ClusterError::PlanLengthMismatch { job: 2, plan: 3, tasks: 5 }, "job 2"),
            (ClusterError::InvalidParameter { name: "overhead", value: -1.0 }, "overhead"),
            (ClusterError::MachineCountMismatch { machines: 4, source: 2 }, "4"),
            (ClusterError::EventCapExceeded { cap: 10 }, "event cap"),
            (ClusterError::Planning("rate".into()), "rate"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
        }
    }

    #[test]
    fn ensure_non_negative_validates() {
        assert!(ensure_non_negative("x", 0.0).is_ok());
        assert!(ensure_non_negative("x", -0.5).is_err());
        assert!(ensure_non_negative("x", f64::NAN).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}

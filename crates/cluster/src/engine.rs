//! The deterministic event-driven cluster engine.
//!
//! A pool of machines executes many chain jobs concurrently. Each dispatched
//! job is simulated **synchronously** on its machine with the exact §2
//! semantics of the single-machine chain engine — the same
//! [`run_phase`]/[`absorb_run_failure`]/[`absorb_recovery_failure`]/
//! [`commit_run`] helpers, called in the same order — so a single-machine,
//! no-migration, no-replica cluster run is **bitwise identical** to
//! [`simulate_policy`](ckpt_simulator::simulate_policy). Synchronous
//! run-ahead is sound because machines own disjoint failure streams and a
//! running job cannot be preempted: cross-machine interaction happens only
//! through the ready queue and replica attachment, both resolved at
//! event-processing times.
//!
//! On a machine failure the job's [`ClusterPolicy`] picks a
//! [`FailureAction`]:
//!
//! * **restart** — the job holds the machine, waits out the §2 downtime and
//!   any remaining machine repair, and recovers in place;
//! * **migrate** — the job re-enters the ready queue (plus retry backoff once
//!   its budget is exhausted) and pays the migration overhead at its next
//!   dispatch, on whichever machine picks it up;
//! * **failover** — the job continues immediately on the warm replica it paid
//!   to keep (checkpoints were inflated by the replication factor, and the
//!   replica machine was reserved). The replica watches its own failure
//!   stream while standing by, so a correlated burst can kill it together
//!   with the primary — failover then degrades to a restart.
//!
//! **Graceful degradation**: when no machine is idle (all busy or repairing),
//! ready jobs simply wait in FIFO order — queue depth and per-job waiting
//! time grow, but no error is produced; repairs eventually free machines and
//! the queue drains.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{ensure_non_negative, ClusterError};
use crate::job::{ClusterJob, JobRecord};
use crate::policy::{ClusterPolicy, FailureAction, FailureContext};
use crate::source::{MachineFailureSource, MachineStream};
use ckpt_simulator::rollback::{
    absorb_recovery_failure, absorb_run_failure, commit_run, run_phase, PhaseOutcome,
};
use ckpt_simulator::{ExecutionRecord, TimeBreakdown};
use ckpt_telemetry::{NoopSink, TelemetrySink, TraceEvent};

/// Cluster-level cost and robustness knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    migration_overhead: f64,
    failover_overhead: f64,
    replication_checkpoint_factor: f64,
    retry_budget: u64,
    backoff_base: f64,
    backoff_cap: f64,
    event_cap: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            migration_overhead: 0.0,
            failover_overhead: 0.0,
            replication_checkpoint_factor: 1.0,
            retry_budget: 8,
            backoff_base: 0.0,
            backoff_cap: 0.0,
            event_cap: 1_000_000,
        }
    }
}

impl ClusterConfig {
    /// Default migration overhead handed to policies (builder style).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if the value is negative or non-finite.
    pub fn with_migration_overhead(mut self, value: f64) -> Result<Self, ClusterError> {
        self.migration_overhead = ensure_non_negative("migration_overhead", value)?;
        Ok(self)
    }

    /// Overhead paid when failing over to the replica (builder style).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if the value is negative or non-finite.
    pub fn with_failover_overhead(mut self, value: f64) -> Result<Self, ClusterError> {
        self.failover_overhead = ensure_non_negative("failover_overhead", value)?;
        Ok(self)
    }

    /// Multiplier (≥ 1) applied to checkpoint costs while a replica is
    /// attached — shipping state to the replica makes checkpoints dearer
    /// (builder style).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if the factor is below 1 or non-finite.
    pub fn with_replication_checkpoint_factor(mut self, value: f64) -> Result<Self, ClusterError> {
        if !value.is_finite() || value < 1.0 {
            return Err(ClusterError::InvalidParameter {
                name: "replication_checkpoint_factor",
                value,
            });
        }
        self.replication_checkpoint_factor = value;
        Ok(self)
    }

    /// Failures a job may absorb before migration re-admissions start paying
    /// exponential backoff (builder style).
    pub fn with_retry_budget(mut self, budget: u64) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Backoff parameters: re-admission `i` beyond the retry budget waits
    /// `base · 2^(i−1)`, capped at `cap` (builder style).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if either value is negative or non-finite.
    pub fn with_backoff(mut self, base: f64, cap: f64) -> Result<Self, ClusterError> {
        self.backoff_base = ensure_non_negative("backoff_base", base)?;
        self.backoff_cap = ensure_non_negative("backoff_cap", cap)?;
        Ok(self)
    }

    /// Safety cap on processed events (builder style) — a livelock guard, not
    /// a tuning knob.
    pub fn with_event_cap(mut self, cap: u64) -> Self {
        self.event_cap = cap;
        self
    }

    /// The default migration overhead.
    pub fn migration_overhead(&self) -> f64 {
        self.migration_overhead
    }

    /// The failover overhead.
    pub fn failover_overhead(&self) -> f64 {
        self.failover_overhead
    }

    /// The checkpoint inflation factor while a replica is attached.
    pub fn replication_checkpoint_factor(&self) -> f64 {
        self.replication_checkpoint_factor
    }
}

/// The outcome of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Per-job outcomes, in job order.
    pub jobs: Vec<JobRecord>,
    /// Completion time of the last job.
    pub makespan: f64,
    /// Useful machine utilisation: total useful work over
    /// `machines × makespan`.
    pub utilisation: f64,
    /// Largest number of jobs simultaneously waiting for a machine — the
    /// graceful-degradation observable.
    pub peak_queue_depth: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A job entered (or re-entered) the ready queue.
    JobReady(usize),
    /// A machine became idle (job completed, or repair finished after the
    /// job left it).
    MachineFreed(usize),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, ties
        // broken by insertion order for determinism.
        other.time.total_cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

/// Mutable per-job execution state (the chain-engine state plus cluster
/// metadata), persisted across migrations.
#[derive(Debug)]
struct JobState {
    position: usize,
    last_checkpoint: Option<usize>,
    failure_times: Vec<f64>,
    breakdown: TimeBreakdown,
    run_start: f64,
    checkpoints: u64,
    decisions: u64,
    retries: u64,
    waiting: f64,
    migrations: u64,
    failovers: u64,
    /// Overhead to pay at the next dispatch (migration cost).
    pending_overhead: f64,
    /// Whether the next execution episode starts with a recovery.
    needs_recovery: bool,
    /// When the job entered the ready queue (to account waiting).
    ready_since: f64,
    completed_at: Option<f64>,
}

impl JobState {
    fn new(arrival: f64) -> Self {
        JobState {
            position: 0,
            last_checkpoint: None,
            failure_times: Vec::new(),
            breakdown: TimeBreakdown::default(),
            run_start: 0.0,
            checkpoints: 0,
            decisions: 0,
            retries: 0,
            waiting: 0.0,
            migrations: 0,
            failovers: 0,
            pending_overhead: 0.0,
            needs_recovery: false,
            ready_since: arrival,
            completed_at: None,
        }
    }

    fn resume_position(&self) -> usize {
        self.last_checkpoint.map_or(0, |k| k + 1)
    }
}

/// How an execution episode left the machine-failure handler.
enum AfterFailure {
    /// Keep executing (possibly on the replica after a failover): re-enter
    /// the recovery phase on the current machine.
    Resume,
    /// The job left its machine (migration): re-enqueue at `ready_at`.
    Leave { ready_at: f64 },
}

/// Runs `jobs` on a pool of `machines` machines whose failures come from
/// `source`, consulting `policy` on every machine failure.
///
/// Returns one [`JobRecord`] per job (same order) plus cluster-level
/// aggregates. Jobs queue FIFO; machines are picked lowest-index-first; every
/// tie is broken deterministically, so a run is a pure function of its
/// inputs.
///
/// # Errors
///
/// * [`ClusterError::EmptyCluster`] if `machines == 0`;
/// * [`ClusterError::NoJobs`] if `jobs` is empty;
/// * [`ClusterError::MachineCountMismatch`] if `source` covers fewer than
///   `machines` machines;
/// * [`ClusterError::PlanLengthMismatch`] if a job's plan is inconsistent
///   (jobs constructed via [`ClusterJob::new`] cannot trip this);
/// * [`ClusterError::EventCapExceeded`] if the simulation fails to make
///   progress within the configured event cap.
pub fn run_cluster<S, P>(
    jobs: &[ClusterJob],
    machines: usize,
    source: &mut S,
    policy: &mut P,
    config: &ClusterConfig,
) -> Result<ClusterOutcome, ClusterError>
where
    S: MachineFailureSource + ?Sized,
    P: ClusterPolicy + ?Sized,
{
    run_cluster_traced(jobs, machines, source, policy, config, &mut NoopSink)
}

/// [`run_cluster`] with structured trace emission: every engine transition
/// (job ready, dispatch, machine failure, repair, migration, failover,
/// replica loss, queue-depth change, job completion, standby release) is
/// recorded into `sink` as a **sim-domain** [`TraceEvent`], stamped with
/// simulated time.
///
/// The trace is part of the deterministic output surface: the outcome and
/// the emitted event stream are pure functions of the inputs, bitwise
/// identical to the sink-less [`run_cluster`] (instrumentation is
/// observation-only, and event construction is skipped entirely for
/// disabled sinks such as [`ckpt_telemetry::NoopSink`]).
///
/// # Errors
///
/// Exactly the [`run_cluster`] error conditions.
pub fn run_cluster_traced<S, P>(
    jobs: &[ClusterJob],
    machines: usize,
    source: &mut S,
    policy: &mut P,
    config: &ClusterConfig,
    sink: &mut dyn TelemetrySink,
) -> Result<ClusterOutcome, ClusterError>
where
    S: MachineFailureSource + ?Sized,
    P: ClusterPolicy + ?Sized,
{
    if machines == 0 {
        return Err(ClusterError::EmptyCluster);
    }
    if jobs.is_empty() {
        return Err(ClusterError::NoJobs);
    }
    if source.machine_count() < machines {
        return Err(ClusterError::MachineCountMismatch {
            machines,
            source: source.machine_count(),
        });
    }
    for (j, job) in jobs.iter().enumerate() {
        if job.plan().len() != job.tasks().len() {
            return Err(ClusterError::PlanLengthMismatch {
                job: j,
                plan: job.plan().len(),
                tasks: job.tasks().len(),
            });
        }
    }

    let mut states: Vec<JobState> = jobs.iter().map(|job| JobState::new(job.arrival())).collect();
    let mut idle = vec![true; machines];
    let mut events = EventQueue::new();
    for (j, job) in jobs.iter().enumerate() {
        events.push(job.arrival(), EventKind::JobReady(j));
    }

    let mut ready: Vec<usize> = Vec::new();
    let mut peak_queue_depth = 0usize;
    let mut processed = 0u64;

    while let Some(event) = events.pop() {
        processed += 1;
        if processed > config.event_cap {
            return Err(ClusterError::EventCapExceeded { cap: config.event_cap });
        }
        match event.kind {
            EventKind::JobReady(j) => {
                ready.push(j);
                if sink.enabled() {
                    sink.record(&TraceEvent::sim("job_ready", event.time).with("job", j));
                }
            }
            EventKind::MachineFreed(m) => {
                idle[m] = true;
                if sink.enabled() {
                    sink.record(&TraceEvent::sim("machine_up", event.time).with("machine", m));
                }
            }
        }
        // Drain every event at this exact instant before dispatching, so
        // simultaneous arrivals contend (and are measured) together.
        while events.peek_time() == Some(event.time) {
            processed += 1;
            if processed > config.event_cap {
                return Err(ClusterError::EventCapExceeded { cap: config.event_cap });
            }
            match events.pop().expect("peeked").kind {
                EventKind::JobReady(j) => {
                    ready.push(j);
                    if sink.enabled() {
                        sink.record(&TraceEvent::sim("job_ready", event.time).with("job", j));
                    }
                }
                EventKind::MachineFreed(m) => {
                    idle[m] = true;
                    if sink.enabled() {
                        sink.record(&TraceEvent::sim("machine_up", event.time).with("machine", m));
                    }
                }
            }
        }
        peak_queue_depth = peak_queue_depth.max(ready.len());
        if sink.enabled() {
            sink.record(
                &TraceEvent::sim("queue_depth", event.time)
                    .with("depth", ready.len())
                    .with("idle_machines", idle.iter().filter(|&&free| free).count()),
            );
        }

        // Dispatch as many ready jobs as there are idle machines, FIFO,
        // lowest machine index first.
        while !ready.is_empty() {
            let Some(machine) = idle.iter().position(|&free| free) else { break };
            let j = ready.remove(0);
            idle[machine] = false;
            // Reserve the replica from the remaining idle machines; when the
            // pool is too busy the job simply runs unreplicated.
            let buddy = if jobs[j].replica_requested() {
                let b = idle.iter().position(|&free| free);
                if let Some(b) = b {
                    idle[b] = false;
                }
                b
            } else {
                None
            };
            if sink.enabled() {
                let mut dispatch = TraceEvent::sim("dispatch", event.time)
                    .with("job", j)
                    .with("machine", machine)
                    .with("waited", event.time - states[j].ready_since);
                if let Some(b) = buddy {
                    dispatch = dispatch.with("replica", b);
                }
                sink.record(&dispatch);
            }
            states[j].waiting += event.time - states[j].ready_since;
            run_episode(
                jobs,
                &mut states,
                &idle,
                &mut events,
                source,
                policy,
                config,
                j,
                machine,
                buddy,
                event.time,
                sink,
            );
        }
    }

    let mut records = Vec::with_capacity(jobs.len());
    let mut makespan = 0.0f64;
    let mut useful = 0.0f64;
    for (j, state) in states.iter().enumerate() {
        let completed_at =
            state.completed_at.ok_or(ClusterError::EventCapExceeded { cap: config.event_cap })?;
        makespan = makespan.max(completed_at);
        useful += state.breakdown.useful;
        records.push(JobRecord {
            record: ExecutionRecord {
                makespan: completed_at - jobs[j].arrival(),
                failures: state.failure_times.len() as u64,
                breakdown: state.breakdown,
            },
            checkpoints: state.checkpoints,
            decisions: state.decisions,
            waiting: state.waiting,
            migrations: state.migrations,
            failovers: state.failovers,
            completed_at,
        });
    }
    let utilisation = if makespan > 0.0 { useful / (machines as f64 * makespan) } else { 0.0 };
    Ok(ClusterOutcome { jobs: records, makespan, utilisation, peak_queue_depth })
}

/// One execution episode: job `j` runs on `machine` (with an optional standby
/// `buddy`) from `start` until it completes or migrates away. Mirrors the
/// chain engine's `policy_core` loop exactly on the restart path.
#[allow(clippy::too_many_arguments)] // flat engine state, one call site
fn run_episode<S, P>(
    jobs: &[ClusterJob],
    states: &mut [JobState],
    idle: &[bool],
    events: &mut EventQueue,
    source: &mut S,
    policy: &mut P,
    config: &ClusterConfig,
    j: usize,
    mut machine: usize,
    mut buddy: Option<usize>,
    start: f64,
    sink: &mut dyn TelemetrySink,
) where
    S: MachineFailureSource + ?Sized,
    P: ClusterPolicy + ?Sized,
{
    let job = &jobs[j];
    let n = job.tasks().len();
    let downtime = job.downtime();
    let mut clock = start;
    // When the buddy started standing by — its failure stream is inspected
    // from here on failover attempts.
    let watch_from = start;

    // Outcome of one failure: mutates everything through the passed-in state.
    macro_rules! on_failure {
        ($at:expr) => {
            failure_decision(
                source,
                policy,
                config,
                idle,
                events,
                &mut states[j],
                job,
                j,
                &mut machine,
                &mut buddy,
                watch_from,
                &mut clock,
                $at,
                sink,
            )
        };
    }

    'episode: loop {
        // Entry overhead: migration cost carried from the previous episode,
        // booked as downtime (the §2 bucket for failure-induced waiting).
        if states[j].pending_overhead > 0.0 {
            clock += states[j].pending_overhead;
            states[j].breakdown.downtime += states[j].pending_overhead;
            states[j].pending_overhead = 0.0;
        }

        if states[j].needs_recovery {
            let recovery = states[j]
                .last_checkpoint
                .map_or(job.initial_recovery(), |k| job.tasks()[k].recovery());
            if recovery > 0.0 {
                loop {
                    let outcome =
                        run_phase(&mut MachineStream::new(source, machine), &mut clock, recovery);
                    match outcome {
                        PhaseOutcome::Failed { at } => {
                            let st = &mut states[j];
                            absorb_recovery_failure(
                                at,
                                downtime,
                                &mut clock,
                                &mut st.failure_times,
                                &mut st.breakdown,
                            );
                            match on_failure!(at) {
                                AfterFailure::Resume => continue,
                                AfterFailure::Leave { ready_at } => {
                                    leave(states, events, j, clock, ready_at);
                                    return;
                                }
                            }
                        }
                        PhaseOutcome::Completed => {
                            states[j].breakdown.recovery += recovery;
                            break;
                        }
                    }
                }
            }
            states[j].needs_recovery = false;
        }
        states[j].run_start = clock;

        while states[j].position < n {
            let position = states[j].position;

            // Work phase.
            let work = job.tasks()[position].work();
            if let PhaseOutcome::Failed { at } =
                run_phase(&mut MachineStream::new(source, machine), &mut clock, work)
            {
                let st = &mut states[j];
                absorb_run_failure(
                    at,
                    downtime,
                    &mut clock,
                    st.run_start,
                    &mut st.failure_times,
                    &mut st.breakdown,
                );
                st.position = st.resume_position();
                st.needs_recovery = true;
                match on_failure!(at) {
                    AfterFailure::Resume => continue 'episode,
                    AfterFailure::Leave { ready_at } => {
                        leave(states, events, j, clock, ready_at);
                        return;
                    }
                }
            }

            // Decision point: final checkpoint mandatory, otherwise the
            // job's static plan decides (counted exactly like the chain
            // engine's policy consultations).
            let take = if position + 1 == n {
                true
            } else {
                states[j].decisions += 1;
                job.plan()[position]
            };

            if take {
                let base = job.tasks()[position].checkpoint();
                // Shipping state to an attached replica inflates the
                // checkpoint.
                let ckpt = if buddy.is_some() {
                    base * config.replication_checkpoint_factor
                } else {
                    base
                };
                if ckpt > 0.0 {
                    if let PhaseOutcome::Failed { at } =
                        run_phase(&mut MachineStream::new(source, machine), &mut clock, ckpt)
                    {
                        let st = &mut states[j];
                        absorb_run_failure(
                            at,
                            downtime,
                            &mut clock,
                            st.run_start,
                            &mut st.failure_times,
                            &mut st.breakdown,
                        );
                        st.position = st.resume_position();
                        st.needs_recovery = true;
                        match on_failure!(at) {
                            AfterFailure::Resume => continue 'episode,
                            AfterFailure::Leave { ready_at } => {
                                leave(states, events, j, clock, ready_at);
                                return;
                            }
                        }
                    }
                }
                let st = &mut states[j];
                commit_run(clock, &mut st.run_start, &mut st.breakdown);
                st.last_checkpoint = Some(position);
                st.checkpoints += 1;
            }
            states[j].position += 1;
        }

        // Chain complete.
        states[j].completed_at = Some(clock);
        if sink.enabled() {
            sink.record(
                &TraceEvent::sim("job_complete", clock).with("job", j).with("machine", machine),
            );
        }
        events.push(clock, EventKind::MachineFreed(machine));
        if let Some(b) = buddy {
            release_standby(source, events, b, watch_from, clock, sink);
        }
        return;
    }
}

/// Book a migration departure: the job left its machine at `left_at` and
/// re-enters the queue at `ready_at`. Waiting accrues from `left_at`, so any
/// retry backoff (`ready_at − left_at`) is accounted as queue time and the
/// makespan decomposition stays exact.
fn leave(states: &mut [JobState], events: &mut EventQueue, j: usize, left_at: f64, ready_at: f64) {
    states[j].ready_since = left_at;
    events.push(ready_at, EventKind::JobReady(j));
}

/// Release a standby machine at episode end: if it silently failed while
/// watching, it must repair before rejoining the pool.
fn release_standby<S: MachineFailureSource + ?Sized>(
    source: &mut S,
    events: &mut EventQueue,
    standby: usize,
    watch_from: f64,
    now: f64,
    sink: &mut dyn TelemetrySink,
) {
    let failed_at = source.next_failure_after(standby, watch_from);
    if failed_at <= now {
        let done = source.begin_repair(standby, failed_at);
        if sink.enabled() {
            sink.record(
                &TraceEvent::sim("standby_release", now)
                    .with("machine", standby)
                    .with("failed", true)
                    .with("repair_done", done),
            );
        }
        events.push(done.max(now), EventKind::MachineFreed(standby));
    } else {
        if sink.enabled() {
            sink.record(
                &TraceEvent::sim("standby_release", now)
                    .with("machine", standby)
                    .with("failed", false),
            );
        }
        events.push(now, EventKind::MachineFreed(standby));
    }
}

/// Handle a machine failure at `at`: repair the machine, consult the policy
/// and apply the chosen action. The §2 downtime has already been absorbed
/// (the clock sits at `at + D`).
#[allow(clippy::too_many_arguments)] // flat engine state, called from three phases
fn failure_decision<S, P>(
    source: &mut S,
    policy: &mut P,
    config: &ClusterConfig,
    idle: &[bool],
    events: &mut EventQueue,
    st: &mut JobState,
    job: &ClusterJob,
    j: usize,
    machine: &mut usize,
    buddy: &mut Option<usize>,
    watch_from: f64,
    clock: &mut f64,
    at: f64,
    sink: &mut dyn TelemetrySink,
) -> AfterFailure
where
    S: MachineFailureSource + ?Sized,
    P: ClusterPolicy + ?Sized,
{
    st.retries += 1;
    let repair_done = source.begin_repair(*machine, at);
    if sink.enabled() {
        sink.record(
            &TraceEvent::sim("machine_failure", at)
                .with("machine", *machine)
                .with("job", j)
                .with("retries", st.retries)
                .with("resume_position", st.resume_position())
                .with("repair_done", repair_done),
        );
    }

    // Is the replica still alive? Its stream is inspected (not consumed past
    // the failure instant); a dead replica goes to repair and detaches.
    let mut replica_alive = false;
    if let Some(b) = *buddy {
        let buddy_failed_at = source.next_failure_after(b, watch_from);
        if buddy_failed_at <= at {
            let done = source.begin_repair(b, buddy_failed_at);
            if sink.enabled() {
                sink.record(
                    &TraceEvent::sim("replica_lost", at)
                        .with("machine", b)
                        .with("job", j)
                        .with("failed_at", buddy_failed_at)
                        .with("repair_done", done),
                );
            }
            events.push(done.max(at), EventKind::MachineFreed(b));
            *buddy = None;
        } else {
            replica_alive = true;
        }
    }

    let resume = st.resume_position();
    let remaining_work: f64 = job.tasks()[resume..].iter().map(|t| t.work()).sum();
    let ctx = FailureContext {
        job: j,
        machine: *machine,
        failure_time: at,
        repair_done,
        retries: st.retries,
        resume_position: resume,
        remaining_work,
        replica_alive,
        // Snapshot as of this job's dispatch: machines freed since then are
        // still queued as events. Advisory only — allocation happens at
        // event-processing time and is always consistent.
        idle_machines: idle.iter().filter(|&&free| free).count(),
        migration_overhead: config.migration_overhead,
    };

    match policy.on_failure(&ctx) {
        FailureAction::Failover if replica_alive => {
            let b = buddy.take().expect("replica_alive implies an attached buddy");
            events.push(repair_done, EventKind::MachineFreed(*machine));
            if sink.enabled() {
                sink.record(
                    &TraceEvent::sim("failover", at)
                        .with("job", j)
                        .with("from_machine", *machine)
                        .with("to_machine", b),
                );
            }
            *machine = b;
            st.failovers += 1;
            if config.failover_overhead > 0.0 {
                *clock += config.failover_overhead;
                st.breakdown.downtime += config.failover_overhead;
            }
            AfterFailure::Resume
        }
        FailureAction::Migrate { overhead } => {
            st.migrations += 1;
            st.pending_overhead = overhead.max(0.0);
            events.push(repair_done, EventKind::MachineFreed(*machine));
            if let Some(b) = buddy.take() {
                // The (healthy) replica is released back to the pool.
                events.push(at, EventKind::MachineFreed(b));
            }
            let excess = st.retries.saturating_sub(config.retry_budget);
            let backoff = if excess > 0 {
                let exponent = (excess - 1).min(62) as i32;
                (config.backoff_base * 2f64.powi(exponent)).min(config.backoff_cap)
            } else {
                0.0
            };
            if sink.enabled() {
                sink.record(
                    &TraceEvent::sim("migrate", *clock)
                        .with("job", j)
                        .with("machine", *machine)
                        .with("backoff", backoff)
                        .with("ready_at", *clock + backoff),
                );
            }
            AfterFailure::Leave { ready_at: *clock + backoff }
        }
        // Restart, or a failover request the engine cannot honour (replica
        // dead or never attached): hold the machine through its repair.
        FailureAction::RestartFromCheckpoint | FailureAction::Failover => {
            if repair_done > *clock {
                st.breakdown.downtime += repair_done - *clock;
                *clock = repair_done;
            }
            if sink.enabled() {
                sink.record(
                    &TraceEvent::sim("restart", *clock)
                        .with("job", j)
                        .with("machine", *machine)
                        .with("resume_position", st.resume_position()),
                );
            }
            AfterFailure::Resume
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BaselinePolicy;
    use ckpt_simulator::ChainTask;

    /// Scripted machine failures with fixed repair duration: machine `m`
    /// fails at each listed time (unless silenced by an earlier repair).
    struct ScriptedSource {
        times: Vec<Vec<f64>>,
        silenced: Vec<f64>,
        repair: f64,
    }

    impl ScriptedSource {
        fn new(times: Vec<Vec<f64>>, repair: f64) -> Self {
            let silenced = vec![f64::NEG_INFINITY; times.len()];
            ScriptedSource { times, silenced, repair }
        }
    }

    impl MachineFailureSource for ScriptedSource {
        fn machine_count(&self) -> usize {
            self.times.len()
        }

        fn next_failure_after(&mut self, machine: usize, after: f64) -> f64 {
            let floor = self.silenced[machine];
            self.times[machine]
                .iter()
                .copied()
                .find(|&t| t > after && t > floor)
                .unwrap_or(f64::INFINITY)
        }

        fn begin_repair(&mut self, machine: usize, at: f64) -> f64 {
            let done = at + self.repair;
            self.silenced[machine] = done;
            done
        }
    }

    fn job(works: &[f64], ckpt: f64, rec: f64, r0: f64, d: f64, plan: &[bool]) -> ClusterJob {
        let tasks: Vec<ChainTask> =
            works.iter().map(|&w| ChainTask::new(w, ckpt, rec).unwrap()).collect();
        ClusterJob::new(tasks, r0, d, plan.to_vec()).unwrap()
    }

    #[test]
    fn failure_free_run_is_pure_work_plus_checkpoints() {
        let jobs = vec![job(&[100.0, 100.0], 10.0, 5.0, 0.0, 3.0, &[true, true])];
        let mut source = ScriptedSource::new(vec![vec![]], 0.0);
        let mut policy = BaselinePolicy::CheckpointOnly;
        let out =
            run_cluster(&jobs, 1, &mut source, &mut policy, &ClusterConfig::default()).unwrap();
        let rec = &out.jobs[0];
        assert_eq!(rec.record.makespan, 220.0);
        assert_eq!(rec.record.failures, 0);
        assert_eq!(rec.checkpoints, 2);
        assert_eq!(rec.decisions, 1);
        assert_eq!(rec.waiting, 0.0);
        assert_eq!(out.makespan, 220.0);
        assert_eq!(out.peak_queue_depth, 1);
        // The useful bucket includes checkpoint time (the chain convention):
        // a failure-free single-job run keeps its machine fully utilised.
        assert_eq!(out.utilisation, 1.0);
    }

    #[test]
    fn restart_waits_out_the_machine_repair() {
        // Work 100, failure at 40. §2 downtime 3 ⇒ clock 43, but the machine
        // repairs until 40 + 50 = 90 ⇒ extra 47 of downtime, then recovery 5
        // and a clean re-run: makespan 90 + 5 + 100 + 10 = 205.
        let jobs = vec![job(&[100.0], 10.0, 5.0, 5.0, 3.0, &[true])];
        let mut source = ScriptedSource::new(vec![vec![40.0]], 50.0);
        let mut policy = BaselinePolicy::CheckpointOnly;
        let out =
            run_cluster(&jobs, 1, &mut source, &mut policy, &ClusterConfig::default()).unwrap();
        let rec = &out.jobs[0];
        assert_eq!(rec.record.makespan, 205.0);
        assert_eq!(rec.record.failures, 1);
        assert_eq!(rec.record.breakdown.lost, 40.0);
        assert_eq!(rec.record.breakdown.downtime, 50.0);
        assert_eq!(rec.record.breakdown.recovery, 5.0);
        assert_eq!(rec.record.breakdown.useful, 110.0);
        assert_eq!(rec.waiting, 0.0);
    }

    #[test]
    fn migration_requeues_and_pays_overhead_elsewhere() {
        // Machine 0 fails at 40 and repairs for 1000; machine 1 is idle. The
        // job re-enters the queue at 40 + D = 43, pays the migration overhead
        // 7 and R₀ = 5, then re-runs: 43 + 7 + 5 + 100 + 10 = 165.
        let jobs = vec![job(&[100.0], 10.0, 5.0, 5.0, 3.0, &[true])];
        let mut source = ScriptedSource::new(vec![vec![40.0], vec![]], 1000.0);
        let mut policy = BaselinePolicy::AlwaysMigrate;
        let config = ClusterConfig::default().with_migration_overhead(7.0).unwrap();
        let out = run_cluster(&jobs, 2, &mut source, &mut policy, &config).unwrap();
        let rec = &out.jobs[0];
        assert_eq!(rec.record.makespan, 165.0);
        assert_eq!(rec.migrations, 1);
        assert_eq!(rec.waiting, 0.0);
        assert_eq!(rec.record.breakdown.downtime, 3.0 + 7.0);
        assert_eq!(rec.record.breakdown.lost, 40.0);
    }

    #[test]
    fn failover_continues_on_the_replica() {
        // Job replicated on machine 1; machine 0 fails at 40. Failover pays 2
        // and recovers R₀ = 5 on the replica: 40 + 3 + 2 + 5 + 100 + 10 = 160.
        let jobs = vec![job(&[100.0], 10.0, 5.0, 5.0, 3.0, &[true]).with_replica()];
        let mut source = ScriptedSource::new(vec![vec![40.0], vec![]], 1000.0);
        let mut policy = BaselinePolicy::ReplicateTopK { k: 1 };
        let config = ClusterConfig::default().with_failover_overhead(2.0).unwrap();
        let out = run_cluster(&jobs, 2, &mut source, &mut policy, &config).unwrap();
        let rec = &out.jobs[0];
        assert_eq!(rec.record.makespan, 160.0);
        assert_eq!(rec.failovers, 1);
        assert_eq!(rec.migrations, 0);
    }

    #[test]
    fn dead_replica_degrades_to_migration() {
        // The replica (machine 1) dies at 30, before the primary's failure at
        // 40 — the burst scenario. ReplicateTopK then migrates; the only
        // healthy machine is 2.
        let jobs = vec![job(&[100.0], 10.0, 5.0, 5.0, 3.0, &[true]).with_replica()];
        let mut source = ScriptedSource::new(vec![vec![40.0], vec![30.0], vec![]], 1000.0);
        let mut policy = BaselinePolicy::ReplicateTopK { k: 1 };
        let out =
            run_cluster(&jobs, 3, &mut source, &mut policy, &ClusterConfig::default()).unwrap();
        let rec = &out.jobs[0];
        assert_eq!(rec.failovers, 0);
        assert_eq!(rec.migrations, 1);
        // 40 + 3 (D) + 0 (overhead) + 5 (R₀) + 100 + 10 = 158.
        assert_eq!(rec.record.makespan, 158.0);
    }

    #[test]
    fn replication_inflates_checkpoints_while_attached() {
        let jobs = vec![job(&[50.0, 50.0], 10.0, 5.0, 5.0, 3.0, &[true, true]).with_replica()];
        let mut source = ScriptedSource::new(vec![vec![], vec![]], 0.0);
        let mut policy = BaselinePolicy::ReplicateTopK { k: 1 };
        let config = ClusterConfig::default().with_replication_checkpoint_factor(1.5).unwrap();
        let out = run_cluster(&jobs, 2, &mut source, &mut policy, &config).unwrap();
        // 50 + 15 + 50 + 15 = 130 (checkpoints cost 10 × 1.5 each).
        assert_eq!(out.jobs[0].record.makespan, 130.0);
    }

    #[test]
    fn jobs_queue_gracefully_when_machines_are_scarce() {
        let jobs = vec![
            job(&[100.0], 10.0, 5.0, 0.0, 3.0, &[true]),
            job(&[100.0], 10.0, 5.0, 0.0, 3.0, &[true]),
        ];
        let mut source = ScriptedSource::new(vec![vec![]], 0.0);
        let mut policy = BaselinePolicy::CheckpointOnly;
        let out =
            run_cluster(&jobs, 1, &mut source, &mut policy, &ClusterConfig::default()).unwrap();
        // FIFO: job 0 runs 0..110, job 1 waits 110 then runs 110..220.
        assert_eq!(out.jobs[0].waiting, 0.0);
        assert_eq!(out.jobs[1].waiting, 110.0);
        assert_eq!(out.jobs[1].completed_at, 220.0);
        assert_eq!(out.jobs[1].record.makespan, 220.0);
        assert_eq!(out.peak_queue_depth, 2);
        assert_eq!(out.makespan, 220.0);
    }

    #[test]
    fn backoff_delays_re_admissions_beyond_the_budget() {
        // Machine 0 fails at 10 (repairing until 16), machine 1 at 31.
        // AlwaysMigrate with a budget of 1: the first re-admission is free,
        // the second pays a backoff of 8 · 2⁰ = 8.
        let jobs = vec![job(&[100.0], 10.0, 5.0, 5.0, 3.0, &[true])];
        let mut source = ScriptedSource::new(vec![vec![10.0], vec![31.0]], 6.0);
        let mut policy = BaselinePolicy::AlwaysMigrate;
        let config = ClusterConfig::default().with_retry_budget(1).with_backoff(8.0, 20.0).unwrap();
        let out = run_cluster(&jobs, 2, &mut source, &mut policy, &config).unwrap();
        let rec = &out.jobs[0];
        assert_eq!(rec.migrations, 2);
        // Failure 1 (within budget): ready at 10 + 3 = 13; m0 is repairing,
        // so m1 takes the job. Recovery R₀ = 5 ⇒ work starts 18; m1 fails at
        // 31 (13 into the work). Retry 2 ⇒ backoff 8: ready at 31 + 3 + 8 =
        // 42, back on m0 (repaired at 16): 42 + 5 + 100 + 10 = 157.
        assert_eq!(rec.record.makespan, 157.0);
        // The backoff window is booked as queue time.
        assert_eq!(rec.waiting, 8.0);
        assert_eq!(rec.record.breakdown.lost, 10.0 + 13.0);
        assert_eq!(rec.record.breakdown.recovery, 10.0);
        assert_eq!(rec.record.breakdown.downtime, 6.0);
        assert_eq!(rec.record.breakdown.useful, 110.0);
    }

    #[test]
    fn validation_errors_are_reported() {
        let jobs = vec![job(&[10.0], 0.0, 0.0, 0.0, 0.0, &[true])];
        let mut source = ScriptedSource::new(vec![vec![]], 0.0);
        let mut policy = BaselinePolicy::CheckpointOnly;
        let config = ClusterConfig::default();
        assert!(matches!(
            run_cluster(&jobs, 0, &mut source, &mut policy, &config),
            Err(ClusterError::EmptyCluster)
        ));
        assert!(matches!(
            run_cluster(&[], 1, &mut source, &mut policy, &config),
            Err(ClusterError::NoJobs)
        ));
        assert!(matches!(
            run_cluster(&jobs, 2, &mut source, &mut policy, &config),
            Err(ClusterError::MachineCountMismatch { .. })
        ));
    }

    #[test]
    fn config_builders_validate() {
        assert!(ClusterConfig::default().with_migration_overhead(-1.0).is_err());
        assert!(ClusterConfig::default().with_failover_overhead(f64::NAN).is_err());
        assert!(ClusterConfig::default().with_replication_checkpoint_factor(0.5).is_err());
        assert!(ClusterConfig::default().with_backoff(-1.0, 0.0).is_err());
        let cfg = ClusterConfig::default()
            .with_migration_overhead(1.0)
            .unwrap()
            .with_failover_overhead(2.0)
            .unwrap()
            .with_replication_checkpoint_factor(1.25)
            .unwrap();
        assert_eq!(cfg.migration_overhead(), 1.0);
        assert_eq!(cfg.failover_overhead(), 2.0);
        assert_eq!(cfg.replication_checkpoint_factor(), 1.25);
    }

    /// One eventful scenario reused by the tracing tests: replication with a
    /// dead buddy (degrades to migration), plus a later restart on the same
    /// machine — it exercises dispatch, failure, replica-loss, migration and
    /// completion events.
    fn eventful_run(sink: &mut dyn TelemetrySink) -> ClusterOutcome {
        let jobs = vec![
            job(&[100.0], 10.0, 5.0, 5.0, 3.0, &[true]).with_replica(),
            job(&[50.0], 10.0, 5.0, 5.0, 3.0, &[true]),
        ];
        let mut source = ScriptedSource::new(vec![vec![40.0], vec![30.0], vec![160.0]], 1000.0);
        let mut policy = BaselinePolicy::ReplicateTopK { k: 1 };
        run_cluster_traced(&jobs, 3, &mut source, &mut policy, &ClusterConfig::default(), sink)
            .unwrap()
    }

    #[test]
    fn traced_run_matches_untraced_run_exactly() {
        let jobs = vec![
            job(&[100.0], 10.0, 5.0, 5.0, 3.0, &[true]).with_replica(),
            job(&[50.0], 10.0, 5.0, 5.0, 3.0, &[true]),
        ];
        let mut policy = BaselinePolicy::ReplicateTopK { k: 1 };
        let mut source = ScriptedSource::new(vec![vec![40.0], vec![30.0], vec![160.0]], 1000.0);
        let untraced =
            run_cluster(&jobs, 3, &mut source, &mut policy, &ClusterConfig::default()).unwrap();

        let mut sink = ckpt_telemetry::RingBufferSink::new(4096);
        let traced = eventful_run(&mut sink);
        assert_eq!(traced.makespan, untraced.makespan);
        assert_eq!(traced.utilisation, untraced.utilisation);
        for (t, u) in traced.jobs.iter().zip(&untraced.jobs) {
            assert_eq!(t.record.makespan, u.record.makespan);
            assert_eq!(t.record.failures, u.record.failures);
            assert_eq!(t.migrations, u.migrations);
            assert_eq!(t.waiting, u.waiting);
        }
    }

    #[test]
    fn traced_run_emits_the_expected_event_kinds() {
        let mut sink = ckpt_telemetry::RingBufferSink::new(4096);
        eventful_run(&mut sink);
        assert_eq!(sink.dropped(), 0);
        let names: Vec<&str> = sink.events().map(|e| e.name()).collect();
        for expected in [
            "job_ready",
            "machine_up",
            "queue_depth",
            "dispatch",
            "machine_failure",
            "replica_lost",
            "migrate",
            "job_complete",
        ] {
            assert!(names.contains(&expected), "missing event {expected} in {names:?}");
        }
        // Every engine event carries simulated time, and the trace opens at
        // the first arrival (time 0).
        assert!(sink.events().all(|e| e.domain() == ckpt_telemetry::TimeDomain::Sim));
        assert_eq!(sink.events().next().unwrap().time(), 0.0);
    }

    #[test]
    fn trace_digest_is_stable_across_runs() {
        let mut first = ckpt_telemetry::DigestSink::new();
        eventful_run(&mut first);
        let mut second = ckpt_telemetry::DigestSink::new();
        eventful_run(&mut second);
        assert!(first.sim_events() > 0);
        assert_eq!(first.hex(), second.hex());
    }
}

//! Cluster jobs: a checkpointed chain plus its static plan and arrival time.

use crate::error::{ensure_non_negative, ClusterError};
use ckpt_simulator::{ChainTask, ExecutionRecord};

/// One job submitted to the cluster: a task chain (the §2 model), the static
/// checkpoint plan it executes under, and cluster-level metadata.
///
/// The plan is a `checkpoint_after` flag per task, exactly as produced by the
/// chain DP's `TablePlacement::checkpoint_after`; the engine forces the final
/// flag (the model's mandatory final checkpoint) regardless of its value.
#[derive(Debug, Clone)]
pub struct ClusterJob {
    tasks: Vec<ChainTask>,
    initial_recovery: f64,
    downtime: f64,
    plan: Vec<bool>,
    arrival: f64,
    replica_requested: bool,
}

impl ClusterJob {
    /// Builds a job arriving at time 0 with no replica.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if the chain is empty, the plan length does
    /// not match the chain, or a cost parameter is negative.
    pub fn new(
        tasks: Vec<ChainTask>,
        initial_recovery: f64,
        downtime: f64,
        plan: Vec<bool>,
    ) -> Result<Self, ClusterError> {
        if tasks.is_empty() {
            return Err(ClusterError::NoJobs);
        }
        if plan.len() != tasks.len() {
            return Err(ClusterError::PlanLengthMismatch {
                job: 0,
                plan: plan.len(),
                tasks: tasks.len(),
            });
        }
        Ok(ClusterJob {
            tasks,
            initial_recovery: ensure_non_negative("initial_recovery", initial_recovery)?,
            downtime: ensure_non_negative("downtime", downtime)?,
            plan,
            arrival: 0.0,
            replica_requested: false,
        })
    }

    /// Sets the arrival time (builder style).
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if `arrival` is negative or non-finite.
    pub fn with_arrival(mut self, arrival: f64) -> Result<Self, ClusterError> {
        self.arrival = ensure_non_negative("arrival", arrival)?;
        Ok(self)
    }

    /// Requests a warm replica for this job (builder style): at dispatch the
    /// engine reserves a second machine as a failover target when one is
    /// idle.
    pub fn with_replica(mut self) -> Self {
        self.replica_requested = true;
        self
    }

    /// The task chain.
    pub fn tasks(&self) -> &[ChainTask] {
        &self.tasks
    }

    /// The recovery cost `R₀` of restoring the initial state.
    pub fn initial_recovery(&self) -> f64 {
        self.initial_recovery
    }

    /// The failure-free downtime `D` paid after every failure.
    pub fn downtime(&self) -> f64 {
        self.downtime
    }

    /// The static checkpoint plan (`checkpoint_after` flag per task).
    pub fn plan(&self) -> &[bool] {
        &self.plan
    }

    /// The arrival time of the job.
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// Whether the job asked for a warm replica.
    pub fn replica_requested(&self) -> bool {
        self.replica_requested
    }

    /// Total work of the chain (the job-size metric `replicate-top-k` ranks
    /// by).
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.work()).sum()
    }
}

/// The outcome of one job's execution on the cluster.
///
/// `record.makespan` is `completed_at − arrival` and decomposes as
/// `useful + lost + downtime + recovery + waiting`: the four
/// [`TimeBreakdown`](ckpt_simulator::TimeBreakdown) buckets cover the time
/// the job *held a machine* (migration, failover and repair waits are booked
/// as downtime), while `waiting` is the time it sat in the ready queue with
/// no machine to run on — the graceful-degradation cost.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Makespan, failure count and machine-time breakdown.
    pub record: ExecutionRecord,
    /// Checkpoints taken, the mandatory final one included.
    pub checkpoints: u64,
    /// Plan consultations (one per non-final task boundary reached,
    /// re-executions included) — mirrors the chain engine's counter.
    pub decisions: u64,
    /// Time spent in the ready queue (arrival wait, migration re-admission,
    /// retry backoff).
    pub waiting: f64,
    /// Migrations performed (checkpoint restored on a different machine).
    pub migrations: u64,
    /// Failovers to the warm replica.
    pub failovers: u64,
    /// Absolute completion time.
    pub completed_at: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> ChainTask {
        ChainTask::new(100.0, 10.0, 5.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(ClusterJob::new(vec![], 0.0, 0.0, vec![]), Err(ClusterError::NoJobs)));
        assert!(matches!(
            ClusterJob::new(vec![task()], 0.0, 0.0, vec![true, false]),
            Err(ClusterError::PlanLengthMismatch { .. })
        ));
        assert!(ClusterJob::new(vec![task()], -1.0, 0.0, vec![true]).is_err());
        assert!(ClusterJob::new(vec![task()], 0.0, -1.0, vec![true]).is_err());
    }

    #[test]
    fn builders_set_metadata() {
        let job = ClusterJob::new(vec![task(), task()], 5.0, 3.0, vec![false, true])
            .unwrap()
            .with_arrival(42.0)
            .unwrap()
            .with_replica();
        assert_eq!(job.arrival(), 42.0);
        assert!(job.replica_requested());
        assert_eq!(job.total_work(), 200.0);
        assert_eq!(job.plan(), &[false, true]);
        assert!(job.with_arrival(-1.0).is_err());
    }
}

//! Classical approximations and the inaccurate comparator formula.
//!
//! The paper's §3 positions Proposition 1 against the related work:
//!
//! * **Young (1974)** gives the first-order optimal checkpoint *period* for a
//!   divisible job, `T_Young = √(2C/λ)`;
//! * **Daly (2004)** refines it to a higher-order estimate and also gives
//!   first/second-order approximations of the expected execution time;
//! * **Bouguerra et al. (2010)** give a formula for the expected time that the
//!   paper shows to be inaccurate because it charges a recovery *before the
//!   first attempt* as well.
//!
//! All three are implemented here as baselines for experiment E1.

use crate::error::{ensure_non_negative, ensure_positive, ExpectationError};
use crate::exact::ExecutionParams;

/// Young's first-order optimal checkpoint period `√(2C/λ)` for a divisible
/// job with checkpoint cost `C` under Exponential failures of rate `λ`.
///
/// # Errors
///
/// Returns an error if `checkpoint ≤ 0` or `lambda ≤ 0`.
pub fn young_period(checkpoint: f64, lambda: f64) -> Result<f64, ExpectationError> {
    let c = ensure_positive("checkpoint", checkpoint)?;
    let l = ensure_positive("lambda", lambda)?;
    Ok((2.0 * c / l).sqrt())
}

/// Daly's higher-order optimal checkpoint period.
///
/// For `C < 2M` (with `M = 1/λ` the platform MTBF):
///
/// ```text
/// T_Daly = √(2CM) · [1 + (1/3)·√(C/(2M)) + (1/9)·(C/(2M))] − C
/// ```
///
/// and `T_Daly = M` otherwise (Daly 2004, Equation 37).
///
/// # Errors
///
/// Returns an error if `checkpoint ≤ 0` or `lambda ≤ 0`.
pub fn daly_period(checkpoint: f64, lambda: f64) -> Result<f64, ExpectationError> {
    let c = ensure_positive("checkpoint", checkpoint)?;
    let l = ensure_positive("lambda", lambda)?;
    let m = 1.0 / l;
    if c < 2.0 * m {
        let ratio = c / (2.0 * m);
        Ok((2.0 * c * m).sqrt() * (1.0 + ratio.sqrt() / 3.0 + ratio / 9.0) - c)
    } else {
        Ok(m)
    }
}

/// First-order (small `λ(W+C)`) approximation of the expected execution time:
///
/// ```text
/// E[T] ≈ (W + C) · (1 + λ·(W+C)/2) + λ·(W+C)·(D + R)
/// ```
///
/// i.e. the failure-free time plus, for the expected `λ(W+C)` failures, half an
/// attempt of lost work and one downtime + recovery each. Accurate when
/// failures are rare within one attempt; experiment E1 quantifies the error
/// against Proposition 1.
pub fn first_order_expected_time(params: &ExecutionParams) -> f64 {
    let attempt = params.attempt_duration();
    let expected_failures = params.lambda() * attempt;
    attempt * (1.0 + expected_failures / 2.0)
        + expected_failures * (params.downtime() + params.recovery())
}

/// The Bouguerra et al. (2010) formula, as characterised by the paper:
/// a recovery is (incorrectly) charged before *every* attempt, including the
/// first, which amounts to treating the attempt duration as `R + W + C`:
///
/// ```text
/// E_Bouguerra[T] = (1/λ + D) · (e^{λ(R+W+C)} − 1)
/// ```
///
/// The paper's Proposition 1 shows the correct value is
/// `e^{λR} (1/λ + D)(e^{λ(W+C)} − 1)`, which is strictly smaller whenever
/// `R > 0`. Exposed as a baseline so experiment E1 can exhibit the bias.
pub fn bouguerra_expected_time(params: &ExecutionParams) -> f64 {
    let lambda = params.lambda();
    (1.0 / lambda + params.downtime())
        * (lambda * (params.recovery() + params.attempt_duration())).exp_m1()
}

/// The absolute bias of the Bouguerra formula relative to Proposition 1:
/// `(1/λ + D)(e^{λR} − 1)`, which is positive whenever `R > 0`.
pub fn bouguerra_bias(params: &ExecutionParams) -> f64 {
    let lambda = params.lambda();
    (1.0 / lambda + params.downtime()) * (lambda * params.recovery()).exp_m1()
}

/// Expected makespan of a divisible job of total work `w_total` checkpointed
/// every `period` seconds (the classical periodic-checkpointing estimate used
/// with Young/Daly periods), evaluated with the exact Proposition 1 formula
/// applied to each of the `ceil(w_total / period)` chunks.
///
/// # Errors
///
/// Returns an error if any parameter is invalid (`w_total ≤ 0`, `period ≤ 0`,
/// `checkpoint < 0`, `downtime < 0`, `recovery < 0`, `lambda ≤ 0`).
pub fn periodic_divisible_makespan(
    w_total: f64,
    period: f64,
    checkpoint: f64,
    downtime: f64,
    recovery: f64,
    lambda: f64,
) -> Result<f64, ExpectationError> {
    let w_total = ensure_positive("w_total", w_total)?;
    let period = ensure_positive("period", period)?;
    ensure_non_negative("checkpoint", checkpoint)?;
    ensure_non_negative("downtime", downtime)?;
    ensure_non_negative("recovery", recovery)?;
    ensure_positive("lambda", lambda)?;
    let full_chunks = (w_total / period).floor() as u64;
    let remainder = w_total - full_chunks as f64 * period;
    let mut total = 0.0;
    if full_chunks > 0 {
        let chunk = ExecutionParams::new(period, checkpoint, downtime, recovery, lambda)?;
        total += full_chunks as f64 * crate::exact::expected_time(&chunk);
    }
    if remainder > 1e-12 {
        let last = ExecutionParams::new(remainder, checkpoint, downtime, recovery, lambda)?;
        total += crate::exact::expected_time(&last);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::expected_time;

    fn params(w: f64, c: f64, d: f64, r: f64, lambda: f64) -> ExecutionParams {
        ExecutionParams::new(w, c, d, r, lambda).unwrap()
    }

    #[test]
    fn young_period_formula() {
        let t = young_period(600.0, 1.0 / 86_400.0).unwrap();
        assert!((t - (2.0 * 600.0 * 86_400.0f64).sqrt()).abs() < 1e-9);
        assert!(young_period(0.0, 1.0).is_err());
        assert!(young_period(1.0, 0.0).is_err());
    }

    #[test]
    fn daly_period_close_to_young_for_small_checkpoint() {
        let lambda = 1.0 / 86_400.0;
        let young = young_period(60.0, lambda).unwrap();
        let daly = daly_period(60.0, lambda).unwrap();
        // Daly subtracts C and adds higher-order terms; stays within ~10%.
        assert!((daly - young).abs() / young < 0.1, "young {young}, daly {daly}");
    }

    #[test]
    fn daly_period_saturates_at_mtbf_for_huge_checkpoint() {
        let lambda = 1.0 / 100.0;
        let daly = daly_period(1000.0, lambda).unwrap();
        assert_eq!(daly, 100.0);
    }

    #[test]
    fn first_order_matches_exact_for_rare_failures() {
        let p = params(3600.0, 300.0, 60.0, 300.0, 1.0 / (30.0 * 86_400.0));
        let exact = expected_time(&p);
        let approx = first_order_expected_time(&p);
        assert!((exact - approx).abs() / exact < 0.01, "exact {exact}, approx {approx}");
    }

    #[test]
    fn first_order_underestimates_for_frequent_failures() {
        let p = params(3600.0, 300.0, 60.0, 300.0, 1.0 / 3600.0);
        let exact = expected_time(&p);
        let approx = first_order_expected_time(&p);
        assert!(approx < exact);
    }

    #[test]
    fn bouguerra_overestimates_whenever_recovery_is_positive() {
        let p = params(3600.0, 300.0, 60.0, 300.0, 1.0 / 86_400.0);
        let exact = expected_time(&p);
        let boug = bouguerra_expected_time(&p);
        assert!(boug > exact);
        assert!((boug - exact - bouguerra_bias(&p)).abs() < 1e-6);
    }

    #[test]
    fn bouguerra_matches_exact_when_recovery_is_zero() {
        let p = params(3600.0, 300.0, 60.0, 0.0, 1.0 / 86_400.0);
        assert!((bouguerra_expected_time(&p) - expected_time(&p)).abs() < 1e-9);
        assert_eq!(bouguerra_bias(&p), 0.0);
    }

    #[test]
    fn periodic_makespan_splits_into_chunks() {
        // 10 000 s of work, period 2 500 s -> 4 equal chunks.
        let lambda = 1e-5;
        let per_chunk = expected_time(&params(2500.0, 60.0, 0.0, 30.0, lambda));
        let total = periodic_divisible_makespan(10_000.0, 2500.0, 60.0, 0.0, 30.0, lambda).unwrap();
        assert!((total - 4.0 * per_chunk).abs() < 1e-9);
    }

    #[test]
    fn periodic_makespan_handles_remainder_chunk() {
        let lambda = 1e-5;
        let total = periodic_divisible_makespan(10_500.0, 2500.0, 60.0, 0.0, 30.0, lambda).unwrap();
        let four = 4.0 * expected_time(&params(2500.0, 60.0, 0.0, 30.0, lambda));
        let last = expected_time(&params(500.0, 60.0, 0.0, 30.0, lambda));
        assert!((total - (four + last)).abs() < 1e-9);
    }

    #[test]
    fn periodic_makespan_validates_inputs() {
        assert!(periodic_divisible_makespan(0.0, 1.0, 1.0, 0.0, 0.0, 1.0).is_err());
        assert!(periodic_divisible_makespan(1.0, 0.0, 1.0, 0.0, 0.0, 1.0).is_err());
        assert!(periodic_divisible_makespan(1.0, 1.0, -1.0, 0.0, 0.0, 1.0).is_err());
        assert!(periodic_divisible_makespan(1.0, 1.0, 1.0, 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn young_period_is_near_optimal_for_divisible_jobs() {
        // Sanity check: the Young period should be close to the best period
        // found by brute-force sweep for a divisible job.
        let lambda: f64 = 1.0 / 86_400.0;
        let c = 120.0;
        let w_total = 1_000_000.0;
        let young = young_period(c, lambda).unwrap();
        let makespan_at = |period: f64| {
            periodic_divisible_makespan(w_total, period, c, 0.0, 60.0, lambda).unwrap()
        };
        let m_young = makespan_at(young);
        // Sweep a wide range of periods; none should beat Young by more than 2%.
        let mut best = f64::INFINITY;
        let mut period = young / 10.0;
        while period < young * 10.0 {
            best = best.min(makespan_at(period));
            period *= 1.05;
        }
        assert!(m_young <= best * 1.02, "young {m_young}, best {best}");
    }
}

//! Proposition 1: the exact expected time to execute a work followed by its
//! checkpoint under Exponential failures.
//!
//! The paper proves (recursively, §3) that
//!
//! ```text
//! E[T(W, C, D, R, λ)] = e^{λR} (1/λ + D) (e^{λ(W+C)} − 1)        (Equation 6)
//! ```
//!
//! with the intermediate quantities
//!
//! ```text
//! E[T_lost] = 1/λ − (W+C)/(e^{λ(W+C)} − 1)                        (Equation 4)
//! E[T_rec]  = D·e^{λR} + (e^{λR} − 1)/λ                           (Equation 5)
//! ```
//!
//! This module implements all three, plus the recursion of Equation 3 as an
//! independent cross-check (`expected_time_via_recursion`), and a
//! numerically-careful variant for very small `λ(W+C)` products.

use crate::error::{ensure_non_negative, ensure_positive, ExpectationError};

/// Parameters of one "work + checkpoint" attempt (Proposition 1).
///
/// All times are in seconds; `lambda` is the *platform* failure rate
/// (`λ = p·λ_proc` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExecutionParams {
    work: f64,
    checkpoint: f64,
    downtime: f64,
    recovery: f64,
    lambda: f64,
}

impl ExecutionParams {
    /// Creates a parameter set for Proposition 1.
    ///
    /// * `work` — duration `W` of the work to execute (must be > 0);
    /// * `checkpoint` — checkpoint cost `C` (≥ 0; 0 models "no checkpoint"
    ///   segments used when composing schedules);
    /// * `downtime` — downtime `D` (≥ 0, failures cannot strike during it);
    /// * `recovery` — recovery cost `R` (≥ 0, failures can strike during it);
    /// * `lambda` — platform failure rate `λ` (> 0).
    ///
    /// # Errors
    ///
    /// Returns an [`ExpectationError`] if any argument violates the above.
    pub fn new(
        work: f64,
        checkpoint: f64,
        downtime: f64,
        recovery: f64,
        lambda: f64,
    ) -> Result<Self, ExpectationError> {
        Ok(ExecutionParams {
            work: ensure_positive("work", work)?,
            checkpoint: ensure_non_negative("checkpoint", checkpoint)?,
            downtime: ensure_non_negative("downtime", downtime)?,
            recovery: ensure_non_negative("recovery", recovery)?,
            lambda: ensure_positive("lambda", lambda)?,
        })
    }

    /// The work duration `W`.
    pub fn work(&self) -> f64 {
        self.work
    }

    /// The checkpoint cost `C`.
    pub fn checkpoint(&self) -> f64 {
        self.checkpoint
    }

    /// The downtime `D`.
    pub fn downtime(&self) -> f64 {
        self.downtime
    }

    /// The recovery cost `R`.
    pub fn recovery(&self) -> f64 {
        self.recovery
    }

    /// The platform failure rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The failure-free duration `W + C` of one attempt.
    pub fn attempt_duration(&self) -> f64 {
        self.work + self.checkpoint
    }

    /// Returns a copy with a different work duration.
    ///
    /// # Errors
    ///
    /// Returns an error if `work ≤ 0`.
    pub fn with_work(&self, work: f64) -> Result<Self, ExpectationError> {
        ExecutionParams::new(work, self.checkpoint, self.downtime, self.recovery, self.lambda)
    }
}

/// Proposition 1 (Equation 6): the expected time to successfully execute `W`
/// seconds of work followed by a checkpoint of `C` seconds.
///
/// Uses `exp_m1` so that the result stays accurate when `λ(W+C)` is tiny
/// (e.g. a one-minute task on a platform with a ten-year MTBF).
pub fn expected_time(params: &ExecutionParams) -> f64 {
    let lambda = params.lambda;
    (lambda * params.recovery).exp()
        * (1.0 / lambda + params.downtime)
        * (lambda * params.attempt_duration()).exp_m1()
}

/// Equation 4: the expected time lost to an attempt that fails, i.e.
/// `E[T_lost] = 1/λ − (W+C)/(e^{λ(W+C)} − 1)`,
/// the expectation of the failure time conditioned on striking within the
/// attempt of duration `W + C`.
pub fn expected_lost(params: &ExecutionParams) -> f64 {
    let lambda = params.lambda;
    let attempt = params.attempt_duration();
    1.0 / lambda - attempt / (lambda * attempt).exp_m1()
}

/// Equation 5: the expected time to perform downtime and recovery, accounting
/// for failures striking during the recovery itself:
/// `E[T_rec] = D·e^{λR} + (e^{λR} − 1)/λ`.
pub fn expected_recovery(params: &ExecutionParams) -> f64 {
    let lambda = params.lambda;
    params.downtime * (lambda * params.recovery).exp()
        + (lambda * params.recovery).exp_m1() / lambda
}

/// Equation 3 assembled from its parts — an independent way of computing the
/// Proposition 1 value, used to cross-check the closed form:
/// `E[T] = W + C + (e^{λ(W+C)} − 1)(E[T_lost] + E[T_rec])`.
pub fn expected_time_via_recursion(params: &ExecutionParams) -> f64 {
    let lambda = params.lambda;
    let attempt = params.attempt_duration();
    attempt + (lambda * attempt).exp_m1() * (expected_lost(params) + expected_recovery(params))
}

/// The probability that a single attempt (work + checkpoint) completes without
/// a failure: `e^{−λ(W+C)}`.
pub fn attempt_success_probability(params: &ExecutionParams) -> f64 {
    (-params.lambda * params.attempt_duration()).exp()
}

/// The expected number of failures incurred before the attempt finally
/// succeeds: `e^{λ(W+C)} − 1` failures on average for the work/checkpoint
/// phase alone (each failed attempt also restarts recovery, whose own failures
/// are accounted for inside `E[T_rec]`).
pub fn expected_failure_count(params: &ExecutionParams) -> f64 {
    (params.lambda * params.attempt_duration()).exp_m1()
}

/// The *waste* of an attempt: the ratio between the expected time and the
/// failure-free time `W + C`, minus one. Zero waste means failures cost
/// nothing; the experiment harness reports this as a normalised overhead.
pub fn waste(params: &ExecutionParams) -> f64 {
    expected_time(params) / params.attempt_duration() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(w: f64, c: f64, d: f64, r: f64, lambda: f64) -> ExecutionParams {
        ExecutionParams::new(w, c, d, r, lambda).unwrap()
    }

    #[test]
    fn construction_validates_arguments() {
        assert!(ExecutionParams::new(1.0, 0.0, 0.0, 0.0, 1.0).is_ok());
        assert!(ExecutionParams::new(0.0, 1.0, 0.0, 0.0, 1.0).is_err());
        assert!(ExecutionParams::new(1.0, -1.0, 0.0, 0.0, 1.0).is_err());
        assert!(ExecutionParams::new(1.0, 0.0, -1.0, 0.0, 1.0).is_err());
        assert!(ExecutionParams::new(1.0, 0.0, 0.0, -1.0, 1.0).is_err());
        assert!(ExecutionParams::new(1.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(ExecutionParams::new(f64::NAN, 0.0, 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn accessors_roundtrip() {
        let p = params(10.0, 2.0, 3.0, 4.0, 0.5);
        assert_eq!(p.work(), 10.0);
        assert_eq!(p.checkpoint(), 2.0);
        assert_eq!(p.downtime(), 3.0);
        assert_eq!(p.recovery(), 4.0);
        assert_eq!(p.lambda(), 0.5);
        assert_eq!(p.attempt_duration(), 12.0);
        let q = p.with_work(20.0).unwrap();
        assert_eq!(q.work(), 20.0);
        assert_eq!(q.checkpoint(), 2.0);
    }

    #[test]
    fn closed_form_matches_recursion_assembly() {
        // Equation 6 must equal Equation 3 assembled from Equations 4 and 5.
        for &(w, c, d, r, l) in &[
            (100.0, 10.0, 0.0, 10.0, 0.001),
            (3600.0, 600.0, 60.0, 300.0, 1.0 / 86_400.0),
            (10.0, 1.0, 5.0, 2.0, 0.05),
            (1.0, 0.0, 0.0, 0.0, 1.0),
        ] {
            let p = params(w, c, d, r, l);
            let closed = expected_time(&p);
            let recursive = expected_time_via_recursion(&p);
            assert!(
                (closed - recursive).abs() / closed < 1e-12,
                "mismatch for {p:?}: {closed} vs {recursive}"
            );
        }
    }

    #[test]
    fn reduces_to_failure_free_time_when_lambda_vanishes() {
        // As λ → 0, E[T] → W + C.
        let p = params(3600.0, 120.0, 60.0, 60.0, 1e-12);
        let e = expected_time(&p);
        assert!((e - 3720.0).abs() < 1e-3, "E = {e}");
    }

    #[test]
    fn no_checkpoint_no_recovery_special_case() {
        // With C = R = D = 0 the formula is (e^{λW} − 1)/λ, the classical
        // expected completion time of a restartable job.
        let p = params(100.0, 0.0, 0.0, 0.0, 0.01);
        let expected = ((0.01f64 * 100.0).exp() - 1.0) / 0.01;
        assert!((expected_time(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn expectation_grows_with_each_parameter() {
        let base = params(100.0, 10.0, 5.0, 10.0, 0.01);
        let e = expected_time(&base);
        assert!(expected_time(&params(200.0, 10.0, 5.0, 10.0, 0.01)) > e);
        assert!(expected_time(&params(100.0, 20.0, 5.0, 10.0, 0.01)) > e);
        assert!(expected_time(&params(100.0, 10.0, 9.0, 10.0, 0.01)) > e);
        assert!(expected_time(&params(100.0, 10.0, 5.0, 20.0, 0.01)) > e);
        assert!(expected_time(&params(100.0, 10.0, 5.0, 10.0, 0.02)) > e);
    }

    #[test]
    fn expected_lost_is_below_attempt_duration_and_below_mtbf() {
        let p = params(500.0, 50.0, 0.0, 10.0, 0.002);
        let lost = expected_lost(&p);
        assert!(lost > 0.0);
        assert!(lost < p.attempt_duration());
        assert!(lost < 1.0 / p.lambda());
    }

    #[test]
    fn expected_lost_tends_to_half_attempt_for_small_lambda() {
        // For λ(W+C) → 0 the conditional failure time tends to (W+C)/2.
        let p = params(1000.0, 0.0, 0.0, 0.0, 1e-9);
        let lost = expected_lost(&p);
        assert!((lost - 500.0).abs() < 0.01, "lost = {lost}");
    }

    #[test]
    fn expected_recovery_matches_paper_equation_5() {
        let p = params(1.0, 0.0, 30.0, 120.0, 0.001);
        let expected = 30.0 * (0.001f64 * 120.0).exp() + ((0.001f64 * 120.0).exp() - 1.0) / 0.001;
        assert!((expected_recovery(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn expected_recovery_is_zero_without_downtime_and_recovery() {
        let p = params(1.0, 0.0, 0.0, 0.0, 0.5);
        assert_eq!(expected_recovery(&p), 0.0);
    }

    #[test]
    fn success_probability_and_failure_count_are_consistent() {
        let p = params(100.0, 10.0, 0.0, 0.0, 0.01);
        let ps = attempt_success_probability(&p);
        let failures = expected_failure_count(&p);
        // E[#failures] = (1 - p)/p for a geometric number of failed attempts.
        assert!((failures - (1.0 - ps) / ps).abs() < 1e-9);
    }

    #[test]
    fn waste_is_positive_and_grows_with_lambda() {
        let small = params(1000.0, 60.0, 0.0, 60.0, 1e-6);
        let large = params(1000.0, 60.0, 0.0, 60.0, 1e-3);
        assert!(waste(&small) > 0.0);
        assert!(waste(&large) > waste(&small));
    }

    #[test]
    fn np_reduction_parameters_give_expected_value() {
        // The 3-PARTITION reduction of Proposition 2 chooses λ = 1/(2T) and
        // C = (ln 2 − 1/2)/λ so that e^{λ(T+C)} = 2. Check the identity.
        let t = 750.0;
        let lambda = 1.0 / (2.0 * t);
        let c = (std::f64::consts::LN_2 - 0.5) / lambda;
        let p = params(t, c, 0.0, c, lambda);
        let factor = (lambda * (t + c)).exp();
        assert!((factor - 2.0).abs() < 1e-12);
        // And the per-subset expected time is e^{λC}(e^{λ(T+C)} − 1)/λ.
        let expected = (lambda * c).exp() / lambda * (factor - 1.0);
        assert!((expected_time(&p) - expected).abs() / expected < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_closed_form_equals_recursion(
            w in 1.0f64..1e4,
            c in 0.0f64..1e3,
            d in 0.0f64..1e3,
            r in 0.0f64..1e3,
            lambda in 1e-8f64..1e-4,
        ) {
            let p = params(w, c, d, r, lambda);
            let closed = expected_time(&p);
            let recursive = expected_time_via_recursion(&p);
            prop_assert!((closed - recursive).abs() <= 1e-9 * closed.abs().max(1.0));
        }

        #[test]
        fn prop_expectation_exceeds_failure_free_time(
            w in 1.0f64..1e5,
            c in 0.0f64..1e4,
            d in 0.0f64..1e3,
            r in 0.0f64..1e4,
            lambda in 1e-8f64..1e-2,
        ) {
            let p = params(w, c, d, r, lambda);
            prop_assert!(expected_time(&p) >= p.attempt_duration());
        }

        #[test]
        fn prop_monotone_in_work(
            w in 1.0f64..1e4,
            extra in 1.0f64..1e4,
            c in 0.0f64..1e3,
            lambda in 1e-7f64..1e-2,
        ) {
            let p1 = params(w, c, 0.0, 0.0, lambda);
            let p2 = params(w + extra, c, 0.0, 0.0, lambda);
            prop_assert!(expected_time(&p2) > expected_time(&p1));
        }
    }
}

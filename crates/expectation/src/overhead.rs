//! Checkpoint-overhead scaling models `C(p)` (paper §3, "Checkpoint overhead").
//!
//! Assuming the application's memory footprint is `V` bytes spread evenly over
//! the processors, the paper distinguishes two regimes:
//!
//! * **proportional overhead**: `C(p) = R(p) = α·V/p` — the per-processor
//!   network link is the I/O bottleneck, so more processors checkpoint faster;
//! * **constant overhead**: `C(p) = R(p) = α·V` — the bandwidth of the
//!   resilient storage system is the bottleneck, so the cost does not shrink.
//!
//! Experiment E6 sweeps both against the workload models of
//! [`crate::workload`].

use crate::error::{ensure_positive, ExpectationError};

/// How checkpoint (and recovery) cost scales with the processor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum OverheadModel {
    /// `C(p) = C_base / p`: per-processor link is the bottleneck.
    Proportional,
    /// `C(p) = C_base`: shared stable storage is the bottleneck.
    #[default]
    Constant,
}

impl OverheadModel {
    /// The checkpoint (or recovery) cost on `p` processors, given the
    /// single-processor cost `base_cost = α·V`.
    ///
    /// # Errors
    ///
    /// Returns an error if `base_cost ≤ 0` or `p == 0`.
    pub fn cost(&self, base_cost: f64, p: u32) -> Result<f64, ExpectationError> {
        let base = ensure_positive("base_cost", base_cost)?;
        if p == 0 {
            return Err(ExpectationError::ZeroProcessors);
        }
        Ok(match self {
            OverheadModel::Proportional => base / f64::from(p),
            OverheadModel::Constant => base,
        })
    }
}

impl std::fmt::Display for OverheadModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverheadModel::Proportional => write!(f, "proportional"),
            OverheadModel::Constant => write!(f, "constant"),
        }
    }
}

/// A platform-scaling scenario combining the §3 knobs: processor count,
/// per-processor failure rate, workload model and overhead model.
///
/// This is the input of experiment E6 and of the moldable-task extension: for
/// a given `p` it produces the effective `(W(p), C(p), R(p), λ(p))` tuple to
/// feed into Proposition 1.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScalingScenario {
    /// Per-processor Exponential failure rate `λ_proc`.
    pub lambda_proc: f64,
    /// Single-processor checkpoint cost `α·V`.
    pub base_checkpoint: f64,
    /// Single-processor recovery cost.
    pub base_recovery: f64,
    /// Downtime `D` (independent of `p` in the paper's baseline model).
    pub downtime: f64,
    /// Workload scaling model.
    pub workload: crate::workload::WorkloadModel,
    /// Checkpoint-overhead scaling model.
    pub overhead: OverheadModel,
}

impl ScalingScenario {
    /// The effective parameters on `p` processors for a task with total
    /// sequential load `w_total`: `(W(p), C(p), D, R(p), λ(p))`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid `w_total` or `p == 0`.
    pub fn instantiate(
        &self,
        w_total: f64,
        p: u32,
    ) -> Result<crate::exact::ExecutionParams, ExpectationError> {
        let work = self.workload.time(w_total, p)?;
        let checkpoint = self.overhead.cost(self.base_checkpoint, p)?;
        let recovery = self.overhead.cost(self.base_recovery, p)?;
        let lambda = self.lambda_proc * f64::from(p);
        crate::exact::ExecutionParams::new(work, checkpoint, self.downtime, recovery, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::expected_time;
    use crate::workload::WorkloadModel;

    #[test]
    fn proportional_divides_constant_does_not() {
        assert_eq!(OverheadModel::Proportional.cost(600.0, 10).unwrap(), 60.0);
        assert_eq!(OverheadModel::Constant.cost(600.0, 10).unwrap(), 600.0);
    }

    #[test]
    fn cost_validates_inputs() {
        assert!(OverheadModel::Constant.cost(0.0, 1).is_err());
        assert!(OverheadModel::Constant.cost(-1.0, 1).is_err());
        assert!(matches!(
            OverheadModel::Constant.cost(1.0, 0),
            Err(ExpectationError::ZeroProcessors)
        ));
    }

    #[test]
    fn display_and_default() {
        assert_eq!(OverheadModel::Proportional.to_string(), "proportional");
        assert_eq!(OverheadModel::Constant.to_string(), "constant");
        assert_eq!(OverheadModel::default(), OverheadModel::Constant);
    }

    fn scenario(overhead: OverheadModel) -> ScalingScenario {
        ScalingScenario {
            lambda_proc: 1.0 / (10.0 * 365.0 * 86_400.0), // ten-year per-processor MTBF
            base_checkpoint: 600.0,
            base_recovery: 600.0,
            downtime: 60.0,
            workload: WorkloadModel::PerfectlyParallel,
            overhead,
        }
    }

    #[test]
    fn scenario_instantiation_scales_parameters() {
        let s = scenario(OverheadModel::Proportional);
        let params = s.instantiate(1e7, 100).unwrap();
        assert!((params.work() - 1e5).abs() < 1e-6);
        assert!((params.checkpoint() - 6.0).abs() < 1e-9);
        assert!((params.recovery() - 6.0).abs() < 1e-9);
        assert!((params.lambda() - 100.0 * s.lambda_proc).abs() < 1e-18);
    }

    #[test]
    fn constant_overhead_hurts_more_at_scale() {
        // At large p, the expected time with constant overhead exceeds the
        // one with proportional overhead (same everything else).
        let w_total = 1e8;
        let p = 4096;
        let prop = scenario(OverheadModel::Proportional).instantiate(w_total, p).unwrap();
        let cons = scenario(OverheadModel::Constant).instantiate(w_total, p).unwrap();
        assert!(expected_time(&cons) > expected_time(&prop));
    }

    #[test]
    fn more_processors_reduce_time_until_failures_dominate() {
        // For perfectly parallel work and proportional overhead, going from 1
        // to 64 processors reduces the expected time of a fixed total load.
        let s = scenario(OverheadModel::Proportional);
        let w_total = 1e7;
        let t1 = expected_time(&s.instantiate(w_total, 1).unwrap());
        let t64 = expected_time(&s.instantiate(w_total, 64).unwrap());
        assert!(t64 < t1);
    }

    #[test]
    fn scenario_rejects_zero_processors() {
        let s = scenario(OverheadModel::Constant);
        assert!(s.instantiate(1e6, 0).is_err());
    }
}

//! Precomputed Proposition-1 segment costs over a fixed execution order.
//!
//! Every hot path of the workspace — the Algorithm 1 chain DP, exhaustive
//! search, the heuristics' local search — evaluates the Proposition 1 closed
//! form
//!
//! ```text
//! T(x, j) = e^{λR_x} (1/λ + D) (e^{λ(w_x + … + w_j + C_j)} − 1)
//! ```
//!
//! for *many* `(x, j)` position pairs of one fixed execution order. Evaluating
//! it naively costs two `exp` calls per pair. The exponent, however, is a sum
//! that factors over prefix sums:
//!
//! ```text
//! e^{λ(prefix[j+1] − prefix[x] + C_j)} = e^{λ·prefix[j+1]} · e^{−λ·prefix[x]} · e^{λ·C_j}
//! ```
//!
//! so after precomputing the `O(n)` exponentials `e^{λ·prefix[k]}`,
//! `e^{λ·C_j}` and the coefficients `e^{λR_x}(1/λ + D)`, each cost is a
//! handful of multiplies — no `exp` at all. [`SegmentCostTable`] packages this
//! precomputation with two guarded fallbacks that keep it numerically exact:
//!
//! * **tiny exponents** (`λ(W+C) < 10⁻²`): the product `e^a·e^b·e^c − 1`
//!   cancels catastrophically, so the table falls back to `exp_m1` exactly as
//!   [`expected_time`](crate::exact::expected_time) does;
//! * **saturated instances** (`λ·total work` beyond ~650): `e^{λ·prefix[k]}`
//!   would overflow `f64`, so the table skips the precomputation entirely and
//!   answers every query through `exp_m1` (these instances have astronomically
//!   large expected times anyway).
//!
//! The table additionally precomputes the suffix minima of the segment-term
//! "slopes" `e^{λ(prefix[j+1]+C_j)}`, which give the chain DP a monotone lower
//! bound for pruning its inner loop, and exposes the slope/query-point
//! decomposition `T(x, j) = slope(j)·query_point(x) − coefficient(x)` used by
//! the `O(n log n)` divide-and-conquer solver.

use std::sync::Arc;

use crate::error::{ensure_non_negative, ensure_positive, ExpectationError};

/// Below this exponent `λ(W+C)`, `e^a·e^b·e^c − 1` loses too many bits to
/// cancellation and the table falls back to `exp_m1`. At the threshold the
/// product path is still accurate to ~`3ε/z ≈ 7·10⁻¹⁴` relative error.
const SMALL_EXPONENT: f64 = 1e-2;

/// Largest `λ·(total work + max checkpoint)` for which `e^{λ·prefix[k]}`
/// comfortably stays inside the `f64` range (`e^{709}` overflows). Beyond it
/// the table runs in the saturated (per-call `exp_m1`) mode.
const MAX_SAFE_EXPONENT: f64 = 650.0;

/// Precomputed Proposition-1 costs for all contiguous segments of one
/// execution order.
///
/// Built once per order in `O(n)` time and `O(n)` space; [`cost`] then
/// evaluates any `T(x, j)` without calling `exp` (outside the documented
/// fallback regimes).
///
/// # Example
///
/// Every `(x, j)` query agrees with the Proposition 1 closed form
/// ([`expected_time`](crate::exact::expected_time)) applied to that segment:
///
/// ```
/// use ckpt_expectation::exact::{expected_time, ExecutionParams};
/// use ckpt_expectation::segment_cost::SegmentCostTable;
///
/// let (lambda, downtime) = (1e-4, 30.0);
/// let table = SegmentCostTable::new(
///     lambda,
///     downtime,
///     &[400.0, 100.0, 900.0],  // weights along the execution order
///     &[60.0, 60.0, 60.0],     // checkpoint costs C_j
///     &[15.0, 60.0, 20.0],     // protecting recoveries R_x
/// )?;
/// // Segment covering positions 0..=1: 500 s of work, checkpoint C_1 = 60,
/// // protected by the initial recovery R_0 = 15.
/// let exact = expected_time(&ExecutionParams::new(500.0, 60.0, downtime, 15.0, lambda)?);
/// assert!((table.cost(0, 1) - exact).abs() / exact < 1e-12);
/// // A placement's expected makespan is the sum over its segments.
/// assert_eq!(table.total_cost(&[false, true, true]), table.cost(0, 1) + table.cost(2, 2));
/// # Ok::<(), ckpt_expectation::ExpectationError>(())
/// ```
///
/// [`cost`]: SegmentCostTable::cost
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentCostTable {
    lambda: f64,
    /// `prefix[k] = w_0 + … + w_{k−1}` (raw work prefix sums, `n + 1`
    /// values). Shared, not copied, between the per-rate tables of one
    /// [`LambdaSweep`](crate::sweep::LambdaSweep).
    prefix: Arc<Vec<f64>>,
    /// Checkpoint cost `C_j` per position (shared like `prefix`).
    ckpt: Arc<Vec<f64>>,
    /// `e^{λ·prefix[k]}` (empty in saturated mode).
    exp_prefix: Vec<f64>,
    /// `e^{−λ·prefix[k]}` (empty in saturated mode).
    inv_exp_prefix: Vec<f64>,
    /// `e^{λ·C_j}` (empty in saturated mode).
    exp_ckpt: Vec<f64>,
    /// `e^{λ·R_x}·(1/λ + D)` where `R_x` protects the segment starting at `x`.
    coeff: Vec<f64>,
    /// `min_{k ≥ j} e^{λ(prefix[k+1] + C_k)}` (empty in saturated mode).
    min_slope_suffix: Vec<f64>,
    /// `min_{k ≥ j} λ(prefix[k+1] + C_k)` (always present; used by the
    /// saturated pruning bound).
    min_log_slope_suffix: Vec<f64>,
    saturated: bool,
}

impl SegmentCostTable {
    /// Builds the table for an execution order described positionally:
    /// `weights[i]` is the work of the task at position `i`, `checkpoints[i]`
    /// the cost of checkpointing right after it, and `recoveries[i]` the
    /// recovery cost protecting a segment that **starts** at position `i`
    /// (the initial recovery `R₀` for `i = 0`, the recovery of position
    /// `i − 1`'s checkpoint otherwise).
    ///
    /// # Errors
    ///
    /// Returns an [`ExpectationError`] if `lambda` is not strictly positive,
    /// `downtime` is negative, any weight is not strictly positive, or any
    /// checkpoint/recovery cost is negative.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or are empty (a
    /// programming error, not a data error).
    pub fn new(
        lambda: f64,
        downtime: f64,
        weights: &[f64],
        checkpoints: &[f64],
        recoveries: &[f64],
    ) -> Result<Self, ExpectationError> {
        let lambda = ensure_positive("lambda", lambda)?;
        let (downtime, prefix, max_ckpt) =
            validate_order(downtime, weights, checkpoints, recoveries)?;
        Ok(Self::from_validated_parts(
            lambda,
            downtime,
            Arc::new(prefix),
            Arc::new(checkpoints.to_vec()),
            recoveries,
            max_ckpt,
        ))
    }

    /// Builds the table from already-validated data: `prefix` are the work
    /// prefix sums (`n + 1` values, `prefix[0] = 0`), `checkpoints` and
    /// `recoveries` the per-position costs, `max_ckpt` the largest checkpoint
    /// cost. Used by [`crate::sweep::LambdaSweep`] to rebuild the table for a
    /// new `λ` without re-validating, re-summing or copying the
    /// λ-independent vectors (they are shared by `Arc`).
    pub(crate) fn from_validated_parts(
        lambda: f64,
        downtime: f64,
        prefix: Arc<Vec<f64>>,
        checkpoints: Arc<Vec<f64>>,
        recoveries: &[f64],
        max_ckpt: f64,
    ) -> Self {
        let n = checkpoints.len();
        let base = 1.0 / lambda + downtime;
        let coeff: Vec<f64> = recoveries.iter().map(|&r| (lambda * r).exp() * base).collect();

        let saturated = lambda * (prefix[n] + max_ckpt) > MAX_SAFE_EXPONENT;
        let (exp_prefix, inv_exp_prefix, exp_ckpt, min_slope_suffix) = if saturated {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        } else {
            let exp_prefix: Vec<f64> = prefix.iter().map(|&p| (lambda * p).exp()).collect();
            let inv_exp_prefix: Vec<f64> = exp_prefix.iter().map(|&e| 1.0 / e).collect();
            let exp_ckpt: Vec<f64> = checkpoints.iter().map(|&c| (lambda * c).exp()).collect();
            let mut min_slope_suffix = vec![0.0f64; n];
            let mut running = f64::INFINITY;
            for j in (0..n).rev() {
                running = running.min(exp_prefix[j + 1] * exp_ckpt[j]);
                min_slope_suffix[j] = running;
            }
            (exp_prefix, inv_exp_prefix, exp_ckpt, min_slope_suffix)
        };
        let mut min_log_slope_suffix = vec![0.0f64; n];
        let mut running = f64::INFINITY;
        for j in (0..n).rev() {
            running = running.min(lambda * (prefix[j + 1] + checkpoints[j]));
            min_log_slope_suffix[j] = running;
        }

        SegmentCostTable {
            lambda,
            prefix,
            ckpt: checkpoints,
            exp_prefix,
            inv_exp_prefix,
            exp_ckpt,
            coeff,
            min_slope_suffix,
            min_log_slope_suffix,
            saturated,
        }
    }

    /// The number of positions covered by the table.
    pub fn len(&self) -> usize {
        self.ckpt.len()
    }

    /// Whether the table covers no positions (never true: construction
    /// requires at least one position).
    pub fn is_empty(&self) -> bool {
        self.ckpt.is_empty()
    }

    /// The platform failure rate `λ` the table was built for.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Whether the table runs in the saturated (per-call `exp_m1`) mode
    /// because `λ·total work` would overflow the precomputed exponentials.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// A 64-bit fingerprint of the table's defining data — the rate `λ`, the
    /// work prefix sums, the checkpoint costs and the segment coefficients
    /// `e^{λR_x}(1/λ + D)` (which pin the downtime and recoveries at this
    /// rate) — hashed over their exact `f64` bit patterns (FNV-1a).
    ///
    /// Two tables with bitwise-equal defining data always fingerprint
    /// identically; the per-rate analogue of
    /// [`LambdaSweep::fingerprint`](crate::sweep::LambdaSweep::fingerprint)
    /// (which hashes the λ-independent order so one key can span many
    /// rates). A hash, not an identity: collisions must be resolved by
    /// comparing the data itself.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = crate::sweep::FNV_OFFSET;
        crate::sweep::fnv_mix(&mut hash, self.lambda);
        for &p in self.prefix.iter() {
            crate::sweep::fnv_mix(&mut hash, p);
        }
        for &c in self.ckpt.iter() {
            crate::sweep::fnv_mix(&mut hash, c);
        }
        for &coefficient in &self.coeff {
            crate::sweep::fnv_mix(&mut hash, coefficient);
        }
        hash
    }

    /// The work `w_x + … + w_j` of the segment covering positions `x..=j`.
    pub fn work(&self, x: usize, j: usize) -> f64 {
        debug_assert!(x <= j && j < self.len());
        self.prefix[j + 1] - self.prefix[x]
    }

    /// Proposition 1 applied to the segment covering positions `x..=j`,
    /// checkpointing after `j` and recovering with the checkpoint protecting
    /// position `x`: `e^{λR_x}(1/λ + D)(e^{λ(prefix[j+1]−prefix[x]+C_j)} − 1)`.
    ///
    /// Exp-free outside the tiny-exponent and saturated regimes; agrees with
    /// [`expected_time`](crate::exact::expected_time) to ~`10⁻¹³` relative
    /// error everywhere.
    pub fn cost(&self, x: usize, j: usize) -> f64 {
        debug_assert!(x <= j && j < self.len());
        let z = self.lambda * (self.work(x, j) + self.ckpt[j]);
        if self.saturated || z < SMALL_EXPONENT {
            self.coeff[x] * z.exp_m1()
        } else {
            self.coeff[x]
                * (self.exp_prefix[j + 1] * self.inv_exp_prefix[x] * self.exp_ckpt[j] - 1.0)
        }
    }

    /// The coefficient `e^{λR_x}(1/λ + D)` of segments starting at `x`.
    pub fn coefficient(&self, x: usize) -> f64 {
        self.coeff[x]
    }

    /// [`cost`]`(x, j)` with the protecting coefficient `e^{λR_x}(1/λ + D)`
    /// supplied by the caller instead of read from this table — the
    /// cross-level query of hierarchical storage planning: the Proposition-1
    /// segment cost factors into a coefficient that depends only on the
    /// **protecting** checkpoint (whose recovery cost is set by the level it
    /// was written to) and an exponent term that depends only on the segment
    /// span and the **written** checkpoint, so a levelled cost is this
    /// table's exponent term (write level) times another table's coefficient
    /// (protecting level).
    ///
    /// With `coefficient == self.coefficient(x)` this is bitwise identical
    /// to [`cost`]`(x, j)` — the property the levelled DP's single-level
    /// collapse rests on.
    ///
    /// [`cost`]: SegmentCostTable::cost
    pub fn cost_with_coefficient(&self, x: usize, j: usize, coefficient: f64) -> f64 {
        debug_assert!(x <= j && j < self.len());
        let z = self.lambda * (self.work(x, j) + self.ckpt[j]);
        if self.saturated || z < SMALL_EXPONENT {
            coefficient * z.exp_m1()
        } else {
            coefficient * (self.exp_prefix[j + 1] * self.inv_exp_prefix[x] * self.exp_ckpt[j] - 1.0)
        }
    }

    /// [`segment_lower_bound`]`(x, j)` with a caller-supplied protecting
    /// coefficient (see
    /// [`cost_with_coefficient`](SegmentCostTable::cost_with_coefficient)):
    /// a lower bound on `cost_with_coefficient(x, j′, coefficient)` for
    /// every `j′ ≥ j`, non-decreasing in `j`. Bitwise identical to
    /// [`segment_lower_bound`] when `coefficient == self.coefficient(x)`.
    ///
    /// [`segment_lower_bound`]: SegmentCostTable::segment_lower_bound
    pub fn segment_lower_bound_with_coefficient(
        &self,
        x: usize,
        j: usize,
        coefficient: f64,
    ) -> f64 {
        debug_assert!(x <= j && j < self.len());
        if self.saturated {
            coefficient * (self.min_log_slope_suffix[j] - self.lambda * self.prefix[x]).exp_m1()
        } else {
            coefficient * (self.min_slope_suffix[j] * self.inv_exp_prefix[x] - 1.0)
        }
    }

    /// The "query point" `t_x = e^{λR_x}(1/λ + D)·e^{−λ·prefix[x]}` of
    /// position `x`: [`cost`]`(x, j) = `[`slope`]`(j)·t_x − `
    /// [`coefficient`]`(x) + `[`slope`]-independent terms — i.e. for fixed
    /// `x` the segment cost is **linear** in the slope, which is what the
    /// divide-and-conquer solver exploits.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the table [`is_saturated`]; callers must
    /// fall back to direct [`cost`] evaluation there.
    ///
    /// [`cost`]: SegmentCostTable::cost
    /// [`slope`]: SegmentCostTable::slope
    /// [`coefficient`]: SegmentCostTable::coefficient
    /// [`is_saturated`]: SegmentCostTable::is_saturated
    pub fn query_point(&self, x: usize) -> f64 {
        debug_assert!(!self.saturated, "query points overflow on saturated tables");
        self.coeff[x] * self.inv_exp_prefix[x]
    }

    /// The "slope" `e^{λ(prefix[j+1]+C_j)}` of a segment ending at `j` (see
    /// [`query_point`](SegmentCostTable::query_point)).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the table
    /// [`is_saturated`](SegmentCostTable::is_saturated).
    pub fn slope(&self, j: usize) -> f64 {
        debug_assert!(!self.saturated, "slopes overflow on saturated tables");
        self.exp_prefix[j + 1] * self.exp_ckpt[j]
    }

    /// A lower bound on [`cost`]`(x, j′)` valid for **every** `j′ ≥ j`, and
    /// non-decreasing in `j`: once it exceeds a DP's incumbent best, no later
    /// checkpoint position can improve on the incumbent and the inner loop
    /// may stop.
    ///
    /// The bound replaces the segment slope by its suffix minimum
    /// `min_{k ≥ j} e^{λ(prefix[k+1]+C_k)}`; for uniform checkpoint costs it
    /// is exactly the segment cost at `j`, i.e. the pruning is tight.
    ///
    /// The bound is computed in floating point and may exceed the true
    /// infimum by a few ulps — callers should treat it as a pruning
    /// heuristic with strict comparison, which can only affect optima by a
    /// comparable relative error.
    ///
    /// [`cost`]: SegmentCostTable::cost
    pub fn segment_lower_bound(&self, x: usize, j: usize) -> f64 {
        debug_assert!(x <= j && j < self.len());
        if self.saturated {
            self.coeff[x] * (self.min_log_slope_suffix[j] - self.lambda * self.prefix[x]).exp_m1()
        } else {
            self.coeff[x] * (self.min_slope_suffix[j] * self.inv_exp_prefix[x] - 1.0)
        }
    }

    /// The total-cost change from **adding** a checkpoint at `pos` inside a
    /// segment currently spanning `start..=next` (whose end checkpoint sits
    /// at `next`): the segment splits into `start..=pos` and `pos+1..=next`.
    ///
    /// The change from **removing** the checkpoint at `pos` (merging the two
    /// segments back) is the negation. Shared by the Gray-code exhaustive
    /// walk and the local-search toggle move so the two solvers can never
    /// diverge on the formula.
    pub fn split_delta(&self, start: usize, pos: usize, next: usize) -> f64 {
        debug_assert!(start <= pos && pos < next && next < self.len());
        self.cost(start, pos) + self.cost(pos + 1, next) - self.cost(start, next)
    }

    /// The expected makespan of the checkpoint placement `checkpoint_after`
    /// over the table's order: the sum of [`cost`](SegmentCostTable::cost)
    /// over its checkpoint-delimited segments.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_after` does not have one entry per position or
    /// its final entry is `false` (the model's mandatory final checkpoint).
    pub fn total_cost(&self, checkpoint_after: &[bool]) -> f64 {
        assert_eq!(checkpoint_after.len(), self.len(), "one decision per position");
        assert_eq!(checkpoint_after.last(), Some(&true), "final checkpoint is mandatory");
        let mut total = 0.0;
        let mut start = 0usize;
        for (j, &ckpt) in checkpoint_after.iter().enumerate() {
            if ckpt {
                total += self.cost(start, j);
                start = j + 1;
            }
        }
        total
    }
}

/// Validates the λ-independent data of one execution order (shared by
/// [`SegmentCostTable::new`] and [`crate::sweep::LambdaSweep::new`], so the
/// two constructors can never diverge on what they accept) and returns the
/// checked downtime, the work prefix sums and the largest checkpoint cost.
///
/// # Panics
///
/// Panics if the three slices differ in length or are empty (a programming
/// error, not a data error).
pub(crate) fn validate_order(
    downtime: f64,
    weights: &[f64],
    checkpoints: &[f64],
    recoveries: &[f64],
) -> Result<(f64, Vec<f64>, f64), ExpectationError> {
    let n = weights.len();
    assert!(n > 0, "the execution order needs at least one position");
    assert_eq!(checkpoints.len(), n, "one checkpoint cost per position");
    assert_eq!(recoveries.len(), n, "one protecting recovery per position");
    let downtime = ensure_non_negative("downtime", downtime)?;
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &w in weights {
        ensure_positive("work", w)?;
        prefix.push(prefix[prefix.len() - 1] + w);
    }
    let mut max_ckpt = 0.0f64;
    for &c in checkpoints {
        ensure_non_negative("checkpoint", c)?;
        max_ckpt = max_ckpt.max(c);
    }
    for &r in recoveries {
        ensure_non_negative("recovery", r)?;
    }
    Ok((downtime, prefix, max_ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{expected_time, ExecutionParams};
    use proptest::prelude::*;

    fn reference_cost(work: f64, c: f64, d: f64, r: f64, lambda: f64) -> f64 {
        expected_time(&ExecutionParams::new(work, c, d, r, lambda).unwrap())
    }

    fn relative_gap(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
    }

    #[test]
    fn validates_parameters() {
        assert!(SegmentCostTable::new(0.0, 0.0, &[1.0], &[0.0], &[0.0]).is_err());
        assert!(SegmentCostTable::new(1e-3, -1.0, &[1.0], &[0.0], &[0.0]).is_err());
        assert!(SegmentCostTable::new(1e-3, 0.0, &[0.0], &[0.0], &[0.0]).is_err());
        assert!(SegmentCostTable::new(1e-3, 0.0, &[1.0], &[-1.0], &[0.0]).is_err());
        assert!(SegmentCostTable::new(1e-3, 0.0, &[1.0], &[0.0], &[-1.0]).is_err());
        assert!(SegmentCostTable::new(1e-3, 0.0, &[1.0], &[0.0], &[0.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn rejects_empty_tables() {
        let _ = SegmentCostTable::new(1e-3, 0.0, &[], &[], &[]);
    }

    #[test]
    fn single_segment_matches_proposition_1() {
        let (w, c, d, r, lambda) = (3_600.0, 120.0, 60.0, 90.0, 1.0 / 5_000.0);
        let table = SegmentCostTable::new(lambda, d, &[w], &[c], &[r]).unwrap();
        let exact = reference_cost(w, c, d, r, lambda);
        assert!(relative_gap(table.cost(0, 0), exact) < 1e-13);
        assert!(relative_gap(table.total_cost(&[true]), exact) < 1e-13);
    }

    #[test]
    fn all_pairs_match_per_segment_evaluation() {
        let weights = [400.0, 100.0, 900.0, 250.0, 650.0, 300.0];
        let ckpt = [60.0, 10.0, 45.0, 0.0, 80.0, 30.0];
        let rec = [15.0, 60.0, 20.0, 100.0, 40.0, 10.0];
        let (lambda, d) = (1e-4, 30.0);
        let table = SegmentCostTable::new(lambda, d, &weights, &ckpt, &rec).unwrap();
        for x in 0..weights.len() {
            for j in x..weights.len() {
                let work: f64 = weights[x..=j].iter().sum();
                let exact = reference_cost(work, ckpt[j], d, rec[x], lambda);
                assert!(
                    relative_gap(table.cost(x, j), exact) < 1e-12,
                    "cost({x}, {j}) = {} vs {exact}",
                    table.cost(x, j)
                );
            }
        }
    }

    #[test]
    fn total_cost_splits_at_checkpoints() {
        let weights = [100.0, 200.0, 300.0];
        let table =
            SegmentCostTable::new(1e-4, 2.0, &weights, &[10.0; 3], &[5.0, 20.0, 20.0]).unwrap();
        let total = table.total_cost(&[true, false, true]);
        let manual = table.cost(0, 0) + table.cost(1, 2);
        assert_eq!(total, manual);
    }

    #[test]
    fn tiny_exponent_regime_stays_exact() {
        // A one-minute task on a ten-year-MTBF platform: λ(W+C) ≈ 2·10⁻⁷.
        let lambda = 1.0 / (10.0 * 365.0 * 86_400.0);
        let table = SegmentCostTable::new(lambda, 60.0, &[60.0], &[5.0], &[30.0]).unwrap();
        let exact = reference_cost(60.0, 5.0, 60.0, 30.0, lambda);
        assert!(relative_gap(table.cost(0, 0), exact) < 1e-13);
    }

    #[test]
    fn saturated_tables_fall_back_without_overflow() {
        // λ·total work ≈ 1000 ≫ 650: the precomputed exponentials would
        // overflow, the fallback must still return finite (astronomical)
        // costs that match the closed form computed segment-wise.
        let weights = vec![100.0; 100];
        let table =
            SegmentCostTable::new(0.1, 1.0, &weights, &vec![5.0; 100], &vec![5.0; 100]).unwrap();
        assert!(table.is_saturated());
        let cost = table.cost(0, 20);
        let exact = reference_cost(2_100.0, 5.0, 1.0, 5.0, 0.1);
        assert!(cost.is_finite());
        assert!(relative_gap(cost, exact) < 1e-12);
        // Short segments still work too.
        assert!(relative_gap(table.cost(3, 3), reference_cost(100.0, 5.0, 1.0, 5.0, 0.1)) < 1e-12);
    }

    #[test]
    fn lower_bound_is_a_bound_and_monotone() {
        let weights = [400.0, 100.0, 900.0, 250.0, 650.0, 300.0];
        let ckpt = [60.0, 10.0, 45.0, 0.0, 80.0, 30.0];
        let rec = [15.0, 60.0, 20.0, 100.0, 40.0, 10.0];
        let table = SegmentCostTable::new(2e-4, 30.0, &weights, &ckpt, &rec).unwrap();
        for x in 0..weights.len() {
            let mut previous = f64::NEG_INFINITY;
            for j in x..weights.len() {
                let bound = table.segment_lower_bound(x, j);
                assert!(bound >= previous, "bound not monotone at ({x}, {j})");
                previous = bound;
                for j2 in j..weights.len() {
                    assert!(
                        bound <= table.cost(x, j2) * (1.0 + 1e-12),
                        "bound {bound} exceeds cost({x}, {j2}) = {}",
                        table.cost(x, j2)
                    );
                }
            }
        }
    }

    #[test]
    fn lower_bound_is_tight_for_uniform_checkpoints() {
        let weights = [300.0, 800.0, 150.0, 950.0];
        let table = SegmentCostTable::new(1e-3, 10.0, &weights, &[45.0; 4], &[60.0; 4]).unwrap();
        for x in 0..4 {
            for j in x..4 {
                let gap = relative_gap(table.segment_lower_bound(x, j), table.cost(x, j));
                assert!(gap < 1e-12, "uniform-cost bound not tight at ({x}, {j})");
            }
        }
    }

    #[test]
    fn slope_query_point_decomposition_matches_cost() {
        let weights = [400.0, 100.0, 900.0, 250.0];
        let ckpt = [60.0, 10.0, 45.0, 30.0];
        let rec = [15.0, 60.0, 20.0, 10.0];
        let table = SegmentCostTable::new(5e-4, 12.0, &weights, &ckpt, &rec).unwrap();
        for x in 0..4 {
            for j in x..4 {
                let via_line = table.slope(j) * table.query_point(x) - table.coefficient(x);
                assert!(
                    relative_gap(via_line, table.cost(x, j)) < 1e-9,
                    "decomposition mismatch at ({x}, {j})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn prop_single_segment_matches_expected_time(
            w in 1e-3f64..1e5,
            c in 0.0f64..1e4,
            d in 0.0f64..1e3,
            r in 0.0f64..1e4,
            lambda_exp in -12.0f64..-1.0,
        ) {
            let lambda = 10f64.powf(lambda_exp);
            let table = SegmentCostTable::new(lambda, d, &[w], &[c], &[r]).unwrap();
            let exact = reference_cost(w, c, d, r, lambda);
            if exact.is_finite() {
                let gap = relative_gap(table.cost(0, 0), exact);
                prop_assert!(gap < 1e-12, "gap {gap} for W={w} C={c} D={d} R={r} λ={lambda}");
            } else {
                // λ(W+C) beyond ~709: the closed form itself overflows f64;
                // the table must agree that the expectation is astronomical.
                prop_assert!(table.cost(0, 0) == exact);
            }
        }

        #[test]
        fn prop_tiny_lambda_attempt_product_regime(
            w in 1e-3f64..60.0,
            c in 0.0f64..1.0,
            lambda_exp in -14.0f64..-8.0,
        ) {
            // The exp_m1 regime the exact.rs comment calls out: λ(W+C) down
            // to ~1e-16, where a naive `exp(z) - 1` would return garbage.
            let lambda = 10f64.powf(lambda_exp);
            let table = SegmentCostTable::new(lambda, 0.0, &[w], &[c], &[0.0]).unwrap();
            let exact = reference_cost(w, c, 0.0, 0.0, lambda);
            let gap = relative_gap(table.cost(0, 0), exact);
            prop_assert!(gap < 1e-12, "gap {gap} for W={w} C={c} λ={lambda}");
        }

        #[test]
        fn prop_multi_position_costs_match_segment_formula(
            seed in any::<u64>(),
            n in 1usize..12,
            lambda_exp in -7.0f64..-2.0,
            d in 0.0f64..100.0,
        ) {
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let weights: Vec<f64> = (0..n).map(|_| 1.0 + next() * 2_000.0).collect();
            let ckpt: Vec<f64> = (0..n).map(|_| next() * 200.0).collect();
            let rec: Vec<f64> = (0..n).map(|_| next() * 200.0).collect();
            let lambda = 10f64.powf(lambda_exp);
            let table = SegmentCostTable::new(lambda, d, &weights, &ckpt, &rec).unwrap();
            for x in 0..n {
                for j in x..n {
                    let work: f64 = weights[x..=j].iter().sum();
                    let exact = reference_cost(work, ckpt[j], d, rec[x], lambda);
                    let gap = relative_gap(table.cost(x, j), exact);
                    // 1e-9 rather than 1e-12: the reference computes the
                    // segment work as a fresh slice sum while the table uses
                    // prefix differences, so the two works themselves differ
                    // by up to ~n·ε·total/work before any exponential is
                    // taken.
                    prop_assert!(gap < 1e-9, "gap {gap} at ({x}, {j}), λ={lambda}");
                }
            }
        }
    }
}

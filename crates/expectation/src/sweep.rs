//! Batched λ-parameterised evaluation over one fixed execution order.
//!
//! Fault-tolerance studies rarely evaluate a workflow at a single failure
//! rate: sensitivity analyses sweep `λ` across decades to see how the optimal
//! policy degrades with the platform (paper §5 experiments), and the §6
//! exponential-equivalent planner re-solves the same chain under a surrogate
//! rate per candidate platform. Rebuilding a [`SegmentCostTable`] from scratch
//! for every rate repeats work that does not depend on `λ` at all: parameter
//! validation, the work prefix sums, and the per-order cost vectors.
//!
//! [`LambdaSweep`] performs that λ-independent work **once** per execution
//! order and then stamps out one table per requested rate; only the genuinely
//! λ-dependent precomputation (the `O(n)` exponentials) is redone per rate.
//! On top of [`LambdaSweep::table_for`] it offers batch helpers that evaluate
//! a fixed checkpoint placement across a whole vector of rates
//! ([`LambdaSweep::total_costs`]) or lay out a logarithmic rate grid
//! ([`log_lambda_grid`]).
//!
//! Solvers that *optimise* per rate (the Algorithm 1 chain DP) live in
//! `ckpt-core` and consume the per-rate tables directly; see
//! `ckpt_core::analysis::lambda_sweep`.

use std::sync::Arc;

use crate::error::{ensure_positive, ExpectationError};
use crate::segment_cost::SegmentCostTable;

/// The λ-independent part of a [`SegmentCostTable`]: one fixed execution
/// order (weights, checkpoint costs, protecting recoveries, downtime) with
/// its work prefix sums, ready to be instantiated at any failure rate.
///
/// # Example
///
/// Evaluate one checkpoint placement across three platform failure rates,
/// sharing the order validation and prefix sums between the rates:
///
/// ```
/// use ckpt_expectation::sweep::LambdaSweep;
///
/// let sweep = LambdaSweep::new(
///     30.0,                       // downtime D
///     &[400.0, 100.0, 900.0],     // task weights along the order
///     &[60.0, 60.0, 60.0],        // checkpoint costs C_j
///     &[15.0, 60.0, 20.0],        // protecting recoveries R_x
/// )?;
/// let placement = [true, false, true];
/// let costs = sweep.total_costs(&placement, &[1e-6, 1e-4, 1e-3])?;
/// // Expected makespan grows with the failure rate.
/// assert!(costs[0] < costs[1] && costs[1] < costs[2]);
/// // Each batched value matches the one-off table's evaluation (up to the
/// // table's documented ~1e-13 product-path rounding).
/// let one_off = sweep.table_for(1e-4)?.total_cost(&placement);
/// assert!((costs[1] - one_off).abs() / one_off < 1e-12);
/// # Ok::<(), ckpt_expectation::ExpectationError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaSweep {
    downtime: f64,
    /// `prefix[k] = w_0 + … + w_{k−1}`, shared (by `Arc`, not copied) with
    /// every per-rate table.
    prefix: Arc<Vec<f64>>,
    /// Checkpoint cost per position, shared like `prefix`.
    checkpoints: Arc<Vec<f64>>,
    recoveries: Vec<f64>,
    max_ckpt: f64,
}

impl LambdaSweep {
    /// Validates one execution order (positionally, exactly as
    /// [`SegmentCostTable::new`]) and precomputes its λ-independent data.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpectationError`] if `downtime` is negative, any weight
    /// is not strictly positive, or any checkpoint/recovery cost is negative.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or are empty (a
    /// programming error, not a data error).
    pub fn new(
        downtime: f64,
        weights: &[f64],
        checkpoints: &[f64],
        recoveries: &[f64],
    ) -> Result<Self, ExpectationError> {
        let (downtime, prefix, max_ckpt) =
            crate::segment_cost::validate_order(downtime, weights, checkpoints, recoveries)?;
        Ok(LambdaSweep {
            downtime,
            prefix: Arc::new(prefix),
            checkpoints: Arc::new(checkpoints.to_vec()),
            recoveries: recoveries.to_vec(),
            max_ckpt,
        })
    }

    /// The number of positions of the underlying execution order.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the sweep covers no positions (never true: construction
    /// requires at least one position).
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The downtime `D` shared by every per-rate table.
    pub fn downtime(&self) -> f64 {
        self.downtime
    }

    /// The total work `w_0 + … + w_{n−1}` of the order.
    pub fn total_work(&self) -> f64 {
        *self.prefix.last().expect("prefix always has n + 1 entries")
    }

    /// A 64-bit fingerprint of the validated order's defining data: the
    /// downtime, the work prefix sums, and the per-position checkpoint and
    /// recovery costs, hashed over their exact `f64` bit patterns (FNV-1a).
    ///
    /// Two sweeps with bitwise-equal defining vectors always fingerprint
    /// identically, so the fingerprint can key a plan cache across rates —
    /// `ckpt-service` keys its cache by *fingerprint × rate bucket*. It is a
    /// hash, not an identity: colliding orders must still be told apart by
    /// comparing their defining vectors (which the service's cache does).
    pub fn fingerprint(&self) -> u64 {
        order_fingerprint(self.downtime, &self.prefix, &self.checkpoints, &self.recoveries)
    }

    /// Instantiates the order's [`SegmentCostTable`] at failure rate
    /// `lambda`, redoing only the λ-dependent precomputation (the `O(n)`
    /// exponentials); validation, prefix sums and checkpoint costs are
    /// shared with the table by reference (`Arc`), not copied.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpectationError`] if `lambda` is not strictly positive
    /// and finite.
    pub fn table_for(&self, lambda: f64) -> Result<SegmentCostTable, ExpectationError> {
        let lambda = ensure_positive("lambda", lambda)?;
        Ok(SegmentCostTable::from_validated_parts(
            lambda,
            self.downtime,
            Arc::clone(&self.prefix),
            Arc::clone(&self.checkpoints),
            &self.recoveries,
            self.max_ckpt,
        ))
    }

    /// Evaluates the fixed checkpoint placement `checkpoint_after` (one
    /// decision per position, final entry `true`) at every rate of `lambdas`,
    /// returning one expected makespan per rate — the batched form of
    /// [`SegmentCostTable::total_cost`].
    ///
    /// The segment boundaries are λ-independent, so they are extracted once
    /// and each rate then costs `O(segments)` Proposition-1 closed-form
    /// evaluations (identically [`expected_time`](crate::exact::expected_time)
    /// per segment, on the shared prefix sums) — no per-rate table is built.
    /// Agrees with the corresponding table's
    /// [`total_cost`](SegmentCostTable::total_cost) to the table's documented
    /// `~10⁻¹³` relative error (the table may take its exp-free product path
    /// where this takes the `exp_m1` form).
    ///
    /// # Errors
    ///
    /// Returns an [`ExpectationError`] if any rate is not strictly positive
    /// and finite.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_after` does not have one entry per position or
    /// its final entry is `false` (the model's mandatory final checkpoint).
    pub fn total_costs(
        &self,
        checkpoint_after: &[bool],
        lambdas: &[f64],
    ) -> Result<Vec<f64>, ExpectationError> {
        assert_eq!(checkpoint_after.len(), self.len(), "one decision per position");
        assert_eq!(checkpoint_after.last(), Some(&true), "final checkpoint is mandatory");
        let mut segments = Vec::new();
        let mut start = 0usize;
        for (j, &ckpt) in checkpoint_after.iter().enumerate() {
            if ckpt {
                segments.push((start, j));
                start = j + 1;
            }
        }
        lambdas
            .iter()
            .map(|&lambda| {
                let lambda = ensure_positive("lambda", lambda)?;
                let base = 1.0 / lambda + self.downtime;
                Ok(segments
                    .iter()
                    .map(|&(x, j)| {
                        let attempt = self.prefix[j + 1] - self.prefix[x] + self.checkpoints[j];
                        (lambda * self.recoveries[x]).exp() * base * (lambda * attempt).exp_m1()
                    })
                    .sum())
            })
            .collect()
    }
}

/// FNV-1a over the bit patterns of an execution order's defining vectors
/// (shared by [`LambdaSweep::fingerprint`] and
/// [`SegmentCostTable::fingerprint`], so the two can never diverge): the
/// downtime, the work prefix sums (`n + 1` values, which pin both the
/// weights and their summation), and the per-position checkpoint and
/// recovery costs.
pub(crate) fn order_fingerprint(
    downtime: f64,
    prefix: &[f64],
    checkpoints: &[f64],
    recoveries: &[f64],
) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv_mix(&mut hash, downtime);
    for &p in prefix {
        fnv_mix(&mut hash, p);
    }
    for &c in checkpoints {
        fnv_mix(&mut hash, c);
    }
    for &r in recoveries {
        fnv_mix(&mut hash, r);
    }
    hash
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one `f64`'s exact bit pattern into a running FNV-1a hash.
pub(crate) fn fnv_mix(hash: &mut u64, value: f64) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in value.to_bits().to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The index of the grid rate nearest to `lambda` in **log space** — the
/// rate-bucketing primitive of the planner-as-a-service tier: quantising a
/// client's rate estimate onto a [`log_lambda_grid`] turns a continuum of
/// λ values into a small set of cache buckets, and on a logarithmic grid the
/// nearest bucket in log space bounds the relative rate error by half the
/// grid ratio.
///
/// `grid` must be sorted ascending with strictly positive entries (what
/// [`log_lambda_grid`] produces); `lambda` must be strictly positive and
/// finite. Rates below the first or above the last grid point clamp to the
/// end buckets.
///
/// # Panics
///
/// Panics if `grid` is empty (a programming error, not a data error).
///
/// # Example
///
/// ```
/// use ckpt_expectation::sweep::{log_lambda_grid, nearest_rate_bucket};
///
/// let grid = log_lambda_grid(1e-6, 1e-2, 5)?; // one decade per step
/// assert_eq!(nearest_rate_bucket(&grid, 1e-4), 2);
/// // 3.3e-4 is nearer 1e-4 than 1e-3 in log space (ratio 3.3 < 3.03⁻¹·10).
/// assert_eq!(nearest_rate_bucket(&grid, 3.1e-4), 2);
/// assert_eq!(nearest_rate_bucket(&grid, 3.3e-4), 3);
/// // Out-of-range rates clamp to the end buckets.
/// assert_eq!(nearest_rate_bucket(&grid, 1e-9), 0);
/// assert_eq!(nearest_rate_bucket(&grid, 1.0), 4);
/// # Ok::<(), ckpt_expectation::ExpectationError>(())
/// ```
pub fn nearest_rate_bucket(grid: &[f64], lambda: f64) -> usize {
    assert!(!grid.is_empty(), "rate grid needs at least one bucket");
    let upper = grid.partition_point(|&g| g < lambda);
    if upper == 0 {
        return 0;
    }
    if upper == grid.len() {
        return grid.len() - 1;
    }
    // Nearest in log space: compare against the geometric mean of the two
    // neighbouring grid points (λ² vs product avoids any `ln` calls).
    //
    // Both products can leave the normal `f64` range for extreme-but-valid
    // rates: `λ²` underflows to 0 below ~1.5e-162 and `grid[i−1]·grid[i]`
    // overflows to ∞ above ~1.3e154 (and symmetrically). A degenerate
    // product would silently bias the comparison towards one neighbour, so
    // those cases fall back to the mathematically identical — just slower —
    // log-space comparison.
    let squared = lambda * lambda;
    let neighbours = grid[upper - 1] * grid[upper];
    let below_midpoint =
        if squared > 0.0 && squared.is_finite() && neighbours > 0.0 && neighbours.is_finite() {
            squared < neighbours
        } else {
            2.0 * lambda.ln() < grid[upper - 1].ln() + grid[upper].ln()
        };
    if below_midpoint {
        upper - 1
    } else {
        upper
    }
}

/// A logarithmic grid of `points ≥ 2` failure rates from `lambda_min` to
/// `lambda_max` (inclusive at both ends) — the grid shape every λ-sweep
/// experiment of the paper's §5 uses.
///
/// # Errors
///
/// Returns an [`ExpectationError`] if the bounds are not strictly positive
/// and increasing or `points < 2`.
///
/// # Example
///
/// ```
/// let grid = ckpt_expectation::sweep::log_lambda_grid(1e-6, 1e-2, 5)?;
/// assert_eq!(grid.len(), 5);
/// assert!((grid[0] - 1e-6).abs() < 1e-18 && (grid[4] - 1e-2).abs() < 1e-9);
/// // Consecutive points share one ratio (here one decade).
/// assert!((grid[2] / grid[1] - 10.0).abs() < 1e-9);
/// # Ok::<(), ckpt_expectation::ExpectationError>(())
/// ```
pub fn log_lambda_grid(
    lambda_min: f64,
    lambda_max: f64,
    points: usize,
) -> Result<Vec<f64>, ExpectationError> {
    let lambda_min = ensure_positive("lambda_min", lambda_min)?;
    let lambda_max = ensure_positive("lambda_max", lambda_max)?;
    if lambda_max <= lambda_min {
        return Err(ExpectationError::NonPositiveParameter {
            name: "lambda range",
            value: lambda_max - lambda_min,
        });
    }
    if points < 2 {
        return Err(ExpectationError::NonPositiveParameter {
            name: "points",
            value: points as f64,
        });
    }
    let ratio = (lambda_max / lambda_min).powf(1.0 / (points - 1) as f64);
    let mut grid = Vec::with_capacity(points);
    let mut lambda = lambda_min;
    for _ in 0..points {
        grid.push(lambda);
        lambda *= ratio;
    }
    // Land exactly on the upper bound despite the repeated multiplication.
    *grid.last_mut().expect("points >= 2") = lambda_max;
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{expected_time, ExecutionParams};

    fn reference_cost(work: f64, c: f64, d: f64, r: f64, lambda: f64) -> f64 {
        expected_time(&ExecutionParams::new(work, c, d, r, lambda).unwrap())
    }

    fn sample_sweep() -> LambdaSweep {
        LambdaSweep::new(
            30.0,
            &[400.0, 100.0, 900.0, 250.0],
            &[60.0, 10.0, 45.0, 30.0],
            &[15.0, 60.0, 20.0, 10.0],
        )
        .unwrap()
    }

    #[test]
    fn validates_parameters() {
        assert!(LambdaSweep::new(-1.0, &[1.0], &[0.0], &[0.0]).is_err());
        assert!(LambdaSweep::new(0.0, &[0.0], &[0.0], &[0.0]).is_err());
        assert!(LambdaSweep::new(0.0, &[1.0], &[-1.0], &[0.0]).is_err());
        assert!(LambdaSweep::new(0.0, &[1.0], &[0.0], &[-1.0]).is_err());
        assert!(LambdaSweep::new(0.0, &[1.0], &[0.0], &[0.0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn rejects_empty_orders() {
        let _ = LambdaSweep::new(0.0, &[], &[], &[]);
    }

    #[test]
    fn tables_match_from_scratch_construction() {
        let sweep = sample_sweep();
        for lambda in [1e-7, 1e-4, 1e-2, 1.0] {
            let batched = sweep.table_for(lambda).unwrap();
            let scratch = SegmentCostTable::new(
                lambda,
                30.0,
                &[400.0, 100.0, 900.0, 250.0],
                &[60.0, 10.0, 45.0, 30.0],
                &[15.0, 60.0, 20.0, 10.0],
            )
            .unwrap();
            assert_eq!(batched, scratch, "λ = {lambda}");
        }
    }

    #[test]
    fn table_for_rejects_bad_lambdas() {
        let sweep = sample_sweep();
        assert!(sweep.table_for(0.0).is_err());
        assert!(sweep.table_for(-1.0).is_err());
        assert!(sweep.table_for(f64::NAN).is_err());
    }

    #[test]
    fn accessors_report_the_order() {
        let sweep = sample_sweep();
        assert_eq!(sweep.len(), 4);
        assert!(!sweep.is_empty());
        assert_eq!(sweep.downtime(), 30.0);
        assert!((sweep.total_work() - 1_650.0).abs() < 1e-9);
    }

    #[test]
    fn batch_costs_match_single_tables_and_grow_with_lambda() {
        let sweep = sample_sweep();
        let placement = [false, true, false, true];
        let lambdas = [1e-6, 1e-5, 1e-4, 1e-3];
        let batch = sweep.total_costs(&placement, &lambdas).unwrap();
        for (i, &lambda) in lambdas.iter().enumerate() {
            let single = sweep.table_for(lambda).unwrap().total_cost(&placement);
            // exp_m1 closed form vs the table's product path: ~1e-13 apart.
            let gap = (batch[i] - single).abs() / single;
            assert!(gap < 1e-12, "λ {lambda}: gap {gap}");
        }
        assert!(batch.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn batch_costs_match_expected_time_per_segment() {
        let sweep = sample_sweep();
        // Segments 0..=1 and 2..=3 of the sample order.
        let placement = [false, true, false, true];
        for &lambda in &[1e-6, 1e-4, 1e-2] {
            let batch = sweep.total_costs(&placement, &[lambda]).unwrap()[0];
            let manual = reference_cost(500.0, 10.0, 30.0, 15.0, lambda)
                + reference_cost(1_150.0, 30.0, 30.0, 20.0, lambda);
            assert_eq!(batch, manual, "λ {lambda}");
        }
    }

    #[test]
    #[should_panic(expected = "final checkpoint is mandatory")]
    fn batch_costs_require_final_checkpoint() {
        let _ = sample_sweep().total_costs(&[true, false, false, false], &[1e-4]);
    }

    #[test]
    fn saturation_is_per_rate() {
        let sweep = LambdaSweep::new(1.0, &[100.0; 100], &[5.0; 100], &[5.0; 100]).unwrap();
        assert!(!sweep.table_for(1e-4).unwrap().is_saturated());
        assert!(sweep.table_for(0.1).unwrap().is_saturated());
    }

    #[test]
    fn log_grid_hits_both_ends() {
        let grid = log_lambda_grid(1e-8, 1e-2, 13).unwrap();
        assert_eq!(grid.len(), 13);
        assert_eq!(grid[0], 1e-8);
        assert_eq!(grid[12], 1e-2);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn log_grid_validates_inputs() {
        assert!(log_lambda_grid(0.0, 1.0, 5).is_err());
        assert!(log_lambda_grid(1e-3, 1e-4, 5).is_err());
        assert!(log_lambda_grid(1e-5, 1e-3, 1).is_err());
    }

    #[test]
    fn fingerprint_separates_orders_and_matches_equal_ones() {
        let sweep = sample_sweep();
        assert_eq!(sweep.fingerprint(), sample_sweep().fingerprint());
        // Any single defining vector changing changes the fingerprint.
        let other_weights = LambdaSweep::new(
            30.0,
            &[400.0, 100.0, 900.0, 251.0],
            &[60.0, 10.0, 45.0, 30.0],
            &[15.0, 60.0, 20.0, 10.0],
        )
        .unwrap();
        let other_ckpt = LambdaSweep::new(
            30.0,
            &[400.0, 100.0, 900.0, 250.0],
            &[60.0, 10.0, 45.0, 31.0],
            &[15.0, 60.0, 20.0, 10.0],
        )
        .unwrap();
        let other_rec = LambdaSweep::new(
            30.0,
            &[400.0, 100.0, 900.0, 250.0],
            &[60.0, 10.0, 45.0, 30.0],
            &[15.0, 60.0, 20.0, 11.0],
        )
        .unwrap();
        let other_downtime = LambdaSweep::new(
            31.0,
            &[400.0, 100.0, 900.0, 250.0],
            &[60.0, 10.0, 45.0, 30.0],
            &[15.0, 60.0, 20.0, 10.0],
        )
        .unwrap();
        for other in [other_weights, other_ckpt, other_rec, other_downtime] {
            assert_ne!(sweep.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn table_fingerprint_separates_rates_of_one_order() {
        let sweep = sample_sweep();
        let a = sweep.table_for(1e-4).unwrap();
        let b = sweep.table_for(1e-3).unwrap();
        assert_eq!(a.fingerprint(), sweep.table_for(1e-4).unwrap().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // The sweep fingerprint is rate-free: one key spans every rate.
        assert_eq!(sweep.fingerprint(), sweep.fingerprint());
    }

    #[test]
    fn nearest_bucket_is_nearest_in_log_space() {
        let grid = log_lambda_grid(1e-6, 1e-2, 9).unwrap();
        for (index, &rate) in grid.iter().enumerate() {
            assert_eq!(nearest_rate_bucket(&grid, rate), index, "grid point {index}");
        }
        // Every λ maps to the log-nearest grid point (brute-force check).
        let mut probe = 5e-7;
        while probe < 5e-2 {
            let bucket = nearest_rate_bucket(&grid, probe);
            let best = grid
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da = (probe.ln() - a.ln()).abs();
                    let db = (probe.ln() - b.ln()).abs();
                    da.total_cmp(&db)
                })
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(bucket, best, "λ = {probe}");
            probe *= 1.37;
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn nearest_bucket_rejects_empty_grids() {
        let _ = nearest_rate_bucket(&[], 1e-4);
    }

    #[test]
    fn nearest_bucket_handles_underflowing_and_overflowing_products() {
        // λ² underflows to 0 here, as does the neighbour product: the fast
        // comparison `0 < 0` is false and would clamp every interior probe
        // to the upper bucket regardless of its actual position.
        let tiny = [1e-200, 1e-190];
        assert_eq!(nearest_rate_bucket(&tiny, 1e-199), 0);
        assert_eq!(nearest_rate_bucket(&tiny, 1e-191), 1);
        // λ² and the neighbour product both overflow to ∞ (`∞ < ∞` is
        // false): probes just above the lower grid point would misbucket.
        let huge = [1e180, 1e190];
        assert_eq!(nearest_rate_bucket(&huge, 1e181), 0);
        assert_eq!(nearest_rate_bucket(&huge, 1e189), 1);
        // Subnormal grid entries: the products are flushed to zero.
        let subnormal = [1e-310, 1e-305];
        assert_eq!(nearest_rate_bucket(&subnormal, 2e-310), 0);
        assert_eq!(nearest_rate_bucket(&subnormal, 2e-306), 1);
    }

    mod bucket_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_nearest_bucket_is_log_nearest_at_any_scale(
                exponent in -305.0f64..160.0,
                ratio in 1.2f64..10.0,
                points in 2usize..9,
                probe in 0.0f64..1.0,
            ) {
                // Grids anchored anywhere from subnormal-scale (1e-305, where
                // λ² and the neighbour products flush to zero) up to 1e160
                // (where they overflow to ∞): the regimes where the log-space
                // fallback must take over. The ranges keep every grid entry
                // itself finite, positive and strictly increasing.
                let scale = 10.0f64.powf(exponent);
                let grid: Vec<f64> =
                    (0..points).map(|i| scale * ratio.powi(i as i32)).collect();
                let lambda = scale * ratio.powf(probe * points as f64);

                let bucket = nearest_rate_bucket(&grid, lambda);
                let chosen = (lambda.ln() - grid[bucket].ln()).abs();
                let best = grid
                    .iter()
                    .map(|g| (lambda.ln() - g.ln()).abs())
                    .fold(f64::INFINITY, f64::min);
                // Nearest in log space up to rounding of the `ln` calls
                // (exact geometric-mean ties may resolve either way).
                prop_assert!(
                    chosen <= best * (1.0 + 1e-12) + 1e-12,
                    "bucket {} at log-distance {} but best is {}",
                    bucket,
                    chosen,
                    best
                );
            }
        }
    }
}

//! Optimal divisible-load checkpoint period under Exponential failures.
//!
//! The related work the paper builds on (§7) studies *divisible* jobs that can
//! be cut into arbitrary chunks, each followed by a checkpoint. For
//! Exponential failures the optimal policy is periodic (equal chunks); this
//! module computes the optimal chunk size exactly (by minimising the
//! Proposition 1 cost per unit of work) and the resulting makespan, so that
//! the experiments can compare the paper's *task-level* checkpoint placement
//! against the divisible-load ideal and against the Young/Daly approximate
//! periods.

use crate::approximations::{daly_period, periodic_divisible_makespan, young_period};
use crate::error::{ensure_non_negative, ensure_positive, ExpectationError};
use crate::exact::{expected_time, ExecutionParams};
use crate::numeric::golden_section_min;

/// The outcome of a period optimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OptimalPeriod {
    /// The optimal chunk duration (seconds of work between checkpoints).
    pub period: f64,
    /// The expected cost per unit of work at that period
    /// (`E[T(period, …)] / period`, dimensionless, ≥ 1).
    pub cost_per_work_unit: f64,
}

/// Computes the exact optimal checkpoint period for a divisible job by
/// minimising `E[T(W, C, D, R, λ)] / W` over `W`.
///
/// The function is strictly convex in `W` (product of the convex
/// `(e^{λ(W+C)} − 1)/W` with positive constants), so golden-section search on
/// a bracketed interval converges to the global optimum.
///
/// # Errors
///
/// Returns an error if `checkpoint ≤ 0`, `lambda ≤ 0`, or `downtime`/`recovery`
/// are negative.
pub fn optimal_period(
    checkpoint: f64,
    downtime: f64,
    recovery: f64,
    lambda: f64,
) -> Result<OptimalPeriod, ExpectationError> {
    let c = ensure_positive("checkpoint", checkpoint)?;
    let d = ensure_non_negative("downtime", downtime)?;
    let r = ensure_non_negative("recovery", recovery)?;
    let l = ensure_positive("lambda", lambda)?;

    let cost = |w: f64| {
        let params = ExecutionParams::new(w, c, d, r, l).expect("validated above");
        expected_time(&params) / w
    };

    // Bracket: the optimum is of the order of the Young period; search a wide
    // window around it.
    let young = young_period(c, l).expect("validated above");
    let lo = (young / 100.0).max(1e-9);
    let hi = (young * 100.0).max(10.0 / l);
    let (period, cost_per_work_unit) = golden_section_min(cost, lo, hi, 1e-9 * hi);
    Ok(OptimalPeriod { period, cost_per_work_unit })
}

/// Expected makespan of a divisible job of `w_total` seconds of work using the
/// exact optimal period.
///
/// # Errors
///
/// Propagates parameter-validation errors.
pub fn optimal_divisible_makespan(
    w_total: f64,
    checkpoint: f64,
    downtime: f64,
    recovery: f64,
    lambda: f64,
) -> Result<f64, ExpectationError> {
    let w_total = ensure_positive("w_total", w_total)?;
    let opt = optimal_period(checkpoint, downtime, recovery, lambda)?;
    periodic_divisible_makespan(w_total, opt.period, checkpoint, downtime, recovery, lambda)
}

/// Side-by-side comparison of the optimal, Young and Daly periods for a given
/// configuration — one row of experiment E1's period table.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeriodComparison {
    /// The exact optimal period.
    pub optimal: f64,
    /// Young's first-order period.
    pub young: f64,
    /// Daly's higher-order period.
    pub daly: f64,
    /// Expected makespan (for `w_total`) at the optimal period.
    pub makespan_optimal: f64,
    /// Expected makespan at the Young period.
    pub makespan_young: f64,
    /// Expected makespan at the Daly period.
    pub makespan_daly: f64,
}

/// Computes a [`PeriodComparison`] for the given configuration.
///
/// # Errors
///
/// Propagates parameter-validation errors.
pub fn compare_periods(
    w_total: f64,
    checkpoint: f64,
    downtime: f64,
    recovery: f64,
    lambda: f64,
) -> Result<PeriodComparison, ExpectationError> {
    let optimal = optimal_period(checkpoint, downtime, recovery, lambda)?;
    let young = young_period(checkpoint, lambda)?;
    let daly = daly_period(checkpoint, lambda)?;
    Ok(PeriodComparison {
        optimal: optimal.period,
        young,
        daly,
        makespan_optimal: periodic_divisible_makespan(
            w_total,
            optimal.period,
            checkpoint,
            downtime,
            recovery,
            lambda,
        )?,
        makespan_young: periodic_divisible_makespan(
            w_total, young, checkpoint, downtime, recovery, lambda,
        )?,
        makespan_daly: periodic_divisible_makespan(
            w_total, daly, checkpoint, downtime, recovery, lambda,
        )?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_period_is_interior_minimum() {
        let opt = optimal_period(120.0, 0.0, 60.0, 1.0 / 86_400.0).unwrap();
        assert!(opt.period > 0.0);
        assert!(opt.cost_per_work_unit > 1.0);
        // Perturbing the period in either direction must not reduce the cost.
        let cost = |w: f64| {
            let p = ExecutionParams::new(w, 120.0, 0.0, 60.0, 1.0 / 86_400.0).unwrap();
            expected_time(&p) / w
        };
        assert!(cost(opt.period * 1.05) >= opt.cost_per_work_unit - 1e-12);
        assert!(cost(opt.period * 0.95) >= opt.cost_per_work_unit - 1e-12);
    }

    #[test]
    fn optimal_period_close_to_young_when_failures_rare() {
        // For very small λC the first-order approximation is excellent.
        let lambda = 1.0 / (365.0 * 86_400.0);
        let opt = optimal_period(60.0, 0.0, 0.0, lambda).unwrap();
        let young = young_period(60.0, lambda).unwrap();
        assert!((opt.period - young).abs() / young < 0.05, "opt {}, young {young}", opt.period);
    }

    #[test]
    fn optimal_period_shrinks_with_failure_rate() {
        let low = optimal_period(120.0, 0.0, 60.0, 1e-6).unwrap();
        let high = optimal_period(120.0, 0.0, 60.0, 1e-4).unwrap();
        assert!(high.period < low.period);
    }

    #[test]
    fn optimal_period_grows_with_checkpoint_cost() {
        let cheap = optimal_period(10.0, 0.0, 60.0, 1e-5).unwrap();
        let pricey = optimal_period(1000.0, 0.0, 60.0, 1e-5).unwrap();
        assert!(pricey.period > cheap.period);
    }

    #[test]
    fn optimal_beats_or_ties_young_and_daly() {
        // Compare the continuous per-unit cost: the exact optimiser must be at
        // least as good as the Young and Daly periods. (The discrete makespan
        // comparison can swing by a fraction of a chunk because of the
        // remainder chunk, so we also check it with a 1% slack.)
        for &lambda in &[1e-6, 1e-5, 1e-4] {
            let opt = optimal_period(300.0, 30.0, 300.0, lambda).unwrap();
            let cost = |w: f64| {
                let p = ExecutionParams::new(w, 300.0, 30.0, 300.0, lambda).unwrap();
                expected_time(&p) / w
            };
            let young = young_period(300.0, lambda).unwrap();
            let daly = daly_period(300.0, lambda).unwrap();
            assert!(opt.cost_per_work_unit <= cost(young) * (1.0 + 1e-9));
            assert!(opt.cost_per_work_unit <= cost(daly) * (1.0 + 1e-9));

            let cmp = compare_periods(1_000_000.0, 300.0, 30.0, 300.0, lambda).unwrap();
            assert!(cmp.makespan_optimal <= cmp.makespan_young * 1.01);
            assert!(cmp.makespan_optimal <= cmp.makespan_daly * 1.01);
        }
    }

    #[test]
    fn optimal_divisible_makespan_is_consistent() {
        let lambda = 1e-5;
        let total = optimal_divisible_makespan(500_000.0, 120.0, 0.0, 60.0, lambda).unwrap();
        // Must exceed the failure-free time and be finite.
        assert!(total > 500_000.0);
        assert!(total.is_finite());
    }

    #[test]
    fn validation_errors_propagate() {
        assert!(optimal_period(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(optimal_period(1.0, -1.0, 0.0, 1.0).is_err());
        assert!(optimal_divisible_makespan(0.0, 1.0, 0.0, 0.0, 1.0).is_err());
    }
}

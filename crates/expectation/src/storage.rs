//! Hierarchical checkpoint storage: per-level costs and the levelled
//! segment-cost table.
//!
//! The paper prices every checkpoint with a single write cost `C_j` and a
//! single read (recovery) cost `R_j`, but real platforms write to a storage
//! **hierarchy** — node memory, local disk, a remote store — whose tiers
//! differ in write bandwidth, read bandwidth and capacity. This module
//! models that hierarchy:
//!
//! * a [`StorageLevel`] scales the instance's per-position checkpoint and
//!   recovery costs by a write factor and a read factor (checkpoint time =
//!   per-position data volume ÷ per-level bandwidth, so the medium enters as
//!   a multiplicative factor), and may carry a **slot bound** — the fast
//!   tier holds only so many checkpoints for the lifetime of a run;
//! * a [`StorageLevels`] spec collects the levels (at most one of them
//!   bounded, which is what keeps the planning DP's state space linear in
//!   the slot budget);
//! * a [`LevelledCostTable`] materialises one
//!   [`SegmentCostTable`] **per
//!   level** over one execution order, sharing the λ-independent validation
//!   and work prefix sums between the levels by `Arc` exactly like
//!   [`LambdaSweep`](crate::sweep::LambdaSweep) shares them between rates.
//!
//! The key structural fact the table exploits: the Proposition-1 segment
//! cost
//!
//! ```text
//! T(x, j) = e^{λR_x} (1/λ + D) · (e^{λ(w_x + … + w_j + C_j)} − 1)
//! ```
//!
//! factors into a *coefficient* `e^{λR_x}(1/λ + D)` that depends only on
//! the **protecting** checkpoint (whose read cost is set by the level it
//! was written to) and an *exponent term* that depends only on the segment
//! span and the **written** checkpoint. A levelled segment cost — "segment
//! `x..=j`, protected by a level-`p` checkpoint, writing to level `ℓ`" — is
//! therefore level `p`'s coefficient times level `ℓ`'s exponent term, which
//! [`SegmentCostTable::cost_with_coefficient`] answers exp-free. With a
//! single level of unit factors every per-level vector is bitwise equal to
//! the base table's, so the levelled planner collapses **bitwise** to the
//! single-level one (`ckpt_core::chain_dp::optimal_levelled_schedule`'s
//! differential wall).
//!
//! [`SegmentCostTable::cost_with_coefficient`]:
//! crate::segment_cost::SegmentCostTable::cost_with_coefficient

use std::sync::Arc;

use crate::error::{ensure_positive, ExpectationError};
use crate::segment_cost::{validate_order, SegmentCostTable};

/// One storage level: multiplicative write/read cost factors over the
/// instance's per-position checkpoint/recovery costs, plus an optional slot
/// capacity.
///
/// Factor `1.0`/`1.0` is the paper's single medium. A memory tier might be
/// `StorageLevel::new(0.2, 0.1)?.with_slots(4)` — 5× faster writes, 10×
/// faster recovery, but only four checkpoints may ever be kept there — and
/// a remote store `StorageLevel::new(3.0, 5.0)?` (slower both ways,
/// unbounded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageLevel {
    checkpoint_factor: f64,
    recovery_factor: f64,
    slots: Option<usize>,
}

impl StorageLevel {
    /// An unbounded level scaling checkpoint writes by `checkpoint_factor`
    /// and recoveries by `recovery_factor`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpectationError`] unless both factors are strictly
    /// positive and finite.
    pub fn new(checkpoint_factor: f64, recovery_factor: f64) -> Result<Self, ExpectationError> {
        let checkpoint_factor = ensure_positive("checkpoint factor", checkpoint_factor)?;
        let recovery_factor = ensure_positive("recovery factor", recovery_factor)?;
        Ok(StorageLevel { checkpoint_factor, recovery_factor, slots: None })
    }

    /// Bounds the level to `slots` checkpoints for the lifetime of a run
    /// (builder style). Zero slots is allowed: the level exists but can
    /// never be written.
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = Some(slots);
        self
    }

    /// The write-cost factor applied to every per-position checkpoint cost.
    pub fn checkpoint_factor(&self) -> f64 {
        self.checkpoint_factor
    }

    /// The read-cost factor applied to every per-position recovery cost.
    pub fn recovery_factor(&self) -> f64 {
        self.recovery_factor
    }

    /// The slot capacity, or `None` for an unbounded level.
    pub fn slots(&self) -> Option<usize> {
        self.slots
    }
}

/// The storage hierarchy a plan may write checkpoints to: one or more
/// [`StorageLevel`]s, at most one of them slot-bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageLevels {
    levels: Vec<StorageLevel>,
}

impl StorageLevels {
    /// A hierarchy from an explicit level list.
    ///
    /// # Errors
    ///
    /// Returns [`ExpectationError::MultipleBoundedLevels`] if more than one
    /// level carries a slot bound.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty (a programming error, not a data error).
    pub fn new(levels: Vec<StorageLevel>) -> Result<Self, ExpectationError> {
        assert!(!levels.is_empty(), "the storage hierarchy needs at least one level");
        if levels.iter().filter(|level| level.slots.is_some()).count() > 1 {
            return Err(ExpectationError::MultipleBoundedLevels);
        }
        Ok(StorageLevels { levels })
    }

    /// The paper's flat model: a single unbounded level of unit factors.
    /// Planning on it is bitwise identical to ignoring storage levels
    /// entirely.
    pub fn single() -> Self {
        StorageLevels {
            levels: vec![StorageLevel {
                checkpoint_factor: 1.0,
                recovery_factor: 1.0,
                slots: None,
            }],
        }
    }

    /// The canonical two-tier hierarchy: a `fast` tier (typically cheaper
    /// factors, slot-bounded) as level 0 and a `slow` tier as level 1.
    ///
    /// # Errors
    ///
    /// Same as [`StorageLevels::new`].
    pub fn two_level(fast: StorageLevel, slow: StorageLevel) -> Result<Self, ExpectationError> {
        StorageLevels::new(vec![fast, slow])
    }

    /// The levels, in index order (a plan's level ids index this slice).
    pub fn levels(&self) -> &[StorageLevel] {
        &self.levels
    }

    /// The number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the hierarchy has no levels (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The slot-bounded level, if any, as `(level index, slot capacity)`.
    pub fn bounded(&self) -> Option<(usize, usize)> {
        self.levels.iter().enumerate().find_map(|(i, level)| level.slots.map(|s| (i, s)))
    }
}

/// Per-level [`SegmentCostTable`]s over one execution order, sharing the
/// λ-independent validation and work prefix sums (the
/// [`LambdaSweep`](crate::sweep::LambdaSweep) pattern, with levels in place
/// of rates).
///
/// Level `ℓ`'s table holds the order's checkpoint costs scaled by the
/// level's write factor and its protecting recoveries scaled by the level's
/// read factor — **except** position 0, whose protecting recovery is the
/// instance's initial recovery `R₀` and is independent of any level (no
/// checkpoint was written yet). Every coefficient query at position 0
/// therefore agrees bitwise across levels.
///
/// # Example
///
/// ```
/// use ckpt_expectation::storage::{LevelledCostTable, StorageLevel, StorageLevels};
///
/// let levels = StorageLevels::two_level(
///     StorageLevel::new(0.25, 0.2)?.with_slots(2), // fast, 2 slots
///     StorageLevel::new(1.0, 1.0)?,                // the paper's medium
/// )?;
/// let table = LevelledCostTable::new(
///     1e-4,
///     30.0,
///     &[400.0, 100.0, 900.0],
///     &[60.0, 60.0, 60.0],
///     &[15.0, 60.0, 20.0],
///     levels,
/// )?;
/// // Writing position 1's checkpoint to the fast tier costs a quarter:
/// let slow = table.table(1);
/// let fast = table.table(0);
/// assert!(fast.cost(0, 1) < slow.cost(0, 1));
/// # Ok::<(), ckpt_expectation::ExpectationError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LevelledCostTable {
    levels: StorageLevels,
    tables: Vec<SegmentCostTable>,
}

impl LevelledCostTable {
    /// Builds the per-level tables for an execution order described
    /// positionally exactly as in [`SegmentCostTable::new`]: `weights[i]`
    /// is the work at position `i`, `checkpoints[i]` the **base** (level
    /// factor 1) cost of checkpointing right after it, `recoveries[i]` the
    /// base recovery cost protecting a segment starting at `i` (the initial
    /// recovery `R₀` for `i = 0`).
    ///
    /// Validation runs once; the per-level tables share the prefix sums by
    /// `Arc`.
    ///
    /// # Errors
    ///
    /// Same as [`SegmentCostTable::new`].
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length or are empty (a
    /// programming error, not a data error).
    pub fn new(
        lambda: f64,
        downtime: f64,
        weights: &[f64],
        checkpoints: &[f64],
        recoveries: &[f64],
        levels: StorageLevels,
    ) -> Result<Self, ExpectationError> {
        let lambda = ensure_positive("lambda", lambda)?;
        let (downtime, prefix, _) = validate_order(downtime, weights, checkpoints, recoveries)?;
        let prefix = Arc::new(prefix);
        let tables = levels
            .levels()
            .iter()
            .map(|level| {
                let scaled_ckpt: Vec<f64> =
                    checkpoints.iter().map(|&c| c * level.checkpoint_factor()).collect();
                let mut scaled_rec: Vec<f64> =
                    recoveries.iter().map(|&r| r * level.recovery_factor()).collect();
                // The initial recovery protects position 0 before any
                // checkpoint exists; it belongs to no level.
                scaled_rec[0] = recoveries[0];
                let mut max_ckpt = 0.0f64;
                for &c in &scaled_ckpt {
                    max_ckpt = max_ckpt.max(c);
                }
                SegmentCostTable::from_validated_parts(
                    lambda,
                    downtime,
                    Arc::clone(&prefix),
                    Arc::new(scaled_ckpt),
                    &scaled_rec,
                    max_ckpt,
                )
            })
            .collect();
        Ok(LevelledCostTable { levels, tables })
    }

    /// The storage hierarchy the table was built for.
    pub fn levels(&self) -> &StorageLevels {
        &self.levels
    }

    /// The number of storage levels.
    pub fn level_count(&self) -> usize {
        self.tables.len()
    }

    /// The number of positions covered by each per-level table.
    pub fn len(&self) -> usize {
        self.tables[0].len()
    }

    /// Whether the table covers no positions (never true: construction
    /// requires at least one position).
    pub fn is_empty(&self) -> bool {
        self.tables[0].is_empty()
    }

    /// The platform failure rate `λ` the tables were built for.
    pub fn lambda(&self) -> f64 {
        self.tables[0].lambda()
    }

    /// Level `ℓ`'s [`SegmentCostTable`]: checkpoint costs scaled by the
    /// level's write factor, protecting recoveries by its read factor.
    pub fn table(&self, level: usize) -> &SegmentCostTable {
        &self.tables[level]
    }

    /// The expected makespan of a full levelled placement: `plan` lists the
    /// checkpoints as `(position, level)` pairs in increasing position
    /// order, the last position being `n − 1` (the mandatory final
    /// checkpoint). Each segment is charged the written level's exponent
    /// term under the protecting level's coefficient — the levelled
    /// analogue of
    /// [`SegmentCostTable::total_cost`](crate::segment_cost::SegmentCostTable::total_cost).
    ///
    /// # Panics
    ///
    /// Panics if `plan` is empty, a position/level is out of range, the
    /// positions are not strictly increasing, the final position is not
    /// `n − 1`, or the plan overruns a bounded level's slots.
    pub fn total_cost(&self, plan: &[(usize, usize)]) -> f64 {
        let n = self.len();
        assert!(!plan.is_empty(), "a plan needs at least the final checkpoint");
        assert_eq!(plan.last().unwrap().0, n - 1, "final checkpoint is mandatory");
        if let Some((bounded, slots)) = self.levels.bounded() {
            let used = plan.iter().filter(|(_, level)| *level == bounded).count();
            assert!(used <= slots, "plan uses {used} slots of {slots} on level {bounded}");
        }
        let mut total = 0.0;
        let mut start = 0usize;
        // Position 0's coefficient is the level-independent initial
        // recovery; any level's table answers it with the same bits.
        let mut coefficient = self.tables[0].coefficient(0);
        for &(j, level) in plan {
            assert!(start <= j && j < n, "plan positions must be strictly increasing");
            assert!(level < self.level_count(), "level {level} out of range");
            total += self.tables[level].cost_with_coefficient(start, j, coefficient);
            if j + 1 < n {
                coefficient = self.tables[level].coefficient(j + 1);
            }
            start = j + 1;
        }
        assert_eq!(start, n, "the final checkpoint must close the last segment");
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{expected_time, ExecutionParams};

    const WEIGHTS: [f64; 4] = [400.0, 100.0, 900.0, 250.0];
    const CKPTS: [f64; 4] = [60.0, 10.0, 45.0, 30.0];
    const RECS: [f64; 4] = [15.0, 60.0, 20.0, 10.0];

    fn two_level() -> StorageLevels {
        StorageLevels::two_level(
            StorageLevel::new(0.25, 0.2).unwrap().with_slots(2),
            StorageLevel::new(1.0, 1.0).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn level_validation() {
        assert!(StorageLevel::new(0.0, 1.0).is_err());
        assert!(StorageLevel::new(1.0, -1.0).is_err());
        assert!(StorageLevel::new(1.0, f64::NAN).is_err());
        assert!(StorageLevel::new(f64::INFINITY, 1.0).is_err());
        let level = StorageLevel::new(0.5, 0.25).unwrap().with_slots(3);
        assert_eq!(level.checkpoint_factor(), 0.5);
        assert_eq!(level.recovery_factor(), 0.25);
        assert_eq!(level.slots(), Some(3));
    }

    #[test]
    fn at_most_one_bounded_level() {
        let bounded = StorageLevel::new(0.5, 0.5).unwrap().with_slots(2);
        let free = StorageLevel::new(1.0, 1.0).unwrap();
        assert!(StorageLevels::new(vec![bounded, free]).is_ok());
        assert_eq!(
            StorageLevels::new(vec![bounded, bounded]),
            Err(ExpectationError::MultipleBoundedLevels)
        );
        let spec = StorageLevels::two_level(bounded, free).unwrap();
        assert_eq!(spec.bounded(), Some((0, 2)));
        assert_eq!(spec.len(), 2);
        assert!(StorageLevels::single().bounded().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn rejects_empty_hierarchies() {
        let _ = StorageLevels::new(Vec::new());
    }

    #[test]
    fn single_unit_level_is_bitwise_the_base_table() {
        let levelled =
            LevelledCostTable::new(1e-4, 30.0, &WEIGHTS, &CKPTS, &RECS, StorageLevels::single())
                .unwrap();
        let base = SegmentCostTable::new(1e-4, 30.0, &WEIGHTS, &CKPTS, &RECS).unwrap();
        assert_eq!(levelled.table(0), &base);
        for x in 0..WEIGHTS.len() {
            for j in x..WEIGHTS.len() {
                assert_eq!(levelled.table(0).cost(x, j).to_bits(), base.cost(x, j).to_bits());
            }
        }
    }

    #[test]
    fn cross_level_costs_match_the_closed_form() {
        let (lambda, d) = (1e-4, 30.0);
        let table =
            LevelledCostTable::new(lambda, d, &WEIGHTS, &CKPTS, &RECS, two_level()).unwrap();
        let spec = two_level();
        for p in 0..2 {
            for l in 0..2 {
                for x in 1..WEIGHTS.len() {
                    for j in x..WEIGHTS.len() {
                        let work: f64 = WEIGHTS[x..=j].iter().sum();
                        let exact = expected_time(
                            &ExecutionParams::new(
                                work,
                                CKPTS[j] * spec.levels()[l].checkpoint_factor(),
                                d,
                                RECS[x] * spec.levels()[p].recovery_factor(),
                                lambda,
                            )
                            .unwrap(),
                        );
                        let got = table.table(l).cost_with_coefficient(
                            x,
                            j,
                            table.table(p).coefficient(x),
                        );
                        let gap = (got - exact).abs() / exact;
                        assert!(gap < 1e-12, "p={p} l={l} ({x},{j}): {got} vs {exact}");
                    }
                }
            }
        }
    }

    #[test]
    fn initial_recovery_is_level_independent() {
        let table =
            LevelledCostTable::new(1e-4, 30.0, &WEIGHTS, &CKPTS, &RECS, two_level()).unwrap();
        assert_eq!(
            table.table(0).coefficient(0).to_bits(),
            table.table(1).coefficient(0).to_bits()
        );
        // But interior coefficients differ: the fast tier recovers 5× faster.
        assert!(table.table(0).coefficient(1) < table.table(1).coefficient(1));
    }

    #[test]
    fn total_cost_sums_cross_level_segments() {
        let table =
            LevelledCostTable::new(1e-4, 30.0, &WEIGHTS, &CKPTS, &RECS, two_level()).unwrap();
        // Checkpoints after 1 (fast) and 3 (slow).
        let plan = [(1, 0), (3, 1)];
        let manual = table.table(0).cost_with_coefficient(0, 1, table.table(0).coefficient(0))
            + table.table(1).cost_with_coefficient(2, 3, table.table(0).coefficient(2));
        assert_eq!(table.total_cost(&plan), manual);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn total_cost_enforces_slot_bounds() {
        let levels = StorageLevels::two_level(
            StorageLevel::new(0.25, 0.2).unwrap().with_slots(1),
            StorageLevel::new(1.0, 1.0).unwrap(),
        )
        .unwrap();
        let table = LevelledCostTable::new(1e-4, 30.0, &WEIGHTS, &CKPTS, &RECS, levels).unwrap();
        let _ = table.total_cost(&[(0, 0), (1, 0), (3, 1)]);
    }

    #[test]
    fn levels_share_the_prefix_by_arc() {
        // The LambdaSweep pattern: validation and prefix sums are computed
        // once; only the per-level exponentials differ.
        let table =
            LevelledCostTable::new(1e-4, 30.0, &WEIGHTS, &CKPTS, &RECS, two_level()).unwrap();
        assert_eq!(table.level_count(), 2);
        assert_eq!(table.len(), 4);
        assert_eq!(table.lambda(), 1e-4);
        // Same work on both levels: the prefix sums are shared data.
        assert_eq!(table.table(0).work(0, 3).to_bits(), table.table(1).work(0, 3).to_bits());
    }
}

//! Analytical layer: closed-form expectations, classical approximations,
//! workload and checkpoint-overhead scaling models.
//!
//! The centrepiece is [`exact::expected_time`], the paper's **Proposition 1**:
//!
//! ```text
//! E[T(W, C, D, R, λ)] = e^{λR} (1/λ + D) (e^{λ(W+C)} − 1)
//! ```
//!
//! the exact expected time needed to execute `W` seconds of work followed by a
//! checkpoint of `C` seconds on a platform whose failures follow an
//! Exponential law of rate `λ`, with downtime `D` and recovery `R` after each
//! failure (failures can strike during recovery but not during downtime).
//!
//! Around it, this crate provides:
//!
//! * the intermediate quantities of the proof, `E[T_lost]` (Equation 4) and
//!   `E[T_rec]` (Equation 5), exposed for testing and teaching;
//! * the first-order (Young) and higher-order (Daly) period approximations and
//!   the Bouguerra et al. comparator formula that §3 calls inaccurate
//!   ([`approximations`]);
//! * the optimal divisible-load checkpoint period under Exponential failures
//!   ([`optimal_period`]), the related-work baseline the paper contrasts with
//!   its non-divisible task model;
//! * the §3 scaling scenarios: workload models `W(p)` ([`workload`]) and
//!   checkpoint-overhead models `C(p)` ([`overhead`]);
//! * small, dependency-free numerical utilities ([`numeric`]).
//!
//! For solvers that evaluate Proposition 1 over many segments of one fixed
//! execution order, [`segment_cost::SegmentCostTable`] precomputes the
//! exponentials once and answers each segment-cost query with a handful of
//! multiplies instead of two `exp` calls; for experiments that re-evaluate
//! the same order across a whole vector of failure rates,
//! [`sweep::LambdaSweep`] shares the λ-independent part of that
//! precomputation (validation, work prefix sums) between the rates.
//!
//! # Example
//!
//! ```rust
//! use ckpt_expectation::exact::{expected_time, ExecutionParams};
//!
//! let params = ExecutionParams::new(3600.0, 60.0, 0.0, 60.0, 1.0 / 86_400.0)?;
//! let e = expected_time(&params);
//! // Slightly more than the failure-free time W + C.
//! assert!(e > 3660.0 && e < 3800.0);
//! # Ok::<(), ckpt_expectation::ExpectationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approximations;
pub mod error;
pub mod exact;
pub mod numeric;
pub mod optimal_period;
pub mod overhead;
pub mod segment_cost;
pub mod storage;
pub mod sweep;
pub mod waste;
pub mod workload;

pub use error::ExpectationError;
pub use exact::{expected_lost, expected_recovery, expected_time, ExecutionParams};
pub use overhead::OverheadModel;
pub use storage::{LevelledCostTable, StorageLevel, StorageLevels};
pub use workload::WorkloadModel;

//! Small, dependency-free numerical utilities.
//!
//! These back the optimal-period computation ([`crate::optimal_period`]) and
//! the convexity checks used in tests of the NP-completeness reduction (the
//! proof of Proposition 2 relies on the strict convexity of
//! `g(m) = m(e^{λ(nT/m + C)} − 1)`).

/// Minimises a unimodal function on `[lo, hi]` by golden-section search.
///
/// Returns `(argmin, min)`. The search stops when the bracket is narrower than
/// `tol` or after 200 iterations.
///
/// # Panics
///
/// Panics if `lo >= hi`, if either bound is not finite, or if `tol <= 0`.
pub fn golden_section_min<F>(mut f: F, lo: f64, hi: f64, tol: f64) -> (f64, f64)
where
    F: FnMut(f64) -> f64,
{
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo < hi, "lo must be < hi");
    assert!(tol > 0.0, "tolerance must be positive");
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut iterations = 0;
    while (b - a) > tol && iterations < 200 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
        iterations += 1;
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

/// Finds a root of `f` on `[lo, hi]` by bisection, assuming `f(lo)` and
/// `f(hi)` have opposite signs.
///
/// Returns `None` if the signs do not bracket a root.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is not finite.
pub fn bisect_root<F>(mut f: F, lo: f64, hi: f64, tol: f64) -> Option<f64>
where
    F: FnMut(f64) -> f64,
{
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo < hi, "lo must be < hi");
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Some(a);
    }
    if fb == 0.0 {
        return Some(b);
    }
    if fa.signum() == fb.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a) < tol {
            return Some(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Some(0.5 * (a + b))
}

/// Central-difference numerical derivative of `f` at `x` with step `h`.
pub fn derivative<F>(mut f: F, x: f64, h: f64) -> f64
where
    F: FnMut(f64) -> f64,
{
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// Checks that `f` is (discretely) convex on `[lo, hi]`: for `samples`
/// equally spaced points, every midpoint value must not exceed the average of
/// its neighbours (up to `tol`).
pub fn is_convex_on<F>(mut f: F, lo: f64, hi: f64, samples: usize, tol: f64) -> bool
where
    F: FnMut(f64) -> f64,
{
    assert!(samples >= 3, "need at least three samples");
    let step = (hi - lo) / (samples - 1) as f64;
    let values: Vec<f64> = (0..samples).map(|i| f(lo + step * i as f64)).collect();
    values.windows(3).all(|w| w[1] <= 0.5 * (w[0] + w[2]) + tol)
}

/// Summary statistics of a sample: mean, variance (unbiased), standard
/// deviation, standard error, and a normal-approximation 95% confidence
/// half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampleStats {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Half-width of the 95% confidence interval for the mean (normal
    /// approximation, `1.96 × std_error`).
    pub ci95_half_width: f64,
}

impl SampleStats {
    /// Computes statistics from a slice of observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = variance.sqrt();
        let std_error = std_dev / (n as f64).sqrt();
        SampleStats {
            count: n,
            mean,
            variance,
            std_dev,
            std_error,
            ci95_half_width: 1.96 * std_error,
        }
    }

    /// Relative difference `|mean − reference| / reference`.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is zero.
    pub fn relative_error(&self, reference: f64) -> f64 {
        assert!(reference != 0.0, "reference must be non-zero");
        (self.mean - reference).abs() / reference.abs()
    }

    /// Whether `reference` lies within the 95% confidence interval of the mean.
    pub fn ci95_contains(&self, reference: f64) -> bool {
        (self.mean - reference).abs() <= self.ci95_half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let (x, v) = golden_section_min(|x| (x - 3.0) * (x - 3.0) + 1.0, -10.0, 10.0, 1e-9);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn golden_section_handles_boundary_minimum() {
        let (x, _) = golden_section_min(|x| x, 0.0, 5.0, 1e-9);
        assert!(x < 1e-6);
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn golden_section_rejects_bad_bracket() {
        let _ = golden_section_min(|x| x, 1.0, 0.0, 1e-9);
    }

    #[test]
    fn bisect_finds_sqrt_two() {
        let root = bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_returns_none_without_sign_change() {
        assert!(bisect_root(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_none());
    }

    #[test]
    fn bisect_returns_endpoint_roots() {
        assert_eq!(bisect_root(|x| x, 0.0, 1.0, 1e-9), Some(0.0));
    }

    #[test]
    fn derivative_of_square_is_two_x() {
        let d = derivative(|x| x * x, 3.0, 1e-6);
        assert!((d - 6.0).abs() < 1e-5);
    }

    #[test]
    fn convexity_check() {
        assert!(is_convex_on(|x| x * x, -5.0, 5.0, 101, 1e-12));
        assert!(is_convex_on(|x| x.exp(), 0.0, 3.0, 101, 1e-12));
        assert!(!is_convex_on(|x| -x * x, -5.0, 5.0, 101, 1e-12));
        assert!(!is_convex_on(|x| x.sin(), 0.0, 6.0, 101, 1e-12));
    }

    #[test]
    fn sample_stats_of_constant_sample() {
        let stats = SampleStats::from_values(&[5.0; 10]);
        assert_eq!(stats.count, 10);
        assert_eq!(stats.mean, 5.0);
        assert_eq!(stats.variance, 0.0);
        assert_eq!(stats.ci95_half_width, 0.0);
        assert!(stats.ci95_contains(5.0));
        assert!(!stats.ci95_contains(5.1));
        assert_eq!(stats.relative_error(5.0), 0.0);
    }

    #[test]
    fn sample_stats_of_known_sample() {
        let stats = SampleStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(stats.mean, 3.0);
        assert!((stats.variance - 2.5).abs() < 1e-12);
        assert!((stats.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((stats.relative_error(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn sample_stats_rejects_empty() {
        let _ = SampleStats::from_values(&[]);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let stats = SampleStats::from_values(&[7.5]);
        assert_eq!(stats.count, 1);
        assert_eq!(stats.variance, 0.0);
    }
}

//! Waste analysis: where does the expected time beyond the useful work go?
//!
//! The resilience literature the paper builds on (Young, Daly, Bougeret et
//! al.) reasons in terms of **waste**: the fraction of the platform time that
//! does not contribute useful work. For a periodic execution with period `W`
//! (work per checkpoint), checkpoint cost `C`, downtime `D`, recovery `R` and
//! Exponential failures of rate `λ`, the expected waste decomposes into a
//! failure-free part (the checkpoints themselves) and a failure-induced part
//! (lost work, downtime, recovery). This module provides that decomposition,
//! the classical first-order optimal waste `√(2λC)`, and helpers used by
//! experiment E6 to discuss the scaling scenarios.

use crate::error::{ensure_non_negative, ensure_positive, ExpectationError};
use crate::exact::{expected_time, ExecutionParams};

/// A waste decomposition for a periodic execution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WasteBreakdown {
    /// Total waste: `1 − (useful work) / (expected total time)` ∈ [0, 1).
    pub total: f64,
    /// Waste attributable to checkpointing alone (failure-free execution).
    pub checkpoint: f64,
    /// Waste attributable to failures (lost work, downtime, recovery).
    pub failure_induced: f64,
}

/// Computes the waste of executing work in chunks of `period` seconds, each
/// followed by a checkpoint, under Proposition 1 semantics.
///
/// The decomposition uses the standard two-step argument:
/// `1 − waste_total = (1 − waste_ckpt)(1 − waste_fail)` with
/// `waste_ckpt = C/(W+C)`.
///
/// # Errors
///
/// Returns an error if any parameter is invalid (`period ≤ 0`,
/// `checkpoint < 0`, `downtime < 0`, `recovery < 0`, `lambda ≤ 0`).
pub fn waste_breakdown(
    period: f64,
    checkpoint: f64,
    downtime: f64,
    recovery: f64,
    lambda: f64,
) -> Result<WasteBreakdown, ExpectationError> {
    let period = ensure_positive("period", period)?;
    let checkpoint = ensure_non_negative("checkpoint", checkpoint)?;
    ensure_non_negative("downtime", downtime)?;
    ensure_non_negative("recovery", recovery)?;
    ensure_positive("lambda", lambda)?;

    let params = ExecutionParams::new(period, checkpoint, downtime, recovery, lambda)?;
    let expected = expected_time(&params);
    let total = 1.0 - period / expected;
    let ckpt = checkpoint / (period + checkpoint);
    // (1 - total) = (1 - ckpt)(1 - fail)  =>  fail = 1 - (1 - total)/(1 - ckpt)
    let failure_induced = 1.0 - (1.0 - total) / (1.0 - ckpt);
    Ok(WasteBreakdown { total, checkpoint: ckpt, failure_induced })
}

/// The classical first-order optimal waste for a divisible job:
/// `waste* ≈ √(2λC)` (achieved at the Young period), valid when `λC ≪ 1`.
///
/// # Errors
///
/// Returns an error if `checkpoint ≤ 0` or `lambda ≤ 0`.
pub fn first_order_optimal_waste(checkpoint: f64, lambda: f64) -> Result<f64, ExpectationError> {
    let c = ensure_positive("checkpoint", checkpoint)?;
    let l = ensure_positive("lambda", lambda)?;
    Ok((2.0 * l * c).sqrt())
}

/// The smallest platform MTBF (`1/λ`) for which the total waste at the
/// optimal period stays below `target_waste`. Found by bisection on `λ`;
/// useful for sizing exercises ("how reliable must the platform be for 10%
/// waste with 10-minute checkpoints?").
///
/// # Errors
///
/// Returns an error if `checkpoint ≤ 0` or `target_waste` is not in `(0, 1)`.
pub fn mtbf_for_target_waste(
    checkpoint: f64,
    downtime: f64,
    recovery: f64,
    target_waste: f64,
) -> Result<f64, ExpectationError> {
    let c = ensure_positive("checkpoint", checkpoint)?;
    ensure_non_negative("downtime", downtime)?;
    ensure_non_negative("recovery", recovery)?;
    if !(0.0..1.0).contains(&target_waste) || target_waste == 0.0 {
        return Err(ExpectationError::FractionOutOfRange {
            name: "target_waste",
            value: target_waste,
        });
    }
    let waste_at = |lambda: f64| -> f64 {
        let opt = crate::optimal_period::optimal_period(c, downtime, recovery, lambda)
            .expect("parameters validated above");
        waste_breakdown(opt.period, c, downtime, recovery, lambda)
            .expect("parameters validated above")
            .total
    };
    // Waste is increasing in λ; bracket it.
    let mut lo = 1e-12f64; // extremely reliable
    let mut hi = 1.0f64; // one failure per second
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection over decades
        if waste_at(mid) < target_waste {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(1.0 / ((lo * hi).sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approximations::young_period;

    #[test]
    fn breakdown_parts_compose_multiplicatively() {
        let wb = waste_breakdown(3_600.0, 300.0, 30.0, 300.0, 1e-5).unwrap();
        let recomposed = 1.0 - (1.0 - wb.checkpoint) * (1.0 - wb.failure_induced);
        assert!((wb.total - recomposed).abs() < 1e-12);
        assert!(wb.total > 0.0 && wb.total < 1.0);
        assert!(wb.checkpoint > 0.0 && wb.failure_induced > 0.0);
    }

    #[test]
    fn waste_vanishes_without_checkpoints_and_failures() {
        let wb = waste_breakdown(1_000.0, 0.0, 0.0, 0.0, 1e-15).unwrap();
        assert!(wb.total < 1e-9);
        assert_eq!(wb.checkpoint, 0.0);
    }

    #[test]
    fn waste_grows_with_failure_rate_and_checkpoint_cost() {
        let base = waste_breakdown(3_600.0, 300.0, 0.0, 300.0, 1e-6).unwrap();
        let more_failures = waste_breakdown(3_600.0, 300.0, 0.0, 300.0, 1e-4).unwrap();
        let bigger_ckpt = waste_breakdown(3_600.0, 900.0, 0.0, 300.0, 1e-6).unwrap();
        assert!(more_failures.total > base.total);
        assert!(bigger_ckpt.total > base.total);
    }

    #[test]
    fn first_order_waste_matches_full_model_at_young_period_for_rare_failures() {
        let lambda = 1e-7;
        let c = 120.0;
        let approx = first_order_optimal_waste(c, lambda).unwrap();
        let young = young_period(c, lambda).unwrap();
        let full = waste_breakdown(young, c, 0.0, 0.0, lambda).unwrap().total;
        assert!((approx - full).abs() / full < 0.05, "approx {approx}, full {full}");
        assert!(first_order_optimal_waste(0.0, 1.0).is_err());
    }

    #[test]
    fn mtbf_for_target_waste_is_consistent() {
        let c = 600.0;
        let mtbf = mtbf_for_target_waste(c, 60.0, 600.0, 0.10).unwrap();
        assert!(mtbf > 0.0);
        // At that MTBF the optimal-period waste is indeed about 10%.
        let lambda = 1.0 / mtbf;
        let opt = crate::optimal_period::optimal_period(c, 60.0, 600.0, lambda).unwrap();
        let waste = waste_breakdown(opt.period, c, 60.0, 600.0, lambda).unwrap().total;
        assert!((waste - 0.10).abs() < 0.01, "waste {waste}");
        // Tighter targets require more reliable platforms.
        let stricter = mtbf_for_target_waste(c, 60.0, 600.0, 0.05).unwrap();
        assert!(stricter > mtbf);
    }

    #[test]
    fn mtbf_for_target_waste_validates_inputs() {
        assert!(mtbf_for_target_waste(0.0, 0.0, 0.0, 0.1).is_err());
        assert!(mtbf_for_target_waste(10.0, 0.0, 0.0, 0.0).is_err());
        assert!(mtbf_for_target_waste(10.0, 0.0, 0.0, 1.5).is_err());
    }

    #[test]
    fn breakdown_validates_inputs() {
        assert!(waste_breakdown(0.0, 1.0, 0.0, 0.0, 1.0).is_err());
        assert!(waste_breakdown(1.0, -1.0, 0.0, 0.0, 1.0).is_err());
        assert!(waste_breakdown(1.0, 1.0, 0.0, 0.0, 0.0).is_err());
    }
}

//! Error type for analytical-layer parameter validation (the §2/§3
//! assumptions every closed form relies on: positive work and rates,
//! non-negative costs).

use std::error::Error;
use std::fmt;

/// Error returned when an analytical quantity is requested with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectationError {
    /// A parameter must be strictly positive and finite.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A parameter must be non-negative and finite.
    NegativeParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A parameter must be finite.
    NonFiniteParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A fraction (e.g. Amdahl's sequential fraction γ) must lie in `[0, 1]`.
    FractionOutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// The processor count must be at least one.
    ZeroProcessors,
    /// At most one storage level may carry a slot bound (the hierarchical
    /// planning DP tracks one slot budget; see [`crate::storage`]).
    MultipleBoundedLevels,
}

impl fmt::Display for ExpectationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpectationError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be strictly positive, got {value}")
            }
            ExpectationError::NegativeParameter { name, value } => {
                write!(f, "parameter `{name}` must be non-negative, got {value}")
            }
            ExpectationError::NonFiniteParameter { name, value } => {
                write!(f, "parameter `{name}` must be finite, got {value}")
            }
            ExpectationError::FractionOutOfRange { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1], got {value}")
            }
            ExpectationError::ZeroProcessors => {
                write!(f, "the platform needs at least one processor")
            }
            ExpectationError::MultipleBoundedLevels => {
                write!(f, "at most one storage level may carry a slot bound")
            }
        }
    }
}

impl Error for ExpectationError {}

pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<f64, ExpectationError> {
    if !value.is_finite() {
        return Err(ExpectationError::NonFiniteParameter { name, value });
    }
    if value <= 0.0 {
        return Err(ExpectationError::NonPositiveParameter { name, value });
    }
    Ok(value)
}

pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> Result<f64, ExpectationError> {
    if !value.is_finite() {
        return Err(ExpectationError::NonFiniteParameter { name, value });
    }
    if value < 0.0 {
        return Err(ExpectationError::NegativeParameter { name, value });
    }
    Ok(value)
}

pub(crate) fn ensure_fraction(name: &'static str, value: f64) -> Result<f64, ExpectationError> {
    if !value.is_finite() {
        return Err(ExpectationError::NonFiniteParameter { name, value });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(ExpectationError::FractionOutOfRange { name, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = ExpectationError::NonPositiveParameter { name: "lambda", value: 0.0 };
        assert!(err.to_string().contains("lambda"));
        let err = ExpectationError::FractionOutOfRange { name: "gamma", value: 2.0 };
        assert!(err.to_string().contains("[0, 1]"));
        assert!(ExpectationError::ZeroProcessors.to_string().contains("processor"));
    }

    #[test]
    fn validators_behave() {
        assert!(ensure_positive("x", 1.0).is_ok());
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_non_negative("x", 0.0).is_ok());
        assert!(ensure_non_negative("x", -1.0).is_err());
        assert!(ensure_fraction("x", 0.5).is_ok());
        assert!(ensure_fraction("x", 1.5).is_err());
        assert!(ensure_fraction("x", f64::NAN).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExpectationError>();
    }
}

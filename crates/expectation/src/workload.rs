//! Workload scaling models `W(p)` (paper §3, "Workload model").
//!
//! Given a total sequential load `W_total`, the paper lists three ways the
//! parallel execution time of a task depends on the number of processors `p`:
//!
//! 1. perfectly parallel jobs: `W(p) = W_total / p`;
//! 2. generic parallel jobs (Amdahl's law): `W(p) = (1 − γ)·W_total/p + γ·W_total`;
//! 3. numerical kernels: `W(p) = W_total/p + γ·W_total^{2/3}/√p`, where `γ` is
//!    the communication-to-computation ratio of the platform.
//!
//! These models drive experiment E6 (how the optimal checkpoint strategy
//! changes as the platform grows) and the moldable-task extension of §6.

use crate::error::{ensure_fraction, ensure_non_negative, ensure_positive, ExpectationError};

/// How a task's execution time scales with the processor count.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum WorkloadModel {
    /// `W(p) = W_total / p`: embarrassingly parallel work.
    #[default]
    PerfectlyParallel,
    /// `W(p) = (1 − γ)·W_total/p + γ·W_total`: Amdahl's law with sequential
    /// fraction `γ ∈ [0, 1]`.
    Amdahl {
        /// The inherently sequential fraction of the work.
        gamma: f64,
    },
    /// `W(p) = W_total/p + γ·W_total^{2/3}/√p`: dense numerical kernels
    /// (matrix product, LU/QR) on a 2-D processor grid, with `γ ≥ 0` the
    /// communication-to-computation ratio.
    NumericalKernel {
        /// Communication-to-computation ratio of the platform.
        gamma: f64,
    },
}

impl WorkloadModel {
    /// Builds an Amdahl model, validating `γ ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `gamma` is outside `[0, 1]`.
    pub fn amdahl(gamma: f64) -> Result<Self, ExpectationError> {
        Ok(WorkloadModel::Amdahl { gamma: ensure_fraction("gamma", gamma)? })
    }

    /// Builds a numerical-kernel model, validating `γ ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `gamma` is negative or not finite.
    pub fn numerical_kernel(gamma: f64) -> Result<Self, ExpectationError> {
        Ok(WorkloadModel::NumericalKernel { gamma: ensure_non_negative("gamma", gamma)? })
    }

    /// The parallel execution time `W(p)` of a task whose total sequential
    /// load is `w_total`, on `p` processors.
    ///
    /// # Errors
    ///
    /// Returns an error if `w_total ≤ 0` or `p == 0`.
    pub fn time(&self, w_total: f64, p: u32) -> Result<f64, ExpectationError> {
        let w_total = ensure_positive("w_total", w_total)?;
        if p == 0 {
            return Err(ExpectationError::ZeroProcessors);
        }
        let pf = f64::from(p);
        Ok(match self {
            WorkloadModel::PerfectlyParallel => w_total / pf,
            WorkloadModel::Amdahl { gamma } => (1.0 - gamma) * w_total / pf + gamma * w_total,
            WorkloadModel::NumericalKernel { gamma } => {
                w_total / pf + gamma * w_total.powf(2.0 / 3.0) / pf.sqrt()
            }
        })
    }

    /// The parallel speed-up `W(1) / W(p)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `w_total ≤ 0` or `p == 0`.
    pub fn speedup(&self, w_total: f64, p: u32) -> Result<f64, ExpectationError> {
        Ok(self.time(w_total, 1)? / self.time(w_total, p)?)
    }

    /// The parallel efficiency `speedup / p`.
    ///
    /// # Errors
    ///
    /// Returns an error if `w_total ≤ 0` or `p == 0`.
    pub fn efficiency(&self, w_total: f64, p: u32) -> Result<f64, ExpectationError> {
        Ok(self.speedup(w_total, p)? / f64::from(p))
    }
}

impl std::fmt::Display for WorkloadModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadModel::PerfectlyParallel => write!(f, "perfectly-parallel"),
            WorkloadModel::Amdahl { gamma } => write!(f, "amdahl(gamma={gamma})"),
            WorkloadModel::NumericalKernel { gamma } => {
                write!(f, "numerical-kernel(gamma={gamma})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfectly_parallel_divides_by_p() {
        let m = WorkloadModel::PerfectlyParallel;
        assert_eq!(m.time(1000.0, 1).unwrap(), 1000.0);
        assert_eq!(m.time(1000.0, 10).unwrap(), 100.0);
        assert!((m.speedup(1000.0, 10).unwrap() - 10.0).abs() < 1e-12);
        assert!((m.efficiency(1000.0, 10).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_saturates_at_sequential_fraction() {
        let m = WorkloadModel::amdahl(0.1).unwrap();
        let t1 = m.time(1000.0, 1).unwrap();
        assert!((t1 - 1000.0).abs() < 1e-9);
        let t_huge = m.time(1000.0, 1_000_000).unwrap();
        assert!((t_huge - 100.0).abs() < 1.0);
        // Speed-up bounded by 1/γ.
        assert!(m.speedup(1000.0, 1_000_000).unwrap() < 10.0 + 1e-6);
    }

    #[test]
    fn amdahl_zero_gamma_is_perfectly_parallel() {
        let a = WorkloadModel::amdahl(0.0).unwrap();
        let p = WorkloadModel::PerfectlyParallel;
        for &procs in &[1u32, 4, 64, 1024] {
            assert!((a.time(500.0, procs).unwrap() - p.time(500.0, procs).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn amdahl_validates_gamma() {
        assert!(WorkloadModel::amdahl(-0.1).is_err());
        assert!(WorkloadModel::amdahl(1.1).is_err());
        assert!(WorkloadModel::amdahl(1.0).is_ok());
    }

    #[test]
    fn numerical_kernel_adds_communication_term() {
        let m = WorkloadModel::numerical_kernel(0.1).unwrap();
        let pure = WorkloadModel::PerfectlyParallel;
        for &procs in &[1u32, 16, 256] {
            assert!(m.time(1e6, procs).unwrap() > pure.time(1e6, procs).unwrap());
        }
        assert!(WorkloadModel::numerical_kernel(-1.0).is_err());
    }

    #[test]
    fn numerical_kernel_zero_gamma_is_perfectly_parallel() {
        let m = WorkloadModel::numerical_kernel(0.0).unwrap();
        assert!((m.time(8000.0, 4).unwrap() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn time_validates_inputs() {
        let m = WorkloadModel::PerfectlyParallel;
        assert!(m.time(0.0, 4).is_err());
        assert!(matches!(m.time(10.0, 0), Err(ExpectationError::ZeroProcessors)));
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadModel::PerfectlyParallel.to_string(), "perfectly-parallel");
        assert_eq!(WorkloadModel::amdahl(0.25).unwrap().to_string(), "amdahl(gamma=0.25)");
        assert!(WorkloadModel::numerical_kernel(0.5)
            .unwrap()
            .to_string()
            .contains("numerical-kernel"));
        assert_eq!(WorkloadModel::default(), WorkloadModel::PerfectlyParallel);
    }

    proptest! {
        #[test]
        fn prop_time_decreases_with_more_processors(
            w in 1.0f64..1e9,
            gamma in 0.0f64..1.0,
            p in 1u32..4096,
        ) {
            let m = WorkloadModel::amdahl(gamma).unwrap();
            let t1 = m.time(w, p).unwrap();
            let t2 = m.time(w, p * 2).unwrap();
            prop_assert!(t2 <= t1 + 1e-9);
        }

        #[test]
        fn prop_efficiency_at_most_one(
            w in 1.0f64..1e9,
            gamma in 0.0f64..1.0,
            p in 1u32..4096,
        ) {
            let m = WorkloadModel::amdahl(gamma).unwrap();
            prop_assert!(m.efficiency(w, p).unwrap() <= 1.0 + 1e-9);
        }
    }
}

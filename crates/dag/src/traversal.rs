//! Reachability-based queries: ancestors, descendants, transitive closure and
//! transitive reduction.
//!
//! The general checkpoint-cost extension of §6 needs, for any prefix of an
//! execution, the set of completed tasks that still have an unexecuted
//! successor (the "live" set whose data a checkpoint must save). The queries
//! here are the building blocks of that computation.

use std::collections::BTreeSet;

use crate::graph::{TaskGraph, TaskId};

/// The set of proper ancestors of `task` (tasks from which `task` is
/// reachable, excluding `task` itself), in increasing id order.
///
/// # Panics
///
/// Panics if `task` does not belong to `graph`.
pub fn ancestors(graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
    assert!(task.0 < graph.task_count(), "unknown task {task}");
    let mut seen = vec![false; graph.task_count()];
    let mut stack = vec![task];
    while let Some(node) = stack.pop() {
        for &pred in graph.predecessors(node) {
            if !seen[pred.0] {
                seen[pred.0] = true;
                stack.push(pred);
            }
        }
    }
    seen.iter().enumerate().filter_map(|(i, &s)| if s { Some(TaskId(i)) } else { None }).collect()
}

/// The set of proper descendants of `task` (tasks reachable from `task`,
/// excluding `task` itself), in increasing id order.
///
/// # Panics
///
/// Panics if `task` does not belong to `graph`.
pub fn descendants(graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
    assert!(task.0 < graph.task_count(), "unknown task {task}");
    let mut seen = vec![false; graph.task_count()];
    let mut stack = vec![task];
    while let Some(node) = stack.pop() {
        for &succ in graph.successors(node) {
            if !seen[succ.0] {
                seen[succ.0] = true;
                stack.push(succ);
            }
        }
    }
    seen.iter().enumerate().filter_map(|(i, &s)| if s { Some(TaskId(i)) } else { None }).collect()
}

/// The full transitive closure as a boolean reachability matrix:
/// `closure[i][j]` is true iff `TaskId(j)` is reachable from `TaskId(i)`
/// (with `closure[i][i] == true`).
pub fn transitive_closure(graph: &TaskGraph) -> Vec<Vec<bool>> {
    let n = graph.task_count();
    let mut closure = vec![vec![false; n]; n];
    // Process in reverse topological order so each node can reuse the closure
    // of its successors.
    let order = crate::topo::topological_sort(graph);
    for &node in order.iter().rev() {
        closure[node.0][node.0] = true;
        let succ: Vec<TaskId> = graph.successors(node).to_vec();
        for s in succ {
            // closure[node] |= closure[s]
            let (head, tail) = if node.0 < s.0 {
                let (a, b) = closure.split_at_mut(s.0);
                (&mut a[node.0], &b[0])
            } else {
                let (a, b) = closure.split_at_mut(node.0);
                (&mut b[0], &a[s.0])
            };
            for j in 0..n {
                head[j] = head[j] || tail[j];
            }
        }
    }
    closure
}

/// The transitive reduction of the graph: the minimal set of edges with the
/// same reachability relation.
///
/// Returns the reduced edge list; the input graph is not modified.
pub fn transitive_reduction(graph: &TaskGraph) -> Vec<(TaskId, TaskId)> {
    let closure = transitive_closure(graph);
    let mut reduced = Vec::new();
    for (from, to) in graph.edges() {
        // The edge from->to is redundant if some other successor s of `from`
        // reaches `to`.
        let redundant = graph.successors(from).iter().any(|&s| s != to && closure[s.0][to.0]);
        if !redundant {
            reduced.push((from, to));
        }
    }
    reduced
}

/// Given the set of `completed` tasks (which must be closed under
/// predecessors), returns the subset whose output is still **live**: tasks
/// with at least one successor that has not completed yet.
///
/// This is exactly the set of tasks a general checkpoint after that prefix
/// must save (paper §6, first extension). For a linear chain the result is
/// always the single most recently completed task, which is why the paper's
/// per-task cost model is fully general for chains.
pub fn live_tasks(graph: &TaskGraph, completed: &BTreeSet<TaskId>) -> Vec<TaskId> {
    completed
        .iter()
        .copied()
        .filter(|&t| graph.successors(t).iter().any(|succ| !completed.contains(succ)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 1.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        let d = g.add_task("d", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        g.add_dependency(c, d).unwrap();
        g
    }

    #[test]
    fn ancestors_and_descendants_on_diamond() {
        let g = diamond();
        assert_eq!(ancestors(&g, TaskId(0)), vec![]);
        assert_eq!(ancestors(&g, TaskId(3)), vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(descendants(&g, TaskId(0)), vec![TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(descendants(&g, TaskId(3)), vec![]);
        assert_eq!(ancestors(&g, TaskId(1)), vec![TaskId(0)]);
        assert_eq!(descendants(&g, TaskId(1)), vec![TaskId(3)]);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn ancestors_rejects_unknown_task() {
        let g = diamond();
        let _ = ancestors(&g, TaskId(17));
    }

    #[test]
    fn closure_matches_reachability() {
        let g = diamond();
        let closure = transitive_closure(&g);
        for (i, row) in closure.iter().enumerate() {
            for (j, &reachable) in row.iter().enumerate() {
                assert_eq!(
                    reachable,
                    g.is_reachable(TaskId(i), TaskId(j)),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn closure_of_chain_is_upper_triangular() {
        let g = generators::chain(&[1.0; 5]).unwrap();
        let closure = transitive_closure(&g);
        for (i, row) in closure.iter().enumerate() {
            for (j, &reachable) in row.iter().enumerate() {
                assert_eq!(reachable, j >= i);
            }
        }
    }

    #[test]
    fn reduction_removes_shortcut_edges() {
        // a -> b -> c plus a redundant a -> c shortcut.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 1.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        g.add_dependency(a, c).unwrap();
        let reduced = transitive_reduction(&g);
        assert_eq!(reduced.len(), 2);
        assert!(reduced.contains(&(a, b)));
        assert!(reduced.contains(&(b, c)));
        assert!(!reduced.contains(&(a, c)));
    }

    #[test]
    fn reduction_of_diamond_keeps_all_edges() {
        let g = diamond();
        let reduced = transitive_reduction(&g);
        assert_eq!(reduced.len(), 4);
    }

    #[test]
    fn live_tasks_on_chain_is_last_completed() {
        let g = generators::chain(&[1.0; 4]).unwrap();
        let completed: BTreeSet<TaskId> = [TaskId(0), TaskId(1)].into_iter().collect();
        assert_eq!(live_tasks(&g, &completed), vec![TaskId(1)]);
        let all: BTreeSet<TaskId> = g.task_ids().collect();
        assert_eq!(live_tasks(&g, &all), vec![]);
    }

    #[test]
    fn live_tasks_on_diamond_prefix() {
        let g = diamond();
        // After completing a and b, both a (needed by c) and b (needed by d) are live.
        let completed: BTreeSet<TaskId> = [TaskId(0), TaskId(1)].into_iter().collect();
        assert_eq!(live_tasks(&g, &completed), vec![TaskId(0), TaskId(1)]);
        // After completing a, b, c, only b and c are live (a's successors done).
        let completed: BTreeSet<TaskId> = [TaskId(0), TaskId(1), TaskId(2)].into_iter().collect();
        assert_eq!(live_tasks(&g, &completed), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn live_tasks_of_independent_set_is_empty() {
        let g = generators::independent(&[1.0, 1.0, 1.0]).unwrap();
        let completed: BTreeSet<TaskId> = [TaskId(0)].into_iter().collect();
        assert!(live_tasks(&g, &completed).is_empty());
    }
}

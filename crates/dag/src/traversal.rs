//! Reachability-based queries: ancestors, descendants, transitive closure and
//! transitive reduction.
//!
//! The general checkpoint-cost extension of §6 needs, for any prefix of an
//! execution, the set of completed tasks that still have an unexecuted
//! successor (the "live" set whose data a checkpoint must save). The queries
//! here are the building blocks of that computation.

use std::collections::BTreeSet;

use crate::graph::{TaskGraph, TaskId};

/// The set of proper ancestors of `task` (tasks from which `task` is
/// reachable, excluding `task` itself), in increasing id order.
///
/// # Panics
///
/// Panics if `task` does not belong to `graph`.
pub fn ancestors(graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
    assert!(task.0 < graph.task_count(), "unknown task {task}");
    let mut seen = vec![false; graph.task_count()];
    let mut stack = vec![task];
    while let Some(node) = stack.pop() {
        for &pred in graph.predecessors(node) {
            if !seen[pred.0] {
                seen[pred.0] = true;
                stack.push(pred);
            }
        }
    }
    seen.iter().enumerate().filter_map(|(i, &s)| if s { Some(TaskId(i)) } else { None }).collect()
}

/// The set of proper descendants of `task` (tasks reachable from `task`,
/// excluding `task` itself), in increasing id order.
///
/// # Panics
///
/// Panics if `task` does not belong to `graph`.
pub fn descendants(graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
    assert!(task.0 < graph.task_count(), "unknown task {task}");
    let mut seen = vec![false; graph.task_count()];
    let mut stack = vec![task];
    while let Some(node) = stack.pop() {
        for &succ in graph.successors(node) {
            if !seen[succ.0] {
                seen[succ.0] = true;
                stack.push(succ);
            }
        }
    }
    seen.iter().enumerate().filter_map(|(i, &s)| if s { Some(TaskId(i)) } else { None }).collect()
}

/// The full transitive closure as a boolean reachability matrix:
/// `closure[i][j]` is true iff `TaskId(j)` is reachable from `TaskId(i)`
/// (with `closure[i][i] == true`).
pub fn transitive_closure(graph: &TaskGraph) -> Vec<Vec<bool>> {
    let n = graph.task_count();
    let mut closure = vec![vec![false; n]; n];
    // Process in reverse topological order so each node can reuse the closure
    // of its successors.
    let order = crate::topo::topological_sort(graph);
    for &node in order.iter().rev() {
        closure[node.0][node.0] = true;
        let succ: Vec<TaskId> = graph.successors(node).to_vec();
        for s in succ {
            // closure[node] |= closure[s]
            let (head, tail) = if node.0 < s.0 {
                let (a, b) = closure.split_at_mut(s.0);
                (&mut a[node.0], &b[0])
            } else {
                let (a, b) = closure.split_at_mut(node.0);
                (&mut b[0], &a[s.0])
            };
            for j in 0..n {
                head[j] = head[j] || tail[j];
            }
        }
    }
    closure
}

/// The transitive reduction of the graph: the minimal set of edges with the
/// same reachability relation.
///
/// Returns the reduced edge list; the input graph is not modified.
pub fn transitive_reduction(graph: &TaskGraph) -> Vec<(TaskId, TaskId)> {
    let closure = transitive_closure(graph);
    let mut reduced = Vec::new();
    for (from, to) in graph.edges() {
        // The edge from->to is redundant if some other successor s of `from`
        // reaches `to`.
        let redundant = graph.successors(from).iter().any(|&s| s != to && closure[s.0][to.0]);
        if !redundant {
            reduced.push((from, to));
        }
    }
    reduced
}

/// Given the set of `completed` tasks (which must be closed under
/// predecessors), returns the subset whose output is still **live**: tasks
/// with at least one successor that has not completed yet.
///
/// This is exactly the set of tasks a general checkpoint after that prefix
/// must save (paper §6, first extension). For a linear chain the result is
/// always the single most recently completed task, which is why the paper's
/// per-task cost model is fully general for chains.
///
/// Recomputes the live set from scratch in `O(n·degree)` — the reference
/// formulation. Sweeping a whole execution order position by position should
/// go through [`LiveSetSweep`] instead, which maintains the set
/// incrementally in `O(n + E)` total.
pub fn live_tasks(graph: &TaskGraph, completed: &BTreeSet<TaskId>) -> Vec<TaskId> {
    completed
        .iter()
        .copied()
        .filter(|&t| graph.successors(t).iter().any(|succ| !completed.contains(succ)))
        .collect()
}

/// Incremental live-set maintenance along a topological execution order.
///
/// [`live_tasks`] re-derives the live set of a prefix from scratch; evaluating
/// it once per position of an order therefore costs `O(n·degree)` per
/// linearisation. This structure instead maintains the live set as a **delta
/// structure** while the order is swept front to back: completing a task
///
/// * adds the task itself to the live set iff it has at least one successor
///   (all its successors are unexecuted at that instant, the order being
///   topological), and
/// * retires every predecessor whose last unexecuted successor it was.
///
/// Each task enters the live set at most once and leaves at most once, and
/// every edge is inspected exactly once over the whole sweep, so a full
/// order costs `O(n + E)` — the bound `ckpt-core`'s §6 cost-model tables are
/// built in. [`reset`](LiveSetSweep::reset) rewinds the sweep without
/// reallocating, so one instance can evaluate many candidate orders.
///
/// # Example
///
/// ```
/// use ckpt_dag::{generators, traversal::LiveSetSweep, TaskId};
///
/// // Diamond a → {b, c} → d, executed in id order.
/// let g = generators::diamond([1.0, 1.0, 1.0, 1.0])?;
/// let mut sweep = LiveSetSweep::new(&g);
/// sweep.complete(TaskId(0), |_| {});
/// sweep.complete(TaskId(1), |_| {});
/// // After {a, b}: a is still needed by c, b by d.
/// assert_eq!(sweep.live_tasks(), vec![TaskId(0), TaskId(1)]);
/// let mut retired = Vec::new();
/// sweep.complete(TaskId(2), |t| retired.push(t));
/// // Completing c retires a (both its successors are now done).
/// assert_eq!(retired, vec![TaskId(0)]);
/// assert_eq!(sweep.live_tasks(), vec![TaskId(1), TaskId(2)]);
/// # Ok::<(), ckpt_dag::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LiveSetSweep<'g> {
    graph: &'g TaskGraph,
    /// Number of successors of each task that have not been executed yet.
    remaining_successors: Vec<usize>,
    completed: Vec<bool>,
    live: Vec<bool>,
    live_count: usize,
    completed_count: usize,
}

impl<'g> LiveSetSweep<'g> {
    /// A sweep positioned before the first task of an order of `graph`.
    pub fn new(graph: &'g TaskGraph) -> Self {
        let n = graph.task_count();
        let remaining_successors = (0..n).map(|i| graph.out_degree(TaskId(i))).collect();
        LiveSetSweep {
            graph,
            remaining_successors,
            completed: vec![false; n],
            live: vec![false; n],
            live_count: 0,
            completed_count: 0,
        }
    }

    /// Rewinds the sweep to the empty prefix, keeping all allocations.
    pub fn reset(&mut self) {
        for (i, slot) in self.remaining_successors.iter_mut().enumerate() {
            *slot = self.graph.out_degree(TaskId(i));
        }
        self.completed.fill(false);
        self.live.fill(false);
        self.live_count = 0;
        self.completed_count = 0;
    }

    /// Advances the sweep by completing `task` (the next task of the order).
    ///
    /// Returns `true` iff `task` itself **entered** the live set (it has at
    /// least one successor); calls `on_retire` once for every task that
    /// **left** the live set because `task` was its last unexecuted
    /// successor.
    ///
    /// # Panics
    ///
    /// Panics if `task` was already completed or has an uncompleted
    /// predecessor (i.e. the completion sequence is not a topological
    /// order).
    pub fn complete<F>(&mut self, task: TaskId, mut on_retire: F) -> bool
    where
        F: FnMut(TaskId),
    {
        assert!(!self.completed[task.0], "task {task} completed twice");
        assert!(
            self.graph.predecessors(task).iter().all(|p| self.completed[p.0]),
            "task {task} completed before one of its predecessors"
        );
        self.completed[task.0] = true;
        self.completed_count += 1;
        let entered = self.graph.out_degree(task) > 0;
        if entered {
            self.live[task.0] = true;
            self.live_count += 1;
        }
        for &pred in self.graph.predecessors(task) {
            self.remaining_successors[pred.0] -= 1;
            if self.remaining_successors[pred.0] == 0 {
                // `pred` is live (it had a successor — `task`), and `task`
                // was its last unexecuted one.
                debug_assert!(self.live[pred.0]);
                self.live[pred.0] = false;
                self.live_count -= 1;
                on_retire(pred);
            }
        }
        entered
    }

    /// Whether `task` is in the live set of the current prefix.
    pub fn is_live(&self, task: TaskId) -> bool {
        self.live[task.0]
    }

    /// The size of the current live set.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// How many tasks have been completed so far.
    pub fn completed_count(&self) -> usize {
        self.completed_count
    }

    /// The current live set in increasing id order — the same value
    /// [`live_tasks`] returns for the completed prefix (materialises a
    /// vector; the hot paths use the incremental callbacks instead).
    pub fn live_tasks(&self) -> Vec<TaskId> {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| if l { Some(TaskId(i)) } else { None })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 1.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        let d = g.add_task("d", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        g.add_dependency(c, d).unwrap();
        g
    }

    #[test]
    fn ancestors_and_descendants_on_diamond() {
        let g = diamond();
        assert_eq!(ancestors(&g, TaskId(0)), vec![]);
        assert_eq!(ancestors(&g, TaskId(3)), vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(descendants(&g, TaskId(0)), vec![TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(descendants(&g, TaskId(3)), vec![]);
        assert_eq!(ancestors(&g, TaskId(1)), vec![TaskId(0)]);
        assert_eq!(descendants(&g, TaskId(1)), vec![TaskId(3)]);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn ancestors_rejects_unknown_task() {
        let g = diamond();
        let _ = ancestors(&g, TaskId(17));
    }

    #[test]
    fn closure_matches_reachability() {
        let g = diamond();
        let closure = transitive_closure(&g);
        for (i, row) in closure.iter().enumerate() {
            for (j, &reachable) in row.iter().enumerate() {
                assert_eq!(
                    reachable,
                    g.is_reachable(TaskId(i), TaskId(j)),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn closure_of_chain_is_upper_triangular() {
        let g = generators::chain(&[1.0; 5]).unwrap();
        let closure = transitive_closure(&g);
        for (i, row) in closure.iter().enumerate() {
            for (j, &reachable) in row.iter().enumerate() {
                assert_eq!(reachable, j >= i);
            }
        }
    }

    #[test]
    fn reduction_removes_shortcut_edges() {
        // a -> b -> c plus a redundant a -> c shortcut.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 1.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        g.add_dependency(a, c).unwrap();
        let reduced = transitive_reduction(&g);
        assert_eq!(reduced.len(), 2);
        assert!(reduced.contains(&(a, b)));
        assert!(reduced.contains(&(b, c)));
        assert!(!reduced.contains(&(a, c)));
    }

    #[test]
    fn reduction_of_diamond_keeps_all_edges() {
        let g = diamond();
        let reduced = transitive_reduction(&g);
        assert_eq!(reduced.len(), 4);
    }

    #[test]
    fn live_tasks_on_chain_is_last_completed() {
        let g = generators::chain(&[1.0; 4]).unwrap();
        let completed: BTreeSet<TaskId> = [TaskId(0), TaskId(1)].into_iter().collect();
        assert_eq!(live_tasks(&g, &completed), vec![TaskId(1)]);
        let all: BTreeSet<TaskId> = g.task_ids().collect();
        assert_eq!(live_tasks(&g, &all), vec![]);
    }

    #[test]
    fn live_tasks_on_diamond_prefix() {
        let g = diamond();
        // After completing a and b, both a (needed by c) and b (needed by d) are live.
        let completed: BTreeSet<TaskId> = [TaskId(0), TaskId(1)].into_iter().collect();
        assert_eq!(live_tasks(&g, &completed), vec![TaskId(0), TaskId(1)]);
        // After completing a, b, c, only b and c are live (a's successors done).
        let completed: BTreeSet<TaskId> = [TaskId(0), TaskId(1), TaskId(2)].into_iter().collect();
        assert_eq!(live_tasks(&g, &completed), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn live_tasks_of_independent_set_is_empty() {
        let g = generators::independent(&[1.0, 1.0, 1.0]).unwrap();
        let completed: BTreeSet<TaskId> = [TaskId(0)].into_iter().collect();
        assert!(live_tasks(&g, &completed).is_empty());
    }

    #[test]
    fn sweep_matches_recomputed_live_set_at_every_prefix() {
        let g = diamond();
        let order = crate::topo::topological_sort(&g);
        let mut sweep = LiveSetSweep::new(&g);
        let mut completed = BTreeSet::new();
        for &task in &order {
            sweep.complete(task, |_| {});
            completed.insert(task);
            assert_eq!(sweep.live_tasks(), live_tasks(&g, &completed));
            assert_eq!(sweep.live_count(), live_tasks(&g, &completed).len());
        }
        assert_eq!(sweep.completed_count(), order.len());
    }

    #[test]
    fn sweep_reports_enter_and_retire_deltas() {
        let g = diamond();
        // a enters (has successors), retires nobody.
        let mut sweep = LiveSetSweep::new(&g);
        assert!(sweep.complete(TaskId(0), |_| panic!("nothing to retire")));
        assert!(sweep.is_live(TaskId(0)));
        // b enters; a stays (c still pending).
        assert!(sweep.complete(TaskId(1), |_| panic!("nothing to retire")));
        // c enters and retires a.
        let mut retired = Vec::new();
        assert!(sweep.complete(TaskId(2), |t| retired.push(t)));
        assert_eq!(retired, vec![TaskId(0)]);
        // d (a sink) does not enter; it retires b and c.
        let mut retired = Vec::new();
        assert!(!sweep.complete(TaskId(3), |t| retired.push(t)));
        retired.sort();
        assert_eq!(retired, vec![TaskId(1), TaskId(2)]);
        assert_eq!(sweep.live_count(), 0);
    }

    #[test]
    fn sweep_reset_allows_reuse_across_orders() {
        let g = diamond();
        let mut sweep = LiveSetSweep::new(&g);
        for &t in &[TaskId(0), TaskId(1), TaskId(2), TaskId(3)] {
            sweep.complete(t, |_| {});
        }
        sweep.reset();
        assert_eq!(sweep.live_count(), 0);
        assert_eq!(sweep.completed_count(), 0);
        // The other topological order of the diamond.
        let mut completed = BTreeSet::new();
        for &t in &[TaskId(0), TaskId(2), TaskId(1), TaskId(3)] {
            sweep.complete(t, |_| {});
            completed.insert(t);
            assert_eq!(sweep.live_tasks(), live_tasks(&g, &completed));
        }
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn sweep_rejects_duplicate_completion() {
        let g = diamond();
        let mut sweep = LiveSetSweep::new(&g);
        sweep.complete(TaskId(0), |_| {});
        sweep.complete(TaskId(0), |_| {});
    }

    #[test]
    #[should_panic(expected = "before one of its predecessors")]
    fn sweep_rejects_non_topological_completion() {
        let g = diamond();
        let mut sweep = LiveSetSweep::new(&g);
        sweep.complete(TaskId(3), |_| {});
    }
}

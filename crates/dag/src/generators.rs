//! Workload generators.
//!
//! These build the DAG shapes used throughout the test suite and the
//! experiment harness: the linear chains of Proposition 3, the independent
//! sets of Proposition 2, and the fork-join / layered / tree shapes that the
//! paper's introduction cites as typical scientific workflows (DataCutter
//! pipelines, distributed application workflows, …).

use crate::error::GraphError;
use crate::graph::{TaskGraph, TaskId};

/// Builds a linear chain `T1 → T2 → … → Tn` with the given weights.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when `weights` is empty and
/// [`GraphError::InvalidWeight`] when any weight is not strictly positive.
pub fn chain(weights: &[f64]) -> Result<TaskGraph, GraphError> {
    if weights.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    let mut g = TaskGraph::with_capacity(weights.len());
    let mut prev: Option<TaskId> = None;
    for (i, &w) in weights.iter().enumerate() {
        let id = g.add_task(format!("T{}", i + 1), w)?;
        if let Some(p) = prev {
            g.add_dependency(p, id)?;
        }
        prev = Some(id);
    }
    Ok(g)
}

/// Builds a set of independent tasks (no edges) with the given weights.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when `weights` is empty and
/// [`GraphError::InvalidWeight`] when any weight is not strictly positive.
pub fn independent(weights: &[f64]) -> Result<TaskGraph, GraphError> {
    if weights.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    let mut g = TaskGraph::with_capacity(weights.len());
    for (i, &w) in weights.iter().enumerate() {
        g.add_task(format!("T{}", i + 1), w)?;
    }
    Ok(g)
}

/// Builds a fork-join graph: one fork task, `branches` parallel branch tasks
/// with the given weights, and one join task.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `branches == 0`, and propagates
/// weight validation errors. `branch_weights` must have exactly `branches`
/// entries.
///
/// # Panics
///
/// Panics if `branch_weights.len() != branches`.
pub fn fork_join(
    branches: usize,
    branch_weights: &[f64],
    fork_weight: f64,
    join_weight: f64,
) -> Result<TaskGraph, GraphError> {
    if branches == 0 {
        return Err(GraphError::EmptyGraph);
    }
    assert_eq!(branch_weights.len(), branches, "need one weight per branch");
    let mut g = TaskGraph::with_capacity(branches + 2);
    let fork = g.add_task("fork", fork_weight)?;
    let mut branch_ids = Vec::with_capacity(branches);
    for (i, &w) in branch_weights.iter().enumerate() {
        let id = g.add_task(format!("branch{}", i + 1), w)?;
        g.add_dependency(fork, id)?;
        branch_ids.push(id);
    }
    let join = g.add_task("join", join_weight)?;
    for id in branch_ids {
        g.add_dependency(id, join)?;
    }
    Ok(g)
}

/// Builds a diamond: `a → {b, c} → d` with the given four weights.
///
/// # Errors
///
/// Propagates weight validation errors.
pub fn diamond(weights: [f64; 4]) -> Result<TaskGraph, GraphError> {
    let mut g = TaskGraph::with_capacity(4);
    let a = g.add_task("a", weights[0])?;
    let b = g.add_task("b", weights[1])?;
    let c = g.add_task("c", weights[2])?;
    let d = g.add_task("d", weights[3])?;
    g.add_dependency(a, b)?;
    g.add_dependency(a, c)?;
    g.add_dependency(b, d)?;
    g.add_dependency(c, d)?;
    Ok(g)
}

/// Builds a complete out-tree of the given `depth` and `fanout`; every task
/// has weight `weight`. A `depth` of 1 is a single task.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `depth == 0` or `fanout == 0`.
pub fn out_tree(depth: usize, fanout: usize, weight: f64) -> Result<TaskGraph, GraphError> {
    if depth == 0 || fanout == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut g = TaskGraph::new();
    let root = g.add_task("n0", weight)?;
    let mut frontier = vec![root];
    let mut counter = 1usize;
    for _ in 1..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &parent in &frontier {
            for _ in 0..fanout {
                let child = g.add_task(format!("n{counter}"), weight)?;
                counter += 1;
                g.add_dependency(parent, child)?;
                next.push(child);
            }
        }
        frontier = next;
    }
    Ok(g)
}

/// Builds a layered random DAG.
///
/// The graph has `layers.len()` precedence levels; level `k` contains
/// `layers[k]` tasks of weight `weight(level, index)`. Each task in level
/// `k+1` receives an edge from each task of level `k` with probability
/// `edge_prob`, drawn from the `coin` closure (call it with no arguments, get
/// a uniform variate in `[0,1)`); every task without a sampled predecessor is
/// connected to one task of the previous level so that levels are preserved.
///
/// Taking the `coin` as a closure keeps this crate independent of any RNG
/// implementation while still being fully deterministic under a seeded RNG.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `layers` is empty or contains a zero.
pub fn layered_random<W, C>(
    layers: &[usize],
    mut weight: W,
    edge_prob: f64,
    mut coin: C,
) -> Result<TaskGraph, GraphError>
where
    W: FnMut(usize, usize) -> f64,
    C: FnMut() -> f64,
{
    if layers.is_empty() || layers.contains(&0) {
        return Err(GraphError::EmptyGraph);
    }
    let mut g = TaskGraph::new();
    let mut previous: Vec<TaskId> = Vec::new();
    for (level, &count) in layers.iter().enumerate() {
        let mut current = Vec::with_capacity(count);
        for idx in 0..count {
            let id = g.add_task(format!("L{level}N{idx}"), weight(level, idx))?;
            current.push(id);
        }
        if level > 0 {
            for &to in &current {
                let mut connected = false;
                for &from in &previous {
                    if coin() < edge_prob {
                        g.add_dependency(from, to)?;
                        connected = true;
                    }
                }
                if !connected {
                    // Preserve the level structure: attach to a deterministic
                    // predecessor from the previous level.
                    let from = previous[to.0 % previous.len()];
                    g.add_dependency(from, to)?;
                }
            }
        }
        previous = current;
    }
    Ok(g)
}

/// Convenience: a chain of `n` tasks of equal weight `w`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0`.
pub fn uniform_chain(n: usize, w: f64) -> Result<TaskGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    chain(&vec![w; n])
}

/// Convenience: `n` independent tasks of equal weight `w`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0`.
pub fn uniform_independent(n: usize, w: f64) -> Result<TaskGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    independent(&vec![w; n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use crate::topo;

    #[test]
    fn chain_has_right_shape() {
        let g = chain(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(g.task_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(properties::is_chain(&g));
        assert_eq!(g.task(TaskId(0)).name(), "T1");
        assert_eq!(g.weight(TaskId(2)), 3.0);
    }

    #[test]
    fn chain_rejects_empty_and_bad_weights() {
        assert!(matches!(chain(&[]), Err(GraphError::EmptyGraph)));
        assert!(chain(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn independent_has_no_edges() {
        let g = independent(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert!(properties::is_independent(&g));
        assert!(independent(&[]).is_err());
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(3, &[5.0, 6.0, 7.0], 1.0, 2.0).unwrap();
        assert_eq!(g.task_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(properties::depth(&g), 3);
        assert_eq!(properties::width(&g), 3);
        assert!(fork_join(0, &[], 1.0, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "one weight per branch")]
    fn fork_join_checks_weight_arity() {
        let _ = fork_join(3, &[1.0], 1.0, 1.0);
    }

    #[test]
    fn diamond_shape() {
        let g = diamond([1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(properties::critical_path(&g).0, 1.0 + 3.0 + 4.0);
    }

    #[test]
    fn out_tree_counts() {
        let g = out_tree(3, 2, 1.0).unwrap();
        // 1 + 2 + 4 = 7 tasks, 6 edges.
        assert_eq!(g.task_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(properties::depth(&g), 3);
        assert!(out_tree(0, 2, 1.0).is_err());
        assert!(out_tree(2, 0, 1.0).is_err());
    }

    #[test]
    fn out_tree_depth_one_is_single_task() {
        let g = out_tree(1, 5, 2.0).unwrap();
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn layered_random_preserves_levels_and_is_acyclic() {
        // A deterministic "coin" that alternates values below/above 0.5.
        let mut flip = false;
        let coin = move || {
            flip = !flip;
            if flip {
                0.25
            } else {
                0.75
            }
        };
        let g = layered_random(&[3, 4, 2], |lvl, _| (lvl + 1) as f64, 0.5, coin).unwrap();
        assert_eq!(g.task_count(), 9);
        assert_eq!(properties::depth(&g), 3);
        // Valid topological order must exist (construction guarantees it).
        let order = topo::topological_sort(&g);
        assert!(topo::is_topological_order(&g, &order));
        // Every non-source task has at least one predecessor.
        let lvls = topo::levels(&g);
        assert_eq!(lvls[0].len(), 3);
        assert_eq!(lvls[1].len(), 4);
        assert_eq!(lvls[2].len(), 2);
    }

    #[test]
    fn layered_random_with_zero_probability_still_connects() {
        let g = layered_random(&[2, 2], |_, _| 1.0, 0.0, || 0.9).unwrap();
        // Each level-1 task got exactly one fallback predecessor.
        assert_eq!(g.edge_count(), 2);
        assert_eq!(properties::depth(&g), 2);
    }

    #[test]
    fn layered_random_rejects_bad_layer_specs() {
        assert!(layered_random(&[], |_, _| 1.0, 0.5, || 0.5).is_err());
        assert!(layered_random(&[2, 0, 1], |_, _| 1.0, 0.5, || 0.5).is_err());
    }

    #[test]
    fn uniform_helpers() {
        let c = uniform_chain(5, 2.0).unwrap();
        assert_eq!(c.task_count(), 5);
        assert_eq!(c.total_weight(), 10.0);
        let i = uniform_independent(4, 3.0).unwrap();
        assert_eq!(i.total_weight(), 12.0);
        assert!(uniform_chain(0, 1.0).is_err());
        assert!(uniform_independent(0, 1.0).is_err());
    }
}

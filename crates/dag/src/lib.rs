//! Task-graph (DAG) substrate for checkpoint scheduling of computational
//! workflows.
//!
//! The paper's framework (§2) takes as input an application task graph
//! `G = (V, E)` whose nodes are tasks weighted by their computational weight
//! `w_i` and whose edges are dependence constraints. This crate provides that
//! substrate, built from scratch:
//!
//! * [`TaskGraph`] — a growable DAG container with eager cycle detection,
//!   task weights and names;
//! * [`topo`] — topological orders (single, random, exhaustive enumeration for
//!   small graphs), needed because the paper's "full parallelism" assumption
//!   turns scheduling into the choice of a linearisation (§2);
//! * [`traversal`] — ancestors/descendants/transitive closure and reduction,
//!   plus the incremental [`traversal::LiveSetSweep`] used by the general
//!   checkpoint-cost extension of §6 (the "live" task set);
//! * [`neighborhood`] — precedence-preserving moves between topological
//!   orders (adjacent swaps, window rotations), the building blocks of
//!   `ckpt-core`'s order search;
//! * [`properties`] — chain/independence detection, critical path, depth,
//!   width: the structural special cases the paper's results attach to;
//! * [`subgraph`] — remaining-graph extraction
//!   ([`subgraph::suffix_subgraph`]): the induced graph over the unexecuted
//!   suffix of a linearisation plus the frontier's live-set seed, what the
//!   online DAG policies re-linearise after a failure;
//! * [`generators`] — workload generators (linear chains, independent sets,
//!   fork-join, layered random DAGs, trees, diamonds) used by the test suite
//!   and the experiment harness;
//! * [`linearize`] — linearisation strategies that turn an arbitrary DAG into
//!   an execution order compatible with its dependences.
//!
//! # Example
//!
//! ```rust
//! use ckpt_dag::{TaskGraph, generators, properties};
//!
//! // A 4-task linear chain T1 -> T2 -> T3 -> T4 with unit weights.
//! let chain = generators::chain(&[1.0, 1.0, 1.0, 1.0])?;
//! assert_eq!(chain.task_count(), 4);
//! assert!(properties::as_chain(&chain).is_some());
//!
//! // A custom graph.
//! let mut g = TaskGraph::new();
//! let a = g.add_task("prepare", 10.0)?;
//! let b = g.add_task("solve", 100.0)?;
//! g.add_dependency(a, b)?;
//! assert_eq!(g.total_weight(), 110.0);
//! # Ok::<(), ckpt_dag::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dot;
pub mod error;
pub mod generators;
pub mod graph;
pub mod linearize;
pub mod neighborhood;
pub mod properties;
pub mod subgraph;
pub mod topo;
pub mod traversal;

pub use error::GraphError;
pub use graph::{Task, TaskGraph, TaskId};
pub use linearize::LinearizationStrategy;

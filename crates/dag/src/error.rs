//! Error type for task-graph construction and queries.

use std::error::Error;
use std::fmt;

use crate::graph::TaskId;

/// Error returned by [`TaskGraph`](crate::TaskGraph) operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Adding the edge would create a cycle, violating the DAG invariant.
    CycleDetected {
        /// Source of the offending edge.
        from: TaskId,
        /// Destination of the offending edge.
        to: TaskId,
    },
    /// A task id does not belong to this graph.
    UnknownTask {
        /// The offending id.
        task: TaskId,
    },
    /// The edge already exists.
    DuplicateEdge {
        /// Source of the edge.
        from: TaskId,
        /// Destination of the edge.
        to: TaskId,
    },
    /// An edge from a task to itself was requested.
    SelfLoop {
        /// The offending task.
        task: TaskId,
    },
    /// A task weight must be strictly positive and finite.
    InvalidWeight {
        /// The weight that was supplied.
        weight: f64,
    },
    /// The operation needs a non-empty graph.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CycleDetected { from, to } => {
                write!(f, "adding edge {from} -> {to} would create a cycle")
            }
            GraphError::UnknownTask { task } => {
                write!(f, "task {task} does not belong to this graph")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "edge {from} -> {to} already exists")
            }
            GraphError::SelfLoop { task } => write!(f, "self-loop on task {task} is not allowed"),
            GraphError::InvalidWeight { weight } => {
                write!(f, "task weight must be strictly positive and finite, got {weight}")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_tasks() {
        let err = GraphError::CycleDetected { from: TaskId(1), to: TaskId(2) };
        assert!(err.to_string().contains("T1"));
        assert!(err.to_string().contains("T2"));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn invalid_weight_reports_value() {
        let err = GraphError::InvalidWeight { weight: -2.5 };
        assert!(err.to_string().contains("-2.5"));
    }
}

//! Precedence-preserving moves between topological orders.
//!
//! Proposition 2 makes the joint order+checkpoint problem intractable, so the
//! practically interesting regime is *search* over the space of
//! linearisations. That space is connected under adjacent transpositions:
//! any topological order can be reached from any other by swapping adjacent
//! independent tasks, and window rotations (one task hopping over a block of
//! its neighbours) are the natural longer-range composite. This module
//! provides those moves as first-class values — validity check, in-place
//! application, inverse — so search code (`ckpt-core`'s `order_search`) never
//! has to re-derive the precedence rules.
//!
//! All validity checks assume the input order is itself a valid topological
//! order; under that assumption a valid move yields a valid topological
//! order again (property-tested below against
//! [`is_topological_order`](crate::topo::is_topological_order)).

use crate::graph::{TaskGraph, TaskId};

/// A precedence-preserving transformation of one position window of a
/// topological order.
///
/// # Example
///
/// ```
/// use ckpt_dag::{generators, neighborhood::{apply_move, is_valid_move, OrderMove}, topo, TaskId};
///
/// // Diamond a → {b, c} → d in id order: b and c are independent…
/// let g = generators::diamond([1.0, 1.0, 1.0, 1.0])?;
/// let mut order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
/// let swap = OrderMove::SwapAdjacent { i: 1 };
/// assert!(is_valid_move(&g, &order, &swap));
/// apply_move(&mut order, &swap);
/// assert!(topo::is_topological_order(&g, &order));
/// // …while a must stay ahead of both:
/// assert!(!is_valid_move(&g, &order, &OrderMove::SwapAdjacent { i: 0 }));
/// # Ok::<(), ckpt_dag::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderMove {
    /// Swap the tasks at positions `i` and `i + 1`.
    SwapAdjacent {
        /// The left position of the swapped pair.
        i: usize,
    },
    /// Rotate the window `order[i..=j]` one step left: the task at `i` moves
    /// to position `j`, everything in between shifts one position earlier.
    RotateLeft {
        /// First position of the window.
        i: usize,
        /// Last position of the window (`j > i`).
        j: usize,
    },
    /// Rotate the window `order[i..=j]` one step right: the task at `j`
    /// moves to position `i`, everything in between shifts one position
    /// later.
    RotateRight {
        /// First position of the window.
        i: usize,
        /// Last position of the window (`j > i`).
        j: usize,
    },
}

impl OrderMove {
    /// The inclusive `(first, last)` position window the move touches.
    pub fn window(&self) -> (usize, usize) {
        match *self {
            OrderMove::SwapAdjacent { i } => (i, i + 1),
            OrderMove::RotateLeft { i, j } | OrderMove::RotateRight { i, j } => (i, j),
        }
    }

    /// The move that undoes this one (applied to the transformed order).
    pub fn inverse(&self) -> OrderMove {
        match *self {
            OrderMove::SwapAdjacent { i } => OrderMove::SwapAdjacent { i },
            OrderMove::RotateLeft { i, j } => OrderMove::RotateRight { i, j },
            OrderMove::RotateRight { i, j } => OrderMove::RotateLeft { i, j },
        }
    }
}

/// Whether applying `mv` to the topological order `order` yields a
/// topological order again.
///
/// * An adjacent swap is valid iff there is no edge between the two tasks;
/// * a left rotation is valid iff the task leaving position `i` has no
///   successor inside the window it hops over;
/// * a right rotation is valid iff the task leaving position `j` has no
///   predecessor inside the window.
///
/// Out-of-bounds or degenerate windows (`j ≤ i`) are simply invalid, so
/// randomised proposal loops need no separate bounds handling. Cost:
/// `O(window · degree)`.
pub fn is_valid_move(graph: &TaskGraph, order: &[TaskId], mv: &OrderMove) -> bool {
    let (lo, hi) = mv.window();
    if lo >= hi || hi >= order.len() {
        return false;
    }
    match *mv {
        OrderMove::SwapAdjacent { i } => !graph.has_edge(order[i], order[i + 1]),
        OrderMove::RotateLeft { i, j } => {
            let mover = order[i];
            order[i + 1..=j].iter().all(|&t| !graph.has_edge(mover, t))
        }
        OrderMove::RotateRight { i, j } => {
            let mover = order[j];
            order[i..j].iter().all(|&t| !graph.has_edge(t, mover))
        }
    }
}

/// Applies `mv` to `order` in place.
///
/// The caller is responsible for having checked [`is_valid_move`]; applying
/// an invalid (but in-bounds) move still permutes the order, it just breaks
/// the topological property.
///
/// # Panics
///
/// Panics if the move's window is out of bounds or degenerate (`j ≤ i`).
pub fn apply_move(order: &mut [TaskId], mv: &OrderMove) {
    let (lo, hi) = mv.window();
    assert!(lo < hi && hi < order.len(), "move window {lo}..={hi} out of bounds");
    match *mv {
        OrderMove::SwapAdjacent { i } => order.swap(i, i + 1),
        OrderMove::RotateLeft { i, j } => order[i..=j].rotate_left(1),
        OrderMove::RotateRight { i, j } => order[i..=j].rotate_right(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_topological_order;
    use crate::{generators, linearize, LinearizationStrategy};

    fn diamond() -> TaskGraph {
        generators::diamond([1.0, 1.0, 1.0, 1.0]).unwrap()
    }

    #[test]
    fn swap_of_independent_tasks_is_valid() {
        let g = diamond();
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        assert!(is_valid_move(&g, &order, &OrderMove::SwapAdjacent { i: 1 }));
        assert!(!is_valid_move(&g, &order, &OrderMove::SwapAdjacent { i: 0 }));
        assert!(!is_valid_move(&g, &order, &OrderMove::SwapAdjacent { i: 2 }));
    }

    #[test]
    fn out_of_bounds_and_degenerate_windows_are_invalid() {
        let g = diamond();
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        assert!(!is_valid_move(&g, &order, &OrderMove::SwapAdjacent { i: 3 }));
        assert!(!is_valid_move(&g, &order, &OrderMove::RotateLeft { i: 2, j: 2 }));
        assert!(!is_valid_move(&g, &order, &OrderMove::RotateRight { i: 3, j: 1 }));
        assert!(!is_valid_move(&g, &order, &OrderMove::RotateLeft { i: 1, j: 4 }));
    }

    #[test]
    fn rotations_respect_precedence() {
        // Independent tasks: every rotation is valid.
        let g = generators::independent(&[1.0; 5]).unwrap();
        let mut order: Vec<TaskId> = (0..5).map(TaskId).collect();
        let mv = OrderMove::RotateLeft { i: 0, j: 3 };
        assert!(is_valid_move(&g, &order, &mv));
        apply_move(&mut order, &mv);
        assert_eq!(order, vec![TaskId(1), TaskId(2), TaskId(3), TaskId(0), TaskId(4)]);
        // A chain: no move at all is valid.
        let chain = generators::chain(&[1.0; 5]).unwrap();
        let id_order: Vec<TaskId> = (0..5).map(TaskId).collect();
        for i in 0..4 {
            assert!(!is_valid_move(&chain, &id_order, &OrderMove::SwapAdjacent { i }));
            for j in i + 1..5 {
                assert!(!is_valid_move(&chain, &id_order, &OrderMove::RotateLeft { i, j }));
                assert!(!is_valid_move(&chain, &id_order, &OrderMove::RotateRight { i, j }));
            }
        }
    }

    #[test]
    fn inverse_undoes_the_move() {
        let g = generators::independent(&[1.0; 6]).unwrap();
        let original: Vec<TaskId> = (0..6).map(TaskId).collect();
        for mv in [
            OrderMove::SwapAdjacent { i: 2 },
            OrderMove::RotateLeft { i: 1, j: 4 },
            OrderMove::RotateRight { i: 0, j: 5 },
        ] {
            let mut order = original.clone();
            assert!(is_valid_move(&g, &order, &mv));
            apply_move(&mut order, &mv);
            apply_move(&mut order, &mv.inverse());
            assert_eq!(order, original, "inverse failed for {mv:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn apply_rejects_out_of_bounds_windows() {
        let mut order = vec![TaskId(0), TaskId(1)];
        apply_move(&mut order, &OrderMove::RotateLeft { i: 0, j: 2 });
    }

    #[test]
    fn valid_moves_preserve_topological_orders_on_random_dags() {
        // A deterministic sweep across layered random DAGs, seeds and move
        // kinds: every valid move must map a topological order to a
        // topological order, and its inverse must restore the original.
        for seed in 0..6u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut coin_state = next();
            let coin = move || {
                coin_state = coin_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (coin_state >> 11) as f64 / (1u64 << 53) as f64
            };
            let g = generators::layered_random(&[3, 4, 3, 2], |_, _| 1.0, 0.4, coin).unwrap();
            let order = linearize::linearize(&g, LinearizationStrategy::Random(seed));
            let n = order.len();
            for _ in 0..200 {
                let i = (next() as usize) % n;
                let j = i + 1 + (next() as usize) % 4;
                let mv = match next() % 3 {
                    0 => OrderMove::SwapAdjacent { i },
                    1 => OrderMove::RotateLeft { i, j },
                    _ => OrderMove::RotateRight { i, j },
                };
                if !is_valid_move(&g, &order, &mv) {
                    continue;
                }
                let mut moved = order.clone();
                apply_move(&mut moved, &mv);
                assert!(is_topological_order(&g, &moved), "seed {seed}: {mv:?} broke the order");
                apply_move(&mut moved, &mv.inverse());
                assert_eq!(moved, order, "seed {seed}: inverse of {mv:?} did not restore");
            }
        }
    }
}

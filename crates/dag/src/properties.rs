//! Structural properties of task graphs.
//!
//! The paper's results attach to specific DAG shapes: Proposition 3 requires a
//! *linear chain*, Proposition 2 holds already for an *independent set*, and
//! the discussion of full parallelism (§2) mentions that linear chains are
//! "very frequent in scientific applications". This module detects those
//! shapes and computes the classical DAG metrics (critical path, depth,
//! width) used by the experiment harness to describe generated workloads.

use crate::graph::{TaskGraph, TaskId};
use crate::topo::{levels, topological_sort};

/// If the graph is a linear chain `T_{i1} → T_{i2} → … → T_{in}`, returns the
/// task ids in chain order; otherwise returns `None`.
///
/// A chain requires every task to have in-degree ≤ 1 and out-degree ≤ 1, a
/// single source, a single sink, and connectivity (exactly `n − 1` edges).
/// The empty graph is not a chain; a single task is.
pub fn as_chain(graph: &TaskGraph) -> Option<Vec<TaskId>> {
    let n = graph.task_count();
    if n == 0 {
        return None;
    }
    if graph.edge_count() != n - 1 {
        return None;
    }
    if graph.task_ids().any(|t| graph.in_degree(t) > 1 || graph.out_degree(t) > 1) {
        return None;
    }
    let sources = graph.sources();
    if sources.len() != 1 {
        return None;
    }
    // Walk the chain from the unique source.
    let mut order = Vec::with_capacity(n);
    let mut current = sources[0];
    order.push(current);
    while let Some(&next) = graph.successors(current).first() {
        order.push(next);
        current = next;
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Whether the graph is a linear chain.
pub fn is_chain(graph: &TaskGraph) -> bool {
    as_chain(graph).is_some()
}

/// Whether the tasks are independent (the graph has no edges).
///
/// This is the shape of the Proposition 2 NP-completeness instance.
pub fn is_independent(graph: &TaskGraph) -> bool {
    graph.edge_count() == 0
}

/// The critical path: the heaviest (by summed weight) directed path in the
/// graph, returned as `(total_weight, path)`.
///
/// Returns `(0.0, vec![])` for an empty graph.
pub fn critical_path(graph: &TaskGraph) -> (f64, Vec<TaskId>) {
    let n = graph.task_count();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let order = topological_sort(graph);
    // best[i] = heaviest path ending at i (including w_i); parent for reconstruction.
    let mut best = vec![0.0f64; n];
    let mut parent: Vec<Option<TaskId>> = vec![None; n];
    for &task in &order {
        let w = graph.weight(task);
        let (incoming, from) = graph
            .predecessors(task)
            .iter()
            .map(|&p| (best[p.0], Some(p)))
            .fold((0.0, None), |acc, x| if x.0 > acc.0 { x } else { acc });
        best[task.0] = incoming + w;
        parent[task.0] = from;
    }
    let (end, &weight) = best
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
        .expect("graph is non-empty");
    let mut path = vec![TaskId(end)];
    while let Some(p) = parent[path.last().unwrap().0] {
        path.push(p);
    }
    path.reverse();
    (weight, path)
}

/// The depth of the graph: the number of tasks on the longest path (counting
/// tasks, not edges). Zero for an empty graph.
pub fn depth(graph: &TaskGraph) -> usize {
    levels(graph).len()
}

/// The width of the graph: the size of the largest precedence level.
///
/// This is an upper bound on the exploitable task parallelism; under the
/// paper's full-parallelism assumption it is ignored by the scheduler but
/// reported by the experiment harness to characterise workloads.
pub fn width(graph: &TaskGraph) -> usize {
    levels(graph).iter().map(|l| l.len()).max().unwrap_or(0)
}

/// Summary statistics of a task graph, as reported by the experiment harness.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphSummary {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of dependence edges.
    pub edges: usize,
    /// Sum of all task weights.
    pub total_weight: f64,
    /// Weight of the critical path.
    pub critical_path_weight: f64,
    /// Number of precedence levels.
    pub depth: usize,
    /// Size of the largest precedence level.
    pub width: usize,
    /// Whether the graph is a linear chain.
    pub is_chain: bool,
    /// Whether the tasks are independent.
    pub is_independent: bool,
}

/// Computes a [`GraphSummary`] for `graph`.
pub fn summarize(graph: &TaskGraph) -> GraphSummary {
    let (critical_path_weight, _) = critical_path(graph);
    GraphSummary {
        tasks: graph.task_count(),
        edges: graph.edge_count(),
        total_weight: graph.total_weight(),
        critical_path_weight,
        depth: depth(graph),
        width: width(graph),
        is_chain: is_chain(graph),
        is_independent: is_independent(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn chain_detection_positive() {
        let g = generators::chain(&[1.0, 2.0, 3.0]).unwrap();
        let order = as_chain(&g).unwrap();
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert!(is_chain(&g));
        assert!(!is_independent(&g));
    }

    #[test]
    fn single_task_is_a_chain_and_independent() {
        let g = generators::chain(&[5.0]).unwrap();
        assert!(is_chain(&g));
        assert!(is_independent(&g));
    }

    #[test]
    fn empty_graph_is_not_a_chain() {
        let g = TaskGraph::new();
        assert!(as_chain(&g).is_none());
        assert_eq!(depth(&g), 0);
        assert_eq!(width(&g), 0);
        assert_eq!(critical_path(&g), (0.0, vec![]));
    }

    #[test]
    fn chain_detection_negative_for_fork() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 1.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        assert!(!is_chain(&g));
    }

    #[test]
    fn chain_detection_negative_for_disconnected_chains() {
        // Two 2-task chains: degrees are fine but edge count is n-2.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 1.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        let d = g.add_task("d", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(c, d).unwrap();
        assert!(!is_chain(&g));
    }

    #[test]
    fn independent_detection() {
        let g = generators::independent(&[1.0, 1.0]).unwrap();
        assert!(is_independent(&g));
        assert!(!is_chain(&g));
    }

    #[test]
    fn critical_path_of_chain_is_total_weight() {
        let g = generators::chain(&[1.0, 2.0, 3.0]).unwrap();
        let (w, path) = critical_path(&g);
        assert_eq!(w, 6.0);
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn critical_path_of_independent_is_heaviest_task() {
        let g = generators::independent(&[1.0, 7.0, 3.0]).unwrap();
        let (w, path) = critical_path(&g);
        assert_eq!(w, 7.0);
        assert_eq!(path, vec![TaskId(1)]);
    }

    #[test]
    fn critical_path_picks_heavier_branch() {
        // a -> b(10) -> d, a -> c(1) -> d
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 10.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        let d = g.add_task("d", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        g.add_dependency(c, d).unwrap();
        let (w, path) = critical_path(&g);
        assert_eq!(w, 12.0);
        assert_eq!(path, vec![a, b, d]);
    }

    #[test]
    fn depth_and_width() {
        let g = generators::fork_join(3, &[1.0, 1.0, 1.0], 1.0, 1.0).unwrap();
        assert_eq!(depth(&g), 3); // fork, branches, join
        assert_eq!(width(&g), 3);
        let chain = generators::chain(&[1.0; 7]).unwrap();
        assert_eq!(depth(&chain), 7);
        assert_eq!(width(&chain), 1);
        let ind = generators::independent(&[1.0; 7]).unwrap();
        assert_eq!(depth(&ind), 1);
        assert_eq!(width(&ind), 7);
    }

    #[test]
    fn summary_is_consistent() {
        let g = generators::chain(&[1.0, 2.0]).unwrap();
        let s = summarize(&g);
        assert_eq!(s.tasks, 2);
        assert_eq!(s.edges, 1);
        assert_eq!(s.total_weight, 3.0);
        assert_eq!(s.critical_path_weight, 3.0);
        assert!(s.is_chain);
        assert!(!s.is_independent);
        assert_eq!(s.depth, 2);
        assert_eq!(s.width, 1);
    }
}

//! The [`TaskGraph`] container.

use crate::error::GraphError;

/// Identifier of a task inside a [`TaskGraph`].
///
/// Ids are dense indices assigned in insertion order; `TaskId(i)` is the
/// `i`-th task added to the graph. By convention the paper numbers tasks from
/// 1 (`T1 … Tn`); the `Display` impl follows the paper (`TaskId(0)` prints as
/// `T0` only for graphs built programmatically, generators start at `T1`
/// semantics through their names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskId(pub usize);

impl TaskId {
    /// The dense index of this task.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A task: a name plus its computational weight `w_i` (seconds of work).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Task {
    name: String,
    weight: f64,
}

impl Task {
    /// The task's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's computational weight `w_i`.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

/// A directed acyclic graph of weighted tasks.
///
/// The graph enforces acyclicity eagerly: [`TaskGraph::add_dependency`]
/// rejects any edge that would close a cycle, so a `TaskGraph` value is a DAG
/// by construction.
///
/// # Example
///
/// ```rust
/// use ckpt_dag::TaskGraph;
///
/// let mut g = TaskGraph::new();
/// let a = g.add_task("a", 5.0)?;
/// let b = g.add_task("b", 3.0)?;
/// let c = g.add_task("c", 2.0)?;
/// g.add_dependency(a, b)?;
/// g.add_dependency(b, c)?;
/// assert!(g.add_dependency(c, a).is_err()); // would close a cycle
/// # Ok::<(), ckpt_dag::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskGraph {
    tasks: Vec<Task>,
    successors: Vec<Vec<TaskId>>,
    predecessors: Vec<Vec<TaskId>>,
    edge_count: usize,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Creates an empty graph with capacity for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        TaskGraph {
            tasks: Vec::with_capacity(n),
            successors: Vec::with_capacity(n),
            predecessors: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Adds a task with the given name and weight, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWeight`] if `weight` is not strictly
    /// positive and finite.
    pub fn add_task(&mut self, name: impl Into<String>, weight: f64) -> Result<TaskId, GraphError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task { name: name.into(), weight });
        self.successors.push(Vec::new());
        self.predecessors.push(Vec::new());
        Ok(id)
    }

    /// Adds a dependence edge `from → to` (i.e. `to` cannot start before
    /// `from` completes).
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownTask`] if either endpoint is not in the graph;
    /// * [`GraphError::SelfLoop`] if `from == to`;
    /// * [`GraphError::DuplicateEdge`] if the edge already exists;
    /// * [`GraphError::CycleDetected`] if the edge would close a cycle.
    pub fn add_dependency(&mut self, from: TaskId, to: TaskId) -> Result<(), GraphError> {
        self.check_task(from)?;
        self.check_task(to)?;
        if from == to {
            return Err(GraphError::SelfLoop { task: from });
        }
        if self.successors[from.0].contains(&to) {
            return Err(GraphError::DuplicateEdge { from, to });
        }
        // The edge from -> to closes a cycle iff `from` is reachable from `to`.
        if self.is_reachable(to, from) {
            return Err(GraphError::CycleDetected { from, to });
        }
        self.successors[from.0].push(to);
        self.predecessors[to.0].push(from);
        self.edge_count += 1;
        Ok(())
    }

    /// The number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The number of dependence edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// The task with id `id`, or `None` if it does not exist.
    pub fn get_task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0)
    }

    /// The weight `w_i` of task `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn weight(&self, id: TaskId) -> f64 {
        self.tasks[id.0].weight
    }

    /// The sum of all task weights (`W_total`).
    pub fn total_weight(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }

    /// Iterates over all task ids in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Iterates over `(id, task)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> + '_ {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// The direct successors of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id.0]
    }

    /// The direct predecessors of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.predecessors[id.0]
    }

    /// The in-degree of `id`.
    pub fn in_degree(&self, id: TaskId) -> usize {
        self.predecessors[id.0].len()
    }

    /// The out-degree of `id`.
    pub fn out_degree(&self, id: TaskId) -> usize {
        self.successors[id.0].len()
    }

    /// Tasks with no predecessors (entry tasks).
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids().filter(|&t| self.in_degree(t) == 0).collect()
    }

    /// Tasks with no successors (exit tasks).
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids().filter(|&t| self.out_degree(t) == 0).collect()
    }

    /// Whether the edge `from → to` exists.
    pub fn has_edge(&self, from: TaskId, to: TaskId) -> bool {
        self.successors.get(from.0).is_some_and(|succ| succ.contains(&to))
    }

    /// Whether `to` is reachable from `from` following dependence edges
    /// (including `from == to`).
    pub fn is_reachable(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.tasks.len()];
        let mut stack = vec![from];
        visited[from.0] = true;
        while let Some(node) = stack.pop() {
            for &succ in &self.successors[node.0] {
                if succ == to {
                    return true;
                }
                if !visited[succ.0] {
                    visited[succ.0] = true;
                    stack.push(succ);
                }
            }
        }
        false
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> Vec<(TaskId, TaskId)> {
        let mut edges = Vec::with_capacity(self.edge_count);
        for (i, succ) in self.successors.iter().enumerate() {
            for &to in succ {
                edges.push((TaskId(i), to));
            }
        }
        edges
    }

    /// Validates that `id` belongs to this graph.
    fn check_task(&self, id: TaskId) -> Result<(), GraphError> {
        if id.0 < self.tasks.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownTask { task: id })
        }
    }

    /// The weights of all tasks, indexed by task id.
    pub fn weights(&self) -> Vec<f64> {
        self.tasks.iter().map(|t| t.weight).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_chain() -> (TaskGraph, TaskId, TaskId, TaskId) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 2.0).unwrap();
        let c = g.add_task("c", 3.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn empty_graph_has_no_tasks_or_edges() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.task_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0.0);
        assert!(g.sources().is_empty());
        assert!(g.sinks().is_empty());
    }

    #[test]
    fn add_task_assigns_dense_ids() {
        let mut g = TaskGraph::new();
        assert_eq!(g.add_task("a", 1.0).unwrap(), TaskId(0));
        assert_eq!(g.add_task("b", 1.0).unwrap(), TaskId(1));
        assert_eq!(g.add_task("c", 1.0).unwrap(), TaskId(2));
        assert_eq!(g.task(TaskId(1)).name(), "b");
    }

    #[test]
    fn weight_validation() {
        let mut g = TaskGraph::new();
        assert!(g.add_task("ok", 0.5).is_ok());
        assert!(matches!(g.add_task("zero", 0.0), Err(GraphError::InvalidWeight { .. })));
        assert!(g.add_task("neg", -1.0).is_err());
        assert!(g.add_task("nan", f64::NAN).is_err());
        assert!(g.add_task("inf", f64::INFINITY).is_err());
    }

    #[test]
    fn dependencies_and_degrees() {
        let (g, a, b, c) = three_chain();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(a), &[b]);
        assert_eq!(g.predecessors(c), &[b]);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![c]);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn cycle_is_rejected() {
        let (mut g, a, _b, c) = three_chain();
        assert!(matches!(g.add_dependency(c, a), Err(GraphError::CycleDetected { .. })));
        // Graph unchanged.
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_loop_and_duplicate_rejected() {
        let (mut g, a, b, _c) = three_chain();
        assert!(matches!(g.add_dependency(a, a), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(g.add_dependency(a, b), Err(GraphError::DuplicateEdge { .. })));
    }

    #[test]
    fn unknown_task_rejected() {
        let (mut g, a, _b, _c) = three_chain();
        assert!(matches!(g.add_dependency(a, TaskId(99)), Err(GraphError::UnknownTask { .. })));
        assert!(g.get_task(TaskId(99)).is_none());
    }

    #[test]
    fn reachability() {
        let (g, a, b, c) = three_chain();
        assert!(g.is_reachable(a, c));
        assert!(g.is_reachable(a, a));
        assert!(!g.is_reachable(c, a));
        assert!(g.is_reachable(b, c));
    }

    #[test]
    fn total_weight_and_weights() {
        let (g, ..) = three_chain();
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.weights(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn edges_lists_all_edges() {
        let (g, a, b, c) = three_chain();
        let edges = g.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(a, b)));
        assert!(edges.contains(&(b, c)));
    }

    #[test]
    fn display_of_task_id() {
        assert_eq!(TaskId(3).to_string(), "T3");
        assert_eq!(TaskId(3).index(), 3);
    }

    #[test]
    fn iter_yields_tasks_in_insertion_order() {
        let (g, ..) = three_chain();
        let names: Vec<&str> = g.iter().map(|(_, t)| t.name()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut g = TaskGraph::with_capacity(10);
        assert!(g.is_empty());
        g.add_task("x", 1.0).unwrap();
        assert_eq!(g.task_count(), 1);
    }
}

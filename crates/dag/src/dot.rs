//! Graphviz DOT export and a simple text round-trip format.
//!
//! Workflow DAGs are easiest to debug visually; [`to_dot`] renders a
//! [`TaskGraph`] in Graphviz syntax (with weights as labels), and the
//! edge-list format of [`to_edge_list`] / [`from_edge_list`] gives a
//! dependency-free way to persist graphs in tests and experiment configs.

use crate::error::GraphError;
use crate::graph::{TaskGraph, TaskId};

/// Renders the graph in Graphviz DOT syntax.
///
/// Node labels show the task name and weight; edges are unlabelled.
pub fn to_dot(graph: &TaskGraph) -> String {
    let mut out = String::from("digraph workflow {\n  rankdir=LR;\n");
    for (id, task) in graph.iter() {
        out.push_str(&format!(
            "  t{} [label=\"{} ({:.1})\"];\n",
            id.index(),
            task.name(),
            task.weight()
        ));
    }
    for (from, to) in graph.edges() {
        out.push_str(&format!("  t{} -> t{};\n", from.index(), to.index()));
    }
    out.push_str("}\n");
    out
}

/// Serialises the graph in a line-oriented edge-list format:
///
/// ```text
/// task <name> <weight>
/// edge <from-index> <to-index>
/// ```
///
/// Tasks appear in id order, so indices are stable across a round-trip.
pub fn to_edge_list(graph: &TaskGraph) -> String {
    let mut out = String::new();
    for (_, task) in graph.iter() {
        out.push_str(&format!("task {} {}\n", task.name(), task.weight()));
    }
    for (from, to) in graph.edges() {
        out.push_str(&format!("edge {} {}\n", from.index(), to.index()));
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError`] variants for malformed lines, invalid weights,
/// unknown task indices, duplicate edges or cycles.
pub fn from_edge_list(text: &str) -> Result<TaskGraph, GraphError> {
    let mut graph = TaskGraph::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("task") => {
                let name = parts.next().unwrap_or("task");
                let weight: f64 = parts
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or(GraphError::InvalidWeight { weight: f64::NAN })?;
                graph.add_task(name, weight)?;
            }
            Some("edge") => {
                let from: usize = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(GraphError::UnknownTask { task: TaskId(usize::MAX) })?;
                let to: usize = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(GraphError::UnknownTask { task: TaskId(usize::MAX) })?;
                graph.add_dependency(TaskId(from), TaskId(to))?;
            }
            _ => {
                return Err(GraphError::UnknownTask { task: TaskId(usize::MAX) });
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_output_contains_every_task_and_edge() {
        let g = generators::chain(&[1.0, 2.0, 3.0]).unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("t0 [label=\"T1 (1.0)\"]"));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("t1 -> t2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn edge_list_round_trip_preserves_structure() {
        let g = generators::fork_join(3, &[5.0, 6.0, 7.0], 1.0, 2.0).unwrap();
        let text = to_edge_list(&g);
        let parsed = from_edge_list(&text).unwrap();
        assert_eq!(parsed.task_count(), g.task_count());
        assert_eq!(parsed.edge_count(), g.edge_count());
        assert_eq!(parsed.total_weight(), g.total_weight());
        let mut a = g.edges();
        let mut b = parsed.edges();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_list_parser_skips_comments_and_blank_lines() {
        let text = "# a comment\n\ntask a 1.5\ntask b 2.5\nedge 0 1\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.task(TaskId(0)).name(), "a");
    }

    #[test]
    fn edge_list_parser_rejects_malformed_input() {
        assert!(from_edge_list("task a nope").is_err());
        assert!(from_edge_list("task a 1.0\nedge 0 x").is_err());
        assert!(from_edge_list("banana 1 2").is_err());
        assert!(from_edge_list("task a 1.0\ntask b 1.0\nedge 0 1\nedge 1 0").is_err());
        assert!(from_edge_list("task a 1.0\nedge 0 7").is_err());
    }
}

//! Linearisation strategies.
//!
//! The paper's full-parallelism assumption (§2) reduces scheduling to choosing
//! an order in which to execute the tasks sequentially (each task using the
//! whole platform), "always enforcing all dependences". For a linear chain
//! there is a single valid order; for general DAGs the choice of order matters
//! and Proposition 2 shows that making it optimally (together with the
//! checkpoint decisions) is strongly NP-complete. The strategies below are the
//! deterministic orderings the heuristics in `ckpt-core` start from.

use crate::graph::{TaskGraph, TaskId};
use crate::topo::{is_topological_order, random_topological_order};

/// How to turn a DAG into a sequential execution order.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum LinearizationStrategy {
    /// Kahn's algorithm with smallest-id tie-breaking (deterministic,
    /// insertion order for independent tasks).
    #[default]
    IdOrder,
    /// Among ready tasks, execute the heaviest first (Longest Processing
    /// Time first restricted to ready tasks).
    HeaviestFirst,
    /// Among ready tasks, execute the lightest first.
    LightestFirst,
    /// Among ready tasks, execute the one with the largest remaining
    /// descendant weight first (critical-path-style priority).
    CriticalPathFirst,
    /// Random topological order driven by the given seed (reproducible).
    Random(u64),
}

impl std::fmt::Display for LinearizationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearizationStrategy::IdOrder => write!(f, "id-order"),
            LinearizationStrategy::HeaviestFirst => write!(f, "heaviest-first"),
            LinearizationStrategy::LightestFirst => write!(f, "lightest-first"),
            LinearizationStrategy::CriticalPathFirst => write!(f, "critical-path-first"),
            LinearizationStrategy::Random(seed) => write!(f, "random(seed={seed})"),
        }
    }
}

/// Produces a linearisation of `graph` following `strategy`.
///
/// The result is always a valid topological order (verified in debug builds).
pub fn linearize(graph: &TaskGraph, strategy: LinearizationStrategy) -> Vec<TaskId> {
    let order = match strategy {
        LinearizationStrategy::IdOrder => priority_order(graph, |_, id| usize::MAX - id.0),
        LinearizationStrategy::HeaviestFirst => {
            priority_order(graph, |g, id| float_priority(g.weight(id)))
        }
        LinearizationStrategy::LightestFirst => {
            priority_order(graph, |g, id| usize::MAX - float_priority(g.weight(id)))
        }
        LinearizationStrategy::CriticalPathFirst => {
            let downstream = downstream_weight(graph);
            priority_order(graph, move |g, id| float_priority(downstream[id.0] + g.weight(id)))
        }
        LinearizationStrategy::Random(seed) => {
            // A tiny SplitMix64 step, local to this module, keeps the crate
            // free of RNG dependencies while giving reproducible orders.
            let mut state = seed;
            random_topological_order(graph, move |len| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as usize % len
            })
        }
    };
    debug_assert!(is_topological_order(graph, &order));
    order
}

/// Total weight of the proper descendants of each task.
fn downstream_weight(graph: &TaskGraph) -> Vec<f64> {
    let order = crate::topo::topological_sort(graph);
    let mut downstream = vec![0.0f64; graph.task_count()];
    for &task in order.iter().rev() {
        // Sum over direct successors of (their weight + their downstream).
        // This over-counts shared descendants, which is fine for a priority.
        downstream[task.0] =
            graph.successors(task).iter().map(|&s| graph.weight(s) + downstream[s.0]).sum();
    }
    downstream
}

/// Maps a non-negative float to an ordered integer priority (larger is higher).
fn float_priority(w: f64) -> usize {
    // Weights are validated positive and finite; scale preserves ordering for
    // the ranges used in experiments.
    (w * 1e6) as usize
}

/// Kahn's algorithm where, among ready tasks, the one with the highest
/// priority is executed first (ties broken by smallest id).
fn priority_order<P>(graph: &TaskGraph, priority: P) -> Vec<TaskId>
where
    P: Fn(&TaskGraph, TaskId) -> usize,
{
    let n = graph.task_count();
    let mut in_degree: Vec<usize> = (0..n).map(|i| graph.in_degree(TaskId(i))).collect();
    let mut ready: Vec<TaskId> = (0..n).map(TaskId).filter(|&t| in_degree[t.0] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let (pos, _) = ready
            .iter()
            .enumerate()
            .max_by_key(|(_, &t)| (priority(graph, t), usize::MAX - t.0))
            .expect("ready is non-empty");
        let task = ready.swap_remove(pos);
        order.push(task);
        for &succ in graph.successors(task) {
            in_degree[succ.0] -= 1;
            if in_degree[succ.0] == 0 {
                ready.push(succ);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn id_order_on_independent_tasks_is_insertion_order() {
        let g = generators::independent(&[3.0, 1.0, 2.0]).unwrap();
        let order = linearize(&g, LinearizationStrategy::IdOrder);
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn heaviest_first_on_independent_tasks_sorts_by_weight() {
        let g = generators::independent(&[3.0, 1.0, 2.0]).unwrap();
        let order = linearize(&g, LinearizationStrategy::HeaviestFirst);
        assert_eq!(order, vec![TaskId(0), TaskId(2), TaskId(1)]);
    }

    #[test]
    fn lightest_first_on_independent_tasks_sorts_by_weight() {
        let g = generators::independent(&[3.0, 1.0, 2.0]).unwrap();
        let order = linearize(&g, LinearizationStrategy::LightestFirst);
        assert_eq!(order, vec![TaskId(1), TaskId(2), TaskId(0)]);
    }

    #[test]
    fn every_strategy_yields_valid_topological_order() {
        let g = generators::fork_join(4, &[4.0, 1.0, 3.0, 2.0], 1.0, 1.0).unwrap();
        for strategy in [
            LinearizationStrategy::IdOrder,
            LinearizationStrategy::HeaviestFirst,
            LinearizationStrategy::LightestFirst,
            LinearizationStrategy::CriticalPathFirst,
            LinearizationStrategy::Random(7),
            LinearizationStrategy::Random(8),
        ] {
            let order = linearize(&g, strategy);
            assert!(
                is_topological_order(&g, &order),
                "strategy {strategy} produced an invalid order"
            );
        }
    }

    #[test]
    fn chain_has_a_unique_linearization() {
        let g = generators::chain(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let expected: Vec<TaskId> = (0..4).map(TaskId).collect();
        for strategy in [
            LinearizationStrategy::IdOrder,
            LinearizationStrategy::HeaviestFirst,
            LinearizationStrategy::LightestFirst,
            LinearizationStrategy::CriticalPathFirst,
            LinearizationStrategy::Random(99),
        ] {
            assert_eq!(linearize(&g, strategy), expected);
        }
    }

    #[test]
    fn critical_path_first_prefers_branch_with_heavy_descendants() {
        // fork -> light(1) -> heavy_tail(100) ; fork -> heavy(10) -> light_tail(1)
        let mut g = crate::TaskGraph::new();
        let fork = g.add_task("fork", 1.0).unwrap();
        let light = g.add_task("light", 1.0).unwrap();
        let heavy_tail = g.add_task("heavy_tail", 100.0).unwrap();
        let heavy = g.add_task("heavy", 10.0).unwrap();
        let light_tail = g.add_task("light_tail", 1.0).unwrap();
        g.add_dependency(fork, light).unwrap();
        g.add_dependency(light, heavy_tail).unwrap();
        g.add_dependency(fork, heavy).unwrap();
        g.add_dependency(heavy, light_tail).unwrap();
        let order = linearize(&g, LinearizationStrategy::CriticalPathFirst);
        // The branch leading to the 100-weight task should start first even
        // though its first task is lighter.
        let pos_light = order.iter().position(|&t| t == light).unwrap();
        let pos_heavy = order.iter().position(|&t| t == heavy).unwrap();
        assert!(pos_light < pos_heavy);
    }

    #[test]
    fn random_orders_differ_across_seeds_but_not_within() {
        let g = generators::independent(&[1.0; 8]).unwrap();
        let a = linearize(&g, LinearizationStrategy::Random(1));
        let b = linearize(&g, LinearizationStrategy::Random(1));
        let c = linearize(&g, LinearizationStrategy::Random(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_names() {
        assert_eq!(LinearizationStrategy::IdOrder.to_string(), "id-order");
        assert_eq!(LinearizationStrategy::Random(3).to_string(), "random(seed=3)");
        assert_eq!(LinearizationStrategy::default(), LinearizationStrategy::IdOrder);
    }
}

//! Topological orders of a task graph.
//!
//! Under the paper's full-parallelism assumption (§2), executing the workflow
//! means choosing a *linearisation* of the DAG — i.e. a topological order —
//! and then deciding where to checkpoint. This module provides the order
//! machinery: Kahn's algorithm for one order, a seeded random order (used by
//! randomised heuristics), verification of candidate orders, and exhaustive
//! enumeration of all orders for the small instances used by brute-force
//! optimality checks.

use crate::graph::{TaskGraph, TaskId};

/// Computes one topological order using Kahn's algorithm.
///
/// Ties are broken by task id, so the result is deterministic.
/// Returns an empty vector for an empty graph.
pub fn topological_sort(graph: &TaskGraph) -> Vec<TaskId> {
    let n = graph.task_count();
    let mut in_degree: Vec<usize> = (0..n).map(|i| graph.in_degree(TaskId(i))).collect();
    // A sorted "ready" structure; we keep it as a min-ordered Vec for
    // determinism (n is small enough that O(n²) is irrelevant here, and the
    // priority-based linearisations live in `linearize`).
    let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        // Take the smallest id for determinism.
        let pos = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &id)| id)
            .map(|(pos, _)| pos)
            .expect("ready is non-empty");
        let node = ready.swap_remove(pos);
        order.push(TaskId(node));
        for &succ in graph.successors(TaskId(node)) {
            in_degree[succ.0] -= 1;
            if in_degree[succ.0] == 0 {
                ready.push(succ.0);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "TaskGraph invariant guarantees acyclicity");
    order
}

/// Checks whether `order` is a valid topological order of `graph`:
/// it must contain every task exactly once and respect every edge.
pub fn is_topological_order(graph: &TaskGraph, order: &[TaskId]) -> bool {
    let n = graph.task_count();
    if order.len() != n {
        return false;
    }
    let mut position = vec![usize::MAX; n];
    for (pos, &task) in order.iter().enumerate() {
        if task.0 >= n || position[task.0] != usize::MAX {
            return false;
        }
        position[task.0] = pos;
    }
    graph.edges().into_iter().all(|(from, to)| position[from.0] < position[to.0])
}

/// Computes a random topological order, using the provided uniform variates.
///
/// `pick` is called with the number of currently ready tasks and must return
/// an index in `0..ready_count`; passing a closure backed by a seeded RNG
/// yields reproducible random linearisations without coupling this crate to a
/// particular RNG implementation.
pub fn random_topological_order<F>(graph: &TaskGraph, mut pick: F) -> Vec<TaskId>
where
    F: FnMut(usize) -> usize,
{
    let n = graph.task_count();
    let mut in_degree: Vec<usize> = (0..n).map(|i| graph.in_degree(TaskId(i))).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let idx = pick(ready.len()).min(ready.len() - 1);
        let node = ready.remove(idx);
        order.push(TaskId(node));
        for &succ in graph.successors(TaskId(node)) {
            in_degree[succ.0] -= 1;
            if in_degree[succ.0] == 0 {
                ready.push(succ.0);
            }
        }
        ready.sort_unstable();
    }
    order
}

/// Enumerates **all** topological orders of `graph`.
///
/// The number of orders grows factorially (an independent set of `n` tasks has
/// `n!` orders), so this is only meant for the brute-force optimality checks
/// on small instances (experiment E2/E4).
///
/// # Panics
///
/// Panics if the graph has more than `max_tasks_for_enumeration()` tasks, to
/// protect against accidental combinatorial explosions.
pub fn all_topological_orders(graph: &TaskGraph) -> Vec<Vec<TaskId>> {
    assert!(
        graph.task_count() <= max_tasks_for_enumeration(),
        "refusing to enumerate topological orders of a graph with more than {} tasks",
        max_tasks_for_enumeration()
    );
    let n = graph.task_count();
    let mut in_degree: Vec<usize> = (0..n).map(|i| graph.in_degree(TaskId(i))).collect();
    let mut current = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut out = Vec::new();
    enumerate(graph, &mut in_degree, &mut used, &mut current, &mut out);
    out
}

/// The largest graph size accepted by [`all_topological_orders`].
pub fn max_tasks_for_enumeration() -> usize {
    12
}

fn enumerate(
    graph: &TaskGraph,
    in_degree: &mut Vec<usize>,
    used: &mut Vec<bool>,
    current: &mut Vec<TaskId>,
    out: &mut Vec<Vec<TaskId>>,
) {
    let n = graph.task_count();
    if current.len() == n {
        out.push(current.clone());
        return;
    }
    for i in 0..n {
        if !used[i] && in_degree[i] == 0 {
            used[i] = true;
            current.push(TaskId(i));
            for &succ in graph.successors(TaskId(i)) {
                in_degree[succ.0] -= 1;
            }
            enumerate(graph, in_degree, used, current, out);
            for &succ in graph.successors(TaskId(i)) {
                in_degree[succ.0] += 1;
            }
            current.pop();
            used[i] = false;
        }
    }
}

/// Groups tasks into precedence levels: level 0 contains the sources, level
/// `k+1` contains tasks whose predecessors all lie in levels `≤ k`.
///
/// The result is a partition of the task set; it is used for layered DAG
/// statistics and as a crude parallelism profile.
pub fn levels(graph: &TaskGraph) -> Vec<Vec<TaskId>> {
    let order = topological_sort(graph);
    let mut level = vec![0usize; graph.task_count()];
    let mut max_level = 0;
    for &task in &order {
        let lvl = graph.predecessors(task).iter().map(|p| level[p.0] + 1).max().unwrap_or(0);
        level[task.0] = lvl;
        max_level = max_level.max(lvl);
    }
    let mut out = vec![Vec::new(); if graph.is_empty() { 0 } else { max_level + 1 }];
    for task in graph.task_ids() {
        out[level[task.0]].push(task);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::TaskGraph;

    fn diamond() -> TaskGraph {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 1.0).unwrap();
        let c = g.add_task("c", 1.0).unwrap();
        let d = g.add_task("d", 1.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        g.add_dependency(c, d).unwrap();
        g
    }

    #[test]
    fn topological_sort_of_chain_is_the_chain() {
        let g = generators::chain(&[1.0; 5]).unwrap();
        let order = topological_sort(&g);
        assert_eq!(order, (0..5).map(TaskId).collect::<Vec<_>>());
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn topological_sort_respects_edges_on_diamond() {
        let g = diamond();
        let order = topological_sort(&g);
        assert!(is_topological_order(&g, &order));
        assert_eq!(order.first(), Some(&TaskId(0)));
        assert_eq!(order.last(), Some(&TaskId(3)));
    }

    #[test]
    fn is_topological_order_rejects_bad_orders() {
        let g = diamond();
        // Wrong length.
        assert!(!is_topological_order(&g, &[TaskId(0)]));
        // Duplicate.
        assert!(!is_topological_order(&g, &[TaskId(0), TaskId(0), TaskId(1), TaskId(2)]));
        // Edge violated (d before b).
        assert!(!is_topological_order(&g, &[TaskId(0), TaskId(2), TaskId(3), TaskId(1)]));
        // Unknown id.
        assert!(!is_topological_order(&g, &[TaskId(0), TaskId(1), TaskId(2), TaskId(9)]));
    }

    #[test]
    fn empty_graph_has_empty_order() {
        let g = TaskGraph::new();
        assert!(topological_sort(&g).is_empty());
        assert!(is_topological_order(&g, &[]));
        assert!(levels(&g).is_empty());
    }

    #[test]
    fn all_orders_of_independent_tasks_is_factorial() {
        let g = generators::independent(&[1.0, 2.0, 3.0]).unwrap();
        let orders = all_topological_orders(&g);
        assert_eq!(orders.len(), 6);
        for order in &orders {
            assert!(is_topological_order(&g, order));
        }
    }

    #[test]
    fn all_orders_of_chain_is_one() {
        let g = generators::chain(&[1.0; 6]).unwrap();
        assert_eq!(all_topological_orders(&g).len(), 1);
    }

    #[test]
    fn all_orders_of_diamond_is_two() {
        let g = diamond();
        let orders = all_topological_orders(&g);
        assert_eq!(orders.len(), 2);
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn all_orders_guards_against_large_graphs() {
        let g = generators::independent(&[1.0; 13]).unwrap();
        let _ = all_topological_orders(&g);
    }

    #[test]
    fn random_order_is_valid_for_any_pick() {
        let g = diamond();
        // Always pick the last ready task.
        let order = random_topological_order(&g, |len| len - 1);
        assert!(is_topological_order(&g, &order));
        // Always pick the first ready task.
        let order = random_topological_order(&g, |_| 0);
        assert!(is_topological_order(&g, &order));
        // Out-of-range picks are clamped.
        let order = random_topological_order(&g, |_| 1_000_000);
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn levels_of_diamond() {
        let g = diamond();
        let lv = levels(&g);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0], vec![TaskId(0)]);
        assert_eq!(lv[1], vec![TaskId(1), TaskId(2)]);
        assert_eq!(lv[2], vec![TaskId(3)]);
    }

    #[test]
    fn levels_partition_the_task_set() {
        let g = generators::fork_join(4, &[2.0; 4], 1.0, 1.0).unwrap();
        let lv = levels(&g);
        let total: usize = lv.iter().map(|l| l.len()).sum();
        assert_eq!(total, g.task_count());
    }
}

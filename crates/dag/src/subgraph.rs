//! Remaining-graph extraction for online re-linearisation.
//!
//! When a linearised DAG execution has durably committed a prefix of its
//! order (the **completed-and-checkpointed frontier**), re-planning the rest
//! of the execution only concerns the *remaining* graph: the surviving
//! (unexecuted) tasks with the dependence edges induced among them. Edges
//! arriving from the frontier are satisfied — their producers' outputs are
//! part of the checkpointed state — so they drop out of the suffix problem,
//! and any topological order of the suffix subgraph, spliced after the
//! frontier, is a topological order of the full graph.
//!
//! [`suffix_subgraph`] performs that extraction in `O(n + E)`: it returns
//! the induced [`TaskGraph`] over the suffix (sub-ids assigned by suffix
//! position, so the identity order of the subgraph *is* the current suffix
//! order), the mapping back to original task ids, and the **live-set seed**
//! — the frontier tasks that still have unexecuted successors, i.e. exactly
//! the completed outputs a §6 live-set checkpoint of the suffix would have
//! to keep saving. The `ckpt-adaptive` re-linearisation policies run their
//! bounded-budget order search on this subgraph instead of the full graph.

use crate::graph::{TaskGraph, TaskId};
use crate::topo::is_topological_order;

/// The remaining graph of a partially executed linearisation (see
/// [`suffix_subgraph`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SuffixSubgraph {
    /// The induced subgraph over the surviving tasks. Sub-ids are assigned
    /// by suffix position: `TaskId(i)` of this graph is the task at position
    /// `start + i` of the original order, with its original name and weight.
    pub graph: TaskGraph,
    /// Maps each sub-id back to the original task: `tasks[i]` is the
    /// original [`TaskId`] of the subgraph's `TaskId(i)`.
    pub tasks: Vec<TaskId>,
    /// The live-set seed: frontier (executed) tasks, in original ids and
    /// increasing id order, that still have at least one surviving
    /// successor. Their outputs are part of every checkpoint taken while
    /// they stay live, whatever suffix order is chosen.
    pub live_seed: Vec<TaskId>,
}

impl SuffixSubgraph {
    /// Translates an order over the subgraph (sub-ids) back to original
    /// task ids, ready to be spliced after the frontier.
    ///
    /// # Panics
    ///
    /// Panics if a sub-id is out of range of the subgraph.
    pub fn to_original_order(&self, sub_order: &[TaskId]) -> Vec<TaskId> {
        sub_order.iter().map(|&t| self.tasks[t.index()]).collect()
    }

    /// The number of surviving tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task survives (the execution frontier covers everything).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Extracts the remaining graph of `order[start..]`: the induced subgraph
/// over the surviving tasks, the sub-id → original-id mapping, and the
/// live-set seed contributed by the frontier `order[..start]` (see the
/// module docs). Runs in `O(n + E)`.
///
/// `order` must be a topological order of `graph`; the suffix positions are
/// then precedence-consistent among themselves, so the subgraph is built
/// without any cycle checks and the identity order of the subgraph is a
/// valid topological order of it.
///
/// # Panics
///
/// Panics if `order` is not a topological order of `graph` covering every
/// task exactly once, or if `start > order.len()`.
pub fn suffix_subgraph(graph: &TaskGraph, order: &[TaskId], start: usize) -> SuffixSubgraph {
    assert!(
        is_topological_order(graph, order),
        "suffix_subgraph requires a topological order of the graph"
    );
    assert!(start <= order.len(), "frontier length {start} exceeds the order length");

    let n = graph.task_count();
    // Original id -> sub id (usize::MAX for frontier tasks).
    let mut sub_id = vec![usize::MAX; n];
    let tasks: Vec<TaskId> = order[start..].to_vec();
    for (i, &t) in tasks.iter().enumerate() {
        sub_id[t.index()] = i;
    }

    let mut sub = TaskGraph::with_capacity(tasks.len());
    for &t in &tasks {
        let task = graph.task(t);
        sub.add_task(task.name(), task.weight())
            .expect("weights of an existing graph are already validated");
    }
    for &t in &tasks {
        let from = sub_id[t.index()];
        for &succ in graph.successors(t) {
            let to = sub_id[succ.index()];
            // Successors of a surviving task are never in the frontier (the
            // order is topological), so `to` is always a valid sub id.
            debug_assert_ne!(to, usize::MAX, "successor of a surviving task in the frontier");
            sub.add_dependency(TaskId(from), TaskId(to))
                .expect("induced edges of a DAG cannot close a cycle");
        }
    }

    // Frontier tasks with at least one surviving successor stay live for
    // the whole suffix-planning horizon.
    let live_seed: Vec<TaskId> = order[..start]
        .iter()
        .copied()
        .filter(|&t| graph.successors(t).iter().any(|s| sub_id[s.index()] != usize::MAX))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    SuffixSubgraph { graph: sub, tasks, live_seed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::topo;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0).unwrap();
        let b = g.add_task("b", 2.0).unwrap();
        let c = g.add_task("c", 3.0).unwrap();
        let d = g.add_task("d", 4.0).unwrap();
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        g.add_dependency(c, d).unwrap();
        g
    }

    #[test]
    fn empty_frontier_reproduces_the_whole_graph() {
        let g = diamond();
        let order = topo::topological_sort(&g);
        let sub = suffix_subgraph(&g, &order, 0);
        assert_eq!(sub.len(), 4);
        assert!(!sub.is_empty());
        assert_eq!(sub.graph.edge_count(), 4);
        assert!(sub.live_seed.is_empty());
        // Sub ids follow the order, weights/names are carried over.
        for (i, &t) in order.iter().enumerate() {
            assert_eq!(sub.tasks[i], t);
            assert_eq!(sub.graph.weight(TaskId(i)), g.weight(t));
            assert_eq!(sub.graph.task(TaskId(i)).name(), g.task(t).name());
        }
    }

    #[test]
    fn full_frontier_leaves_an_empty_subgraph() {
        let g = diamond();
        let order = topo::topological_sort(&g);
        let sub = suffix_subgraph(&g, &order, 4);
        assert!(sub.is_empty());
        assert!(sub.graph.is_empty());
        assert!(sub.live_seed.is_empty());
    }

    #[test]
    fn mid_execution_frontier_drops_satisfied_edges_and_seeds_the_live_set() {
        // Diamond a -> {b, c} -> d, order a b c d, frontier {a, b}.
        let g = diamond();
        let order: Vec<TaskId> = (0..4).map(TaskId).collect();
        let sub = suffix_subgraph(&g, &order, 2);
        // Surviving: c, d with the single induced edge c -> d.
        assert_eq!(sub.tasks, vec![TaskId(2), TaskId(3)]);
        assert_eq!(sub.graph.task_count(), 2);
        assert_eq!(sub.graph.edge_count(), 1);
        assert!(sub.graph.has_edge(TaskId(0), TaskId(1)));
        // Both a (needed by c) and b (needed by d) are still live.
        assert_eq!(sub.live_seed, vec![TaskId(0), TaskId(1)]);
        // A sub order maps back to original ids.
        assert_eq!(sub.to_original_order(&[TaskId(0), TaskId(1)]), vec![TaskId(2), TaskId(3)]);
    }

    #[test]
    fn live_seed_excludes_fully_consumed_frontier_tasks() {
        // Chain of 4, frontier {T0, T1}: only T1 still feeds the suffix.
        let g = generators::chain(&[1.0; 4]).unwrap();
        let order: Vec<TaskId> = (0..4).map(TaskId).collect();
        let sub = suffix_subgraph(&g, &order, 2);
        assert_eq!(sub.live_seed, vec![TaskId(1)]);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn any_topological_suffix_order_splices_into_a_valid_full_order() {
        let g = generators::fork_join(4, &[2.0, 3.0, 4.0, 5.0], 1.0, 1.0).unwrap();
        let order = topo::topological_sort(&g);
        for start in 0..=order.len() {
            let sub = suffix_subgraph(&g, &order, start);
            // Identity order of the subgraph is topological…
            let identity: Vec<TaskId> = (0..sub.len()).map(TaskId).collect();
            assert!(topo::is_topological_order(&sub.graph, &identity));
            // …and every topological order of the subgraph, spliced after
            // the frontier, is a topological order of the full graph.
            for sub_order in topo::all_topological_orders(&sub.graph) {
                let mut full = order[..start].to_vec();
                full.extend(sub.to_original_order(&sub_order));
                assert!(
                    topo::is_topological_order(&g, &full),
                    "start {start}: spliced order is not topological"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn non_topological_orders_are_rejected() {
        let g = diamond();
        let order: Vec<TaskId> = (0..4).rev().map(TaskId).collect();
        let _ = suffix_subgraph(&g, &order, 1);
    }
}

//! Non-memoryless failure laws (paper §6, third extension).
//!
//! With Weibull or log-normal failures there is no closed-form analogue of
//! Proposition 1, so the expected makespan cannot be written down and the
//! chain DP does not apply directly. The paper points at two pragmatic
//! routes, both implemented here:
//!
//! * **exponential-equivalent planning**: replace the law by the Exponential
//!   law with the same platform MTBF and run Algorithm 1; this is what a
//!   scheduler unaware of the law's shape would do. The planner builds the
//!   chain's [`LambdaSweep`](ckpt_expectation::sweep::LambdaSweep) once,
//!   instantiates a [`SegmentCostTable`](ckpt_expectation::segment_cost::SegmentCostTable)
//!   at each surrogate rate and runs the Algorithm 1 recurrence directly on
//!   the table ([`chain_dp::optimal_placement_on_table`]) — no surrogate
//!   instance is cloned and no Proposition-1 closed form is re-derived per
//!   candidate segment, so planning the same chain across several platform
//!   sizes ([`exponential_equivalent_schedules`]) shares all the
//!   λ-independent work;
//! * **work-before-failure greedy** (after Bouguerra, Trystram & Wagner): pick
//!   segment boundaries that maximise the expected amount of work completed
//!   before the next failure, a quantity that only needs the survival
//!   function of the law, not a full expectation.
//!
//! Because no analytical evaluation exists, candidate schedules are compared
//! by Monte-Carlo simulation against the non-memoryless platform; experiment
//! E7 reports those comparisons on Weibull, log-normal and synthetic-trace
//! platforms.

use ckpt_dag::properties;
use ckpt_failure::FailureDistribution;
use ckpt_simulator::{MonteCarloOutcome, SimulationScenario};

use crate::chain_dp;
use crate::error::ScheduleError;
use crate::evaluate::lambda_sweep_for_order;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// The Exponential rate a scheduler unaware of `law`'s shape would plan
/// with: the inverse of the platform MTBF of `processors` superposed i.i.d.
/// copies of the law (`processors / mean`).
fn surrogate_lambda(law: &dyn FailureDistribution, processors: usize) -> f64 {
    processors.max(1) as f64 / law.mean()
}

/// Plans a chain schedule for a platform whose failures follow `law` by
/// pretending the law is Exponential with the same mean (the platform MTBF)
/// and running Algorithm 1 at that surrogate rate, directly on the chain's
/// segment-cost table.
///
/// # Errors
///
/// Returns [`ScheduleError::NotAChain`] if the instance is not a chain.
pub fn exponential_equivalent_schedule(
    instance: &ProblemInstance,
    law: &dyn FailureDistribution,
    processors: usize,
) -> Result<Schedule, ScheduleError> {
    let mut schedules = exponential_equivalent_schedules(instance, law, &[processors])?;
    Ok(schedules.pop().expect("one schedule per processor count"))
}

/// Plans the exponential-equivalent schedule of one chain for **several**
/// platform sizes at once: the λ-independent planning work (order
/// validation, work prefix sums, per-position costs) is done once and only
/// the per-rate table and DP are redone per processor count — the batched
/// planning loop experiments like E7 sweep.
///
/// # Errors
///
/// Returns [`ScheduleError::NotAChain`] if the instance is not a chain;
/// propagates validation errors for degenerate laws (e.g. a zero mean).
pub fn exponential_equivalent_schedules(
    instance: &ProblemInstance,
    law: &dyn FailureDistribution,
    processor_counts: &[usize],
) -> Result<Vec<Schedule>, ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let sweep = lambda_sweep_for_order(instance, &order)?;
    processor_counts
        .iter()
        .map(|&p| {
            let table = sweep
                .table_for(surrogate_lambda(law, p))
                .map_err(ScheduleError::from_expectation)?;
            let placement = chain_dp::scalable_placement_on_table(&table);
            Schedule::new(instance, order.clone(), placement.checkpoint_after())
        })
        .collect()
}

/// Plans a chain schedule with the work-before-failure greedy rule: walk the
/// chain accumulating tasks into the current segment and close the segment
/// (checkpoint) as soon as adding the *next* task would decrease the expected
/// work completed before the next failure,
/// `g(W) = W · S(W + C_next)`, where `S` is the survival function of the
/// platform-level first-failure law (approximated by the law of the minimum of
/// `processors` fresh lifetimes).
///
/// # Errors
///
/// Returns [`ScheduleError::NotAChain`] if the instance is not a chain.
pub fn work_before_failure_schedule(
    instance: &ProblemInstance,
    law: &dyn FailureDistribution,
    processors: usize,
) -> Result<Schedule, ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let n = order.len();
    let p = processors.max(1) as f64;
    // Survival of the platform-level first failure: all p processors must
    // survive (fresh lifetimes), i.e. S_platform(x) = S(x)^p.
    let survival = |x: f64| law.survival(x).powf(p);

    let mut checkpoint_after = vec![false; n];
    let mut segment_work = 0.0f64;
    for (pos, &task) in order.iter().enumerate() {
        segment_work += instance.weight(task);
        if pos == n - 1 {
            checkpoint_after[pos] = true;
            break;
        }
        let next_task = order[pos + 1];
        let c_here = instance.checkpoint_cost(task);
        let c_next = instance.checkpoint_cost(next_task);
        // Expected work before the next failure if we close the segment now…
        let close_now = segment_work * survival(segment_work + c_here);
        // …versus if we extend it with the next task.
        let extended = segment_work + instance.weight(next_task);
        let extend = extended * survival(extended + c_next);
        if close_now >= extend {
            checkpoint_after[pos] = true;
            segment_work = 0.0;
        }
    }
    Schedule::new(instance, order, checkpoint_after)
}

/// Simulates `schedule` on a platform of `processors` processors whose
/// per-processor failures follow `law`, returning the Monte-Carlo outcome.
///
/// # Errors
///
/// Propagates segment-conversion errors (cannot occur for valid instances).
pub fn simulate_under_law<D>(
    instance: &ProblemInstance,
    schedule: &Schedule,
    law: D,
    processors: usize,
    trials: usize,
    seed: u64,
) -> Result<MonteCarloOutcome, ScheduleError>
where
    D: FailureDistribution + 'static,
{
    let segments = schedule.to_segments(instance).map_err(|_| ScheduleError::EmptyInstance)?;
    Ok(SimulationScenario::platform(processors, law)
        .with_downtime(instance.downtime())
        .with_trials(trials)
        .with_seed(seed)
        .run(&segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::generators;
    use ckpt_failure::{Exponential, Weibull};

    fn chain_instance(n: usize, w: f64, c: f64, lambda: f64) -> ProblemInstance {
        let graph = generators::uniform_chain(n, w).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(c)
            .uniform_recovery_cost(c)
            .downtime(30.0)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    #[test]
    fn exponential_equivalent_matches_chain_dp_for_exponential_law() {
        // If the law really is Exponential, the "equivalent" schedule must be
        // exactly the Algorithm 1 optimum for the true platform rate.
        let p = 16;
        let proc_mtbf = 80_000.0;
        let lambda = p as f64 / proc_mtbf;
        let inst = chain_instance(12, 600.0, 60.0, lambda);
        let law = Exponential::from_mtbf(proc_mtbf).unwrap();
        let planned = exponential_equivalent_schedule(&inst, &law, p).unwrap();
        let optimal = chain_dp::optimal_chain_schedule(&inst).unwrap().schedule;
        assert_eq!(planned, optimal);
    }

    #[test]
    fn batched_planning_matches_single_processor_counts() {
        let inst = chain_instance(12, 600.0, 60.0, 1e-4);
        let law = Weibull::with_mean(0.7, 50_000.0).unwrap();
        let counts = [1usize, 8, 64, 512];
        let batch = exponential_equivalent_schedules(&inst, &law, &counts).unwrap();
        assert_eq!(batch.len(), counts.len());
        for (i, &p) in counts.iter().enumerate() {
            let single = exponential_equivalent_schedule(&inst, &law, p).unwrap();
            assert_eq!(batch[i], single);
        }
        // More processors → higher surrogate rate → no fewer checkpoints.
        assert!(batch.windows(2).all(|w| w[1].checkpoint_count() >= w[0].checkpoint_count()));
    }

    #[test]
    fn rejects_non_chain_instances() {
        let graph = generators::independent(&[1.0, 2.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let law = Weibull::new(0.7, 1000.0).unwrap();
        assert!(matches!(
            work_before_failure_schedule(&inst, &law, 4),
            Err(ScheduleError::NotAChain)
        ));
        assert!(matches!(
            exponential_equivalent_schedule(&inst, &law, 4),
            Err(ScheduleError::NotAChain)
        ));
    }

    #[test]
    fn greedy_checkpoints_more_when_failures_are_imminent() {
        let inst = chain_instance(10, 500.0, 20.0, 1e-4);
        // Short-mean Weibull (failures likely soon): many checkpoints.
        let risky = Weibull::with_mean(0.7, 2_000.0).unwrap();
        let sched_risky = work_before_failure_schedule(&inst, &risky, 4).unwrap();
        // Long-mean Weibull: few checkpoints.
        let safe = Weibull::with_mean(0.7, 2_000_000.0).unwrap();
        let sched_safe = work_before_failure_schedule(&inst, &safe, 4).unwrap();
        assert!(sched_risky.checkpoint_count() > sched_safe.checkpoint_count());
        assert_eq!(sched_safe.checkpoint_count(), 1);
    }

    #[test]
    fn greedy_always_emits_a_valid_schedule() {
        let inst = chain_instance(7, 350.0, 45.0, 1e-4);
        for &shape in &[0.5, 0.7, 1.0, 1.5] {
            let law = Weibull::with_mean(shape, 10_000.0).unwrap();
            let schedule = work_before_failure_schedule(&inst, &law, 8).unwrap();
            assert_eq!(schedule.len(), 7);
            assert!(schedule.checkpoint_after().last().copied().unwrap());
        }
    }

    #[test]
    fn simulate_under_law_produces_consistent_outcome() {
        let inst = chain_instance(5, 400.0, 40.0, 1e-4);
        let schedule =
            Schedule::checkpoint_everywhere(&inst, properties::as_chain(inst.graph()).unwrap())
                .unwrap();
        let law = Weibull::with_mean(0.7, 20_000.0).unwrap();
        let outcome = simulate_under_law(&inst, &schedule, law, 8, 2_000, 42).unwrap();
        assert!(outcome.makespan.mean >= schedule.failure_free_makespan(&inst));
        assert!((outcome.mean_breakdown.total() - outcome.makespan.mean).abs() < 1e-6);
    }

    #[test]
    fn planning_with_the_right_shape_does_not_hurt_under_weibull() {
        // Replay both the exponential-equivalent schedule and the greedy
        // schedule under the true Weibull platform: the greedy one should not
        // be dramatically worse (sanity bound), and both should complete.
        let p = 8;
        let proc_mtbf = 30_000.0;
        let lambda = p as f64 / proc_mtbf;
        let inst = chain_instance(10, 900.0, 90.0, lambda);
        let law = Weibull::with_mean(0.7, proc_mtbf).unwrap();
        let exp_equiv = exponential_equivalent_schedule(&inst, &law, p).unwrap();
        let greedy = work_before_failure_schedule(&inst, &law, p).unwrap();
        let sim_exp =
            simulate_under_law(&inst, &exp_equiv, law, p, 3_000, 7).unwrap().makespan.mean;
        let sim_greedy =
            simulate_under_law(&inst, &greedy, law, p, 3_000, 7).unwrap().makespan.mean;
        assert!(sim_exp > 0.0 && sim_greedy > 0.0);
        assert!(sim_greedy < sim_exp * 1.5, "greedy {sim_greedy} vs exp-equivalent {sim_exp}");
    }
}

//! Sensitivity and risk analysis on top of the chain DP.
//!
//! Once Algorithm 1 gives the optimal placement for one failure rate, the
//! natural operational questions are: *how does the optimal policy change as
//! the platform degrades?* and *what is the risk of missing a deadline even
//! under the optimal policy?* This module answers both:
//!
//! * [`lambda_sweep`] re-solves the chain DP across a λ grid and reports the
//!   optimal checkpoint count and expected makespan at each point. The sweep
//!   is batched through
//!   [`LambdaSweep`](ckpt_expectation::sweep::LambdaSweep): the chain's
//!   order validation, prefix
//!   sums and cost vectors are materialised once and only the per-rate
//!   exponentials and the DP itself are redone per grid point — no surrogate
//!   instance is cloned per rate. Each grid point's table+DP is independent
//!   of every other point, so the points are spread across worker threads in
//!   the Monte-Carlo engine's deterministic contiguous-chunk pattern (one
//!   [`ChainDpScratch`] per worker, results collected in grid order): the
//!   sweep is **bit-identical at any thread count**, and
//!   [`lambda_sweep_with_threads`] exposes the worker count;
//! * [`schedule_lambda_sweep`] evaluates one **fixed** schedule across a λ
//!   vector through the same shared precomputation (the sensitivity curve of
//!   a deployed policy, as opposed to the re-optimised curve above), with
//!   the same per-rate independence and threading
//!   ([`schedule_lambda_sweep_with_threads`]);
//! * [`checkpoint_crossover_lambda`] finds, by bisection, the failure rate at
//!   which the optimal policy starts taking more than a given number of
//!   checkpoints — the "crossover" points the experiment harness plots;
//! * [`deadline_risk`] estimates, by simulation, the probability that a
//!   schedule exceeds a deadline.

use ckpt_dag::properties;
use ckpt_expectation::sweep::log_lambda_grid;
use ckpt_simulator::SimulationScenario;

use crate::chain_dp::{
    optimal_chain_schedule, scalable_placement_on_table_with_scratch, ChainDpScratch,
};
use crate::error::ScheduleError;
use crate::evaluate::lambda_sweep_for_order;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// One row of a λ sweep.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LambdaSweepPoint {
    /// The platform failure rate of this point.
    pub lambda: f64,
    /// The optimal number of checkpoints at that rate.
    pub checkpoints: usize,
    /// The optimal expected makespan at that rate.
    pub expected_makespan: f64,
    /// The slowdown with respect to the total work.
    pub slowdown: f64,
}

/// Re-solves the chain DP on a logarithmic grid of `points` failure rates
/// between `lambda_min` and `lambda_max` (inclusive), batching the
/// λ-independent work through one
/// [`LambdaSweep`](ckpt_expectation::sweep::LambdaSweep).
///
/// # Errors
///
/// * [`ScheduleError::NotAChain`] if the instance is not a chain;
/// * [`ScheduleError::NonPositiveParameter`] for an invalid λ range or fewer
///   than two points.
pub fn lambda_sweep(
    instance: &ProblemInstance,
    lambda_min: f64,
    lambda_max: f64,
    points: usize,
) -> Result<Vec<LambdaSweepPoint>, ScheduleError> {
    lambda_sweep_with_threads(instance, lambda_min, lambda_max, points, 0)
}

/// [`lambda_sweep`] with an explicit worker-thread count (`0` = one per
/// available core). Grid points are independent (one table + one DP each),
/// so they are spread across workers in contiguous chunks — each worker
/// reuses one [`ChainDpScratch`] across its chunk — and collected in grid
/// order: the result is **bit-identical for every thread count**.
///
/// # Errors
///
/// Same as [`lambda_sweep`].
pub fn lambda_sweep_with_threads(
    instance: &ProblemInstance,
    lambda_min: f64,
    lambda_max: f64,
    points: usize,
    threads: usize,
) -> Result<Vec<LambdaSweepPoint>, ScheduleError> {
    let grid =
        log_lambda_grid(lambda_min, lambda_max, points).map_err(ScheduleError::from_expectation)?;
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let sweep = lambda_sweep_for_order(instance, &order)?;
    let total_work = instance.total_weight();

    // Each worker reuses one DP scratch arena across its whole chunk: the
    // per-rate solves reuse the same Li Chao / envelope / DP buffers
    // instead of reallocating them.
    crate::parallel::chunked_map_with(&grid, threads, ChainDpScratch::new, |scratch, _, &lambda| {
        let table = sweep.table_for(lambda).map_err(ScheduleError::from_expectation)?;
        let placement = scalable_placement_on_table_with_scratch(&table, scratch);
        Ok(LambdaSweepPoint {
            lambda,
            checkpoints: placement.checkpoint_count(),
            expected_makespan: placement.expected_makespan,
            slowdown: placement.expected_makespan / total_work,
        })
    })
    .into_iter()
    .collect()
}

/// Evaluates one **fixed** schedule across the failure rates of `lambdas`,
/// returning its expected makespan at each rate — the degradation curve of a
/// policy that is *not* re-optimised as the platform degrades, the comparison
/// baseline for [`lambda_sweep`]'s re-optimised curve.
///
/// # Errors
///
/// * [`ScheduleError::InvalidOrder`] if `schedule`'s order does not fit
///   `instance`;
/// * [`ScheduleError::NonPositiveParameter`] for a non-positive rate.
pub fn schedule_lambda_sweep(
    instance: &ProblemInstance,
    schedule: &Schedule,
    lambdas: &[f64],
) -> Result<Vec<f64>, ScheduleError> {
    schedule_lambda_sweep_with_threads(instance, schedule, lambdas, 0)
}

/// [`schedule_lambda_sweep`] with an explicit worker-thread count (`0` = one
/// per available core). Rates are evaluated independently (one
/// `O(segments)` closed-form pass each), chunked contiguously across
/// workers and collected in input order: the result is **bit-identical for
/// every thread count**.
///
/// # Errors
///
/// Same as [`schedule_lambda_sweep`].
pub fn schedule_lambda_sweep_with_threads(
    instance: &ProblemInstance,
    schedule: &Schedule,
    lambdas: &[f64],
    threads: usize,
) -> Result<Vec<f64>, ScheduleError> {
    let sweep = lambda_sweep_for_order(instance, schedule.order())?;
    let workers = crate::parallel::effective_threads(threads).min(lambdas.len()).max(1);
    if workers <= 1 {
        return sweep
            .total_costs(schedule.checkpoint_after(), lambdas)
            .map_err(ScheduleError::from_expectation);
    }

    // One contiguous rate chunk per worker, evaluated with the batched
    // `total_costs` (the per-segment extraction is shared within a chunk);
    // per-rate values are independent, so re-chunking cannot change them.
    let chunk = lambdas.len().div_ceil(workers);
    let chunks: Vec<&[f64]> = lambdas.chunks(chunk).collect();
    let flags = schedule.checkpoint_after();
    let per_chunk = crate::parallel::chunked_map_with(
        &chunks,
        workers,
        || (),
        |_, _, lambda_chunk| {
            sweep.total_costs(flags, lambda_chunk).map_err(ScheduleError::from_expectation)
        },
    );
    let mut out = Vec::with_capacity(lambdas.len());
    for values in per_chunk {
        out.extend(values?);
    }
    Ok(out)
}

/// Finds the smallest failure rate at which the optimal policy takes **more
/// than** `checkpoints` checkpoints, by bisection over `[lambda_lo, lambda_hi]`.
///
/// Returns `None` if even at `lambda_hi` the optimal policy does not exceed
/// `checkpoints` checkpoints.
///
/// # Errors
///
/// * [`ScheduleError::NotAChain`] if the instance is not a chain;
/// * [`ScheduleError::NonPositiveParameter`] for an invalid λ bracket.
pub fn checkpoint_crossover_lambda(
    instance: &ProblemInstance,
    checkpoints: usize,
    lambda_lo: f64,
    lambda_hi: f64,
) -> Result<Option<f64>, ScheduleError> {
    if !(lambda_lo.is_finite() && lambda_lo > 0.0 && lambda_hi.is_finite() && lambda_hi > lambda_lo)
    {
        return Err(ScheduleError::NonPositiveParameter {
            name: "lambda bracket",
            value: lambda_lo,
        });
    }
    let count_at = |lambda: f64| -> Result<usize, ScheduleError> {
        Ok(optimal_chain_schedule(&instance.with_lambda(lambda)?)?.schedule.checkpoint_count())
    };
    if count_at(lambda_hi)? <= checkpoints {
        return Ok(None);
    }
    if count_at(lambda_lo)? > checkpoints {
        return Ok(Some(lambda_lo));
    }
    let (mut lo, mut hi) = (lambda_lo, lambda_hi);
    for _ in 0..64 {
        let mid = (lo * hi).sqrt();
        if count_at(mid)? > checkpoints {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hi))
}

/// The estimated probability (with a 95% confidence half-width) that the
/// schedule's makespan exceeds `deadline`, by Monte-Carlo simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeadlineRisk {
    /// The deadline that was tested.
    pub deadline: f64,
    /// Estimated probability of exceeding the deadline.
    pub probability: f64,
    /// Half-width of the 95% confidence interval of the estimate.
    pub ci95_half_width: f64,
}

/// Estimates the probability that executing `schedule` takes longer than
/// `deadline`, over `trials` Monte-Carlo trials.
///
/// # Errors
///
/// Propagates segment-conversion errors (cannot occur for valid instances).
pub fn deadline_risk(
    instance: &ProblemInstance,
    schedule: &Schedule,
    deadline: f64,
    trials: usize,
    seed: u64,
) -> Result<DeadlineRisk, ScheduleError> {
    let segments = schedule.to_segments(instance).map_err(|_| ScheduleError::EmptyInstance)?;
    let outcome = SimulationScenario::exponential(instance.lambda())
        .with_downtime(instance.downtime())
        .with_trials(trials)
        .with_seed(seed)
        .run(&segments);
    let p = outcome.exceedance_probability(deadline);
    let half_width = 1.96 * (p * (1.0 - p) / trials as f64).sqrt();
    Ok(DeadlineRisk { deadline, probability: p, ci95_half_width: half_width })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::generators;

    fn chain_instance(lambda: f64) -> ProblemInstance {
        let graph = generators::uniform_chain(12, 500.0).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(50.0)
            .uniform_recovery_cost(75.0)
            .downtime(20.0)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_is_monotone_in_checkpoints_and_makespan() {
        let inst = chain_instance(1e-4);
        let sweep = lambda_sweep(&inst, 1e-7, 1e-2, 12).unwrap();
        assert_eq!(sweep.len(), 12);
        // Expected makespan grows with λ.
        assert!(sweep.windows(2).all(|w| w[1].expected_makespan >= w[0].expected_makespan - 1e-9));
        // Checkpoint count is non-decreasing in λ for uniform chains.
        assert!(sweep.windows(2).all(|w| w[1].checkpoints >= w[0].checkpoints));
        // Extremes: almost no checkpoints at 1e-7, every task checkpointed at 1e-2.
        assert_eq!(sweep.first().unwrap().checkpoints, 1);
        assert_eq!(sweep.last().unwrap().checkpoints, 12);
        assert!(sweep.iter().all(|p| p.slowdown >= 1.0));
    }

    #[test]
    fn batched_sweep_matches_per_rate_resolves() {
        let inst = chain_instance(1e-4);
        let sweep = lambda_sweep(&inst, 1e-6, 1e-3, 7).unwrap();
        for point in &sweep {
            let solo = optimal_chain_schedule(&inst.with_lambda(point.lambda).unwrap()).unwrap();
            let gap =
                (point.expected_makespan - solo.expected_makespan).abs() / solo.expected_makespan;
            assert!(gap < 1e-12, "λ {}: gap {gap}", point.lambda);
            assert_eq!(point.checkpoints, solo.schedule.checkpoint_count());
        }
    }

    #[test]
    fn fixed_schedule_sweep_is_dominated_by_reoptimised_sweep() {
        let inst = chain_instance(1e-4);
        let solution = optimal_chain_schedule(&inst).unwrap();
        let lambdas = [1e-6, 1e-5, 1e-4, 1e-3];
        let fixed = schedule_lambda_sweep(&inst, &solution.schedule, &lambdas).unwrap();
        for (i, &lambda) in lambdas.iter().enumerate() {
            let reopt = optimal_chain_schedule(&inst.with_lambda(lambda).unwrap()).unwrap();
            assert!(fixed[i] >= reopt.expected_makespan - 1e-9, "λ {lambda}");
        }
        // At the rate it was optimised for, the fixed schedule is optimal.
        let gap = (fixed[2] - solution.expected_makespan).abs() / solution.expected_makespan;
        assert!(gap < 1e-12, "gap {gap}");
    }

    #[test]
    fn parallel_sweep_is_bit_identical_at_any_thread_count() {
        // 25 points, deliberately not a multiple of any worker count, so
        // the chunked collection is exercised with ragged tails.
        let inst = chain_instance(1e-4);
        let single = lambda_sweep_with_threads(&inst, 1e-7, 1e-2, 25, 1).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let multi = lambda_sweep_with_threads(&inst, 1e-7, 1e-2, 25, threads).unwrap();
            assert_eq!(single, multi, "sweep differs at {threads} threads");
        }
        let auto = lambda_sweep(&inst, 1e-7, 1e-2, 25).unwrap();
        assert_eq!(single, auto, "default sweep differs from single-threaded");
    }

    #[test]
    fn parallel_schedule_sweep_is_bit_identical_at_any_thread_count() {
        let inst = chain_instance(1e-4);
        let solution = optimal_chain_schedule(&inst).unwrap();
        let lambdas: Vec<f64> = (0..40).map(|i| 1e-7 * 1.4f64.powi(i)).collect();
        let single =
            schedule_lambda_sweep_with_threads(&inst, &solution.schedule, &lambdas, 1).unwrap();
        for threads in [2usize, 3, 7, 64] {
            let multi =
                schedule_lambda_sweep_with_threads(&inst, &solution.schedule, &lambdas, threads)
                    .unwrap();
            assert_eq!(single, multi, "schedule sweep differs at {threads} threads");
        }
        let auto = schedule_lambda_sweep(&inst, &solution.schedule, &lambdas).unwrap();
        assert_eq!(single, auto);
        // An invalid rate anywhere in the vector surfaces as an error at any
        // thread count.
        let mut bad = lambdas.clone();
        bad[17] = -1.0;
        for threads in [1usize, 3] {
            assert!(schedule_lambda_sweep_with_threads(&inst, &solution.schedule, &bad, threads)
                .is_err());
        }
    }

    #[test]
    fn sweep_validates_inputs() {
        let inst = chain_instance(1e-4);
        assert!(lambda_sweep(&inst, 0.0, 1.0, 5).is_err());
        assert!(lambda_sweep(&inst, 1e-3, 1e-4, 5).is_err());
        assert!(lambda_sweep(&inst, 1e-5, 1e-3, 1).is_err());
    }

    #[test]
    fn crossover_is_bracketed_and_consistent() {
        let inst = chain_instance(1e-4);
        // Find where the optimum starts using more than 1 checkpoint.
        let crossover = checkpoint_crossover_lambda(&inst, 1, 1e-8, 1e-1)
            .unwrap()
            .expect("at 0.1 failures/s every task is checkpointed");
        // Just below the crossover: at most 1 checkpoint; at it: more than 1.
        let below = optimal_chain_schedule(&inst.with_lambda(crossover * 0.8).unwrap())
            .unwrap()
            .schedule
            .checkpoint_count();
        let at = optimal_chain_schedule(&inst.with_lambda(crossover).unwrap())
            .unwrap()
            .schedule
            .checkpoint_count();
        assert!(below <= 1, "below = {below}");
        assert!(at > 1, "at = {at}");
    }

    #[test]
    fn crossover_returns_none_when_never_exceeded() {
        let inst = chain_instance(1e-4);
        // The policy can never take more than 12 checkpoints on 12 tasks.
        assert!(checkpoint_crossover_lambda(&inst, 12, 1e-8, 1e-1).unwrap().is_none());
        assert!(checkpoint_crossover_lambda(&inst, 1, 1e-1, 1e-8).is_err());
    }

    #[test]
    fn deadline_risk_behaves_at_the_extremes() {
        let inst = chain_instance(1e-4);
        let solution = optimal_chain_schedule(&inst).unwrap();
        let generous = deadline_risk(&inst, &solution.schedule, 1e9, 2_000, 1).unwrap();
        assert_eq!(generous.probability, 0.0);
        let impossible = deadline_risk(&inst, &solution.schedule, 1.0, 2_000, 1).unwrap();
        assert_eq!(impossible.probability, 1.0);
        let moderate =
            deadline_risk(&inst, &solution.schedule, solution.expected_makespan, 2_000, 1).unwrap();
        assert!(moderate.probability > 0.05 && moderate.probability < 0.95);
        assert!(moderate.ci95_half_width > 0.0);
    }
}

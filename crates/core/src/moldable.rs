//! Moldable tasks (paper §6, second extension).
//!
//! A *moldable* task can run on any number of processors; its execution time
//! follows one of the §3 workload models `W(p)`, its checkpoint/recovery cost
//! one of the overhead models `C(p)`, and the platform failure rate grows as
//! `λ(p) = p·λ_proc`. Choosing the processor allocation then becomes part of
//! the scheduling problem. This module implements the building block the paper
//! points to: for each task (or for a whole chain with a common allocation),
//! evaluate Proposition 1 under every candidate allocation and keep the best.

use ckpt_expectation::exact::{expected_time, ExecutionParams};
use ckpt_expectation::overhead::ScalingScenario;

use crate::error::{ensure_positive, ScheduleError};

/// A moldable task: a total sequential load that can be spread over `p`
/// processors according to the scenario's workload model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MoldableTask {
    /// Total sequential work of the task (seconds on one processor).
    pub sequential_work: f64,
}

impl MoldableTask {
    /// Creates a moldable task with the given total sequential work.
    ///
    /// # Errors
    ///
    /// Returns an error if `sequential_work ≤ 0`.
    pub fn new(sequential_work: f64) -> Result<Self, ScheduleError> {
        Ok(MoldableTask { sequential_work: ensure_positive("sequential_work", sequential_work)? })
    }
}

/// The best allocation found for a task or a chain.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Allocation {
    /// Number of processors to use.
    pub processors: u32,
    /// Expected execution time (work + checkpoint, failures included) with
    /// that allocation.
    pub expected_time: f64,
}

/// Expected time (Proposition 1) of executing one moldable task followed by
/// its checkpoint on `p` processors under `scenario`.
///
/// # Errors
///
/// Returns an error if `p == 0` or the task parameters are invalid.
pub fn expected_time_on(
    task: MoldableTask,
    scenario: &ScalingScenario,
    p: u32,
) -> Result<f64, ScheduleError> {
    let params: ExecutionParams = scenario.instantiate(task.sequential_work, p).map_err(|_| {
        ScheduleError::NonPositiveParameter { name: "processors", value: f64::from(p) }
    })?;
    Ok(expected_time(&params))
}

/// Finds the allocation `p ∈ {1, …, p_max}` minimising the expected time of a
/// single moldable task (checkpointed after completion).
///
/// All processor counts are evaluated when `p_max ≤ 1024`; beyond that the
/// search restricts itself to powers of two plus `p_max` itself, which is the
/// standard moldable-task practice and keeps the sweep `O(log p_max)`.
///
/// # Errors
///
/// Returns an error if `p_max == 0`.
pub fn best_allocation(
    task: MoldableTask,
    scenario: &ScalingScenario,
    p_max: u32,
) -> Result<Allocation, ScheduleError> {
    if p_max == 0 {
        return Err(ScheduleError::NonPositiveParameter { name: "p_max", value: 0.0 });
    }
    let candidates: Vec<u32> = if p_max <= 1024 {
        (1..=p_max).collect()
    } else {
        let mut c: Vec<u32> = std::iter::successors(Some(1u32), |&p| p.checked_mul(2))
            .take_while(|&p| p <= p_max)
            .collect();
        if *c.last().unwrap() != p_max {
            c.push(p_max);
        }
        c
    };
    let mut best: Option<Allocation> = None;
    for p in candidates {
        let t = expected_time_on(task, scenario, p)?;
        let better = best.as_ref().is_none_or(|b| t < b.expected_time);
        if better {
            best = Some(Allocation { processors: p, expected_time: t });
        }
    }
    Ok(best.expect("at least one candidate allocation"))
}

/// The result of allocating a chain of moldable tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct MoldableChainPlan {
    /// The chosen per-task allocations, in chain order.
    pub allocations: Vec<Allocation>,
    /// Total expected makespan (sum of per-task expected times, each task
    /// being checkpointed — the fully-protected execution).
    pub expected_makespan: f64,
}

/// Allocates processors to each task of a chain of moldable tasks
/// independently (each task is checkpointed after completion, so per-task
/// optimisation is globally optimal for this policy).
///
/// # Errors
///
/// Returns an error if `tasks` is empty or `p_max == 0`.
pub fn plan_moldable_chain(
    tasks: &[MoldableTask],
    scenario: &ScalingScenario,
    p_max: u32,
) -> Result<MoldableChainPlan, ScheduleError> {
    if tasks.is_empty() {
        return Err(ScheduleError::EmptyInstance);
    }
    let mut allocations = Vec::with_capacity(tasks.len());
    let mut total = 0.0;
    for &task in tasks {
        let alloc = best_allocation(task, scenario, p_max)?;
        total += alloc.expected_time;
        allocations.push(alloc);
    }
    Ok(MoldableChainPlan { allocations, expected_makespan: total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_expectation::overhead::OverheadModel;
    use ckpt_expectation::workload::WorkloadModel;

    fn scenario(workload: WorkloadModel, overhead: OverheadModel) -> ScalingScenario {
        ScalingScenario {
            lambda_proc: 1.0 / (5.0 * 365.0 * 86_400.0), // five-year per-processor MTBF
            base_checkpoint: 600.0,
            base_recovery: 600.0,
            downtime: 60.0,
            workload,
            overhead,
        }
    }

    #[test]
    fn task_validation() {
        assert!(MoldableTask::new(10.0).is_ok());
        assert!(MoldableTask::new(0.0).is_err());
        assert!(MoldableTask::new(f64::NAN).is_err());
    }

    #[test]
    fn perfectly_parallel_proportional_overhead_wants_many_processors() {
        // With perfect scaling and proportional checkpoint cost, more
        // processors always help until failures dominate; for a moderate task
        // the best allocation should be the maximum allowed.
        let s = scenario(WorkloadModel::PerfectlyParallel, OverheadModel::Proportional);
        let task = MoldableTask::new(1e6).unwrap();
        let best = best_allocation(task, &s, 256).unwrap();
        assert_eq!(best.processors, 256);
    }

    #[test]
    fn amdahl_with_constant_overhead_saturates() {
        // A 10% sequential fraction and constant checkpoint overhead: beyond
        // some point more processors only add failures; the best allocation is
        // strictly below the maximum.
        let s = scenario(WorkloadModel::Amdahl { gamma: 0.1 }, OverheadModel::Constant);
        let task = MoldableTask::new(1e6).unwrap();
        let best = best_allocation(task, &s, 1024).unwrap();
        assert!(best.processors < 1024, "chose {}", best.processors);
        // And it beats both the sequential and the fully parallel extremes.
        let t1 = expected_time_on(task, &s, 1).unwrap();
        let tmax = expected_time_on(task, &s, 1024).unwrap();
        assert!(best.expected_time <= t1);
        assert!(best.expected_time <= tmax);
    }

    #[test]
    fn best_allocation_is_a_true_minimum_over_candidates() {
        let s = scenario(WorkloadModel::Amdahl { gamma: 0.02 }, OverheadModel::Constant);
        let task = MoldableTask::new(5e5).unwrap();
        let best = best_allocation(task, &s, 64).unwrap();
        for p in 1..=64u32 {
            assert!(best.expected_time <= expected_time_on(task, &s, p).unwrap() + 1e-9);
        }
    }

    #[test]
    fn large_p_max_uses_power_of_two_sweep() {
        let s = scenario(WorkloadModel::PerfectlyParallel, OverheadModel::Proportional);
        let task = MoldableTask::new(1e8).unwrap();
        let best = best_allocation(task, &s, 1 << 20).unwrap();
        assert!(best.processors.is_power_of_two() || best.processors == (1 << 20));
        assert!(best.processors > 1024);
    }

    #[test]
    fn p_max_zero_is_rejected() {
        let s = scenario(WorkloadModel::PerfectlyParallel, OverheadModel::Constant);
        let task = MoldableTask::new(100.0).unwrap();
        assert!(best_allocation(task, &s, 0).is_err());
    }

    #[test]
    fn chain_plan_sums_per_task_times() {
        let s = scenario(WorkloadModel::Amdahl { gamma: 0.05 }, OverheadModel::Proportional);
        let tasks = vec![
            MoldableTask::new(2e5).unwrap(),
            MoldableTask::new(8e5).unwrap(),
            MoldableTask::new(4e5).unwrap(),
        ];
        let plan = plan_moldable_chain(&tasks, &s, 128).unwrap();
        assert_eq!(plan.allocations.len(), 3);
        let sum: f64 = plan.allocations.iter().map(|a| a.expected_time).sum();
        assert!((plan.expected_makespan - sum).abs() < 1e-9);
        assert!(plan_moldable_chain(&[], &s, 128).is_err());
    }

    #[test]
    fn perfectly_parallel_work_gets_at_least_as_many_processors_as_amdahl() {
        // The sequential fraction of Amdahl's law caps the useful parallelism,
        // so for the same task and overhead the Amdahl allocation never
        // exceeds the perfectly-parallel one.
        let task = MoldableTask::new(1e6).unwrap();
        let parallel = best_allocation(
            task,
            &scenario(WorkloadModel::PerfectlyParallel, OverheadModel::Constant),
            512,
        )
        .unwrap();
        let amdahl = best_allocation(
            task,
            &scenario(WorkloadModel::Amdahl { gamma: 0.3 }, OverheadModel::Constant),
            512,
        )
        .unwrap();
        assert!(parallel.processors >= amdahl.processors);
    }
}

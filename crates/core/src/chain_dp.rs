//! Algorithm 1: the `O(n²)` dynamic program for linear chains (Proposition 3).
//!
//! For a chain `T1 → T2 → … → Tn`, the execution order is forced and only the
//! checkpoint positions remain to be chosen. Writing `E(x)` for the optimal
//! expected time to execute tasks `T_x … T_n` given that a checkpoint (or the
//! initial state) protects the start of `T_x`, the paper's recurrence is
//!
//! ```text
//! E(x) = min_{x ≤ j ≤ n} [ T(w_x + … + w_j, C_j, D, R_{x−1}, λ) + E(j+1) ]
//! E(n+1) = 0
//! ```
//!
//! where `T(·)` is the Proposition 1 closed form. Two implementations are
//! provided: a faithful memoised-recursive transcription of the paper's
//! `DPMAKESPAN` pseudo-code, and an equivalent bottom-up version (the form a
//! production scheduler would use). Both are `O(n²)` thanks to prefix sums and
//! memoisation, and they are cross-checked against each other and against
//! exhaustive search in the tests.

use ckpt_dag::properties;
use ckpt_expectation::exact::{expected_time, ExecutionParams};

use crate::error::ScheduleError;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// The result of the chain dynamic program.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSolution {
    /// The optimal schedule (chain order, optimal checkpoint positions).
    pub schedule: Schedule,
    /// The optimal expected makespan (the DP value).
    pub expected_makespan: f64,
    /// The positions (indices in the chain order) after which a checkpoint is
    /// taken, in increasing order. Always ends with `n − 1`.
    pub checkpoint_positions: Vec<usize>,
}

/// Computes the optimal checkpoint placement for a linear-chain instance,
/// bottom-up, in `O(n²)` time and `O(n)` space.
///
/// # Errors
///
/// * [`ScheduleError::NotAChain`] if the instance graph is not a linear chain;
/// * propagated validation errors (cannot occur for instances built through
///   [`ProblemInstance::builder`]).
pub fn optimal_chain_schedule(instance: &ProblemInstance) -> Result<ChainSolution, ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let n = order.len();
    let lambda = instance.lambda();
    let downtime = instance.downtime();

    // Prefix sums of the chain weights: prefix[k] = w_0 + … + w_{k-1}.
    let mut prefix = vec![0.0f64; n + 1];
    for (k, &task) in order.iter().enumerate() {
        prefix[k + 1] = prefix[k] + instance.weight(task);
    }
    // Recovery protecting a segment that starts at position x.
    let recovery_before = |x: usize| -> f64 {
        if x == 0 {
            instance.initial_recovery()
        } else {
            instance.recovery_cost(order[x - 1])
        }
    };

    // value[x] = optimal expected time for positions x..n ; choice[x] = the
    // position of the first checkpoint in an optimal solution for x..n.
    let mut value = vec![0.0f64; n + 1];
    let mut choice = vec![0usize; n];
    for x in (0..n).rev() {
        let recovery = recovery_before(x);
        let mut best = f64::INFINITY;
        let mut best_j = n - 1;
        for j in x..n {
            let work = prefix[j + 1] - prefix[x];
            let params = ExecutionParams::new(
                work,
                instance.checkpoint_cost(order[j]),
                downtime,
                recovery,
                lambda,
            )
            .expect("instance parameters were validated at construction");
            let cost = expected_time(&params) + value[j + 1];
            if cost < best {
                best = cost;
                best_j = j;
            }
        }
        value[x] = best;
        choice[x] = best_j;
    }

    // Reconstruct the checkpoint positions.
    let mut checkpoint_positions = Vec::new();
    let mut x = 0usize;
    while x < n {
        let j = choice[x];
        checkpoint_positions.push(j);
        x = j + 1;
    }
    let mut checkpoint_after = vec![false; n];
    for &j in &checkpoint_positions {
        checkpoint_after[j] = true;
    }
    let schedule = Schedule::new(instance, order, checkpoint_after)?;
    Ok(ChainSolution { schedule, expected_makespan: value[0], checkpoint_positions })
}

/// Faithful transcription of the paper's recursive `DPMAKESPAN(x, n)`
/// (Algorithm 1), with memoisation. Returns the same optimum as
/// [`optimal_chain_schedule`]; exposed separately so tests and benches can
/// compare the two formulations.
///
/// # Errors
///
/// Same as [`optimal_chain_schedule`].
pub fn optimal_chain_value_memoized(instance: &ProblemInstance) -> Result<f64, ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let n = order.len();
    let lambda = instance.lambda();
    let downtime = instance.downtime();
    let mut prefix = vec![0.0f64; n + 1];
    for (k, &task) in order.iter().enumerate() {
        prefix[k + 1] = prefix[k] + instance.weight(task);
    }
    let mut memo: Vec<Option<f64>> = vec![None; n + 1];

    // Proposition 1 applied to positions x..=j (0-based), recovering with the
    // checkpoint of position x-1 (or the initial state).
    struct Ctx<'a> {
        instance: &'a ProblemInstance,
        order: &'a [ckpt_dag::TaskId],
        prefix: &'a [f64],
        lambda: f64,
        downtime: f64,
    }
    impl Ctx<'_> {
        fn segment(&self, x: usize, j: usize) -> f64 {
            let recovery = if x == 0 {
                self.instance.initial_recovery()
            } else {
                self.instance.recovery_cost(self.order[x - 1])
            };
            let work = self.prefix[j + 1] - self.prefix[x];
            let params = ExecutionParams::new(
                work,
                self.instance.checkpoint_cost(self.order[j]),
                self.downtime,
                recovery,
                self.lambda,
            )
            .expect("instance parameters were validated at construction");
            expected_time(&params)
        }
    }
    fn dp(x: usize, n: usize, ctx: &Ctx<'_>, memo: &mut Vec<Option<f64>>) -> f64 {
        if x == n {
            return 0.0;
        }
        if let Some(v) = memo[x] {
            return v;
        }
        // The paper's `best` initialisation: execute everything remaining and
        // checkpoint only after the last task.
        let mut best = ctx.segment(x, n - 1);
        // Try checkpointing first after position j, for j < n - 1.
        for j in x..n - 1 {
            let cur = ctx.segment(x, j) + dp(j + 1, n, ctx, memo);
            if cur < best {
                best = cur;
            }
        }
        memo[x] = Some(best);
        best
    }

    let ctx = Ctx { instance, order: &order, prefix: &prefix, lambda, downtime };
    Ok(dp(0, n, &ctx, &mut memo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::expected_makespan;
    use ckpt_dag::generators;
    use ckpt_failure::{Pcg64, RandomSource};
    use proptest::prelude::*;

    fn chain_instance(weights: &[f64], c: f64, r: f64, d: f64, lambda: f64) -> ProblemInstance {
        let graph = generators::chain(weights).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(c)
            .uniform_recovery_cost(r)
            .downtime(d)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    /// Exhaustive optimum over all checkpoint subsets (final forced) — the
    /// reference the DP is checked against.
    fn exhaustive_optimum(instance: &ProblemInstance) -> f64 {
        let order = properties::as_chain(instance.graph()).unwrap();
        let n = order.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << (n - 1)) {
            let mut checkpoints = vec![false; n];
            checkpoints[n - 1] = true;
            for (pos, flag) in checkpoints.iter_mut().enumerate().take(n - 1) {
                *flag = mask & (1 << pos) != 0;
            }
            let schedule = Schedule::new(instance, order.clone(), checkpoints).unwrap();
            best = best.min(expected_makespan(instance, &schedule).unwrap());
        }
        best
    }

    #[test]
    fn rejects_non_chain_graphs() {
        let graph = generators::independent(&[1.0, 2.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        assert!(matches!(optimal_chain_schedule(&inst), Err(ScheduleError::NotAChain)));
        assert!(matches!(optimal_chain_value_memoized(&inst), Err(ScheduleError::NotAChain)));
    }

    #[test]
    fn single_task_chain_checkpoints_after_it() {
        let inst = chain_instance(&[500.0], 10.0, 20.0, 5.0, 1e-3);
        let sol = optimal_chain_schedule(&inst).unwrap();
        assert_eq!(sol.checkpoint_positions, vec![0]);
        let expected = expected_time(
            &ExecutionParams::new(500.0, 10.0, 5.0, 0.0, 1e-3).unwrap(),
        );
        assert!((sol.expected_makespan - expected).abs() < 1e-9);
    }

    #[test]
    fn dp_value_matches_schedule_evaluation() {
        let inst = chain_instance(&[400.0, 100.0, 900.0, 250.0, 650.0, 300.0], 60.0, 60.0, 30.0, 1e-4);
        let sol = optimal_chain_schedule(&inst).unwrap();
        let eval = expected_makespan(&inst, &sol.schedule).unwrap();
        assert!((sol.expected_makespan - eval).abs() < 1e-9);
        // The schedule ends with the mandatory final checkpoint.
        assert_eq!(*sol.checkpoint_positions.last().unwrap(), 5);
    }

    #[test]
    fn dp_matches_exhaustive_search_on_small_chains() {
        let cases: Vec<ProblemInstance> = vec![
            chain_instance(&[100.0, 200.0, 300.0, 50.0, 400.0], 30.0, 30.0, 0.0, 1e-3),
            chain_instance(&[10.0, 10.0, 10.0, 10.0, 10.0, 10.0], 5.0, 5.0, 1.0, 1e-2),
            chain_instance(&[3600.0, 1800.0, 5400.0, 900.0], 600.0, 300.0, 60.0, 1e-5),
            chain_instance(&[50.0, 50.0], 1.0, 1.0, 0.0, 1e-1),
        ];
        for inst in cases {
            let sol = optimal_chain_schedule(&inst).unwrap();
            let brute = exhaustive_optimum(&inst);
            assert!(
                (sol.expected_makespan - brute).abs() / brute < 1e-10,
                "DP {} vs exhaustive {brute}",
                sol.expected_makespan
            );
        }
    }

    #[test]
    fn memoized_recursion_matches_bottom_up() {
        let inst = chain_instance(
            &[400.0, 100.0, 900.0, 250.0, 650.0, 300.0, 120.0, 780.0],
            45.0,
            90.0,
            15.0,
            2e-4,
        );
        let bottom_up = optimal_chain_schedule(&inst).unwrap().expected_makespan;
        let memoized = optimal_chain_value_memoized(&inst).unwrap();
        assert!((bottom_up - memoized).abs() / bottom_up < 1e-12);
    }

    #[test]
    fn heterogeneous_costs_are_honoured() {
        // Make checkpointing after task 1 free and after task 0 exorbitant:
        // the optimal solution must checkpoint after task 1, not after task 0.
        let graph = generators::chain(&[1000.0, 1000.0, 1000.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .checkpoint_costs(vec![10_000.0, 0.0, 10.0])
            .recovery_costs(vec![10.0, 10.0, 10.0])
            .platform_lambda(1.0 / 2_000.0)
            .build()
            .unwrap();
        let sol = optimal_chain_schedule(&inst).unwrap();
        assert!(sol.checkpoint_positions.contains(&1));
        assert!(!sol.checkpoint_positions.contains(&0));
    }

    #[test]
    fn rare_failures_lead_to_few_checkpoints() {
        let inst = chain_instance(&[100.0; 10], 50.0, 50.0, 0.0, 1e-9);
        let sol = optimal_chain_schedule(&inst).unwrap();
        // With a ten-billion-second MTBF, intermediate checkpoints are pure
        // overhead: only the final mandatory checkpoint remains.
        assert_eq!(sol.checkpoint_positions, vec![9]);
    }

    #[test]
    fn frequent_failures_lead_to_many_checkpoints() {
        let inst = chain_instance(&[100.0; 10], 1.0, 1.0, 0.0, 1.0 / 50.0);
        let sol = optimal_chain_schedule(&inst).unwrap();
        // Failures every 50 s on average, tasks of 100 s with cheap
        // checkpoints: checkpoint after every task.
        assert_eq!(sol.checkpoint_positions.len(), 10);
    }

    #[test]
    fn dp_beats_or_ties_standard_baselines() {
        let inst = chain_instance(
            &[300.0, 800.0, 150.0, 950.0, 420.0, 610.0, 75.0, 340.0],
            45.0,
            60.0,
            10.0,
            1.0 / 3_000.0,
        );
        let sol = optimal_chain_schedule(&inst).unwrap();
        let order = properties::as_chain(inst.graph()).unwrap();
        let all = Schedule::checkpoint_everywhere(&inst, order.clone()).unwrap();
        let last = Schedule::checkpoint_final_only(&inst, order).unwrap();
        assert!(sol.expected_makespan <= expected_makespan(&inst, &all).unwrap() + 1e-9);
        assert!(sol.expected_makespan <= expected_makespan(&inst, &last).unwrap() + 1e-9);
    }

    #[test]
    fn dp_scales_to_large_chains() {
        // A 1 000-task chain must solve quickly and produce a valid schedule.
        let weights: Vec<f64> = (0..1000).map(|i| 50.0 + (i % 17) as f64 * 10.0).collect();
        let inst = chain_instance(&weights, 30.0, 30.0, 5.0, 1e-4);
        let sol = optimal_chain_schedule(&inst).unwrap();
        assert_eq!(sol.schedule.len(), 1000);
        assert!(sol.expected_makespan > inst.total_weight());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_dp_is_never_beaten_by_random_schedules(
            seed in any::<u64>(),
            n in 2usize..9,
            lambda_exp in -5.0f64..-2.0,
        ) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let weights: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 990.0).collect();
            let lambda = 10f64.powf(lambda_exp);
            let inst = chain_instance(&weights, 20.0, 40.0, 5.0, lambda);
            let sol = optimal_chain_schedule(&inst).unwrap();
            let order = properties::as_chain(inst.graph()).unwrap();
            // Compare against 20 random checkpoint subsets.
            for _ in 0..20 {
                let mut checkpoints: Vec<bool> = (0..n).map(|_| rng.next_bool(0.5)).collect();
                checkpoints[n - 1] = true;
                let schedule = Schedule::new(&inst, order.clone(), checkpoints).unwrap();
                let value = expected_makespan(&inst, &schedule).unwrap();
                prop_assert!(sol.expected_makespan <= value + 1e-9);
            }
        }
    }
}

//! Algorithm 1: the `O(n²)` dynamic program for linear chains (Proposition 3),
//! plus two faster formulations.
//!
//! For a chain `T1 → T2 → … → Tn`, the execution order is forced and only the
//! checkpoint positions remain to be chosen. Writing `E(x)` for the optimal
//! expected time to execute tasks `T_x … T_n` given that a checkpoint (or the
//! initial state) protects the start of `T_x`, the paper's recurrence is
//!
//! ```text
//! E(x) = min_{x ≤ j ≤ n} [ T(w_x + … + w_j, C_j, D, R_{x−1}, λ) + E(j+1) ]
//! E(n+1) = 0
//! ```
//!
//! where `T(·)` is the Proposition 1 closed form. Five implementations are
//! provided:
//!
//! * [`optimal_chain_schedule`] — the production fast path: `O(n²)` bottom-up,
//!   but every Proposition-1 evaluation goes through a precomputed
//!   [`SegmentCostTable`] (no `exp` in the inner loop) and the inner loop is
//!   pruned with the table's monotone segment lower bound, which for uniform
//!   checkpoint costs cuts the loop the moment the segment term alone exceeds
//!   the incumbent;
//! * [`optimal_chain_schedule_divide_conquer`] — an `O(n log n)` solver. For a
//!   fixed `x` the candidate costs decompose as
//!   `slope(j)·t_x + E(j+1) − coeff(x)`: each candidate `j` is a **line** in
//!   the query point `t_x = e^{λR_{x−1}}(1/λ+D)e^{−λ·prefix[x]}`. Minimising
//!   over candidates is a lower-envelope query, answered by a Li Chao tree —
//!   a divide-and-conquer structure over the query domain — in `O(log n)` per
//!   insert/query. This also explains the classical monotonicity of
//!   `choice[x]`: with uniform costs the slopes are sorted and the query
//!   points monotone, so the envelope is swept in one direction;
//! * [`optimal_chain_schedule_blocked`] — the `n ≫ 10⁵` scaling path: the
//!   same line decomposition, but organised as a blocked divide and conquer
//!   over **index space**. Cache-sized trailing blocks are solved with a
//!   block-local Li Chao sweep (the tree spans one block's query points, not
//!   all `n`); cross-block candidates are batched, each solved suffix range
//!   contributing its lines to the whole prefix range's queries through one
//!   sequential sorted-lines/sorted-queries envelope sweep. Every structure
//!   therefore spans one contiguous range of the order at a time (bounded
//!   working set, streaming-friendly access to the table's arrays) instead of
//!   one global tree over all `n` query points;
//! * [`optimal_chain_schedule_reference`] — the naive transcription that calls
//!   the Proposition 1 closed form (two `exp`s) in every DP cell; kept as the
//!   correctness reference and benchmark baseline;
//! * [`optimal_chain_value_memoized`] — a faithful memoised-recursive
//!   transcription of the paper's `DPMAKESPAN` pseudo-code.
//!
//! The recurrence itself is order-agnostic: it only needs the segment costs
//! of *some* fixed execution order. [`optimal_placement_on_table`] (the
//! pruned quadratic core) and [`scalable_placement_on_table`] (which
//! dispatches to the blocked envelope core above a size threshold) expose
//! that table level directly, and are what `dag_schedule` (per
//! linearisation, general §6 cost models), `general_failures` (surrogate-rate
//! planning) and `analysis` (λ sweeps) run after building their own
//! [`SegmentCostTable`]s.
//!
//! All formulations are cross-checked against each other and against
//! exhaustive search in the tests and property tests below.

use ckpt_dag::{properties, TaskId};
use ckpt_expectation::exact::{expected_time, ExecutionParams};
use ckpt_expectation::segment_cost::SegmentCostTable;
use ckpt_expectation::storage::{LevelledCostTable, StorageLevels};

use crate::error::ScheduleError;
use crate::evaluate::{levelled_cost_table, segment_cost_table};
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::solver_stats;

/// The result of the chain dynamic program.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSolution {
    /// The optimal schedule (chain order, optimal checkpoint positions).
    pub schedule: Schedule,
    /// The optimal expected makespan (the DP value).
    pub expected_makespan: f64,
    /// The positions (indices in the chain order) after which a checkpoint is
    /// taken, in increasing order. Always ends with `n − 1`.
    pub checkpoint_positions: Vec<usize>,
}

/// Resolves the chain order of `instance` and builds its segment-cost table.
fn chain_table(
    instance: &ProblemInstance,
) -> Result<(Vec<TaskId>, SegmentCostTable), ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let table = segment_cost_table(instance, &order)?;
    Ok((order, table))
}

/// A checkpoint placement computed directly on a [`SegmentCostTable`],
/// without reference to the instance the table came from.
///
/// This is what the table-level solvers ([`optimal_placement_on_table`])
/// return: callers that own the execution order (a chain, a DAG
/// linearisation, a λ-swept surrogate) turn it into a [`Schedule`]
/// themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct TablePlacement {
    /// The optimal expected makespan over the table's order (the DP value).
    pub expected_makespan: f64,
    /// The positions after which a checkpoint is taken, in increasing order.
    /// Always ends with the table's last position (the mandatory final
    /// checkpoint).
    pub checkpoint_positions: Vec<usize>,
}

impl TablePlacement {
    /// The placement as per-position booleans (`result[j]` is `true` iff a
    /// checkpoint is taken right after position `j`), the form
    /// [`Schedule::new`] and [`SegmentCostTable::total_cost`] consume.
    pub fn checkpoint_after(&self) -> Vec<bool> {
        let n = self.checkpoint_positions.last().map_or(0, |&last| last + 1);
        let mut flags = vec![false; n];
        for &j in &self.checkpoint_positions {
            flags[j] = true;
        }
        flags
    }

    /// The number of checkpoints taken (the final mandatory one included).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoint_positions.len()
    }
}

/// Walks a `choice[x]` table (first checkpoint position of an optimal
/// solution for suffix `x..n`) into the increasing checkpoint positions.
fn positions_from_choice(choice: &[usize]) -> Vec<usize> {
    let n = choice.len();
    let mut positions = Vec::new();
    let mut x = 0usize;
    while x < n {
        let j = choice[x];
        positions.push(j);
        x = j + 1;
    }
    positions
}

/// Turns checkpoint positions into a [`ChainSolution`] over `order`.
fn solution_from_positions(
    instance: &ProblemInstance,
    order: Vec<TaskId>,
    checkpoint_positions: Vec<usize>,
    expected_makespan: f64,
) -> Result<ChainSolution, ScheduleError> {
    let mut checkpoint_after = vec![false; order.len()];
    for &j in &checkpoint_positions {
        checkpoint_after[j] = true;
    }
    let schedule = Schedule::new(instance, order, checkpoint_after)?;
    Ok(ChainSolution { schedule, expected_makespan, checkpoint_positions })
}

/// The pruned Algorithm 1 inner recurrence for positions `x < below`, given
/// final values for `value[below..]`: `value[x]` is the optimal expected
/// time for positions `x..n`, `choice[x]` the first checkpoint position of
/// an optimal solution for that suffix. `value` must hold `n + 1` entries
/// with `value[n] = 0`.
fn pruned_dp_range(
    table: &SegmentCostTable,
    value: &mut [f64],
    choice: &mut [usize],
    below: usize,
) {
    pruned_dp_span(table, value, choice, 0, below);
}

/// The pruned Algorithm 1 inner recurrence restricted to positions
/// `from ≤ x < below`, given final values for `value[below..]`. The
/// recurrence for `x` never reads positions `< x`, so any contiguous span can
/// be solved independently of the prefix before it — which is what both the
/// order search ([`ResumableDp::try_prefix`], `from = 0`) and the online
/// re-planning policies ([`ResumableDp::solve_suffix`], `below = n`) exploit.
fn pruned_dp_span(
    table: &SegmentCostTable,
    value: &mut [f64],
    choice: &mut [usize],
    from: usize,
    below: usize,
) {
    let n = table.len();
    debug_assert_eq!(value.len(), n + 1);
    debug_assert_eq!(choice.len(), n);
    debug_assert!(from <= below && below <= n);
    // Telemetry is accumulated in locals (register-resident) and flushed
    // with one relaxed add per span, keeping the inner loop untouched.
    let mut candidates = 0u64;
    let mut prune_breaks = 0u64;
    for x in (from..below).rev() {
        let mut best = f64::INFINITY;
        let mut best_j = n - 1;
        for j in x..n {
            // The bound is valid for every j′ ≥ j and non-decreasing in j:
            // once it clears the incumbent, no later split can win.
            if table.segment_lower_bound(x, j) > best {
                prune_breaks += 1;
                break;
            }
            candidates += 1;
            let cost = table.cost(x, j) + value[j + 1];
            if cost < best {
                best = cost;
                best_j = j;
            }
        }
        value[x] = best;
        choice[x] = best_j;
    }
    solver_stats::DP_POSITIONS.add((below - from) as u64);
    solver_stats::DP_CANDIDATES.add(candidates);
    solver_stats::DP_PRUNE_BREAKS.add(prune_breaks);
}

/// The pruned bottom-up Algorithm 1 recurrence, on a prebuilt table.
fn pruned_dp(table: &SegmentCostTable) -> (Vec<f64>, Vec<usize>) {
    let n = table.len();
    let mut value = vec![0.0f64; n + 1];
    let mut choice = vec![0usize; n];
    pruned_dp_range(table, &mut value, &mut choice, n);
    (value, choice)
}

/// Reusable state of the pruned Algorithm 1 recurrence that supports
/// **resuming after a prefix-local change** of the table.
///
/// The recurrence runs back to front: `value[x]` depends only on table
/// entries at positions `≥ x`. So when a new table differs from the last
/// solved one **only at positions `< first_changed_suffix`** — exactly what a
/// precedence-preserving order move inside a window produces (see
/// [`crate::order_search`]) — the committed values of the unchanged suffix
/// can be reused and only the prefix needs recomputation
/// ([`try_prefix`](ResumableDp::try_prefix)). Trial results are kept
/// separate from the committed state so a search can evaluate a candidate
/// and discard it without re-solving
/// ([`commit_trial`](ResumableDp::commit_trial)).
///
/// # Example
///
/// ```
/// use ckpt_core::chain_dp::ResumableDp;
/// use ckpt_expectation::segment_cost::SegmentCostTable;
///
/// let weights = [400.0, 100.0, 900.0, 250.0];
/// let base = SegmentCostTable::new(1e-4, 30.0, &weights, &[60.0; 4], &[15.0; 4])?;
/// // A table whose data differs from `base` only at positions < 2.
/// let changed = SegmentCostTable::new(1e-4, 30.0, &[100.0, 400.0, 900.0, 250.0],
///     &[10.0, 60.0, 60.0, 60.0], &[15.0; 4])?;
///
/// let mut dp = ResumableDp::new();
/// dp.solve(&base);
/// let resumed = dp.try_prefix(&changed, 2);
/// // The resumed value matches a from-scratch solve of the changed table.
/// let mut fresh = ResumableDp::new();
/// assert_eq!(resumed, fresh.solve(&changed));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResumableDp {
    /// Committed `value[x]` (optimal expected time for positions `x..n`);
    /// `len + 1` entries, `value[len] = 0`.
    value: Vec<f64>,
    choice: Vec<usize>,
    trial_value: Vec<f64>,
    trial_choice: Vec<usize>,
    /// Whether the trial buffers hold an uncommitted `try_prefix` result.
    trial_pending: bool,
    len: usize,
}

impl ResumableDp {
    /// An empty state; [`solve`](ResumableDp::solve) sizes it to its table.
    pub fn new() -> Self {
        ResumableDp::default()
    }

    /// Solves `table` from scratch and commits the result. Returns the
    /// optimal expected makespan (the DP value).
    pub fn solve(&mut self, table: &SegmentCostTable) -> f64 {
        let n = table.len();
        self.len = n;
        self.value.clear();
        self.value.resize(n + 1, 0.0);
        self.choice.clear();
        self.choice.resize(n, 0);
        solver_stats::FULL_SOLVES.add(1);
        pruned_dp_range(table, &mut self.value, &mut self.choice, n);
        self.trial_pending = false;
        self.value[0]
    }

    /// Evaluates `table` assuming its positional data at positions
    /// `≥ first_unchanged` is identical to the last committed solve: the
    /// committed suffix values are reused and only `x < first_unchanged` is
    /// recomputed, into a **trial** buffer. Returns the candidate's optimal
    /// expected makespan; the committed state is untouched until
    /// [`commit_trial`](ResumableDp::commit_trial).
    ///
    /// # Panics
    ///
    /// Panics if no solve was committed or `table` has a different length.
    pub fn try_prefix(&mut self, table: &SegmentCostTable, first_unchanged: usize) -> f64 {
        let n = self.len;
        assert!(n > 0, "try_prefix before the first solve");
        assert_eq!(table.len(), n, "table length changed between solves");
        let below = first_unchanged.min(n);
        self.trial_value.clear();
        self.trial_value.extend_from_slice(&self.value);
        self.trial_choice.clear();
        self.trial_choice.extend_from_slice(&self.choice);
        solver_stats::PREFIX_TRIALS.add(1);
        solver_stats::SUFFIX_REUSED_POSITIONS.add((n - below) as u64);
        pruned_dp_range(table, &mut self.trial_value, &mut self.trial_choice, below);
        self.trial_pending = true;
        self.trial_value[0]
    }

    /// Commits the last [`try_prefix`](ResumableDp::try_prefix) trial as the
    /// new state (O(1): the buffers are swapped).
    ///
    /// # Panics
    ///
    /// Panics if there is no uncommitted trial (no `try_prefix` since the
    /// last `solve`/`commit_trial`).
    pub fn commit_trial(&mut self) {
        assert!(self.trial_pending, "no trial to commit");
        self.trial_pending = false;
        std::mem::swap(&mut self.value, &mut self.trial_value);
        std::mem::swap(&mut self.choice, &mut self.trial_choice);
    }

    /// The committed optimal expected makespan.
    ///
    /// # Panics
    ///
    /// Panics if no solve was committed.
    pub fn value(&self) -> f64 {
        assert!(self.len > 0, "value before the first solve");
        self.value[0]
    }

    /// Solves only the **suffix** `from..n` of `table` and commits it:
    /// `value[x]` and `choice[x]` become the optimal plan of the remaining
    /// chain for every `x ≥ from`, while positions `< from` are left
    /// untouched (stale, or zero on a fresh state). Returns the optimal
    /// expected time of the suffix starting at `from` (0 for `from ≥ n`).
    ///
    /// This is the re-planning primitive of the online policies
    /// (`ckpt-adaptive`): after a failure with the last durable checkpoint
    /// at position `from − 1`, only the remaining chain needs a plan, and
    /// the Algorithm 1 recurrence for `x ≥ from` never reads positions
    /// `< from` — so a mid-execution re-solve costs `O((n − from)²)` pruned
    /// work instead of a full solve. Accessors for positions `< from` return
    /// stale data until a wider solve is committed.
    pub fn solve_suffix(&mut self, table: &SegmentCostTable, from: usize) -> f64 {
        let n = table.len();
        if self.len != n {
            self.len = n;
            self.value.clear();
            self.value.resize(n + 1, 0.0);
            self.choice.clear();
            self.choice.resize(n, 0);
        }
        let from = from.min(n);
        solver_stats::SUFFIX_SOLVES.add(1);
        solver_stats::SUFFIX_REUSED_POSITIONS.add(from as u64);
        pruned_dp_span(table, &mut self.value, &mut self.choice, from, n);
        self.trial_pending = false;
        self.value[from]
    }

    /// The first checkpoint position of the committed optimal plan for the
    /// suffix starting at `x`: executing positions `x..=choice_at(x)` and
    /// checkpointing there is optimal for the remaining chain.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range or no solve was committed. After a
    /// [`solve_suffix`](ResumableDp::solve_suffix) from `from`, only
    /// positions `≥ from` carry committed data.
    pub fn choice_at(&self, x: usize) -> usize {
        assert!(x < self.len, "position {x} out of range (len {})", self.len);
        self.choice[x]
    }

    /// The committed optimal expected time of the suffix starting at `x`
    /// (`x = len` gives 0).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range or no solve was committed.
    pub fn suffix_value(&self, x: usize) -> f64 {
        assert!(self.len > 0, "suffix_value before the first solve");
        assert!(x <= self.len, "position {x} out of range (len {})", self.len);
        self.value[x]
    }

    /// The committed optimal placement.
    ///
    /// # Panics
    ///
    /// Panics if no solve was committed.
    pub fn placement(&self) -> TablePlacement {
        assert!(self.len > 0, "placement before the first solve");
        TablePlacement {
            expected_makespan: self.value[0],
            checkpoint_positions: positions_from_choice(&self.choice),
        }
    }

    /// The committed optimal checkpoint positions of the suffix starting at
    /// `from`, in increasing order, ending with the mandatory final
    /// checkpoint at `len − 1` (empty for `from ≥ len`). After a
    /// [`solve_suffix`](ResumableDp::solve_suffix) from `from`, this is the
    /// mid-execution re-plan the request-serving tier returns: the remaining
    /// chain's optimal placement, in the **full order's** position indices.
    ///
    /// # Panics
    ///
    /// Panics if no solve was committed, or (via stale data) if positions
    /// `< from` of the last commit were narrower than requested — callers
    /// must not ask for positions below their last solved suffix.
    pub fn suffix_positions(&self, from: usize) -> Vec<usize> {
        assert!(self.len > 0, "suffix_positions before the first solve");
        let mut positions = Vec::new();
        let mut x = from;
        while x < self.len {
            let j = self.choice[x];
            positions.push(j);
            x = j + 1;
        }
        positions
    }
}

/// Runs Algorithm 1's recurrence directly on a prebuilt [`SegmentCostTable`]
/// — the order-agnostic core shared by every solver of the workspace that
/// owns a fixed execution order: the chain solvers here,
/// [`crate::dag_schedule`]'s per-linearisation placement (under any §6 cost
/// model), [`crate::general_failures`]' exponential-equivalent planner and
/// [`crate::analysis`]'s λ sweeps.
///
/// `O(n²)` worst case with the table's monotone lower-bound pruning, `O(n)`
/// space, no `exp` in the inner loop.
pub fn optimal_placement_on_table(table: &SegmentCostTable) -> TablePlacement {
    let (value, choice) = pruned_dp(table);
    TablePlacement {
        expected_makespan: value[0],
        checkpoint_positions: positions_from_choice(&choice),
    }
}

/// Computes the optimal checkpoint placement for a linear-chain instance,
/// bottom-up, in `O(n²)` time and `O(n)` space — with the per-cell
/// Proposition-1 evaluation reduced to a few multiplies by a precomputed
/// [`SegmentCostTable`], and the inner loop pruned with the table's monotone
/// segment lower bound.
///
/// # Example
///
/// ```
/// use ckpt_core::{chain_dp, ProblemInstance};
/// use ckpt_dag::generators;
///
/// // A four-task chain on a platform failing every 2 000 s on average.
/// let graph = generators::chain(&[500.0, 1_500.0, 250.0, 750.0])?;
/// let instance = ProblemInstance::builder(graph)
///     .uniform_checkpoint_cost(25.0)
///     .uniform_recovery_cost(40.0)
///     .platform_lambda(1.0 / 2_000.0)
///     .build()?;
///
/// let solution = chain_dp::optimal_chain_schedule(&instance)?;
/// // The final checkpoint is mandatory, so it closes the placement…
/// assert_eq!(*solution.checkpoint_positions.last().unwrap(), 3);
/// // …and the DP value matches the analytical evaluation of its schedule.
/// let eval = ckpt_core::evaluate::expected_makespan(&instance, &solution.schedule)?;
/// assert!((solution.expected_makespan - eval).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// * [`ScheduleError::NotAChain`] if the instance graph is not a linear chain;
/// * propagated validation errors (cannot occur for instances built through
///   [`ProblemInstance::builder`]).
pub fn optimal_chain_schedule(instance: &ProblemInstance) -> Result<ChainSolution, ScheduleError> {
    let (order, table) = chain_table(instance)?;
    let placement = optimal_placement_on_table(&table);
    solution_from_positions(
        instance,
        order,
        placement.checkpoint_positions,
        placement.expected_makespan,
    )
}

/// A levelled checkpoint placement computed directly on a
/// [`LevelledCostTable`]: each checkpoint is a `(position, level)` pair —
/// after which position it is taken and which storage level it is written
/// to. The hierarchical-storage analogue of [`TablePlacement`].
#[derive(Debug, Clone, PartialEq)]
pub struct LevelledPlacement {
    /// The optimal expected makespan over the table's order (the DP value).
    pub expected_makespan: f64,
    /// The checkpoints as `(position, level)` pairs in increasing position
    /// order. The final position is always the table's last (the mandatory
    /// final checkpoint).
    pub checkpoints: Vec<(usize, usize)>,
}

impl LevelledPlacement {
    /// The checkpoint positions alone, in increasing order.
    pub fn checkpoint_positions(&self) -> Vec<usize> {
        self.checkpoints.iter().map(|&(j, _)| j).collect()
    }

    /// The placement with levels erased, in the form the single-level
    /// consumers ([`Schedule::new`] via
    /// [`TablePlacement::checkpoint_after`]) understand.
    pub fn table_placement(&self) -> TablePlacement {
        TablePlacement {
            expected_makespan: self.expected_makespan,
            checkpoint_positions: self.checkpoint_positions(),
        }
    }

    /// The number of checkpoints written to `level`.
    pub fn checkpoints_on_level(&self, level: usize) -> usize {
        self.checkpoints.iter().filter(|&&(_, l)| l == level).count()
    }

    /// The number of checkpoints taken (the final mandatory one included).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }
}

/// Computes the optimal `(position, level)` checkpoint placement on a
/// [`LevelledCostTable`]: Algorithm 1 generalised to hierarchical storage.
///
/// The DP state is `(x, p, s)` — the suffix starts at position `x`,
/// protected by a checkpoint written to level `p`, with `s` slots of the
/// bounded level still unused (levels at most one of which is bounded; see
/// [`StorageLevels`]). The recurrence extends the paper's over the written
/// level `ℓ`:
///
/// ```text
/// E(x, p, s) = min_{x ≤ j < n} min_ℓ [ T_{p,ℓ}(x, j) + E(j+1, ℓ, s − [ℓ bounded]) ]
/// E(n, ·, ·) = 0
/// ```
///
/// where `T_{p,ℓ}` charges level `p`'s protecting coefficient and level
/// `ℓ`'s write cost
/// ([`SegmentCostTable::cost_with_coefficient`]). Choosing the bounded
/// level consumes a slot **permanently** (the fast tier holds only so many
/// checkpoints for the lifetime of the run), which is what makes the
/// reachable plan set — and hence the optimum — monotone in the slot
/// budget. The inner loop keeps the single-level solver's pruning: the
/// cross-level lower bound is the minimum of the per-level monotone bounds,
/// so once it clears the incumbent no later split on any level can win.
///
/// With a single unbounded level the state space collapses to `(x)` and
/// every floating-point operation replays [`optimal_placement_on_table`]'s
/// in order, so the result is **bitwise identical** — the differential wall
/// the tests enforce.
///
/// `O(n² · L · (L + S))` time for `L` levels and a slot budget of `S`,
/// `O(n · L · S)` space.
///
/// # Panics
///
/// Panics if no feasible plan exists — only possible when *every* level is
/// slot-bounded, i.e. a single bounded level with fewer slots than the one
/// mandatory final checkpoint.
pub fn optimal_levelled_placement_on_table(table: &LevelledCostTable) -> LevelledPlacement {
    let n = table.len();
    let levels = table.level_count();
    let (bounded, budget) = match table.levels().bounded() {
        // A plan never takes more than `n` checkpoints, so larger budgets
        // are equivalent to `n` (keeps the state space `O(n)` in the budget).
        Some((idx, slots)) => (Some(idx), slots.min(n)),
        None => (None, 0),
    };
    let slot_states = budget + 1;
    let states = levels * slot_states;
    let idx = |x: usize, p: usize, s: usize| (x * levels + p) * slot_states + s;
    // value[idx(x, p, s)] is E(x, p, s); row x = n is the 0 base case.
    let mut value = vec![0.0f64; (n + 1) * states];
    let mut choice_j = vec![0usize; n * states];
    let mut choice_level = vec![0usize; n * states];
    let mut candidates = 0u64;
    let mut prune_breaks = 0u64;
    for x in (0..n).rev() {
        for p in 0..levels {
            // Level p's protecting coefficient e^{λR_x}(1/λ+D); at x = 0 it
            // is the level-independent initial recovery on every table.
            let coefficient = table.table(p).coefficient(x);
            for s in 0..slot_states {
                let mut best = f64::INFINITY;
                let mut best_j = n - 1;
                let mut best_level = 0usize;
                for j in x..n {
                    let mut bound =
                        table.table(0).segment_lower_bound_with_coefficient(x, j, coefficient);
                    for level in 1..levels {
                        bound = bound.min(table.table(level).segment_lower_bound_with_coefficient(
                            x,
                            j,
                            coefficient,
                        ));
                    }
                    if bound > best {
                        prune_breaks += 1;
                        break;
                    }
                    for level in 0..levels {
                        let next_s = match bounded {
                            Some(b) if b == level => {
                                if s == 0 {
                                    // The bounded level is exhausted: it
                                    // cannot be written in this suffix.
                                    continue;
                                }
                                s - 1
                            }
                            _ => s,
                        };
                        candidates += 1;
                        let cost = table.table(level).cost_with_coefficient(x, j, coefficient)
                            + value[idx(j + 1, level, next_s)];
                        if cost < best {
                            best = cost;
                            best_j = j;
                            best_level = level;
                        }
                    }
                }
                value[idx(x, p, s)] = best;
                choice_j[idx(x, p, s)] = best_j;
                choice_level[idx(x, p, s)] = best_level;
            }
        }
    }
    solver_stats::DP_POSITIONS.add((n * states) as u64);
    solver_stats::DP_CANDIDATES.add(candidates);
    solver_stats::DP_PRUNE_BREAKS.add(prune_breaks);

    let expected_makespan = value[idx(0, 0, budget)];
    assert!(
        expected_makespan.is_finite(),
        "no feasible levelled plan: the only storage level cannot hold the final checkpoint"
    );
    let mut checkpoints = Vec::new();
    let (mut x, mut p, mut s) = (0usize, 0usize, budget);
    while x < n {
        let state = idx(x, p, s);
        let j = choice_j[state];
        let level = choice_level[state];
        checkpoints.push((j, level));
        if bounded == Some(level) {
            s -= 1;
        }
        p = level;
        x = j + 1;
    }
    LevelledPlacement { expected_makespan, checkpoints }
}

/// The result of the levelled chain dynamic program
/// ([`optimal_levelled_schedule`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelledSolution {
    /// The optimal schedule (chain order, optimal checkpoint positions) with
    /// levels erased — drop-in compatible with every single-level consumer.
    pub schedule: Schedule,
    /// The optimal expected makespan under the storage hierarchy (the DP
    /// value).
    pub expected_makespan: f64,
    /// The checkpoints as `(position, level)` pairs in increasing position
    /// order. Always ends at position `n − 1`.
    pub checkpoints: Vec<(usize, usize)>,
    /// The storage hierarchy the plan was computed for.
    pub levels: StorageLevels,
}

impl LevelledSolution {
    /// The storage level the checkpoint after `position` is written to, or
    /// `None` if no checkpoint is taken there.
    pub fn level_at(&self, position: usize) -> Option<usize> {
        self.checkpoints.iter().find(|&&(j, _)| j == position).map(|&(_, level)| level)
    }

    /// Converts the levelled plan into simulator [`Segment`](ckpt_simulator::Segment)s: each
    /// segment's checkpoint cost is scaled by the written level's write
    /// factor, and the *next* segment's recovery by that same level's read
    /// factor (see [`ckpt_simulator::levelled_segments`]).
    ///
    /// # Errors
    ///
    /// Propagates segment-validation errors (cannot occur for instances
    /// built through [`ProblemInstance::builder`], whose weights are
    /// positive).
    pub fn to_segments(
        &self,
        instance: &ProblemInstance,
    ) -> Result<Vec<ckpt_simulator::Segment>, ckpt_simulator::SimulationError> {
        let order = self.schedule.order();
        let works: Vec<f64> = order.iter().map(|&t| instance.weight(t)).collect();
        let checkpoints: Vec<f64> = order.iter().map(|&t| instance.checkpoint_cost(t)).collect();
        let recoveries: Vec<f64> = order.iter().map(|&t| instance.recovery_cost(t)).collect();
        ckpt_simulator::levelled_segments(
            &works,
            &checkpoints,
            &recoveries,
            instance.initial_recovery(),
            &self.levels,
            &self.checkpoints,
        )
    }
}

/// Computes the optimal joint `(position, level)` checkpoint plan for a
/// linear-chain instance over a storage hierarchy: Algorithm 1 with the
/// written storage level as a second decision per checkpoint and the fast
/// tier's slot budget threaded through the DP state
/// ([`optimal_levelled_placement_on_table`]).
///
/// With `StorageLevels::single()` this is **bitwise identical** to
/// [`optimal_chain_schedule`] — same expected makespan to the last bit,
/// same positions (differential-tested).
///
/// # Example
///
/// ```
/// use ckpt_core::{chain_dp, ProblemInstance};
/// use ckpt_dag::generators;
/// use ckpt_expectation::storage::{StorageLevel, StorageLevels};
///
/// let graph = generators::chain(&[500.0, 1_500.0, 250.0, 750.0])?;
/// let instance = ProblemInstance::builder(graph)
///     .uniform_checkpoint_cost(25.0)
///     .uniform_recovery_cost(40.0)
///     .platform_lambda(1.0 / 2_000.0)
///     .build()?;
/// // A burst-buffer tier: 4× cheaper writes, 5× cheaper reads, 1 slot.
/// let levels = StorageLevels::two_level(
///     StorageLevel::new(0.25, 0.2)?.with_slots(1),
///     StorageLevel::new(1.0, 1.0)?,
/// )?;
///
/// let levelled = chain_dp::optimal_levelled_schedule(&instance, &levels)?;
/// let flat = chain_dp::optimal_chain_schedule(&instance)?;
/// // The hierarchy can only help: the flat plan is still available.
/// assert!(levelled.expected_makespan <= flat.expected_makespan);
/// // The final checkpoint is mandatory and carries its level.
/// assert_eq!(levelled.checkpoints.last().unwrap().0, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// * [`ScheduleError::NotAChain`] if the instance graph is not a linear
///   chain;
/// * propagated validation errors (cannot occur for instances built through
///   [`ProblemInstance::builder`]).
pub fn optimal_levelled_schedule(
    instance: &ProblemInstance,
    levels: &StorageLevels,
) -> Result<LevelledSolution, ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let table = levelled_cost_table(instance, &order, levels.clone())?;
    let placement = optimal_levelled_placement_on_table(&table);
    let mut checkpoint_after = vec![false; order.len()];
    for &(j, _) in &placement.checkpoints {
        checkpoint_after[j] = true;
    }
    let schedule = Schedule::new(instance, order, checkpoint_after)?;
    Ok(LevelledSolution {
        schedule,
        expected_makespan: placement.expected_makespan,
        checkpoints: placement.checkpoints,
        levels: levels.clone(),
    })
}

/// Computes the optimal checkpoint placement in `O(n log n)` by treating each
/// candidate "first checkpoint at `j`" as a line `slope(j)·t + E(j+1)` in the
/// query point `t_x` and sweeping a Li Chao tree (divide and conquer over the
/// query domain) from the end of the chain to its start.
///
/// Returns the same optimum as [`optimal_chain_schedule`] (cross-checked to
/// `10⁻¹⁰` relative error in the tests); the checkpoint positions may differ
/// only between exactly cost-equivalent solutions.
///
/// On *saturated* instances (`λ·total work` ≳ 650, where the slope/query
/// decomposition overflows `f64`) this transparently falls back to the pruned
/// `O(n²)` DP, which remains exact there.
///
/// # Errors
///
/// Same as [`optimal_chain_schedule`].
pub fn optimal_chain_schedule_divide_conquer(
    instance: &ProblemInstance,
) -> Result<ChainSolution, ScheduleError> {
    let (order, table) = chain_table(instance)?;
    if table.is_saturated() {
        return saturated_fallback(instance, order, &table);
    }
    let n = order.len();

    let points: Vec<f64> = (0..n).map(|x| table.query_point(x)).collect();
    let mut domain = points.clone();
    domain.sort_by(f64::total_cmp);
    domain.dedup();
    let mut envelope = LiChaoTree::new(domain);

    let mut value = vec![0.0f64; n + 1];
    let mut choice = vec![0usize; n];
    for x in (0..n).rev() {
        // Candidate "first checkpoint at j = x" becomes available exactly
        // now: its intercept E(x+1) was computed in the previous step.
        envelope.insert(LiChaoLine { slope: table.slope(x), intercept: value[x + 1], id: x });
        let (best, id) = envelope.query(points[x]);
        value[x] = best - table.coefficient(x);
        choice[x] = id;
    }

    // Re-sum the reconstructed segments through the table so the reported
    // value carries the summation order of the other solvers rather than the
    // envelope's line arithmetic.
    let positions = positions_from_choice(&choice);
    let expected_makespan = resummed_value(&table, &positions);
    solution_from_positions(instance, order, positions, expected_makespan)
}

/// Sums the table costs of the checkpoint-delimited segments of `positions` —
/// used by the envelope-based solvers to report a value with the same
/// summation order as the direct DPs instead of their line arithmetic.
fn resummed_value(table: &SegmentCostTable, positions: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut start = 0usize;
    for &j in positions {
        total += table.cost(start, j);
        start = j + 1;
    }
    total
}

/// Positions per cache-sized block of the blocked solver. 1 024 positions
/// keep a block's slice of every table array (prefix, slopes, query points,
/// DP state) near 64 KiB together — L1/L2 resident on current hardware.
const DP_BLOCK: usize = 1024;

/// Computes the optimal checkpoint placement with the same line
/// decomposition as [`optimal_chain_schedule_divide_conquer`], organised as
/// a **blocked divide and conquer over index space** so chains of
/// `10⁵`–`10⁶` tasks stream through cache-sized working sets. Worst case
/// `O(n log² n)` (each of the `log(n / DP_BLOCK)` cross-range levels
/// comparison-sorts its lines and queries); effectively `O(n log n)` when
/// slopes and query points are near-monotone in position — uniform
/// checkpoint/recovery costs, the common case — because the sorts are
/// adaptive. Measured faster than the global Li Chao solver from `≈ 10⁵`
/// tasks up (see `EXPERIMENTS.md`):
///
/// * trailing blocks of `DP_BLOCK` (1 024) positions are solved with a
///   block-local Li Chao sweep whose tree spans only the block's query
///   points (L2-resident, unlike the divide-and-conquer solver's global
///   tree over all `n` points);
/// * once a suffix range is solved, its candidate lines are batched into a
///   monotone lower envelope (lines sorted by slope, queries by point, one
///   forward sweep over each — purely sequential scans) over just the
///   matching prefix range, and each prefix position folds the envelope
///   minimum into its best-cross-range candidate. Each position therefore
///   meets `O(log(n / DP_BLOCK))` envelopes, every one spanning a single
///   contiguous range — no global `O(n)`-domain structure is ever built, and
///   no quadratic state is materialised.
///
/// Returns the same optimum as [`optimal_chain_schedule`] (cross-checked to
/// `10⁻¹⁰` relative error in the tests); checkpoint positions may differ only
/// between exactly cost-equivalent solutions. On *saturated* instances
/// (`λ·total work` ≳ 650) this transparently falls back to the pruned `O(n²)`
/// DP, exactly like the divide-and-conquer solver.
///
/// # Errors
///
/// Same as [`optimal_chain_schedule`].
pub fn optimal_chain_schedule_blocked(
    instance: &ProblemInstance,
) -> Result<ChainSolution, ScheduleError> {
    optimal_chain_schedule_blocked_with_scratch(instance, &mut ChainDpScratch::new())
}

/// The shared saturated-instance fallback of the two envelope solvers: the
/// slope/query-point decomposition overflows there, so run the pruned DP on
/// the **already-built** table instead of rebuilding anything.
fn saturated_fallback(
    instance: &ProblemInstance,
    order: Vec<TaskId>,
    table: &SegmentCostTable,
) -> Result<ChainSolution, ScheduleError> {
    let placement = optimal_placement_on_table(table);
    solution_from_positions(
        instance,
        order,
        placement.checkpoint_positions,
        placement.expected_makespan,
    )
}

/// Caller-owned scratch arena for the blocked chain solver (and the pruned
/// DP behind [`scalable_placement_on_table_with_scratch`]).
///
/// One solve of [`optimal_chain_schedule_blocked`] at `n = 10⁶` otherwise
/// performs ~1 000 transient allocations: a Li Chao node vector and a sorted
/// query-point domain per trailing block, plus lines/hull/query buffers per
/// cross-range envelope level. Holding the buffers here removes all of that
/// allocator traffic from the hot path — batch consumers (λ sweeps, the
/// order search, the §6 batch planner) reuse one arena across every solve.
///
/// # Example
///
/// ```
/// use ckpt_core::{chain_dp, chain_dp::ChainDpScratch, ProblemInstance};
/// use ckpt_dag::generators;
///
/// let mut scratch = ChainDpScratch::new();
/// for lambda in [1e-5, 1e-4, 1e-3] {
///     let graph = generators::uniform_chain(64, 300.0)?;
///     let instance = ProblemInstance::builder(graph)
///         .uniform_checkpoint_cost(30.0)
///         .uniform_recovery_cost(30.0)
///         .platform_lambda(lambda)
///         .build()?;
///     let with_scratch =
///         chain_dp::optimal_chain_schedule_blocked_with_scratch(&instance, &mut scratch)?;
///     let fresh = chain_dp::optimal_chain_schedule_blocked(&instance)?;
///     assert_eq!(with_scratch.expected_makespan, fresh.expected_makespan);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChainDpScratch {
    points: Vec<f64>,
    slopes: Vec<f64>,
    value: Vec<f64>,
    choice: Vec<usize>,
    cross_val: Vec<f64>,
    cross_id: Vec<usize>,
    domain: Vec<f64>,
    tree: LiChaoTree,
    lines: Vec<(f64, f64, usize)>,
    hull: Vec<(f64, f64, usize)>,
    by_point: Vec<usize>,
}

impl ChainDpScratch {
    /// An empty arena; buffers grow to the largest table solved through it
    /// and are reused from then on.
    pub fn new() -> Self {
        ChainDpScratch::default()
    }
}

/// Tables at least this long run the blocked core in
/// [`scalable_placement_on_table`]; below it the pruned quadratic DP is
/// comparable or faster (and in dense-checkpoint regimes its lower-bound
/// pruning wins outright).
const SCALABLE_THRESHOLD: usize = 1024;

/// Runs the Algorithm 1 recurrence on `table` with the formulation suited to
/// its size: the blocked envelope core for large non-saturated tables
/// (`10⁵`–`10⁶` positions would take the quadratic DP hours in rare-failure
/// regimes), the pruned quadratic DP for small or saturated ones. This is
/// the entry point batch consumers ([`crate::analysis::lambda_sweep`], the
/// [`crate::general_failures`] batch planner) use so sweeps over large
/// chains scale like the chain solvers themselves.
///
/// Returns the same optimum as [`optimal_placement_on_table`] (the two cores
/// are cross-checked to `10⁻¹⁰` relative error in the tests); checkpoint
/// positions may differ only between exactly cost-equivalent solutions.
pub fn scalable_placement_on_table(table: &SegmentCostTable) -> TablePlacement {
    scalable_placement_on_table_with_scratch(table, &mut ChainDpScratch::new())
}

/// [`scalable_placement_on_table`] with a caller-owned [`ChainDpScratch`]:
/// identical result, but all working buffers (block-local Li Chao trees,
/// envelope scratch, DP state) are reused across calls instead of being
/// reallocated per solve. This is the entry point batch consumers
/// ([`crate::analysis::lambda_sweep`], [`crate::order_search`]) loop over.
pub fn scalable_placement_on_table_with_scratch(
    table: &SegmentCostTable,
    scratch: &mut ChainDpScratch,
) -> TablePlacement {
    if table.len() >= SCALABLE_THRESHOLD && !table.is_saturated() {
        blocked_placement_with_block_into(table, DP_BLOCK, scratch)
    } else {
        let n = table.len();
        scratch.value.clear();
        scratch.value.resize(n + 1, 0.0);
        scratch.choice.clear();
        scratch.choice.resize(n, 0);
        pruned_dp_range(table, &mut scratch.value, &mut scratch.choice, n);
        TablePlacement {
            expected_makespan: scratch.value[0],
            checkpoint_positions: positions_from_choice(&scratch.choice),
        }
    }
}

/// [`optimal_chain_schedule_blocked`] with a caller-owned
/// [`ChainDpScratch`]: identical result, no per-solve allocation of the
/// block-local Li Chao buffers and envelope scratch (~1 000 transient
/// allocations at `n = 10⁶` otherwise; measured in `b1_chain_dp`'s
/// `blocked_scratch_reuse` entry).
///
/// # Errors
///
/// Same as [`optimal_chain_schedule`].
pub fn optimal_chain_schedule_blocked_with_scratch(
    instance: &ProblemInstance,
    scratch: &mut ChainDpScratch,
) -> Result<ChainSolution, ScheduleError> {
    let (order, table) = chain_table(instance)?;
    if table.is_saturated() {
        return saturated_fallback(instance, order, &table);
    }
    let placement = blocked_placement_with_block_into(&table, DP_BLOCK, scratch);
    solution_from_positions(
        instance,
        order,
        placement.checkpoint_positions,
        placement.expected_makespan,
    )
}

/// The blocked core with an explicit block size, so tests can force deep
/// recursion on small chains.
#[cfg(test)]
fn blocked_placement_with_block(table: &SegmentCostTable, block: usize) -> TablePlacement {
    blocked_placement_with_block_into(table, block, &mut ChainDpScratch::new())
}

/// The blocked core, running entirely out of `scratch`'s buffers.
fn blocked_placement_with_block_into(
    table: &SegmentCostTable,
    block: usize,
    scratch: &mut ChainDpScratch,
) -> TablePlacement {
    debug_assert!(!table.is_saturated(), "blocked solver needs slopes/query points");
    assert!(block > 0, "block size must be positive");
    let n = table.len();
    scratch.points.clear();
    scratch.points.extend((0..n).map(|x| table.query_point(x)));
    scratch.slopes.clear();
    scratch.slopes.extend((0..n).map(|j| table.slope(j)));
    scratch.value.clear();
    scratch.value.resize(n + 1, 0.0);
    scratch.choice.clear();
    scratch.choice.resize(n, 0);
    scratch.cross_val.clear();
    scratch.cross_val.resize(n, f64::INFINITY);
    scratch.cross_id.clear();
    scratch.cross_id.resize(n, usize::MAX);

    struct BlockedDp<'a> {
        table: &'a SegmentCostTable,
        points: &'a [f64],
        slopes: &'a [f64],
        block: usize,
        /// `value[x]` = optimal expected time for positions `x..n`.
        value: &'a mut [f64],
        choice: &'a mut [usize],
        /// Best cross-range candidate of `x` in **line form**
        /// (`slope(j)·t_x + value[j+1]`, before subtracting `coeff(x)`),
        /// accumulated over the envelopes of all solved suffix ranges.
        cross_val: &'a mut [f64],
        cross_id: &'a mut [usize],
        domain: &'a mut Vec<f64>,
        tree: &'a mut LiChaoTree,
        lines: &'a mut Vec<(f64, f64, usize)>,
        hull: &'a mut Vec<(f64, f64, usize)>,
        by_point: &'a mut Vec<usize>,
    }

    impl BlockedDp<'_> {
        /// Solves positions `lo..hi`, assuming `value[hi..]` is final and
        /// `cross_*[lo..hi]` already accounts for every candidate `j ≥ hi`.
        fn solve(&mut self, lo: usize, hi: usize) {
            if hi - lo <= self.block {
                self.solve_block(lo, hi);
                return;
            }
            let mid = lo + (hi - lo) / 2;
            self.solve(mid, hi);
            self.apply_cross(lo, mid, hi);
            self.solve(lo, mid);
        }

        /// One cache-sized block, solved with the Li Chao sweep of the
        /// divide-and-conquer formulation restricted to the block: the tree
        /// spans only the block's query points (L2-resident at [`DP_BLOCK`]),
        /// and candidates from outside the block enter through the
        /// accumulated cross-range minima.
        fn solve_block(&mut self, lo: usize, hi: usize) {
            self.domain.clear();
            self.domain.extend_from_slice(&self.points[lo..hi]);
            self.domain.sort_by(f64::total_cmp);
            self.domain.dedup();
            self.tree.reset(self.domain);
            for x in (lo..hi).rev() {
                // Candidate "first checkpoint at j = x" becomes available
                // exactly now: its intercept E(x+1) is final.
                self.tree.insert(LiChaoLine {
                    slope: self.slopes[x],
                    intercept: self.value[x + 1],
                    id: x,
                });
                let (in_block, in_block_id) = self.tree.query(self.points[x]);
                let (mut best, mut best_j) = (in_block, in_block_id);
                if self.cross_id[x] != usize::MAX && self.cross_val[x] < best {
                    best = self.cross_val[x];
                    best_j = self.cross_id[x];
                }
                self.value[x] = best - self.table.coefficient(x);
                self.choice[x] = best_j;
            }
        }

        /// Batches the lines of the solved range `mid..hi` into a monotone
        /// lower envelope (convex-hull trick: lines sorted by slope, queries
        /// sorted by point, one forward sweep over each) and folds the
        /// per-point minima into the cross-range candidates of `lo..mid`.
        /// Everything is a sequential scan over contiguous arrays — no
        /// tree, no random access.
        fn apply_cross(&mut self, lo: usize, mid: usize, hi: usize) {
            // Envelope construction, slope-descending (the minimum's winner
            // as the query point grows moves towards smaller slopes).
            self.lines.clear();
            self.lines.extend((mid..hi).map(|j| (self.slopes[j], self.value[j + 1], j)));
            self.lines.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.total_cmp(&b.1)));
            self.hull.clear();
            for &line in self.lines.iter() {
                if let Some(&(last_slope, ..)) = self.hull.last() {
                    // Equal slopes: the sort put the lowest intercept first.
                    if last_slope == line.0 {
                        continue;
                    }
                }
                while self.hull.len() >= 2 {
                    let a = self.hull[self.hull.len() - 2];
                    let b = self.hull[self.hull.len() - 1];
                    // `b` never strictly wins if the a/line crossover is not
                    // to the right of the a/b crossover (slopes strictly
                    // decrease along the hull, so both denominators are
                    // positive).
                    let x_ab = (b.1 - a.1) / (a.0 - b.0);
                    let x_al = (line.1 - a.1) / (a.0 - line.0);
                    if x_al <= x_ab {
                        self.hull.pop();
                    } else {
                        break;
                    }
                }
                self.hull.push(line);
            }

            // Queries in ascending point order: the winning hull index only
            // moves forward, so the whole batch costs one merge-like sweep.
            self.by_point.clear();
            self.by_point.extend(lo..mid);
            self.by_point.sort_by(|&a, &b| self.points[a].total_cmp(&self.points[b]));
            let mut k = 0usize;
            for &x in self.by_point.iter() {
                let t = self.points[x];
                while k + 1 < self.hull.len()
                    && self.hull[k + 1].0 * t + self.hull[k + 1].1
                        <= self.hull[k].0 * t + self.hull[k].1
                {
                    k += 1;
                }
                let candidate = self.hull[k].0 * t + self.hull[k].1;
                if self.cross_id[x] == usize::MAX || candidate < self.cross_val[x] {
                    self.cross_val[x] = candidate;
                    self.cross_id[x] = self.hull[k].2;
                }
            }
        }
    }

    let ChainDpScratch {
        points,
        slopes,
        value,
        choice,
        cross_val,
        cross_id,
        domain,
        tree,
        lines,
        hull,
        by_point,
    } = scratch;
    let mut dp = BlockedDp {
        table,
        points,
        slopes,
        block,
        value,
        choice,
        cross_val,
        cross_id,
        domain,
        tree,
        lines,
        hull,
        by_point,
    };
    dp.solve(0, n);

    // Re-sum through the table, as the divide-and-conquer solver does.
    let positions = positions_from_choice(dp.choice);
    let expected_makespan = resummed_value(table, &positions);
    TablePlacement { expected_makespan, checkpoint_positions: positions }
}

/// A candidate line of the lower envelope: `eval(t) = slope·t + intercept`,
/// tagged with the checkpoint position it represents.
#[derive(Debug, Clone, Copy)]
struct LiChaoLine {
    slope: f64,
    intercept: f64,
    id: usize,
}

impl LiChaoLine {
    fn eval(&self, t: f64) -> f64 {
        self.slope * t + self.intercept
    }
}

/// A Li Chao tree over a fixed, sorted set of query points: divide and
/// conquer on the query domain, keeping in each node the line that wins at
/// the node's midpoint. Insert and query are `O(log n)`; the minimum returned
/// at any stored point is exact (no convexity assumptions on insertion
/// order).
#[derive(Debug, Clone, Default)]
struct LiChaoTree {
    xs: Vec<f64>,
    nodes: Vec<Option<LiChaoLine>>,
}

impl LiChaoTree {
    fn new(xs: Vec<f64>) -> Self {
        let len = xs.len().max(1);
        LiChaoTree { xs, nodes: vec![None; 4 * len] }
    }

    /// Re-spans the tree over a new sorted domain, keeping both buffers'
    /// capacity (the [`ChainDpScratch`] reuse path).
    fn reset(&mut self, xs: &[f64]) {
        self.xs.clear();
        self.xs.extend_from_slice(xs);
        let len = self.xs.len().max(1);
        self.nodes.clear();
        self.nodes.resize(4 * len, None);
    }

    fn insert(&mut self, line: LiChaoLine) {
        let hi = self.xs.len() - 1;
        let visited = self.insert_in(1, 0, hi, line);
        solver_stats::LI_CHAO_INSERTS.add(1);
        solver_stats::LI_CHAO_NODE_VISITS.add(visited);
    }

    /// Returns the number of tree nodes visited (for the solver telemetry).
    fn insert_in(&mut self, node: usize, lo: usize, hi: usize, mut line: LiChaoLine) -> u64 {
        let mid = (lo + hi) / 2;
        let mid_x = self.xs[mid];
        match &mut self.nodes[node] {
            slot @ None => {
                *slot = Some(line);
                1
            }
            Some(current) => {
                if line.eval(mid_x) < current.eval(mid_x) {
                    std::mem::swap(current, &mut line);
                }
                if lo == hi {
                    return 1;
                }
                // `line` lost at the midpoint; two lines cross at most once,
                // so it can only win on the side where it beats the winner at
                // the boundary.
                let lo_x = self.xs[lo];
                if line.eval(lo_x) < current.eval(lo_x) {
                    1 + self.insert_in(2 * node, lo, mid, line)
                } else {
                    1 + self.insert_in(2 * node + 1, mid + 1, hi, line)
                }
            }
        }
    }

    /// The minimum over all inserted lines at query point `t` (which must be
    /// one of the stored points), with the id of a minimising line.
    fn query(&self, t: f64) -> (f64, usize) {
        let index = self
            .xs
            .binary_search_by(|x| x.total_cmp(&t))
            .expect("query points are part of the tree domain");
        let (mut lo, mut hi, mut node) = (0usize, self.xs.len() - 1, 1usize);
        let mut best: Option<(f64, usize)> = None;
        loop {
            if let Some(line) = &self.nodes[node] {
                let candidate = line.eval(t);
                if best.is_none_or(|(value, _)| candidate < value) {
                    best = Some((candidate, line.id));
                }
            }
            if lo == hi {
                break;
            }
            let mid = (lo + hi) / 2;
            if index <= mid {
                hi = mid;
                node *= 2;
            } else {
                lo = mid + 1;
                node = 2 * node + 1;
            }
        }
        best.expect("query on an empty envelope")
    }
}

/// The naive `O(n²)` bottom-up DP calling the Proposition 1 closed form (two
/// `exp` evaluations) in every cell — the formulation a direct transcription
/// of the paper produces.
///
/// Kept as the correctness reference for [`optimal_chain_schedule`] and as
/// the baseline of the `b1_chain_dp` bench; production code should use the
/// precomputed-cost fast path instead.
///
/// # Errors
///
/// Same as [`optimal_chain_schedule`].
pub fn optimal_chain_schedule_reference(
    instance: &ProblemInstance,
) -> Result<ChainSolution, ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let n = order.len();
    let lambda = instance.lambda();
    let downtime = instance.downtime();

    // Prefix sums of the chain weights: prefix[k] = w_0 + … + w_{k-1}.
    let mut prefix = vec![0.0f64; n + 1];
    for (k, &task) in order.iter().enumerate() {
        prefix[k + 1] = prefix[k] + instance.weight(task);
    }
    // Recovery protecting a segment that starts at position x.
    let recovery_before = |x: usize| -> f64 {
        if x == 0 {
            instance.initial_recovery()
        } else {
            instance.recovery_cost(order[x - 1])
        }
    };

    let mut value = vec![0.0f64; n + 1];
    let mut choice = vec![0usize; n];
    for x in (0..n).rev() {
        let recovery = recovery_before(x);
        let mut best = f64::INFINITY;
        let mut best_j = n - 1;
        for j in x..n {
            let work = prefix[j + 1] - prefix[x];
            let params = ExecutionParams::new(
                work,
                instance.checkpoint_cost(order[j]),
                downtime,
                recovery,
                lambda,
            )
            .expect("instance parameters were validated at construction");
            let cost = expected_time(&params) + value[j + 1];
            if cost < best {
                best = cost;
                best_j = j;
            }
        }
        value[x] = best;
        choice[x] = best_j;
    }

    solution_from_positions(instance, order, positions_from_choice(&choice), value[0])
}

/// Faithful transcription of the paper's recursive `DPMAKESPAN(x, n)`
/// (Algorithm 1), with memoisation. Returns the same optimum as
/// [`optimal_chain_schedule`]; exposed separately so tests and benches can
/// compare the formulations.
///
/// # Errors
///
/// Same as [`optimal_chain_schedule`].
pub fn optimal_chain_value_memoized(instance: &ProblemInstance) -> Result<f64, ScheduleError> {
    let order = properties::as_chain(instance.graph()).ok_or(ScheduleError::NotAChain)?;
    let n = order.len();
    let lambda = instance.lambda();
    let downtime = instance.downtime();
    let mut prefix = vec![0.0f64; n + 1];
    for (k, &task) in order.iter().enumerate() {
        prefix[k + 1] = prefix[k] + instance.weight(task);
    }
    let mut memo: Vec<Option<f64>> = vec![None; n + 1];

    // Proposition 1 applied to positions x..=j (0-based), recovering with the
    // checkpoint of position x-1 (or the initial state).
    struct Ctx<'a> {
        instance: &'a ProblemInstance,
        order: &'a [ckpt_dag::TaskId],
        prefix: &'a [f64],
        lambda: f64,
        downtime: f64,
    }
    impl Ctx<'_> {
        fn segment(&self, x: usize, j: usize) -> f64 {
            let recovery = if x == 0 {
                self.instance.initial_recovery()
            } else {
                self.instance.recovery_cost(self.order[x - 1])
            };
            let work = self.prefix[j + 1] - self.prefix[x];
            let params = ExecutionParams::new(
                work,
                self.instance.checkpoint_cost(self.order[j]),
                self.downtime,
                recovery,
                self.lambda,
            )
            .expect("instance parameters were validated at construction");
            expected_time(&params)
        }
    }
    fn dp(x: usize, n: usize, ctx: &Ctx<'_>, memo: &mut Vec<Option<f64>>) -> f64 {
        if x == n {
            return 0.0;
        }
        if let Some(v) = memo[x] {
            return v;
        }
        // The paper's `best` initialisation: execute everything remaining and
        // checkpoint only after the last task.
        let mut best = ctx.segment(x, n - 1);
        // Try checkpointing first after position j, for j < n - 1.
        for j in x..n - 1 {
            let cur = ctx.segment(x, j) + dp(j + 1, n, ctx, memo);
            if cur < best {
                best = cur;
            }
        }
        memo[x] = Some(best);
        best
    }

    let ctx = Ctx { instance, order: &order, prefix: &prefix, lambda, downtime };
    Ok(dp(0, n, &ctx, &mut memo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::expected_makespan;
    use ckpt_dag::generators;
    use ckpt_failure::{Pcg64, RandomSource};
    use proptest::prelude::*;

    fn chain_instance(weights: &[f64], c: f64, r: f64, d: f64, lambda: f64) -> ProblemInstance {
        let graph = generators::chain(weights).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(c)
            .uniform_recovery_cost(r)
            .downtime(d)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    /// A chain with deterministic pseudo-random heterogeneous weights and
    /// costs — exercises the pruning bound and the Li Chao sweep away from
    /// the uniform-cost special case.
    fn random_heterogeneous_chain(seed: u64, n: usize, lambda: f64) -> ProblemInstance {
        let mut rng = Pcg64::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 1_990.0).collect();
        let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * 250.0).collect();
        let rec: Vec<f64> = (0..n).map(|_| rng.next_f64() * 250.0).collect();
        let graph = generators::chain(&weights).unwrap();
        ProblemInstance::builder(graph)
            .checkpoint_costs(ckpt)
            .recovery_costs(rec)
            .initial_recovery(rng.next_f64() * 100.0)
            .downtime(rng.next_f64() * 60.0)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    /// Exhaustive optimum over all checkpoint subsets (final forced) — the
    /// reference the DP is checked against.
    fn exhaustive_optimum(instance: &ProblemInstance) -> f64 {
        let order = properties::as_chain(instance.graph()).unwrap();
        let n = order.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << (n - 1)) {
            let mut checkpoints = vec![false; n];
            checkpoints[n - 1] = true;
            for (pos, flag) in checkpoints.iter_mut().enumerate().take(n - 1) {
                *flag = mask & (1 << pos) != 0;
            }
            let schedule = Schedule::new(instance, order.clone(), checkpoints).unwrap();
            best = best.min(expected_makespan(instance, &schedule).unwrap());
        }
        best
    }

    #[test]
    fn rejects_non_chain_graphs() {
        let graph = generators::independent(&[1.0, 2.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        assert!(matches!(optimal_chain_schedule(&inst), Err(ScheduleError::NotAChain)));
        assert!(matches!(optimal_chain_schedule_reference(&inst), Err(ScheduleError::NotAChain)));
        assert!(matches!(
            optimal_chain_schedule_divide_conquer(&inst),
            Err(ScheduleError::NotAChain)
        ));
        assert!(matches!(optimal_chain_schedule_blocked(&inst), Err(ScheduleError::NotAChain)));
        assert!(matches!(optimal_chain_value_memoized(&inst), Err(ScheduleError::NotAChain)));
    }

    #[test]
    fn single_task_chain_checkpoints_after_it() {
        let inst = chain_instance(&[500.0], 10.0, 20.0, 5.0, 1e-3);
        let sol = optimal_chain_schedule(&inst).unwrap();
        assert_eq!(sol.checkpoint_positions, vec![0]);
        let expected = expected_time(&ExecutionParams::new(500.0, 10.0, 5.0, 0.0, 1e-3).unwrap());
        assert!((sol.expected_makespan - expected).abs() < 1e-9);
    }

    #[test]
    fn dp_value_matches_schedule_evaluation() {
        let inst =
            chain_instance(&[400.0, 100.0, 900.0, 250.0, 650.0, 300.0], 60.0, 60.0, 30.0, 1e-4);
        let sol = optimal_chain_schedule(&inst).unwrap();
        let eval = expected_makespan(&inst, &sol.schedule).unwrap();
        assert!((sol.expected_makespan - eval).abs() < 1e-9);
        // The schedule ends with the mandatory final checkpoint.
        assert_eq!(*sol.checkpoint_positions.last().unwrap(), 5);
    }

    #[test]
    fn dp_matches_exhaustive_search_on_small_chains() {
        let cases: Vec<ProblemInstance> = vec![
            chain_instance(&[100.0, 200.0, 300.0, 50.0, 400.0], 30.0, 30.0, 0.0, 1e-3),
            chain_instance(&[10.0, 10.0, 10.0, 10.0, 10.0, 10.0], 5.0, 5.0, 1.0, 1e-2),
            chain_instance(&[3600.0, 1800.0, 5400.0, 900.0], 600.0, 300.0, 60.0, 1e-5),
            chain_instance(&[50.0, 50.0], 1.0, 1.0, 0.0, 1e-1),
        ];
        for inst in cases {
            let brute = exhaustive_optimum(&inst);
            for (name, value) in [
                ("pruned", optimal_chain_schedule(&inst).unwrap().expected_makespan),
                ("reference", optimal_chain_schedule_reference(&inst).unwrap().expected_makespan),
                (
                    "divide_conquer",
                    optimal_chain_schedule_divide_conquer(&inst).unwrap().expected_makespan,
                ),
                ("blocked", optimal_chain_schedule_blocked(&inst).unwrap().expected_makespan),
            ] {
                assert!(
                    (value - brute).abs() / brute < 1e-10,
                    "{name} {value} vs exhaustive {brute}"
                );
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_on_heterogeneous_chains() {
        for seed in 0..12u64 {
            for lambda in [1e-6, 1e-4, 1e-3] {
                let inst = random_heterogeneous_chain(seed, 40, lambda);
                let fast = optimal_chain_schedule(&inst).unwrap();
                let reference = optimal_chain_schedule_reference(&inst).unwrap();
                let gap = (fast.expected_makespan - reference.expected_makespan).abs()
                    / reference.expected_makespan;
                assert!(gap < 1e-10, "seed {seed} λ {lambda}: gap {gap}");
                assert_eq!(fast.checkpoint_positions, reference.checkpoint_positions);
            }
        }
    }

    #[test]
    fn divide_conquer_matches_reference_on_heterogeneous_chains() {
        for seed in 0..12u64 {
            for lambda in [1e-6, 1e-4, 1e-3] {
                let inst = random_heterogeneous_chain(seed, 60, lambda);
                let dc = optimal_chain_schedule_divide_conquer(&inst).unwrap();
                let reference = optimal_chain_schedule_reference(&inst).unwrap();
                let gap = (dc.expected_makespan - reference.expected_makespan).abs()
                    / reference.expected_makespan;
                assert!(gap < 1e-10, "seed {seed} λ {lambda}: gap {gap}");
            }
        }
    }

    #[test]
    fn saturated_instances_solve_through_the_fallback() {
        // λ·total work ≈ 2000 ≫ 650: precomputed exponentials would overflow;
        // every formulation must still agree. Costs are cheap and failures
        // constant, so the optimum checkpoints after every task.
        let inst = chain_instance(&[100.0; 200], 0.1, 0.1, 0.0, 0.1);
        let fast = optimal_chain_schedule(&inst).unwrap();
        let dc = optimal_chain_schedule_divide_conquer(&inst).unwrap();
        let blocked = optimal_chain_schedule_blocked(&inst).unwrap();
        let reference = optimal_chain_schedule_reference(&inst).unwrap();
        assert!(fast.expected_makespan.is_finite());
        let gap = (fast.expected_makespan - reference.expected_makespan).abs()
            / reference.expected_makespan;
        assert!(gap < 1e-10, "gap {gap}");
        assert_eq!(fast.checkpoint_positions.len(), 200);
        assert_eq!(dc.checkpoint_positions, fast.checkpoint_positions);
        assert_eq!(blocked.checkpoint_positions, fast.checkpoint_positions);
    }

    #[test]
    fn memoized_recursion_matches_bottom_up() {
        let inst = chain_instance(
            &[400.0, 100.0, 900.0, 250.0, 650.0, 300.0, 120.0, 780.0],
            45.0,
            90.0,
            15.0,
            2e-4,
        );
        let bottom_up = optimal_chain_schedule(&inst).unwrap().expected_makespan;
        let memoized = optimal_chain_value_memoized(&inst).unwrap();
        assert!((bottom_up - memoized).abs() / bottom_up < 1e-10);
    }

    #[test]
    fn heterogeneous_costs_are_honoured() {
        // Make checkpointing after task 1 free and after task 0 exorbitant:
        // the optimal solution must checkpoint after task 1, not after task 0.
        let graph = generators::chain(&[1000.0, 1000.0, 1000.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .checkpoint_costs(vec![10_000.0, 0.0, 10.0])
            .recovery_costs(vec![10.0, 10.0, 10.0])
            .platform_lambda(1.0 / 2_000.0)
            .build()
            .unwrap();
        let sol = optimal_chain_schedule(&inst).unwrap();
        assert!(sol.checkpoint_positions.contains(&1));
        assert!(!sol.checkpoint_positions.contains(&0));
    }

    #[test]
    fn rare_failures_lead_to_few_checkpoints() {
        let inst = chain_instance(&[100.0; 10], 50.0, 50.0, 0.0, 1e-9);
        let sol = optimal_chain_schedule(&inst).unwrap();
        // With a ten-billion-second MTBF, intermediate checkpoints are pure
        // overhead: only the final mandatory checkpoint remains.
        assert_eq!(sol.checkpoint_positions, vec![9]);
    }

    #[test]
    fn frequent_failures_lead_to_many_checkpoints() {
        let inst = chain_instance(&[100.0; 10], 1.0, 1.0, 0.0, 1.0 / 50.0);
        let sol = optimal_chain_schedule(&inst).unwrap();
        // Failures every 50 s on average, tasks of 100 s with cheap
        // checkpoints: checkpoint after every task.
        assert_eq!(sol.checkpoint_positions.len(), 10);
    }

    #[test]
    fn dp_beats_or_ties_standard_baselines() {
        let inst = chain_instance(
            &[300.0, 800.0, 150.0, 950.0, 420.0, 610.0, 75.0, 340.0],
            45.0,
            60.0,
            10.0,
            1.0 / 3_000.0,
        );
        let sol = optimal_chain_schedule(&inst).unwrap();
        let order = properties::as_chain(inst.graph()).unwrap();
        let all = Schedule::checkpoint_everywhere(&inst, order.clone()).unwrap();
        let last = Schedule::checkpoint_final_only(&inst, order).unwrap();
        assert!(sol.expected_makespan <= expected_makespan(&inst, &all).unwrap() + 1e-9);
        assert!(sol.expected_makespan <= expected_makespan(&inst, &last).unwrap() + 1e-9);
    }

    #[test]
    fn dp_scales_to_large_chains() {
        // A 1 000-task chain must solve quickly and produce a valid schedule.
        let weights: Vec<f64> = (0..1000).map(|i| 50.0 + (i % 17) as f64 * 10.0).collect();
        let inst = chain_instance(&weights, 30.0, 30.0, 5.0, 1e-4);
        let sol = optimal_chain_schedule(&inst).unwrap();
        assert_eq!(sol.schedule.len(), 1000);
        assert!(sol.expected_makespan > inst.total_weight());
        // The O(n log n) solvers agree at this scale too.
        let dc = optimal_chain_schedule_divide_conquer(&inst).unwrap();
        let gap = (dc.expected_makespan - sol.expected_makespan).abs() / sol.expected_makespan;
        assert!(gap < 1e-10, "gap {gap}");
        let blocked = optimal_chain_schedule_blocked(&inst).unwrap();
        let gap = (blocked.expected_makespan - sol.expected_makespan).abs() / sol.expected_makespan;
        assert!(gap < 1e-10, "gap {gap}");
    }

    #[test]
    fn blocked_solver_crosses_real_block_boundaries() {
        // 3 000 tasks: three DP_BLOCK-sized base blocks plus cross-range
        // envelope applications at production block size, for several failure
        // regimes (few, some, many checkpoints in the optimum).
        for lambda in [1e-7, 1e-5, 1e-4] {
            let inst = random_heterogeneous_chain(5, 3_000, lambda);
            let blocked = optimal_chain_schedule_blocked(&inst).unwrap();
            let dc = optimal_chain_schedule_divide_conquer(&inst).unwrap();
            let gap =
                (blocked.expected_makespan - dc.expected_makespan).abs() / dc.expected_makespan;
            assert!(gap < 1e-10, "λ {lambda}: gap {gap}");
            // The reported value matches the analytical evaluation of the
            // schedule the solver actually returned.
            let eval = expected_makespan(&inst, &blocked.schedule).unwrap();
            let eval_gap = (blocked.expected_makespan - eval).abs() / eval;
            assert!(eval_gap < 1e-10, "λ {lambda}: eval gap {eval_gap}");
            // Above the size threshold the scalable dispatcher picks the
            // blocked core.
            let order = properties::as_chain(inst.graph()).unwrap();
            let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
            assert_eq!(
                scalable_placement_on_table(&table).checkpoint_positions,
                blocked.checkpoint_positions
            );
        }
    }

    #[test]
    fn blocked_solver_with_tiny_blocks_matches_reference() {
        // Block size 3 forces the deepest recursion and many cross-range
        // envelopes even on small heterogeneous chains.
        for seed in 0..8u64 {
            let inst = random_heterogeneous_chain(seed, 37, 1e-4);
            let order = properties::as_chain(inst.graph()).unwrap();
            let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
            let tiny = blocked_placement_with_block(&table, 3);
            let reference = optimal_chain_schedule_reference(&inst).unwrap();
            let gap = (tiny.expected_makespan - reference.expected_makespan).abs()
                / reference.expected_makespan;
            assert!(gap < 1e-10, "seed {seed}: gap {gap}");
            assert_eq!(table.total_cost(&tiny.checkpoint_after()), tiny.expected_makespan);
        }
    }

    #[test]
    fn resumable_dp_matches_full_solve_after_prefix_changes() {
        // Change the positional data below a boundary, resume above it: the
        // resumed value and placement must match a from-scratch solve of the
        // changed table.
        let inst = random_heterogeneous_chain(3, 60, 1e-4);
        let order = properties::as_chain(inst.graph()).unwrap();
        let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
        let n = order.len();
        let weights: Vec<f64> = order.iter().map(|&t| inst.weight(t)).collect();
        let mut ckpt: Vec<f64> = order.iter().map(|&t| inst.checkpoint_cost(t)).collect();
        let mut recov = vec![inst.initial_recovery()];
        recov.extend(order.iter().take(n - 1).map(|&t| inst.recovery_cost(t)));

        let mut dp = ResumableDp::new();
        let full = dp.solve(&table);
        assert_eq!(full, optimal_placement_on_table(&table).expected_makespan);

        for boundary in [5usize, 20, 40] {
            // Perturb checkpoint costs strictly below the boundary (weights
            // untouched so the prefix sums of the suffix stay bitwise
            // identical).
            for c in ckpt.iter_mut().take(boundary) {
                *c *= 1.25;
            }
            recov[boundary - 1] += 3.0;
            let changed =
                SegmentCostTable::new(inst.lambda(), inst.downtime(), &weights, &ckpt, &recov)
                    .unwrap();
            let resumed = dp.try_prefix(&changed, boundary);
            let fresh = optimal_placement_on_table(&changed);
            assert_eq!(resumed, fresh.expected_makespan, "boundary {boundary}");
            dp.commit_trial();
            assert_eq!(dp.value(), fresh.expected_makespan);
            assert_eq!(dp.placement().checkpoint_positions, fresh.checkpoint_positions);
        }
    }

    #[test]
    fn solve_suffix_matches_full_solve_on_the_suffix() {
        // A suffix-only solve (the online re-planning primitive) must agree
        // bitwise with the matching positions of a full solve — at the
        // planning rate and at re-planned rates.
        let inst = random_heterogeneous_chain(7, 48, 1e-4);
        let order = properties::as_chain(inst.graph()).unwrap();
        let sweep = crate::evaluate::lambda_sweep_for_order(&inst, &order).unwrap();
        let n = order.len();
        for lambda in [1e-5f64, 1e-4, 6e-4] {
            let table = sweep.table_for(lambda).unwrap();
            let mut full = ResumableDp::new();
            full.solve(&table);
            for from in [0usize, 1, 13, 30, n - 1, n] {
                let mut suffix = ResumableDp::new();
                let value = suffix.solve_suffix(&table, from);
                assert_eq!(value, full.suffix_value(from), "λ {lambda} from {from}");
                for x in from..n {
                    assert_eq!(suffix.choice_at(x), full.choice_at(x), "λ {lambda} x {x}");
                    assert_eq!(suffix.suffix_value(x), full.suffix_value(x));
                }
            }
        }
    }

    #[test]
    fn solve_suffix_resizes_and_replans_across_tables() {
        // One DP state reused across rates (the adaptive policies' pattern):
        // a full solve at the planning rate, then suffix re-solves at drifted
        // rates keep the committed suffix consistent with fresh solves.
        let inst = random_heterogeneous_chain(9, 32, 2e-4);
        let order = properties::as_chain(inst.graph()).unwrap();
        let sweep = crate::evaluate::lambda_sweep_for_order(&inst, &order).unwrap();
        let mut dp = ResumableDp::new();
        dp.solve(&sweep.table_for(2e-4).unwrap());
        for (from, lambda) in [(4usize, 8e-4f64), (11, 1.6e-3), (25, 4e-4)] {
            let table = sweep.table_for(lambda).unwrap();
            let value = dp.solve_suffix(&table, from);
            let mut fresh = ResumableDp::new();
            assert_eq!(value, fresh.solve_suffix(&table, from), "from {from}");
            assert_eq!(dp.choice_at(from), fresh.choice_at(from));
        }
        // choice walks of the last committed suffix terminate at n - 1.
        let mut x = 25usize;
        while x < 32 {
            let j = dp.choice_at(x);
            assert!(j >= x && j < 32);
            x = j + 1;
        }
        assert_eq!(x, 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn choice_at_rejects_out_of_range_positions() {
        let inst = chain_instance(&[100.0, 200.0], 10.0, 10.0, 0.0, 1e-4);
        let order = properties::as_chain(inst.graph()).unwrap();
        let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
        let mut dp = ResumableDp::new();
        dp.solve(&table);
        let _ = dp.choice_at(2);
    }

    #[test]
    #[should_panic(expected = "no trial to commit")]
    fn resumable_dp_rejects_double_commit() {
        let inst = chain_instance(&[100.0, 200.0, 300.0], 10.0, 10.0, 0.0, 1e-4);
        let order = properties::as_chain(inst.graph()).unwrap();
        let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
        let mut dp = ResumableDp::new();
        dp.solve(&table);
        let _ = dp.try_prefix(&table, 1);
        dp.commit_trial();
        dp.commit_trial();
    }

    #[test]
    #[should_panic(expected = "before the first solve")]
    fn resumable_dp_rejects_try_before_solve() {
        let inst = chain_instance(&[100.0, 200.0], 10.0, 10.0, 0.0, 1e-4);
        let order = properties::as_chain(inst.graph()).unwrap();
        let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
        let mut dp = ResumableDp::new();
        let _ = dp.try_prefix(&table, 1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_solves_across_tables() {
        let mut scratch = ChainDpScratch::new();
        // Mix of sizes around the scalable threshold and regimes, reusing
        // one arena throughout.
        for (seed, n, lambda) in [(1u64, 64usize, 1e-4), (2, 1500, 1e-5), (3, 700, 1e-3)] {
            let inst = random_heterogeneous_chain(seed, n, lambda);
            let order = properties::as_chain(inst.graph()).unwrap();
            let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
            let reused = scalable_placement_on_table_with_scratch(&table, &mut scratch);
            let fresh = scalable_placement_on_table(&table);
            assert_eq!(reused.expected_makespan, fresh.expected_makespan, "seed {seed}");
            assert_eq!(reused.checkpoint_positions, fresh.checkpoint_positions);
        }
        // The chain-level scratch entry point agrees with the allocating one.
        let inst = random_heterogeneous_chain(9, 2000, 1e-5);
        let with_scratch =
            optimal_chain_schedule_blocked_with_scratch(&inst, &mut scratch).unwrap();
        let fresh = optimal_chain_schedule_blocked(&inst).unwrap();
        assert_eq!(with_scratch.expected_makespan, fresh.expected_makespan);
        assert_eq!(with_scratch.checkpoint_positions, fresh.checkpoint_positions);
    }

    #[test]
    fn table_placement_exposes_flags_and_counts() {
        let inst = chain_instance(&[400.0, 100.0, 900.0, 250.0], 60.0, 60.0, 30.0, 1e-4);
        let order = properties::as_chain(inst.graph()).unwrap();
        let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
        let placement = optimal_placement_on_table(&table);
        let flags = placement.checkpoint_after();
        assert_eq!(flags.len(), 4);
        assert_eq!(flags.iter().filter(|&&f| f).count(), placement.checkpoint_count());
        assert_eq!(flags.last(), Some(&true));
        let solution = optimal_chain_schedule(&inst).unwrap();
        assert_eq!(placement.checkpoint_positions, solution.checkpoint_positions);
        assert_eq!(placement.expected_makespan, solution.expected_makespan);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_dp_is_never_beaten_by_random_schedules(
            seed in any::<u64>(),
            n in 2usize..9,
            lambda_exp in -5.0f64..-2.0,
        ) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let weights: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 990.0).collect();
            let lambda = 10f64.powf(lambda_exp);
            let inst = chain_instance(&weights, 20.0, 40.0, 5.0, lambda);
            let sol = optimal_chain_schedule(&inst).unwrap();
            let order = properties::as_chain(inst.graph()).unwrap();
            // Compare against 20 random checkpoint subsets.
            for _ in 0..20 {
                let mut checkpoints: Vec<bool> = (0..n).map(|_| rng.next_bool(0.5)).collect();
                checkpoints[n - 1] = true;
                let schedule = Schedule::new(&inst, order.clone(), checkpoints).unwrap();
                let value = expected_makespan(&inst, &schedule).unwrap();
                prop_assert!(sol.expected_makespan <= value + 1e-9);
            }
        }

        #[test]
        fn prop_all_formulations_agree(
            seed in any::<u64>(),
            n in 2usize..48,
            lambda_exp in -6.0f64..-2.0,
        ) {
            let lambda = 10f64.powf(lambda_exp);
            let inst = random_heterogeneous_chain(seed, n, lambda);
            let fast = optimal_chain_schedule(&inst).unwrap();
            let reference = optimal_chain_schedule_reference(&inst).unwrap();
            let dc = optimal_chain_schedule_divide_conquer(&inst).unwrap();
            let memoized = optimal_chain_value_memoized(&inst).unwrap();
            let base = reference.expected_makespan;
            prop_assert!((fast.expected_makespan - base).abs() / base < 1e-10,
                "pruned {} vs reference {base}", fast.expected_makespan);
            prop_assert!((dc.expected_makespan - base).abs() / base < 1e-10,
                "divide-conquer {} vs reference {base}", dc.expected_makespan);
            prop_assert!((memoized - base).abs() / base < 1e-10,
                "memoized {memoized} vs reference {base}");
            // The blocked solver, at production block size and with a tiny
            // block size that forces deep recursion on these chain lengths.
            let blocked = optimal_chain_schedule_blocked(&inst).unwrap();
            prop_assert!((blocked.expected_makespan - base).abs() / base < 1e-10,
                "blocked {} vs reference {base}", blocked.expected_makespan);
            let order = properties::as_chain(inst.graph()).unwrap();
            let table = crate::evaluate::segment_cost_table(&inst, &order).unwrap();
            let tiny = blocked_placement_with_block(&table, 4);
            prop_assert!((tiny.expected_makespan - base).abs() / base < 1e-10,
                "blocked(4) {} vs reference {base}", tiny.expected_makespan);
        }

        #[test]
        fn prop_divide_conquer_matches_exhaustive_on_small_chains(
            seed in any::<u64>(),
            n in 2usize..9,
            lambda_exp in -5.0f64..-2.0,
        ) {
            let lambda = 10f64.powf(lambda_exp);
            let inst = random_heterogeneous_chain(seed, n, lambda);
            let dc = optimal_chain_schedule_divide_conquer(&inst).unwrap();
            let brute = exhaustive_optimum(&inst);
            prop_assert!((dc.expected_makespan - brute).abs() / brute < 1e-10,
                "divide-conquer {} vs exhaustive {brute}", dc.expected_makespan);
        }
    }

    mod levelled {
        use super::*;
        use crate::brute_force::optimal_levelled_checkpoints_for_order;
        use ckpt_expectation::storage::StorageLevel;

        fn two_level(slots: usize) -> StorageLevels {
            StorageLevels::two_level(
                StorageLevel::new(0.25, 0.2).unwrap().with_slots(slots),
                StorageLevel::new(1.0, 1.0).unwrap(),
            )
            .unwrap()
        }

        /// A seed-derived hierarchy: a bounded fast tier with factors below
        /// one and an unbounded slow tier with factors around one — keeps
        /// the property tests away from the hand-picked constants.
        fn random_two_level(rng: &mut Pcg64) -> StorageLevels {
            let fast = StorageLevel::new(0.05 + rng.next_f64() * 0.9, 0.05 + rng.next_f64() * 0.9)
                .unwrap()
                .with_slots((rng.next_f64() * 4.0) as usize);
            let slow =
                StorageLevel::new(0.5 + rng.next_f64() * 2.0, 0.5 + rng.next_f64() * 2.0).unwrap();
            StorageLevels::two_level(fast, slow).unwrap()
        }

        #[test]
        fn single_unit_level_collapses_bitwise_to_the_flat_solver() {
            // The differential wall: with `StorageLevels::single()` every
            // floating-point operation of the levelled DP replays the flat
            // DP's in order, so values agree to the last bit — on arbitrary
            // heterogeneous instances, not just friendly ones.
            for seed in 0..25u64 {
                for lambda in [1e-5, 1e-3, 0.05] {
                    let inst = random_heterogeneous_chain(seed, 3 + (seed % 30) as usize, lambda);
                    let flat = optimal_chain_schedule(&inst).unwrap();
                    let levelled =
                        optimal_levelled_schedule(&inst, &StorageLevels::single()).unwrap();
                    assert_eq!(
                        levelled.expected_makespan.to_bits(),
                        flat.expected_makespan.to_bits(),
                        "seed {seed} λ {lambda}: {} vs {}",
                        levelled.expected_makespan,
                        flat.expected_makespan
                    );
                    assert_eq!(
                        levelled.checkpoints.iter().map(|&(j, _)| j).collect::<Vec<_>>(),
                        flat.checkpoint_positions,
                    );
                    assert!(levelled.checkpoints.iter().all(|&(_, l)| l == 0));
                    assert_eq!(levelled.schedule, flat.schedule);
                }
            }
        }

        #[test]
        fn collapse_also_holds_on_saturated_tables() {
            // λ·total work beyond the table's safe exponent: both solvers run
            // in the per-call exp_m1 regime and must still agree bitwise.
            let inst = chain_instance(&[2_000.0; 6], 60.0, 90.0, 30.0, 0.1);
            let flat = optimal_chain_schedule(&inst).unwrap();
            let levelled = optimal_levelled_schedule(&inst, &StorageLevels::single()).unwrap();
            assert_eq!(levelled.expected_makespan.to_bits(), flat.expected_makespan.to_bits());
        }

        #[test]
        fn fast_tier_with_ample_slots_takes_every_checkpoint() {
            // A strictly cheaper tier with enough slots dominates level by
            // level: the optimum writes everything to it.
            let inst = chain_instance(&[400.0, 100.0, 900.0, 250.0, 650.0], 60.0, 60.0, 30.0, 1e-3);
            let sol = optimal_levelled_schedule(&inst, &two_level(5)).unwrap();
            assert!(sol.checkpoints.iter().all(|&(_, l)| l == 0), "plan {:?}", sol.checkpoints);
            let flat = optimal_chain_schedule(&inst).unwrap();
            assert!(sol.expected_makespan < flat.expected_makespan);
        }

        #[test]
        fn bounded_slots_are_respected_and_zero_slots_collapse_to_slow() {
            let inst = chain_instance(&[400.0, 100.0, 900.0, 250.0, 650.0], 60.0, 60.0, 30.0, 1e-3);
            for slots in 0..=3usize {
                let sol = optimal_levelled_schedule(&inst, &two_level(slots)).unwrap();
                let used = sol.checkpoints.iter().filter(|&&(_, l)| l == 0).count();
                assert!(used <= slots, "{used} fast checkpoints with {slots} slots");
            }
            // Zero fast slots: the plan (and its value) is the slow tier's —
            // here the slow tier is the unit level, i.e. the flat optimum.
            let zero = optimal_levelled_schedule(&inst, &two_level(0)).unwrap();
            let flat = optimal_chain_schedule(&inst).unwrap();
            assert!((zero.expected_makespan - flat.expected_makespan).abs() < 1e-9);
        }

        #[test]
        fn more_slots_never_hurt() {
            // Monotone improvement by plan-set inclusion: every plan feasible
            // with s slots is feasible with s + 1.
            let inst =
                chain_instance(&[400.0, 100.0, 900.0, 250.0, 650.0, 300.0], 60.0, 60.0, 30.0, 1e-3);
            let mut last = f64::INFINITY;
            for slots in 0..=6usize {
                let sol = optimal_levelled_schedule(&inst, &two_level(slots)).unwrap();
                assert!(
                    sol.expected_makespan <= last + 1e-12,
                    "slots {slots}: {} after {last}",
                    sol.expected_makespan
                );
                last = sol.expected_makespan;
            }
        }

        #[test]
        #[should_panic(expected = "no feasible levelled plan")]
        fn slotless_single_level_has_no_plan() {
            let inst = chain_instance(&[400.0, 100.0], 60.0, 60.0, 30.0, 1e-3);
            let levels =
                StorageLevels::new(vec![StorageLevel::new(1.0, 1.0).unwrap().with_slots(0)])
                    .unwrap();
            let _ = optimal_levelled_schedule(&inst, &levels);
        }

        #[test]
        fn levelled_value_matches_table_total_cost_and_segments() {
            // The DP value, the levelled table's plan evaluation and the
            // closed form summed over the executable segments all agree.
            let inst = chain_instance(&[400.0, 100.0, 900.0, 250.0, 650.0], 45.0, 80.0, 25.0, 2e-3);
            let sol = optimal_levelled_schedule(&inst, &two_level(2)).unwrap();
            let order = properties::as_chain(inst.graph()).unwrap();
            let table = levelled_cost_table(&inst, &order, two_level(2)).unwrap();
            let total = table.total_cost(&sol.checkpoints);
            assert!((sol.expected_makespan - total).abs() / total < 1e-10);
            let segments = sol.to_segments(&inst).unwrap();
            assert_eq!(segments.len(), sol.checkpoints.len());
            let summed: f64 = segments
                .iter()
                .map(|s| {
                    expected_time(
                        &ExecutionParams::new(
                            s.work(),
                            s.checkpoint(),
                            inst.downtime(),
                            s.recovery(),
                            inst.lambda(),
                        )
                        .unwrap(),
                    )
                })
                .sum();
            assert!(
                (sol.expected_makespan - summed).abs() / summed < 1e-10,
                "dp {} vs segment sum {summed}",
                sol.expected_makespan
            );
        }

        #[test]
        fn levelled_analytic_value_matches_simulation() {
            // Execution-semantics wall: the Monte-Carlo engine run on the
            // levelled segments reproduces the levelled DP's expectation.
            let inst =
                chain_instance(&[400.0, 100.0, 900.0, 250.0], 60.0, 60.0, 30.0, 1.0 / 2_000.0);
            let sol = optimal_levelled_schedule(&inst, &two_level(1)).unwrap();
            let segments = sol.to_segments(&inst).unwrap();
            let outcome = ckpt_simulator::SimulationScenario::exponential(inst.lambda())
                .with_downtime(inst.downtime())
                .with_trials(20_000)
                .with_seed(23)
                .run(&segments);
            let rel = outcome.makespan.relative_error(sol.expected_makespan);
            assert!(rel < 0.02, "relative error {rel}");
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            #[test]
            fn prop_levelled_dp_matches_exhaustive(
                seed in any::<u64>(),
                n in 2usize..7,
                lambda_exp in -5.0f64..-2.0,
            ) {
                let lambda = 10f64.powf(lambda_exp);
                let inst = random_heterogeneous_chain(seed, n, lambda);
                let mut rng = Pcg64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
                let levels = random_two_level(&mut rng);
                let sol = optimal_levelled_schedule(&inst, &levels).unwrap();
                let order = properties::as_chain(inst.graph()).unwrap();
                let brute =
                    optimal_levelled_checkpoints_for_order(&inst, &order, &levels).unwrap();
                let gap = (sol.expected_makespan - brute.expected_makespan).abs()
                    / brute.expected_makespan;
                prop_assert!(gap < 1e-10,
                    "dp {} vs exhaustive {} (plan {:?} vs {:?})",
                    sol.expected_makespan, brute.expected_makespan,
                    sol.checkpoints, brute.checkpoints);
            }

            #[test]
            fn prop_single_unit_level_collapse_is_bitwise(
                seed in any::<u64>(),
                n in 2usize..24,
                lambda_exp in -6.0f64..-1.0,
            ) {
                let lambda = 10f64.powf(lambda_exp);
                let inst = random_heterogeneous_chain(seed, n, lambda);
                let order = properties::as_chain(inst.graph()).unwrap();
                let base = segment_cost_table(&inst, &order).unwrap();
                let table =
                    levelled_cost_table(&inst, &order, StorageLevels::single()).unwrap();
                let flat = optimal_placement_on_table(&base);
                let levelled = optimal_levelled_placement_on_table(&table);
                prop_assert_eq!(
                    levelled.expected_makespan.to_bits(),
                    flat.expected_makespan.to_bits()
                );
                prop_assert_eq!(levelled.checkpoint_positions(), flat.checkpoint_positions);
            }
        }
    }
}

//! Analytical evaluation of schedules.
//!
//! Because the platform failure law is Exponential (memoryless), the expected
//! makespan of a schedule is simply the **sum of Proposition 1 over its
//! checkpoint-delimited segments** — this is exactly how the proof of
//! Proposition 2 and the recurrence of Algorithm 1 compose segment costs.

use ckpt_dag::{topo, TaskId};
use ckpt_expectation::exact::{expected_time, ExecutionParams};
use ckpt_expectation::segment_cost::SegmentCostTable;
use ckpt_expectation::storage::{LevelledCostTable, StorageLevels};
use ckpt_expectation::sweep::LambdaSweep;

use crate::error::ScheduleError;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// The expected makespan of `schedule` on `instance`, computed analytically
/// with Proposition 1 applied to each segment.
///
/// # Errors
///
/// Returns an error if a segment has no work (cannot happen for schedules
/// produced by this crate) or if the instance parameters are invalid.
pub fn expected_makespan(
    instance: &ProblemInstance,
    schedule: &Schedule,
) -> Result<f64, ScheduleError> {
    let mut total = 0.0;
    for segment in schedule.segments(instance) {
        total +=
            segment_expected_time(instance, segment.work, segment.checkpoint, segment.recovery)?;
    }
    Ok(total)
}

/// The expected time of a single segment of `work` seconds followed by a
/// checkpoint of `checkpoint` seconds, protected by `recovery`.
///
/// # Errors
///
/// Returns [`ScheduleError::NonPositiveParameter`] if `work ≤ 0`.
pub fn segment_expected_time(
    instance: &ProblemInstance,
    work: f64,
    checkpoint: f64,
    recovery: f64,
) -> Result<f64, ScheduleError> {
    let params =
        ExecutionParams::new(work, checkpoint, instance.downtime(), recovery, instance.lambda())
            .map_err(|_| ScheduleError::NonPositiveParameter {
                name: "segment work",
                value: work,
            })?;
    Ok(expected_time(&params))
}

/// Builds a [`SegmentCostTable`] for `instance` along `order`: the
/// precomputed-cost API every solver that evaluates many segments of one
/// fixed order shares (the chain DP, exhaustive search, local search).
///
/// Position `x` of the table is protected by the initial recovery `R₀` when
/// `x = 0` and by the recovery cost of the task at position `x − 1`
/// otherwise, matching [`Schedule::segments`].
///
/// # Errors
///
/// * [`ScheduleError::EmptyInstance`] if `order` is empty;
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order of
///   the instance graph;
/// * propagated validation errors (cannot occur for instances built through
///   [`ProblemInstance::builder`]).
pub fn segment_cost_table(
    instance: &ProblemInstance,
    order: &[TaskId],
) -> Result<SegmentCostTable, ScheduleError> {
    let (weights, checkpoints, recoveries) = order_cost_vectors(instance, order)?;
    SegmentCostTable::new(
        instance.lambda(),
        instance.downtime(),
        &weights,
        &checkpoints,
        &recoveries,
    )
    .map_err(ScheduleError::from_expectation)
}

/// Builds a [`LevelledCostTable`] for `instance` along `order`: one
/// [`SegmentCostTable`] per storage level, the per-position checkpoint and
/// protecting-recovery costs scaled by each level's write/read factors (the
/// initial recovery `R₀` excepted — it belongs to no level). The
/// hierarchical-storage analogue of [`segment_cost_table`], consumed by
/// [`crate::chain_dp::optimal_levelled_schedule`].
///
/// # Errors
///
/// Same as [`segment_cost_table`].
pub fn levelled_cost_table(
    instance: &ProblemInstance,
    order: &[TaskId],
    levels: StorageLevels,
) -> Result<LevelledCostTable, ScheduleError> {
    let (weights, checkpoints, recoveries) = order_cost_vectors(instance, order)?;
    LevelledCostTable::new(
        instance.lambda(),
        instance.downtime(),
        &weights,
        &checkpoints,
        &recoveries,
        levels,
    )
    .map_err(ScheduleError::from_expectation)
}

/// Builds a [`LambdaSweep`] for `instance` along `order`: the λ-independent
/// half of [`segment_cost_table`], shared across every failure rate a sweep
/// evaluates (see [`crate::analysis::lambda_sweep`]).
///
/// # Errors
///
/// Same as [`segment_cost_table`].
pub fn lambda_sweep_for_order(
    instance: &ProblemInstance,
    order: &[TaskId],
) -> Result<LambdaSweep, ScheduleError> {
    let (weights, checkpoints, recoveries) = order_cost_vectors(instance, order)?;
    LambdaSweep::new(instance.downtime(), &weights, &checkpoints, &recoveries)
        .map_err(ScheduleError::from_expectation)
}

/// Validates `order` and materialises its positional weight, checkpoint-cost
/// and protecting-recovery vectors (the paper's per-last-task cost model).
#[allow(clippy::type_complexity)] // three parallel positional vectors
fn order_cost_vectors(
    instance: &ProblemInstance,
    order: &[TaskId],
) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>), ScheduleError> {
    order_cost_vectors_with(
        instance,
        order,
        |j| instance.checkpoint_cost(order[j]),
        |p| instance.recovery_cost(order[p]),
    )
}

/// Validates `order` and materialises its positional cost vectors from
/// arbitrary per-position accessors: `checkpoint_at(j)` is the cost of a
/// checkpoint taken after position `j`, `recovery_at(p)` the recovery cost
/// of that checkpoint. The protecting-recovery convention lives **only**
/// here: position `x > 0` is protected by `recovery_at(x − 1)`, position `0`
/// by the instance's initial recovery `R₀` — shared by the per-last-task
/// vectors above and `dag_schedule`'s §6 cost-model tables so the two can
/// never diverge.
#[allow(clippy::type_complexity)] // three parallel positional vectors
pub(crate) fn order_cost_vectors_with(
    instance: &ProblemInstance,
    order: &[TaskId],
    checkpoint_at: impl Fn(usize) -> f64,
    recovery_at: impl Fn(usize) -> f64,
) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>), ScheduleError> {
    if order.is_empty() {
        return Err(ScheduleError::EmptyInstance);
    }
    if !topo::is_topological_order(instance.graph(), order) {
        return Err(ScheduleError::InvalidOrder);
    }
    Ok(order_cost_vectors_prevalidated(instance, order, checkpoint_at, recovery_at))
}

/// The materialisation half of [`order_cost_vectors_with`], for callers that
/// have **already validated** `order` (non-empty, topological) and must not
/// pay the `O(n + E)` validation twice — `dag_schedule::model_cost_table`
/// validates before its live-set sweep (the sweep asserts rather than
/// returns on bad orders) and then only materialises here.
#[allow(clippy::type_complexity)] // three parallel positional vectors
pub(crate) fn order_cost_vectors_prevalidated(
    instance: &ProblemInstance,
    order: &[TaskId],
    checkpoint_at: impl Fn(usize) -> f64,
    recovery_at: impl Fn(usize) -> f64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    debug_assert!(topo::is_topological_order(instance.graph(), order));
    let n = order.len();
    let weights: Vec<f64> = order.iter().map(|&t| instance.weight(t)).collect();
    let checkpoints: Vec<f64> = (0..n).map(checkpoint_at).collect();
    let mut recoveries = Vec::with_capacity(n);
    recoveries.push(instance.initial_recovery());
    for x in 1..n {
        recoveries.push(recovery_at(x - 1));
    }
    (weights, checkpoints, recoveries)
}

/// The slowdown of a schedule: expected makespan divided by the total task
/// weight (the lower bound achievable with free, failure-proof execution).
///
/// # Errors
///
/// Propagates errors from [`expected_makespan`].
pub fn slowdown(instance: &ProblemInstance, schedule: &Schedule) -> Result<f64, ScheduleError> {
    Ok(expected_makespan(instance, schedule)? / instance.total_weight())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::{generators, TaskId};

    fn ids(ids: &[usize]) -> Vec<TaskId> {
        ids.iter().map(|&i| TaskId(i)).collect()
    }

    fn chain_instance(lambda: f64) -> ProblemInstance {
        let graph = generators::chain(&[100.0, 200.0, 300.0]).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(10.0)
            .uniform_recovery_cost(20.0)
            .initial_recovery(5.0)
            .downtime(2.0)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    #[test]
    fn expected_makespan_sums_segment_formulas() {
        let inst = chain_instance(1e-4);
        let schedule = Schedule::new(&inst, ids(&[0, 1, 2]), vec![true, false, true]).unwrap();
        // Two segments: (100, C=10, R=5) and (500, C=10, R=20).
        let manual = expected_time(&ExecutionParams::new(100.0, 10.0, 2.0, 5.0, 1e-4).unwrap())
            + expected_time(&ExecutionParams::new(500.0, 10.0, 2.0, 20.0, 1e-4).unwrap());
        let computed = expected_makespan(&inst, &schedule).unwrap();
        assert!((computed - manual).abs() < 1e-9);
    }

    #[test]
    fn near_zero_lambda_gives_failure_free_makespan() {
        let inst = chain_instance(1e-15);
        let schedule = Schedule::checkpoint_everywhere(&inst, ids(&[0, 1, 2])).unwrap();
        let e = expected_makespan(&inst, &schedule).unwrap();
        assert!((e - schedule.failure_free_makespan(&inst)).abs() < 1e-6);
    }

    #[test]
    fn more_failures_increase_expected_makespan() {
        let low = chain_instance(1e-6);
        let high = chain_instance(1e-3);
        let s_low = Schedule::checkpoint_everywhere(&low, ids(&[0, 1, 2])).unwrap();
        let s_high = Schedule::checkpoint_everywhere(&high, ids(&[0, 1, 2])).unwrap();
        assert!(
            expected_makespan(&high, &s_high).unwrap() > expected_makespan(&low, &s_low).unwrap()
        );
    }

    #[test]
    fn checkpointing_helps_when_failures_are_frequent() {
        // With a high failure rate, checkpointing after every task beats a
        // single final checkpoint.
        let inst = chain_instance(1.0 / 300.0);
        let all = Schedule::checkpoint_everywhere(&inst, ids(&[0, 1, 2])).unwrap();
        let last = Schedule::checkpoint_final_only(&inst, ids(&[0, 1, 2])).unwrap();
        assert!(expected_makespan(&inst, &all).unwrap() < expected_makespan(&inst, &last).unwrap());
    }

    #[test]
    fn checkpointing_hurts_when_failures_are_rare() {
        // With a negligible failure rate, every checkpoint is pure overhead.
        let inst = chain_instance(1e-9);
        let all = Schedule::checkpoint_everywhere(&inst, ids(&[0, 1, 2])).unwrap();
        let last = Schedule::checkpoint_final_only(&inst, ids(&[0, 1, 2])).unwrap();
        assert!(expected_makespan(&inst, &all).unwrap() > expected_makespan(&inst, &last).unwrap());
    }

    #[test]
    fn slowdown_is_at_least_one() {
        let inst = chain_instance(1e-4);
        let s = Schedule::checkpoint_final_only(&inst, ids(&[0, 1, 2])).unwrap();
        assert!(slowdown(&inst, &s).unwrap() >= 1.0);
    }

    #[test]
    fn segment_expected_time_rejects_zero_work() {
        let inst = chain_instance(1e-4);
        assert!(segment_expected_time(&inst, 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn analytical_value_matches_simulation() {
        // Cross-validation of the analytical evaluator against the
        // Monte-Carlo simulator (experiment E1 in miniature, at schedule level).
        let inst = chain_instance(1.0 / 2_000.0);
        let schedule = Schedule::new(&inst, ids(&[0, 1, 2]), vec![false, true, true]).unwrap();
        let analytical = expected_makespan(&inst, &schedule).unwrap();
        let segments = schedule.to_segments(&inst).unwrap();
        let outcome = ckpt_simulator::SimulationScenario::exponential(inst.lambda())
            .with_downtime(inst.downtime())
            .with_trials(20_000)
            .with_seed(17)
            .run(&segments);
        let rel = outcome.makespan.relative_error(analytical);
        assert!(rel < 0.02, "relative error {rel}");
    }
}

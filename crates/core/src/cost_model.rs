//! General checkpoint-cost models (paper §6, first extension).
//!
//! The baseline model charges a checkpoint taken after task `T_i` a cost `C_i`
//! that depends only on `T_i`. In general, the state a checkpoint must save is
//! the output of every completed task that still has an unexecuted successor —
//! the **live set** — so the cost should be a function of that set. For linear
//! chains the live set is always the single most recent task, which is why the
//! paper's per-task model is fully general there (§6); for wider DAGs the two
//! models differ and this module makes the difference explicit.

use std::collections::BTreeSet;

use ckpt_dag::{traversal, TaskGraph, TaskId};

use crate::instance::ProblemInstance;

/// How the cost of a checkpoint (and of the matching recovery) is computed
/// from the execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CheckpointCostModel {
    /// The paper's baseline: the cost of a checkpoint taken after task `T_i`
    /// is `C_i`, regardless of what else is in memory.
    #[default]
    PerLastTask,
    /// The checkpoint must save the output of every live task; its cost is the
    /// **sum** of their per-task costs (bandwidth-bound stable storage).
    LiveSetSum,
    /// The live tasks are saved in parallel to per-processor local storage;
    /// the cost is the **maximum** of their per-task costs.
    LiveSetMax,
}

impl std::fmt::Display for CheckpointCostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointCostModel::PerLastTask => write!(f, "per-last-task"),
            CheckpointCostModel::LiveSetSum => write!(f, "live-set-sum"),
            CheckpointCostModel::LiveSetMax => write!(f, "live-set-max"),
        }
    }
}

impl CheckpointCostModel {
    /// The cost of a checkpoint taken after executing the prefix
    /// `order[..=position]`, under this model.
    ///
    /// `per_task` maps a task to its individual cost (`C_i` for checkpoints,
    /// `R_i` for recoveries).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds of `order`.
    pub fn cost_after_prefix<F>(
        &self,
        graph: &TaskGraph,
        order: &[TaskId],
        position: usize,
        per_task: F,
    ) -> f64
    where
        F: Fn(TaskId) -> f64,
    {
        assert!(position < order.len(), "position out of bounds");
        match self {
            CheckpointCostModel::PerLastTask => per_task(order[position]),
            CheckpointCostModel::LiveSetSum | CheckpointCostModel::LiveSetMax => {
                let completed: BTreeSet<TaskId> = order[..=position].iter().copied().collect();
                let mut live = traversal::live_tasks(graph, &completed);
                if live.is_empty() {
                    // End of the execution: by convention the final state to
                    // save is the last task's output.
                    live.push(order[position]);
                }
                match self {
                    CheckpointCostModel::LiveSetSum => live.iter().map(|&t| per_task(t)).sum(),
                    _ => live.iter().map(|&t| per_task(t)).fold(0.0f64, f64::max),
                }
            }
        }
    }

    /// The checkpoint cost after `order[..=position]` using the instance's
    /// per-task checkpoint costs.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds of `order`.
    pub fn checkpoint_cost(
        &self,
        instance: &ProblemInstance,
        order: &[TaskId],
        position: usize,
    ) -> f64 {
        self.cost_after_prefix(instance.graph(), order, position, |t| instance.checkpoint_cost(t))
    }

    /// The recovery cost protecting a segment that starts right after
    /// `order[..=position]`, using the instance's per-task recovery costs.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds of `order`.
    pub fn recovery_cost(
        &self,
        instance: &ProblemInstance,
        order: &[TaskId],
        position: usize,
    ) -> f64 {
        self.cost_after_prefix(instance.graph(), order, position, |t| instance.recovery_cost(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::generators;

    fn diamond_instance() -> ProblemInstance {
        let graph = generators::diamond([10.0, 20.0, 30.0, 40.0]).unwrap();
        ProblemInstance::builder(graph)
            .checkpoint_costs(vec![1.0, 2.0, 4.0, 8.0])
            .recovery_costs(vec![16.0, 32.0, 64.0, 128.0])
            .platform_lambda(1e-3)
            .build()
            .unwrap()
    }

    #[test]
    fn per_last_task_ignores_the_live_set() {
        let inst = diamond_instance();
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        let model = CheckpointCostModel::PerLastTask;
        assert_eq!(model.checkpoint_cost(&inst, &order, 1), 2.0);
        assert_eq!(model.recovery_cost(&inst, &order, 2), 64.0);
    }

    #[test]
    fn live_set_sum_counts_all_live_outputs() {
        let inst = diamond_instance();
        // Diamond a -> {b, c} -> d, order a b c d.
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        let model = CheckpointCostModel::LiveSetSum;
        // After a: live = {a} (b and c still need it) -> cost 1.
        assert_eq!(model.checkpoint_cost(&inst, &order, 0), 1.0);
        // After a, b: live = {a (c pending), b (d pending)} -> 1 + 2 = 3.
        assert_eq!(model.checkpoint_cost(&inst, &order, 1), 3.0);
        // After a, b, c: live = {b, c} (both feed d) -> 2 + 4 = 6.
        assert_eq!(model.checkpoint_cost(&inst, &order, 2), 6.0);
        // After everything: convention = last task -> 8.
        assert_eq!(model.checkpoint_cost(&inst, &order, 3), 8.0);
    }

    #[test]
    fn live_set_max_takes_the_largest_cost() {
        let inst = diamond_instance();
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        let model = CheckpointCostModel::LiveSetMax;
        assert_eq!(model.checkpoint_cost(&inst, &order, 1), 2.0);
        assert_eq!(model.checkpoint_cost(&inst, &order, 2), 4.0);
        assert_eq!(model.recovery_cost(&inst, &order, 2), 64.0);
    }

    #[test]
    fn all_models_coincide_on_linear_chains() {
        // §6's observation: on a chain the live set is always the single most
        // recently completed task, so the general models reduce to the
        // baseline.
        let graph = generators::chain(&[10.0, 20.0, 30.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .checkpoint_costs(vec![3.0, 5.0, 7.0])
            .recovery_costs(vec![11.0, 13.0, 17.0])
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let order = vec![TaskId(0), TaskId(1), TaskId(2)];
        for pos in 0..3 {
            let base = CheckpointCostModel::PerLastTask.checkpoint_cost(&inst, &order, pos);
            assert_eq!(CheckpointCostModel::LiveSetSum.checkpoint_cost(&inst, &order, pos), base);
            assert_eq!(CheckpointCostModel::LiveSetMax.checkpoint_cost(&inst, &order, pos), base);
            let base_r = CheckpointCostModel::PerLastTask.recovery_cost(&inst, &order, pos);
            assert_eq!(CheckpointCostModel::LiveSetSum.recovery_cost(&inst, &order, pos), base_r);
            assert_eq!(CheckpointCostModel::LiveSetMax.recovery_cost(&inst, &order, pos), base_r);
        }
    }

    #[test]
    fn display_and_default() {
        assert_eq!(CheckpointCostModel::default(), CheckpointCostModel::PerLastTask);
        assert_eq!(CheckpointCostModel::PerLastTask.to_string(), "per-last-task");
        assert_eq!(CheckpointCostModel::LiveSetSum.to_string(), "live-set-sum");
        assert_eq!(CheckpointCostModel::LiveSetMax.to_string(), "live-set-max");
    }

    #[test]
    #[should_panic(expected = "position out of bounds")]
    fn out_of_bounds_position_panics() {
        let inst = diamond_instance();
        let order = vec![TaskId(0)];
        let _ = CheckpointCostModel::PerLastTask.checkpoint_cost(&inst, &order, 3);
    }
}

//! General checkpoint-cost models (paper §6, first extension).
//!
//! The baseline model charges a checkpoint taken after task `T_i` a cost `C_i`
//! that depends only on `T_i`. In general, the state a checkpoint must save is
//! the output of every completed task that still has an unexecuted successor —
//! the **live set** — so the cost should be a function of that set. For linear
//! chains the live set is always the single most recent task, which is why the
//! paper's per-task model is fully general there (§6); for wider DAGs the two
//! models differ and this module makes the difference explicit.
//!
//! Two evaluation paths are provided:
//!
//! * [`CheckpointCostModel::cost_after_prefix`] re-derives the live set of
//!   one prefix from scratch — the reference formulation, `O(n·degree)` per
//!   query;
//! * [`CheckpointCostModel::costs_along_order`] sweeps a whole order once
//!   with [`LiveSetSweep`], maintaining
//!   the live-set aggregates incrementally, and emits **both** positional
//!   cost vectors (checkpoint and recovery) in `O(n + E)` — the path every
//!   table build ([`crate::dag_schedule::model_cost_table`]) and the order
//!   search take. The two paths are cross-checked by property tests.

use std::collections::{BTreeSet, BinaryHeap};

use ckpt_dag::{traversal, traversal::LiveSetSweep, TaskGraph, TaskId};

use crate::instance::ProblemInstance;

/// How the cost of a checkpoint (and of the matching recovery) is computed
/// from the execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CheckpointCostModel {
    /// The paper's baseline: the cost of a checkpoint taken after task `T_i`
    /// is `C_i`, regardless of what else is in memory.
    #[default]
    PerLastTask,
    /// The checkpoint must save the output of every live task; its cost is the
    /// **sum** of their per-task costs (bandwidth-bound stable storage).
    LiveSetSum,
    /// The live tasks are saved in parallel to per-processor local storage;
    /// the cost is the **maximum** of their per-task costs.
    LiveSetMax,
}

impl std::fmt::Display for CheckpointCostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointCostModel::PerLastTask => write!(f, "per-last-task"),
            CheckpointCostModel::LiveSetSum => write!(f, "live-set-sum"),
            CheckpointCostModel::LiveSetMax => write!(f, "live-set-max"),
        }
    }
}

impl CheckpointCostModel {
    /// The cost of a checkpoint taken after executing the prefix
    /// `order[..=position]`, under this model.
    ///
    /// `per_task` maps a task to its individual cost (`C_i` for checkpoints,
    /// `R_i` for recoveries).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds of `order`.
    pub fn cost_after_prefix<F>(
        &self,
        graph: &TaskGraph,
        order: &[TaskId],
        position: usize,
        per_task: F,
    ) -> f64
    where
        F: Fn(TaskId) -> f64,
    {
        assert!(position < order.len(), "position out of bounds");
        match self {
            CheckpointCostModel::PerLastTask => per_task(order[position]),
            CheckpointCostModel::LiveSetSum | CheckpointCostModel::LiveSetMax => {
                let completed: BTreeSet<TaskId> = order[..=position].iter().copied().collect();
                let mut live = traversal::live_tasks(graph, &completed);
                if live.is_empty() {
                    // End of the execution: by convention the final state to
                    // save is the last task's output.
                    live.push(order[position]);
                }
                match self {
                    CheckpointCostModel::LiveSetSum => live.iter().map(|&t| per_task(t)).sum(),
                    _ => live.iter().map(|&t| per_task(t)).fold(0.0f64, f64::max),
                }
            }
        }
    }

    /// The checkpoint cost after `order[..=position]` using the instance's
    /// per-task checkpoint costs.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds of `order`.
    pub fn checkpoint_cost(
        &self,
        instance: &ProblemInstance,
        order: &[TaskId],
        position: usize,
    ) -> f64 {
        self.cost_after_prefix(instance.graph(), order, position, |t| instance.checkpoint_cost(t))
    }

    /// The recovery cost protecting a segment that starts right after
    /// `order[..=position]`, using the instance's per-task recovery costs.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds of `order`.
    pub fn recovery_cost(
        &self,
        instance: &ProblemInstance,
        order: &[TaskId],
        position: usize,
    ) -> f64 {
        self.cost_after_prefix(instance.graph(), order, position, |t| instance.recovery_cost(t))
    }

    /// Both positional cost vectors of `order` under this model, in **one
    /// incremental sweep**: entry `i` of the first vector is the cost of a
    /// checkpoint taken right after position `i`
    /// ([`checkpoint_cost`](CheckpointCostModel::checkpoint_cost)`(…, i)`),
    /// entry `i` of the second the recovery cost of that checkpoint
    /// ([`recovery_cost`](CheckpointCostModel::recovery_cost)`(…, i)`).
    ///
    /// The live-set models maintain the set as a delta structure
    /// ([`LiveSetSweep`]) instead of re-deriving it per position:
    /// [`LiveSetSum`](CheckpointCostModel::LiveSetSum) keeps running sums
    /// updated on each enter/retire delta (`O(n + E)` total), and
    /// [`LiveSetMax`](CheckpointCostModel::LiveSetMax) keeps lazily-pruned
    /// max-heaps — each task is pushed and popped at most once, for
    /// `O(n log n + E)` total. Either way the whole order costs far less
    /// than the `O(n·degree)`-per-position reference path, which is kept
    /// only for cross-checking.
    ///
    /// ```
    /// use ckpt_core::{cost_model::CheckpointCostModel, ProblemInstance};
    /// use ckpt_dag::{generators, TaskId};
    ///
    /// let graph = generators::diamond([10.0, 20.0, 30.0, 40.0])?;
    /// let instance = ProblemInstance::builder(graph)
    ///     .checkpoint_costs(vec![1.0, 2.0, 4.0, 8.0])
    ///     .uniform_recovery_cost(5.0)
    ///     .platform_lambda(1e-3)
    ///     .build()?;
    /// let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
    /// let model = CheckpointCostModel::LiveSetSum;
    /// let (ckpt, _rec) = model.costs_along_order(&instance, &order);
    /// // Matches the per-position reference path: after {a, b} the live set
    /// // is {a, b} (c and d still need them), so the checkpoint costs 1 + 2.
    /// assert_eq!(ckpt[1], 3.0);
    /// assert_eq!(ckpt[1], model.checkpoint_cost(&instance, &order, 1));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Under the live-set models, panics if `order` is not a topological
    /// order of the instance graph covering every task exactly once (the
    /// sweep asserts precedence as it advances).
    /// [`PerLastTask`](CheckpointCostModel::PerLastTask) reads positions
    /// independently and performs no such validation — callers needing the
    /// check (e.g. [`crate::dag_schedule::model_cost_table`]) validate
    /// before calling.
    pub fn costs_along_order(
        &self,
        instance: &ProblemInstance,
        order: &[TaskId],
    ) -> (Vec<f64>, Vec<f64>) {
        let mut sweep = LiveSetCostSweep::new(instance.graph());
        let mut ckpt = Vec::with_capacity(order.len());
        let mut rec = Vec::with_capacity(order.len());
        sweep.costs_into(*self, instance, order, &mut ckpt, &mut rec);
        (ckpt, rec)
    }
}

/// Reusable working state for repeated [`costs_along_order`] sweeps over
/// orders of **one graph**: the live-set delta structure and the
/// [`LiveSetMax`] lazy max-heaps are cleared and refilled instead of being
/// reallocated per order. This is what the order search's proposal loop
/// holds — evaluating thousands of candidate orders allocates nothing.
///
/// [`costs_along_order`]: CheckpointCostModel::costs_along_order
/// [`LiveSetMax`]: CheckpointCostModel::LiveSetMax
#[derive(Debug, Clone)]
pub struct LiveSetCostSweep<'g> {
    sweep: LiveSetSweep<'g>,
    ckpt_heap: BinaryHeap<MaxCostEntry>,
    rec_heap: BinaryHeap<MaxCostEntry>,
}

impl<'g> LiveSetCostSweep<'g> {
    /// Working state sized for `graph` (which must be the graph every
    /// subsequent order belongs to).
    pub fn new(graph: &'g TaskGraph) -> Self {
        LiveSetCostSweep {
            sweep: LiveSetSweep::new(graph),
            ckpt_heap: BinaryHeap::new(),
            rec_heap: BinaryHeap::new(),
        }
    }

    /// The buffer-reusing core of
    /// [`CheckpointCostModel::costs_along_order`]: clears `ckpt_out` /
    /// `rec_out` and fills them with the positional checkpoint and recovery
    /// costs of `order` under `model`. Identical results, same `O(n + E)`
    /// sweep; the only difference is where the working memory lives.
    ///
    /// # Panics
    ///
    /// Same contract as [`CheckpointCostModel::costs_along_order`]: the
    /// live-set models panic on non-topological orders (the sweep asserts),
    /// the per-last-task model performs no validation.
    pub fn costs_into(
        &mut self,
        model: CheckpointCostModel,
        instance: &ProblemInstance,
        order: &[TaskId],
        ckpt_out: &mut Vec<f64>,
        rec_out: &mut Vec<f64>,
    ) {
        ckpt_out.clear();
        rec_out.clear();
        match model {
            CheckpointCostModel::PerLastTask => {
                ckpt_out.extend(order.iter().map(|&t| instance.checkpoint_cost(t)));
                rec_out.extend(order.iter().map(|&t| instance.recovery_cost(t)));
            }
            CheckpointCostModel::LiveSetSum => {
                self.sweep.reset();
                let (mut ckpt_sum, mut rec_sum) = (0.0f64, 0.0f64);
                for &task in order {
                    let entered = self.sweep.complete(task, |retired| {
                        ckpt_sum -= instance.checkpoint_cost(retired);
                        rec_sum -= instance.recovery_cost(retired);
                    });
                    if entered {
                        ckpt_sum += instance.checkpoint_cost(task);
                        rec_sum += instance.recovery_cost(task);
                    }
                    if self.sweep.live_count() == 0 {
                        // Empty live set (end of the order, or between
                        // independent components): the state to save is by
                        // convention the last task's output.
                        ckpt_out.push(instance.checkpoint_cost(task));
                        rec_out.push(instance.recovery_cost(task));
                    } else {
                        ckpt_out.push(ckpt_sum);
                        rec_out.push(rec_sum);
                    }
                }
            }
            CheckpointCostModel::LiveSetMax => {
                self.sweep.reset();
                self.ckpt_heap.clear();
                self.rec_heap.clear();
                for &task in order {
                    let entered = self.sweep.complete(task, |_| {});
                    if entered {
                        self.ckpt_heap
                            .push(MaxCostEntry { cost: instance.checkpoint_cost(task), task });
                        self.rec_heap
                            .push(MaxCostEntry { cost: instance.recovery_cost(task), task });
                    }
                    if self.sweep.live_count() == 0 {
                        ckpt_out.push(instance.checkpoint_cost(task));
                        rec_out.push(instance.recovery_cost(task));
                    } else {
                        ckpt_out.push(live_max(&mut self.ckpt_heap, &self.sweep));
                        rec_out.push(live_max(&mut self.rec_heap, &self.sweep));
                    }
                }
            }
        }
    }
}

/// A max-heap entry of the [`CheckpointCostModel::LiveSetMax`] sweep. Heaps
/// are pruned lazily: retired tasks stay in the heap until they surface and
/// are popped, so each task is pushed and popped at most once over a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MaxCostEntry {
    cost: f64,
    task: TaskId,
}

impl Eq for MaxCostEntry {}

impl Ord for MaxCostEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost.total_cmp(&other.cost).then(self.task.cmp(&other.task))
    }
}

impl PartialOrd for MaxCostEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The largest cost among currently-live heap entries, discarding retired
/// tops as they surface.
///
/// # Panics
///
/// Panics if no live entry remains (callers check `live_count() > 0`).
fn live_max(heap: &mut BinaryHeap<MaxCostEntry>, sweep: &LiveSetSweep<'_>) -> f64 {
    while let Some(top) = heap.peek() {
        if sweep.is_live(top.task) {
            return top.cost;
        }
        heap.pop();
    }
    unreachable!("live_max called with a non-empty live set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::generators;

    fn diamond_instance() -> ProblemInstance {
        let graph = generators::diamond([10.0, 20.0, 30.0, 40.0]).unwrap();
        ProblemInstance::builder(graph)
            .checkpoint_costs(vec![1.0, 2.0, 4.0, 8.0])
            .recovery_costs(vec![16.0, 32.0, 64.0, 128.0])
            .platform_lambda(1e-3)
            .build()
            .unwrap()
    }

    #[test]
    fn per_last_task_ignores_the_live_set() {
        let inst = diamond_instance();
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        let model = CheckpointCostModel::PerLastTask;
        assert_eq!(model.checkpoint_cost(&inst, &order, 1), 2.0);
        assert_eq!(model.recovery_cost(&inst, &order, 2), 64.0);
    }

    #[test]
    fn live_set_sum_counts_all_live_outputs() {
        let inst = diamond_instance();
        // Diamond a -> {b, c} -> d, order a b c d.
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        let model = CheckpointCostModel::LiveSetSum;
        // After a: live = {a} (b and c still need it) -> cost 1.
        assert_eq!(model.checkpoint_cost(&inst, &order, 0), 1.0);
        // After a, b: live = {a (c pending), b (d pending)} -> 1 + 2 = 3.
        assert_eq!(model.checkpoint_cost(&inst, &order, 1), 3.0);
        // After a, b, c: live = {b, c} (both feed d) -> 2 + 4 = 6.
        assert_eq!(model.checkpoint_cost(&inst, &order, 2), 6.0);
        // After everything: convention = last task -> 8.
        assert_eq!(model.checkpoint_cost(&inst, &order, 3), 8.0);
    }

    #[test]
    fn live_set_max_takes_the_largest_cost() {
        let inst = diamond_instance();
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        let model = CheckpointCostModel::LiveSetMax;
        assert_eq!(model.checkpoint_cost(&inst, &order, 1), 2.0);
        assert_eq!(model.checkpoint_cost(&inst, &order, 2), 4.0);
        assert_eq!(model.recovery_cost(&inst, &order, 2), 64.0);
    }

    #[test]
    fn reused_cost_sweep_matches_fresh_sweeps_across_orders() {
        // One LiveSetCostSweep evaluating both topological orders of the
        // diamond in a row must give exactly what per-order fresh sweeps do.
        let inst = diamond_instance();
        let orders = [
            vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)],
            vec![TaskId(0), TaskId(2), TaskId(1), TaskId(3)],
        ];
        for model in [CheckpointCostModel::LiveSetSum, CheckpointCostModel::LiveSetMax] {
            let mut reused = LiveSetCostSweep::new(inst.graph());
            let (mut ckpt, mut rec) = (Vec::new(), Vec::new());
            for order in &orders {
                reused.costs_into(model, &inst, order, &mut ckpt, &mut rec);
                let (fresh_ckpt, fresh_rec) = model.costs_along_order(&inst, order);
                assert_eq!(ckpt, fresh_ckpt, "{model}");
                assert_eq!(rec, fresh_rec, "{model}");
            }
        }
    }

    #[test]
    fn all_models_coincide_on_linear_chains() {
        // §6's observation: on a chain the live set is always the single most
        // recently completed task, so the general models reduce to the
        // baseline.
        let graph = generators::chain(&[10.0, 20.0, 30.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .checkpoint_costs(vec![3.0, 5.0, 7.0])
            .recovery_costs(vec![11.0, 13.0, 17.0])
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let order = vec![TaskId(0), TaskId(1), TaskId(2)];
        for pos in 0..3 {
            let base = CheckpointCostModel::PerLastTask.checkpoint_cost(&inst, &order, pos);
            assert_eq!(CheckpointCostModel::LiveSetSum.checkpoint_cost(&inst, &order, pos), base);
            assert_eq!(CheckpointCostModel::LiveSetMax.checkpoint_cost(&inst, &order, pos), base);
            let base_r = CheckpointCostModel::PerLastTask.recovery_cost(&inst, &order, pos);
            assert_eq!(CheckpointCostModel::LiveSetSum.recovery_cost(&inst, &order, pos), base_r);
            assert_eq!(CheckpointCostModel::LiveSetMax.recovery_cost(&inst, &order, pos), base_r);
        }
    }

    #[test]
    fn display_and_default() {
        assert_eq!(CheckpointCostModel::default(), CheckpointCostModel::PerLastTask);
        assert_eq!(CheckpointCostModel::PerLastTask.to_string(), "per-last-task");
        assert_eq!(CheckpointCostModel::LiveSetSum.to_string(), "live-set-sum");
        assert_eq!(CheckpointCostModel::LiveSetMax.to_string(), "live-set-max");
    }

    #[test]
    #[should_panic(expected = "position out of bounds")]
    fn out_of_bounds_position_panics() {
        let inst = diamond_instance();
        let order = vec![TaskId(0)];
        let _ = CheckpointCostModel::PerLastTask.checkpoint_cost(&inst, &order, 3);
    }

    const ALL_MODELS: [CheckpointCostModel; 3] = [
        CheckpointCostModel::PerLastTask,
        CheckpointCostModel::LiveSetSum,
        CheckpointCostModel::LiveSetMax,
    ];

    #[test]
    fn incremental_sweep_matches_reference_on_diamond() {
        let inst = diamond_instance();
        let order = vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)];
        for model in ALL_MODELS {
            let (ckpt, rec) = model.costs_along_order(&inst, &order);
            for pos in 0..order.len() {
                assert_eq!(ckpt[pos], model.checkpoint_cost(&inst, &order, pos), "{model} ckpt");
                assert_eq!(rec[pos], model.recovery_cost(&inst, &order, pos), "{model} rec");
            }
        }
    }

    #[test]
    fn incremental_sweep_handles_independent_components() {
        // Independent tasks: the live set is empty after every completion, so
        // every model falls back to the per-last-task convention everywhere.
        let graph = generators::independent(&[5.0, 6.0, 7.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .checkpoint_costs(vec![1.0, 2.0, 3.0])
            .recovery_costs(vec![4.0, 5.0, 6.0])
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let order = vec![TaskId(2), TaskId(0), TaskId(1)];
        for model in ALL_MODELS {
            let (ckpt, rec) = model.costs_along_order(&inst, &order);
            assert_eq!(ckpt, vec![3.0, 1.0, 2.0], "{model}");
            assert_eq!(rec, vec![6.0, 4.0, 5.0], "{model}");
        }
    }

    // The incremental-vs-recomputing sweep property test lives in the
    // workspace integration suite (`tests/live_set_cost_models.rs`): its
    // random layered DAG cases come from the shared
    // `ckpt_bench::testgen::random_layered_proptest_case` generator, and
    // `ckpt-bench` cannot be a dev-dependency here without the unit-test
    // build seeing two distinct `ckpt-core` compilations.
}

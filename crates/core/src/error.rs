//! Error type for scheduling operations — each variant is the violation of
//! one §2 model assumption (positive parameters, topological orders, the
//! mandatory final checkpoint) or of a solver's applicability condition
//! (chains for Algorithm 1, independent tasks for the Proposition 2
//! heuristics).

use std::error::Error;
use std::fmt;

use ckpt_dag::TaskId;

/// Error returned by instance construction, schedule validation and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A numeric parameter must be strictly positive and finite.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A numeric parameter must be non-negative and finite.
    NegativeParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
    },
    /// A per-task cost vector has the wrong length.
    CostVectorLength {
        /// What the vector describes (e.g. "checkpoint costs").
        what: &'static str,
        /// Expected length (the task count).
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// The instance has no tasks.
    EmptyInstance,
    /// The schedule's order is not a topological order of the instance graph.
    InvalidOrder,
    /// The schedule's checkpoint vector has the wrong length.
    CheckpointVectorLength {
        /// Expected length (the task count).
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// The paper's model always checkpoints after the last executed task.
    MissingFinalCheckpoint,
    /// The operation requires the instance graph to be a linear chain.
    NotAChain,
    /// The operation requires the instance tasks to be independent.
    NotIndependent,
    /// The instance is too large for exhaustive search.
    TooLargeForBruteForce {
        /// Number of tasks in the instance.
        tasks: usize,
        /// Maximum supported by the exhaustive solver.
        limit: usize,
    },
    /// A task id referenced by the schedule does not belong to the instance.
    UnknownTask {
        /// The offending task id.
        task: TaskId,
    },
    /// A 3-PARTITION instance is malformed (wrong count, sum or value range).
    InvalidThreePartition {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A storage hierarchy is malformed (more than one slot-bounded level —
    /// the levelled DP threads a single slot budget through its state).
    InvalidStorageLevels,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be strictly positive, got {value}")
            }
            ScheduleError::NegativeParameter { name, value } => {
                write!(f, "parameter `{name}` must be non-negative, got {value}")
            }
            ScheduleError::CostVectorLength { what, expected, actual } => {
                write!(f, "{what} must have one entry per task ({expected}), got {actual}")
            }
            ScheduleError::EmptyInstance => write!(f, "the instance has no tasks"),
            ScheduleError::InvalidOrder => {
                write!(f, "the schedule order is not a topological order of the task graph")
            }
            ScheduleError::CheckpointVectorLength { expected, actual } => {
                write!(
                    f,
                    "checkpoint decisions must have one entry per task ({expected}), got {actual}"
                )
            }
            ScheduleError::MissingFinalCheckpoint => {
                write!(f, "the model requires a checkpoint after the last executed task")
            }
            ScheduleError::NotAChain => {
                write!(f, "this algorithm requires a linear-chain task graph")
            }
            ScheduleError::NotIndependent => {
                write!(f, "this algorithm requires independent tasks (no dependences)")
            }
            ScheduleError::TooLargeForBruteForce { tasks, limit } => {
                write!(f, "exhaustive search supports at most {limit} tasks, got {tasks}")
            }
            ScheduleError::UnknownTask { task } => {
                write!(f, "task {task} does not belong to the instance")
            }
            ScheduleError::InvalidThreePartition { reason } => {
                write!(f, "invalid 3-PARTITION instance: {reason}")
            }
            ScheduleError::InvalidStorageLevels => {
                write!(f, "at most one storage level may carry a slot bound")
            }
        }
    }
}

impl Error for ScheduleError {}

impl ScheduleError {
    /// Maps a validation error from the analytical layer (`ckpt-expectation`)
    /// onto the scheduling error vocabulary — shared by every call site that
    /// builds a [`SegmentCostTable`](ckpt_expectation::segment_cost::SegmentCostTable)
    /// or [`LambdaSweep`](ckpt_expectation::sweep::LambdaSweep) from instance
    /// data.
    pub fn from_expectation(err: ckpt_expectation::ExpectationError) -> Self {
        use ckpt_expectation::ExpectationError;
        match err {
            ExpectationError::NegativeParameter { name, value } => {
                ScheduleError::NegativeParameter { name, value }
            }
            ExpectationError::NonPositiveParameter { name, value }
            | ExpectationError::NonFiniteParameter { name, value }
            | ExpectationError::FractionOutOfRange { name, value } => {
                ScheduleError::NonPositiveParameter { name, value }
            }
            ExpectationError::ZeroProcessors => {
                ScheduleError::NonPositiveParameter { name: "processors", value: 0.0 }
            }
            ExpectationError::MultipleBoundedLevels => ScheduleError::InvalidStorageLevels,
        }
    }
}

pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<f64, ScheduleError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(ScheduleError::NonPositiveParameter { name, value });
    }
    Ok(value)
}

pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> Result<f64, ScheduleError> {
    if !value.is_finite() || value < 0.0 {
        return Err(ScheduleError::NegativeParameter { name, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ScheduleError::EmptyInstance.to_string().contains("no tasks"));
        assert!(ScheduleError::NotAChain.to_string().contains("chain"));
        assert!(ScheduleError::MissingFinalCheckpoint.to_string().contains("last"));
        let err =
            ScheduleError::CostVectorLength { what: "checkpoint costs", expected: 3, actual: 2 };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('2'));
        let err = ScheduleError::UnknownTask { task: TaskId(4) };
        assert!(err.to_string().contains("T4"));
    }

    #[test]
    fn validators() {
        assert!(ensure_positive("x", 1.0).is_ok());
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_non_negative("x", 0.0).is_ok());
        assert!(ensure_non_negative("x", -1.0).is_err());
        assert!(ensure_non_negative("x", f64::NAN).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }
}

//! Deterministic contiguous-chunk parallelism, shared by every
//! thread-parallel path of this crate (λ sweeps, the order search) and by
//! the request-serving tier (`ckpt-service`'s batched admission).
//!
//! The pattern is the Monte-Carlo engine's: items are split into contiguous
//! chunks, one per worker; item `i`'s result always lands in slot `i`; and
//! results are consumed in item order — so as long as the work function is
//! a pure function of its arguments (per-worker *scratch* state is fine:
//! its contents must not influence results, only allocations), the output
//! is **bit-identical for every worker count**.

/// The number of worker threads to use (`0` = one per available core).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `work(state, index, item)` over `items` across `threads` workers
/// (`0` = one per core) in deterministic contiguous chunks; each worker
/// owns one `init()` state for its whole chunk (a scratch arena, or `()`).
/// Results come back in item order, independent of the worker count.
pub fn chunked_map_with<I, S, T, G, F>(items: &[I], threads: usize, init: G, work: F) -> Vec<T>
where
    I: Sync,
    S: Send,
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> T + Sync,
{
    chunked_map_with_states(items, threads, init, work).0
}

/// Like [`chunked_map_with`], but also hands back each worker's final state
/// **in chunk order** (chunk 0's state first). This is the deterministic
/// shard-merge channel used by the telemetry layer: give every worker a
/// metrics-registry shard as its state, then fold the returned shards into
/// the main registry in order — since shard merges are exact, the merged
/// registry is bit-identical at any worker count, and since the states are
/// scratch the mapped results are untouched.
pub fn chunked_map_with_states<I, S, T, G, F>(
    items: &[I],
    threads: usize,
    init: G,
    work: F,
) -> (Vec<T>, Vec<S>)
where
    I: Sync,
    S: Send,
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> T + Sync,
{
    let workers = effective_threads(threads).min(items.len()).max(1);
    if workers <= 1 {
        let mut state = init();
        let results =
            items.iter().enumerate().map(|(index, item)| work(&mut state, index, item)).collect();
        return (results, vec![state]);
    }

    let mut slots: Vec<Option<T>> = items.iter().map(|_| None).collect();
    let chunk = items.len().div_ceil(workers);
    let chunk_count = items.len().div_ceil(chunk);
    let mut states: Vec<Option<S>> = (0..chunk_count).map(|_| None).collect();
    let (init, work) = (&init, &work);
    std::thread::scope(|scope| {
        for ((chunk_index, (slot_chunk, item_chunk)), state_slot) in
            slots.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate().zip(states.iter_mut())
        {
            scope.spawn(move || {
                let mut state = init();
                let base = chunk_index * chunk;
                for (offset, (slot, item)) in slot_chunk.iter_mut().zip(item_chunk).enumerate() {
                    *slot = Some(work(&mut state, base + offset, item));
                }
                *state_slot = Some(state);
            });
        }
    });
    let results = slots.into_iter().map(|slot| slot.expect("every item slot is filled")).collect();
    let states = states.into_iter().map(|slot| slot.expect("every chunk leaves a state")).collect();
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_item_order_at_any_worker_count() {
        let items: Vec<usize> = (0..23).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let out = chunked_map_with(
                &items,
                threads,
                || (),
                |_, index, &item| {
                    assert_eq!(index, item);
                    item * item
                },
            );
            assert_eq!(out, expected, "differs at {threads} workers");
        }
    }

    #[test]
    fn per_worker_state_is_initialised_per_chunk() {
        // The state is scratch: counters per worker differ across thread
        // counts, but results (which ignore the counter's value) do not.
        let items = [5usize; 17];
        for threads in [1usize, 4] {
            let out = chunked_map_with(
                &items,
                threads,
                || 0usize,
                |count, _, &item| {
                    *count += 1;
                    item
                },
            );
            assert_eq!(out, items.to_vec());
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(chunked_map_with(&empty, 8, || (), |_, _, &x: &u32| x).is_empty());
        assert_eq!(chunked_map_with(&[7u32], 8, || (), |_, _, &x| x + 1), vec![8]);
    }

    #[test]
    fn states_come_back_in_chunk_order() {
        let items: Vec<usize> = (0..20).collect();
        for threads in [1usize, 2, 3, 8] {
            let (results, states) = chunked_map_with_states(
                &items,
                threads,
                Vec::new,
                |seen: &mut Vec<usize>, index, &item| {
                    seen.push(index);
                    item * 2
                },
            );
            assert_eq!(results, items.iter().map(|i| i * 2).collect::<Vec<_>>());
            // Concatenating the per-chunk states in order recovers the full
            // index sequence — the property deterministic shard merges need.
            let concatenated: Vec<usize> = states.into_iter().flatten().collect();
            assert_eq!(concatenated, items, "differs at {threads} workers");
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(5), 5);
    }
}

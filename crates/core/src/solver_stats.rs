//! Process-wide solver activity counters.
//!
//! The chain-DP inner loop, the Li Chao envelope and the resumable-DP reuse
//! paths are the workspace's hot kernels; threading a metrics registry
//! through their signatures would contaminate every caller. Instead they bump
//! [`ckpt_telemetry::StaticCounter`]s — accumulated locally inside each call
//! and flushed with **one** relaxed add per solver invocation, so the
//! instrumentation stays at noise level (the `e15_telemetry` binary measures
//! it).
//!
//! Determinism: the counters are observation-only `u64` adds; per-item totals
//! are pure functions of the work items, so the totals read at a quiescent
//! point (no solver running) are identical at any thread count. Counters are
//! process-global — [`reset`] before and [`snapshot`] after the region you
//! want to attribute, and don't run unrelated solver work concurrently while
//! attributing.

use ckpt_telemetry::{MetricsRegistry, StaticCounter};

/// Positions relaxed by the pruned Algorithm 1 recurrence.
pub static DP_POSITIONS: StaticCounter = StaticCounter::new();
/// Candidate splits `(x, j)` actually evaluated by the recurrence.
pub static DP_CANDIDATES: StaticCounter = StaticCounter::new();
/// Inner loops cut short by the monotone segment lower bound.
pub static DP_PRUNE_BREAKS: StaticCounter = StaticCounter::new();
/// From-scratch [`ResumableDp::solve`](crate::chain_dp::ResumableDp::solve) calls.
pub static FULL_SOLVES: StaticCounter = StaticCounter::new();
/// Prefix-trial evaluations ([`ResumableDp::try_prefix`](crate::chain_dp::ResumableDp::try_prefix)).
pub static PREFIX_TRIALS: StaticCounter = StaticCounter::new();
/// Suffix re-plans ([`ResumableDp::solve_suffix`](crate::chain_dp::ResumableDp::solve_suffix)).
pub static SUFFIX_SOLVES: StaticCounter = StaticCounter::new();
/// Positions *not* recomputed thanks to suffix/prefix reuse — the "reuse
/// depth": per `try_prefix` the untouched suffix length, per `solve_suffix`
/// the skipped prefix length.
pub static SUFFIX_REUSED_POSITIONS: StaticCounter = StaticCounter::new();
/// Lines inserted into Li Chao envelopes.
pub static LI_CHAO_INSERTS: StaticCounter = StaticCounter::new();
/// Li Chao tree nodes visited by those insertions.
pub static LI_CHAO_NODE_VISITS: StaticCounter = StaticCounter::new();

/// A point-in-time copy of every solver counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStatsSnapshot {
    /// Positions relaxed by the pruned recurrence.
    pub dp_positions: u64,
    /// Candidate splits evaluated.
    pub dp_candidates: u64,
    /// Inner loops cut short by the lower-bound prune.
    pub dp_prune_breaks: u64,
    /// From-scratch resumable solves.
    pub full_solves: u64,
    /// Prefix-trial evaluations.
    pub prefix_trials: u64,
    /// Suffix re-plans.
    pub suffix_solves: u64,
    /// Positions skipped thanks to reuse.
    pub suffix_reused_positions: u64,
    /// Li Chao line insertions.
    pub li_chao_inserts: u64,
    /// Li Chao nodes visited by insertions.
    pub li_chao_node_visits: u64,
}

impl SolverStatsSnapshot {
    /// The counter increments between `earlier` and `self` (saturating, in
    /// case a [`reset`] happened in between).
    pub fn since(&self, earlier: &SolverStatsSnapshot) -> SolverStatsSnapshot {
        SolverStatsSnapshot {
            dp_positions: self.dp_positions.saturating_sub(earlier.dp_positions),
            dp_candidates: self.dp_candidates.saturating_sub(earlier.dp_candidates),
            dp_prune_breaks: self.dp_prune_breaks.saturating_sub(earlier.dp_prune_breaks),
            full_solves: self.full_solves.saturating_sub(earlier.full_solves),
            prefix_trials: self.prefix_trials.saturating_sub(earlier.prefix_trials),
            suffix_solves: self.suffix_solves.saturating_sub(earlier.suffix_solves),
            suffix_reused_positions: self
                .suffix_reused_positions
                .saturating_sub(earlier.suffix_reused_positions),
            li_chao_inserts: self.li_chao_inserts.saturating_sub(earlier.li_chao_inserts),
            li_chao_node_visits: self
                .li_chao_node_visits
                .saturating_sub(earlier.li_chao_node_visits),
        }
    }

    /// Adds the snapshot to `registry` under the catalogued
    /// `solver_*_total` counter names (see `docs/OBSERVABILITY.md`).
    pub fn record_into(&self, registry: &mut MetricsRegistry) {
        registry.counter_add("solver_dp_positions_total", self.dp_positions);
        registry.counter_add("solver_dp_candidates_total", self.dp_candidates);
        registry.counter_add("solver_dp_prune_breaks_total", self.dp_prune_breaks);
        registry.counter_add("solver_full_solves_total", self.full_solves);
        registry.counter_add("solver_prefix_trials_total", self.prefix_trials);
        registry.counter_add("solver_suffix_solves_total", self.suffix_solves);
        registry.counter_add("solver_suffix_reused_positions_total", self.suffix_reused_positions);
        registry.counter_add("solver_li_chao_inserts_total", self.li_chao_inserts);
        registry.counter_add("solver_li_chao_node_visits_total", self.li_chao_node_visits);
    }
}

/// Reads every solver counter (relaxed; exact at quiescent points).
pub fn snapshot() -> SolverStatsSnapshot {
    SolverStatsSnapshot {
        dp_positions: DP_POSITIONS.get(),
        dp_candidates: DP_CANDIDATES.get(),
        dp_prune_breaks: DP_PRUNE_BREAKS.get(),
        full_solves: FULL_SOLVES.get(),
        prefix_trials: PREFIX_TRIALS.get(),
        suffix_solves: SUFFIX_SOLVES.get(),
        suffix_reused_positions: SUFFIX_REUSED_POSITIONS.get(),
        li_chao_inserts: LI_CHAO_INSERTS.get(),
        li_chao_node_visits: LI_CHAO_NODE_VISITS.get(),
    }
}

/// Resets every solver counter to zero.
pub fn reset() {
    DP_POSITIONS.reset();
    DP_CANDIDATES.reset();
    DP_PRUNE_BREAKS.reset();
    FULL_SOLVES.reset();
    PREFIX_TRIALS.reset();
    SUFFIX_SOLVES.reset();
    SUFFIX_REUSED_POSITIONS.reset();
    LI_CHAO_INSERTS.reset();
    LI_CHAO_NODE_VISITS.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_registry_record() {
        let earlier = SolverStatsSnapshot { dp_candidates: 10, ..Default::default() };
        let later = SolverStatsSnapshot { dp_candidates: 35, full_solves: 2, ..Default::default() };
        let delta = later.since(&earlier);
        assert_eq!(delta.dp_candidates, 25);
        assert_eq!(delta.full_solves, 2);

        let mut registry = MetricsRegistry::new();
        delta.record_into(&mut registry);
        assert_eq!(registry.counter("solver_dp_candidates_total"), 25);
        assert_eq!(registry.counter("solver_full_solves_total"), 2);
        assert_eq!(registry.counter("solver_li_chao_inserts_total"), 0);
    }
}

//! Scheduling arbitrary DAGs: linearise, then place checkpoints optimally
//! along the linearisation.
//!
//! Proposition 2 rules out an efficient exact algorithm for the joint problem
//! (order + checkpoints), even for independent tasks. The practical approach
//! this module implements — and the experiments evaluate — decomposes it:
//!
//! 1. pick a linearisation of the DAG with one of the
//!    [`LinearizationStrategy`] heuristics (§2's full-parallelism assumption
//!    makes any topological order feasible);
//! 2. materialise the order's per-position checkpoint and recovery costs
//!    under a [`CheckpointCostModel`] (the §6 general-cost extension), build
//!    **one** [`SegmentCostTable`] for the order from them, and place
//!    checkpoints optimally for that order with the Algorithm 1 recurrence
//!    run directly on the table
//!    ([`chain_dp::scalable_placement_on_table`](crate::chain_dp::scalable_placement_on_table)).
//!
//! The positional cost vectors are produced by **one incremental sweep** of
//! the order ([`CheckpointCostModel::costs_along_order`]): the live set is
//! maintained as a delta structure
//! ([`LiveSetSweep`](ckpt_dag::traversal::LiveSetSweep)) instead of being
//! re-derived per position, so building the table costs `O(n + E)` per
//! linearisation — not the `O(n·degree)` per position of the reference
//! recomputing path (kept as [`model_cost_table_reference`] for
//! cross-checks). The DP's inner loop then runs exp-free on precomputed
//! costs with the table's monotone pruning bound, exactly like the chain
//! fast path. The table is rebuilt only when the execution order changes
//! (one table per strategy tried by [`schedule_dag_best_of`], one per
//! candidate explored by [`crate::order_search`]), never per candidate
//! segment.
//!
//! For linear chains step 2 is exactly Algorithm 1 and the result is globally
//! optimal; for other DAGs the result is a heuristic whose quality experiment
//! E4 measures against brute force — and which
//! [`crate::order_search::schedule_dag_search`] improves on by searching the
//! order space beyond the fixed [`LinearizationStrategy`] handful.
//!
//! [`SegmentCostTable`]: ckpt_expectation::segment_cost::SegmentCostTable

use ckpt_dag::{linearize, LinearizationStrategy, TaskId};
use ckpt_expectation::segment_cost::SegmentCostTable;

use crate::chain_dp::scalable_placement_on_table;
use crate::cost_model::CheckpointCostModel;
use crate::error::ScheduleError;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// The result of DAG scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct DagSolution {
    /// The schedule produced (order + checkpoint placement).
    pub schedule: Schedule,
    /// Its expected makespan **under the per-last-task cost model** (the
    /// model used by [`crate::evaluate::expected_makespan`]).
    pub expected_makespan: f64,
    /// Its expected makespan under the requested cost model (differs from
    /// `expected_makespan` only for the live-set models on non-chain DAGs).
    pub expected_makespan_under_model: f64,
    /// The linearisation strategy that was used.
    pub strategy: LinearizationStrategy,
}

/// Builds the [`SegmentCostTable`] of `order` with per-position checkpoint
/// and recovery costs drawn from `model` — the §6 generalisation of
/// [`crate::evaluate::segment_cost_table`] (which this reduces to under
/// [`CheckpointCostModel::PerLastTask`]).
///
/// The positional cost vectors come from the model's single incremental
/// live-set sweep ([`CheckpointCostModel::costs_along_order`], `O(n + E)`
/// for the whole order); the DP afterwards never re-derives a cost.
///
/// # Errors
///
/// * [`ScheduleError::EmptyInstance`] if `order` is empty;
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order;
/// * propagated validation errors (cannot occur for instances built through
///   [`ProblemInstance::builder`]).
pub fn model_cost_table(
    instance: &ProblemInstance,
    order: &[TaskId],
    model: CheckpointCostModel,
) -> Result<SegmentCostTable, ScheduleError> {
    // Validate before sweeping: the sweep itself asserts (rather than
    // returns) on non-topological input.
    if order.is_empty() {
        return Err(ScheduleError::EmptyInstance);
    }
    if !ckpt_dag::topo::is_topological_order(instance.graph(), order) {
        return Err(ScheduleError::InvalidOrder);
    }
    let (ckpt, rec) = model.costs_along_order(instance, order);
    let (weights, checkpoints, recoveries) =
        crate::evaluate::order_cost_vectors_prevalidated(instance, order, |j| ckpt[j], |p| rec[p]);
    SegmentCostTable::new(
        instance.lambda(),
        instance.downtime(),
        &weights,
        &checkpoints,
        &recoveries,
    )
    .map_err(ScheduleError::from_expectation)
}

/// The recomputing-path twin of [`model_cost_table`]: every position's costs
/// are re-derived from scratch with
/// [`CheckpointCostModel::checkpoint_cost`] /
/// [`CheckpointCostModel::recovery_cost`] (`O(n·degree)` per position under
/// the live-set models).
///
/// Kept as the correctness reference the incremental sweep is cross-checked
/// against (tests here, property tests in [`crate::cost_model`]) and as the
/// baseline of the `b6_order_search` live-set bench; production code should
/// call [`model_cost_table`].
///
/// # Errors
///
/// Same as [`model_cost_table`].
pub fn model_cost_table_reference(
    instance: &ProblemInstance,
    order: &[TaskId],
    model: CheckpointCostModel,
) -> Result<SegmentCostTable, ScheduleError> {
    let (weights, checkpoints, recoveries) = crate::evaluate::order_cost_vectors_with(
        instance,
        order,
        |j| model.checkpoint_cost(instance, order, j),
        |p| model.recovery_cost(instance, order, p),
    )?;
    SegmentCostTable::new(
        instance.lambda(),
        instance.downtime(),
        &weights,
        &checkpoints,
        &recoveries,
    )
    .map_err(ScheduleError::from_expectation)
}

/// Places checkpoints optimally along a **fixed** order, generalising the
/// Algorithm 1 recurrence to an arbitrary [`CheckpointCostModel`]: one
/// [`SegmentCostTable`] is built for the order under the model
/// ([`model_cost_table`]) and the recurrence runs exp-free on it.
///
/// Returns the schedule and its expected makespan *under the given model*.
///
/// # Errors
///
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order;
/// * propagated validation errors.
pub fn optimal_checkpoints_for_order(
    instance: &ProblemInstance,
    order: Vec<TaskId>,
    model: CheckpointCostModel,
) -> Result<(Schedule, f64), ScheduleError> {
    let table = model_cost_table(instance, &order, model)?;
    let placement = scalable_placement_on_table(&table);
    let schedule = Schedule::new(instance, order, placement.checkpoint_after())?;
    Ok((schedule, placement.expected_makespan))
}

/// Schedules a DAG instance: linearises it with `strategy`, then places
/// checkpoints optimally for that order under `model`.
///
/// # Errors
///
/// Propagates validation errors; cannot fail for instances built through
/// [`ProblemInstance::builder`].
pub fn schedule_dag(
    instance: &ProblemInstance,
    strategy: LinearizationStrategy,
    model: CheckpointCostModel,
) -> Result<DagSolution, ScheduleError> {
    let order = linearize::linearize(instance.graph(), strategy);
    let (schedule, value_under_model) = optimal_checkpoints_for_order(instance, order, model)?;
    let expected_makespan = crate::evaluate::expected_makespan(instance, &schedule)?;
    Ok(DagSolution {
        schedule,
        expected_makespan,
        expected_makespan_under_model: value_under_model,
        strategy,
    })
}

/// Tries several linearisation strategies and keeps the best schedule (by
/// expected makespan under `model`).
///
/// `random_tries` additional random linearisations (seeds `0..random_tries`)
/// are explored on top of the deterministic strategies.
///
/// # Errors
///
/// Propagates validation errors.
pub fn schedule_dag_best_of(
    instance: &ProblemInstance,
    model: CheckpointCostModel,
    random_tries: u64,
) -> Result<DagSolution, ScheduleError> {
    let strategies = crate::order_search::default_start_strategies(random_tries);
    let mut best: Option<DagSolution> = None;
    for strategy in strategies {
        let candidate = schedule_dag(instance, strategy, model)?;
        let better = best.as_ref().is_none_or(|b| {
            candidate.expected_makespan_under_model < b.expected_makespan_under_model
        });
        if better {
            best = Some(candidate);
        }
    }
    Ok(best.expect("at least one strategy was tried"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use crate::chain_dp;
    use ckpt_dag::generators;

    fn chain_instance() -> ProblemInstance {
        let graph = generators::chain(&[400.0, 100.0, 900.0, 250.0, 650.0]).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(60.0)
            .uniform_recovery_cost(60.0)
            .downtime(30.0)
            .platform_lambda(1.0 / 4_000.0)
            .build()
            .unwrap()
    }

    fn fork_join_instance() -> ProblemInstance {
        let graph = generators::fork_join(3, &[500.0, 300.0, 700.0], 100.0, 200.0).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(40.0)
            .uniform_recovery_cost(80.0)
            .downtime(10.0)
            .platform_lambda(1.0 / 3_000.0)
            .build()
            .unwrap()
    }

    #[test]
    fn reduces_to_chain_dp_on_chains() {
        let inst = chain_instance();
        let dag =
            schedule_dag(&inst, LinearizationStrategy::IdOrder, CheckpointCostModel::PerLastTask)
                .unwrap();
        let chain = chain_dp::optimal_chain_schedule(&inst).unwrap();
        assert!((dag.expected_makespan - chain.expected_makespan).abs() < 1e-9);
        assert_eq!(dag.schedule, chain.schedule);
        // Under any cost model the chain result is identical (§6 remark).
        for model in [CheckpointCostModel::LiveSetSum, CheckpointCostModel::LiveSetMax] {
            let general = schedule_dag(&inst, LinearizationStrategy::IdOrder, model).unwrap();
            assert!((general.expected_makespan - chain.expected_makespan).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_order_is_rejected() {
        let inst = chain_instance();
        let bad: Vec<TaskId> = (0..5).rev().map(TaskId).collect();
        assert!(matches!(
            optimal_checkpoints_for_order(&inst, bad, CheckpointCostModel::PerLastTask),
            Err(ScheduleError::InvalidOrder)
        ));
    }

    #[test]
    fn checkpoint_placement_is_optimal_for_the_given_order() {
        let inst = fork_join_instance();
        let order = linearize::linearize(inst.graph(), LinearizationStrategy::IdOrder);
        let (schedule, _) =
            optimal_checkpoints_for_order(&inst, order.clone(), CheckpointCostModel::PerLastTask)
                .unwrap();
        let value = crate::evaluate::expected_makespan(&inst, &schedule).unwrap();
        let reference = brute_force::optimal_checkpoints_for_order(&inst, order).unwrap();
        assert!(
            (value - reference.expected_makespan).abs() / reference.expected_makespan < 1e-10,
            "dp-for-order {value} vs exhaustive {}",
            reference.expected_makespan
        );
    }

    #[test]
    fn best_of_is_no_worse_than_any_single_strategy() {
        let inst = fork_join_instance();
        let best = schedule_dag_best_of(&inst, CheckpointCostModel::PerLastTask, 4).unwrap();
        for strategy in [
            LinearizationStrategy::IdOrder,
            LinearizationStrategy::HeaviestFirst,
            LinearizationStrategy::LightestFirst,
            LinearizationStrategy::CriticalPathFirst,
        ] {
            let single = schedule_dag(&inst, strategy, CheckpointCostModel::PerLastTask).unwrap();
            assert!(
                best.expected_makespan_under_model <= single.expected_makespan_under_model + 1e-9
            );
        }
    }

    #[test]
    fn best_of_is_close_to_brute_force_on_small_dags() {
        let graph = generators::diamond([300.0, 500.0, 200.0, 400.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(50.0)
            .uniform_recovery_cost(50.0)
            .platform_lambda(1.0 / 2_000.0)
            .build()
            .unwrap();
        let heuristic = schedule_dag_best_of(&inst, CheckpointCostModel::PerLastTask, 8).unwrap();
        let brute = brute_force::optimal_schedule(&inst).unwrap();
        let gap = heuristic.expected_makespan / brute.expected_makespan;
        assert!(gap < 1.02, "gap {gap}");
    }

    #[test]
    fn live_set_models_cost_more_on_wide_dags() {
        // On a fork-join DAG the live set can contain several tasks, so the
        // sum model makes checkpoints at wide points more expensive and the
        // resulting expected makespan (under that model) is at least the
        // per-last-task one for the same strategy.
        let inst = fork_join_instance();
        let per_task =
            schedule_dag(&inst, LinearizationStrategy::IdOrder, CheckpointCostModel::PerLastTask)
                .unwrap();
        let live_sum =
            schedule_dag(&inst, LinearizationStrategy::IdOrder, CheckpointCostModel::LiveSetSum)
                .unwrap();
        assert!(
            live_sum.expected_makespan_under_model >= per_task.expected_makespan_under_model - 1e-9
        );
    }

    #[test]
    fn incremental_table_matches_recomputing_reference() {
        let inst = fork_join_instance();
        for strategy in [LinearizationStrategy::IdOrder, LinearizationStrategy::CriticalPathFirst] {
            let order = linearize::linearize(inst.graph(), strategy);
            for model in [
                CheckpointCostModel::PerLastTask,
                CheckpointCostModel::LiveSetSum,
                CheckpointCostModel::LiveSetMax,
            ] {
                let fast = model_cost_table(&inst, &order, model).unwrap();
                let reference = model_cost_table_reference(&inst, &order, model).unwrap();
                for x in 0..order.len() {
                    for j in x..order.len() {
                        let (a, b) = (fast.cost(x, j), reference.cost(x, j));
                        assert!(
                            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                            "{model} cost({x},{j}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn solution_reports_its_strategy() {
        let inst = chain_instance();
        let sol = schedule_dag(
            &inst,
            LinearizationStrategy::HeaviestFirst,
            CheckpointCostModel::PerLastTask,
        )
        .unwrap();
        assert_eq!(sol.strategy, LinearizationStrategy::HeaviestFirst);
    }
}

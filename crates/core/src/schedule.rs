//! Schedules: an execution order plus checkpoint decisions (the solution
//! space of the paper's §2 problem statement).

use ckpt_dag::{topo, TaskId};
use ckpt_simulator::Segment;

use crate::error::ScheduleError;
use crate::instance::ProblemInstance;

/// A solution to the scheduling problem: the order in which the tasks are
/// executed (a topological order of the instance graph) and, for each
/// position, whether a checkpoint is taken after the task at that position.
///
/// Following the paper's model (Algorithm 1 and the Proposition 2 reduction),
/// a checkpoint is **always** taken after the last executed task: the final
/// `true` is enforced by [`Schedule::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    order: Vec<TaskId>,
    checkpoint_after: Vec<bool>,
}

/// One maximal run of tasks between two consecutive checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSegment {
    /// Positions (indices into the order) covered by this segment.
    pub positions: std::ops::Range<usize>,
    /// The tasks executed in this segment, in execution order.
    pub tasks: Vec<TaskId>,
    /// Total work of the segment.
    pub work: f64,
    /// Checkpoint cost paid at the end of the segment.
    pub checkpoint: f64,
    /// Recovery cost protecting the segment (recovery of the previous
    /// checkpoint, or the initial recovery `R₀` for the first segment).
    pub recovery: f64,
}

impl Schedule {
    /// Creates a schedule from an execution order and per-position checkpoint
    /// decisions, validating both against `instance`.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order
    ///   of the instance graph;
    /// * [`ScheduleError::CheckpointVectorLength`] if `checkpoint_after` does
    ///   not have one entry per task;
    /// * [`ScheduleError::MissingFinalCheckpoint`] if the last entry is
    ///   `false`.
    pub fn new(
        instance: &ProblemInstance,
        order: Vec<TaskId>,
        checkpoint_after: Vec<bool>,
    ) -> Result<Self, ScheduleError> {
        if !topo::is_topological_order(instance.graph(), &order) {
            return Err(ScheduleError::InvalidOrder);
        }
        if checkpoint_after.len() != order.len() {
            return Err(ScheduleError::CheckpointVectorLength {
                expected: order.len(),
                actual: checkpoint_after.len(),
            });
        }
        if checkpoint_after.last() != Some(&true) {
            return Err(ScheduleError::MissingFinalCheckpoint);
        }
        Ok(Schedule { order, checkpoint_after })
    }

    /// A schedule that checkpoints after **every** task, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidOrder`] if `order` is not a valid
    /// topological order.
    pub fn checkpoint_everywhere(
        instance: &ProblemInstance,
        order: Vec<TaskId>,
    ) -> Result<Self, ScheduleError> {
        let n = order.len();
        Schedule::new(instance, order, vec![true; n])
    }

    /// A schedule that only takes the mandatory final checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidOrder`] if `order` is not a valid
    /// topological order.
    pub fn checkpoint_final_only(
        instance: &ProblemInstance,
        order: Vec<TaskId>,
    ) -> Result<Self, ScheduleError> {
        let n = order.len();
        let mut checkpoints = vec![false; n];
        if let Some(last) = checkpoints.last_mut() {
            *last = true;
        }
        Schedule::new(instance, order, checkpoints)
    }

    /// The execution order.
    pub fn order(&self) -> &[TaskId] {
        &self.order
    }

    /// The checkpoint decision at each position of the order.
    pub fn checkpoint_after(&self) -> &[bool] {
        &self.checkpoint_after
    }

    /// The number of checkpoints taken (including the mandatory final one).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoint_after.iter().filter(|&&c| c).count()
    }

    /// The number of tasks in the schedule.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the schedule covers no tasks (never true for validated
    /// schedules, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Splits the schedule into its checkpoint-delimited segments.
    ///
    /// Segment `k` starts right after the `k`-th checkpoint (or at the start
    /// of the execution for `k = 0`), carries the summed weight of its tasks,
    /// the checkpoint cost of its last task and the recovery cost of the task
    /// whose checkpoint protects it (`R₀` for the first segment).
    pub fn segments(&self, instance: &ProblemInstance) -> Vec<ScheduleSegment> {
        let mut segments = Vec::new();
        let mut start = 0usize;
        let mut recovery = instance.initial_recovery();
        for (pos, &task) in self.order.iter().enumerate() {
            if self.checkpoint_after[pos] {
                let tasks: Vec<TaskId> = self.order[start..=pos].to_vec();
                let work = tasks.iter().map(|&t| instance.weight(t)).sum();
                segments.push(ScheduleSegment {
                    positions: start..pos + 1,
                    tasks,
                    work,
                    checkpoint: instance.checkpoint_cost(task),
                    recovery,
                });
                recovery = instance.recovery_cost(task);
                start = pos + 1;
            }
        }
        segments
    }

    /// Converts the schedule into simulator [`Segment`]s, ready to be fed to
    /// `ckpt-simulator`.
    ///
    /// # Errors
    ///
    /// Propagates segment-validation errors (cannot occur for instances built
    /// through [`ProblemInstance::builder`], whose weights are positive).
    pub fn to_segments(
        &self,
        instance: &ProblemInstance,
    ) -> Result<Vec<Segment>, ckpt_simulator::SimulationError> {
        self.segments(instance)
            .into_iter()
            .map(|s| Segment::new(s.work, s.checkpoint, s.recovery))
            .collect()
    }

    /// The failure-free makespan of the schedule: all work plus the cost of
    /// every checkpoint taken.
    pub fn failure_free_makespan(&self, instance: &ProblemInstance) -> f64 {
        self.segments(instance).iter().map(|s| s.work + s.checkpoint).sum()
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (pos, task) in self.order.iter().enumerate() {
            if pos > 0 {
                write!(f, " ")?;
            }
            write!(f, "{task}")?;
            if self.checkpoint_after[pos] {
                write!(f, "|CKPT")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::generators;

    fn instance() -> ProblemInstance {
        let graph = generators::chain(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        ProblemInstance::builder(graph)
            .checkpoint_costs(vec![1.0, 2.0, 3.0, 4.0])
            .recovery_costs(vec![5.0, 6.0, 7.0, 8.0])
            .initial_recovery(9.0)
            .downtime(0.5)
            .platform_lambda(1e-3)
            .build()
            .unwrap()
    }

    fn ids(ids: &[usize]) -> Vec<TaskId> {
        ids.iter().map(|&i| TaskId(i)).collect()
    }

    #[test]
    fn construction_validates_order_and_checkpoints() {
        let inst = instance();
        // Wrong order (not topological for the chain).
        assert!(matches!(
            Schedule::new(&inst, ids(&[1, 0, 2, 3]), vec![true; 4]),
            Err(ScheduleError::InvalidOrder)
        ));
        // Wrong checkpoint length.
        assert!(matches!(
            Schedule::new(&inst, ids(&[0, 1, 2, 3]), vec![true; 3]),
            Err(ScheduleError::CheckpointVectorLength { .. })
        ));
        // Missing final checkpoint.
        assert!(matches!(
            Schedule::new(&inst, ids(&[0, 1, 2, 3]), vec![true, false, false, false]),
            Err(ScheduleError::MissingFinalCheckpoint)
        ));
        // Valid.
        let s = Schedule::new(&inst, ids(&[0, 1, 2, 3]), vec![false, true, false, true]).unwrap();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.checkpoint_count(), 2);
    }

    #[test]
    fn convenience_constructors() {
        let inst = instance();
        let all = Schedule::checkpoint_everywhere(&inst, ids(&[0, 1, 2, 3])).unwrap();
        assert_eq!(all.checkpoint_count(), 4);
        let last = Schedule::checkpoint_final_only(&inst, ids(&[0, 1, 2, 3])).unwrap();
        assert_eq!(last.checkpoint_count(), 1);
    }

    #[test]
    fn segments_carry_correct_costs() {
        let inst = instance();
        // Checkpoints after T1 (pos 1) and T3 (pos 3).
        let s = Schedule::new(&inst, ids(&[0, 1, 2, 3]), vec![false, true, false, true]).unwrap();
        let segs = s.segments(&inst);
        assert_eq!(segs.len(), 2);
        // Segment 0: tasks 0 and 1, work 30, checkpoint cost of task 1 (2.0),
        // recovery is the initial recovery (9.0).
        assert_eq!(segs[0].tasks, ids(&[0, 1]));
        assert_eq!(segs[0].work, 30.0);
        assert_eq!(segs[0].checkpoint, 2.0);
        assert_eq!(segs[0].recovery, 9.0);
        assert_eq!(segs[0].positions, 0..2);
        // Segment 1: tasks 2 and 3, work 70, checkpoint cost of task 3 (4.0),
        // recovery of task 1's checkpoint (6.0).
        assert_eq!(segs[1].tasks, ids(&[2, 3]));
        assert_eq!(segs[1].work, 70.0);
        assert_eq!(segs[1].checkpoint, 4.0);
        assert_eq!(segs[1].recovery, 6.0);
    }

    #[test]
    fn to_segments_matches_segments() {
        let inst = instance();
        let s = Schedule::new(&inst, ids(&[0, 1, 2, 3]), vec![true, false, false, true]).unwrap();
        let sim = s.to_segments(&inst).unwrap();
        let own = s.segments(&inst);
        assert_eq!(sim.len(), own.len());
        for (a, b) in sim.iter().zip(own.iter()) {
            assert_eq!(a.work(), b.work);
            assert_eq!(a.checkpoint(), b.checkpoint);
            assert_eq!(a.recovery(), b.recovery);
        }
    }

    #[test]
    fn failure_free_makespan_counts_work_and_checkpoints() {
        let inst = instance();
        let all = Schedule::checkpoint_everywhere(&inst, ids(&[0, 1, 2, 3])).unwrap();
        assert_eq!(all.failure_free_makespan(&inst), 100.0 + 1.0 + 2.0 + 3.0 + 4.0);
        let last = Schedule::checkpoint_final_only(&inst, ids(&[0, 1, 2, 3])).unwrap();
        assert_eq!(last.failure_free_makespan(&inst), 100.0 + 4.0);
    }

    #[test]
    fn independent_tasks_allow_any_order() {
        let graph = generators::independent(&[1.0, 2.0, 3.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let s = Schedule::checkpoint_everywhere(&inst, ids(&[2, 0, 1])).unwrap();
        assert_eq!(s.order(), &ids(&[2, 0, 1])[..]);
        assert_eq!(s.checkpoint_after(), &[true, true, true]);
    }

    #[test]
    fn display_shows_checkpoints() {
        let inst = instance();
        let s = Schedule::new(&inst, ids(&[0, 1, 2, 3]), vec![false, true, false, true]).unwrap();
        let text = s.to_string();
        assert!(text.contains("T1|CKPT"));
        assert!(text.contains("T3|CKPT"));
        assert!(!text.contains("T0|CKPT"));
    }
}

//! Checkpoint scheduling for computational workflows — the reproduction of
//! INRIA RR-7907 / DSN 2012, *"On the complexity of scheduling checkpoints for
//! computational workflows"* (Robert, Vivien, Zaidouni).
//!
//! The problem: a DAG of tasks is executed sequentially on a failure-prone
//! platform (full parallelism, Exponential failures of rate `λ`). After each
//! task one may take a coordinated checkpoint; on a failure the platform pays
//! a downtime `D`, a recovery `R` from the last checkpoint, and re-executes
//! everything since that checkpoint. The goal is to pick (i) the execution
//! order and (ii) the checkpoint positions minimising the **expected
//! makespan**.
//!
//! What this crate provides, mapped to the paper:
//!
//! | Paper | Here |
//! |-------|------|
//! | §2 framework (tasks, costs, platform) | [`ProblemInstance`], [`instance`] |
//! | §3 Proposition 1 (exact expectation) | re-exported from `ckpt-expectation`, used by [`evaluate`] |
//! | §4 Proposition 2 (strong NP-completeness, 3-PARTITION reduction) | [`three_partition`] |
//! | §4 heuristic regime (search over linearisations) | [`order_search`], [`dag_schedule`] |
//! | §5 Algorithm 1 (`O(n²)` chain DP) | [`chain_dp`] |
//! | §6 extension 1 (general checkpoint costs over the live set) | [`cost_model`], [`dag_schedule`] |
//! | §6 extension 2 (moldable tasks) | [`moldable`] |
//! | §6 extension 3 (Weibull / log-normal failures) | [`general_failures`] |
//! | §7 baselines (periodic, Young/Daly) | [`heuristics`] |
//!
//! Exhaustive-search optimality baselines for small instances live in
//! [`brute_force`]; schedules are evaluated analytically ([`evaluate`]) or by
//! Monte-Carlo simulation (via `ckpt-simulator`, see [`Schedule::to_segments`]).
//!
//! # Example: optimal checkpoints for a linear chain
//!
//! ```rust
//! use ckpt_core::{ProblemInstance, chain_dp};
//! use ckpt_dag::generators;
//!
//! // A 6-task chain with heterogeneous weights, uniform checkpoint costs.
//! let graph = generators::chain(&[400.0, 100.0, 900.0, 250.0, 650.0, 300.0])?;
//! let instance = ProblemInstance::builder(graph)
//!     .uniform_checkpoint_cost(60.0)
//!     .uniform_recovery_cost(60.0)
//!     .downtime(30.0)
//!     .platform_lambda(1.0 / 20_000.0)
//!     .build()?;
//!
//! let solution = chain_dp::optimal_chain_schedule(&instance)?;
//! // The DP value equals the analytical evaluation of the schedule it returns.
//! let eval = ckpt_core::evaluate::expected_makespan(&instance, &solution.schedule)?;
//! assert!((solution.expected_makespan - eval).abs() < 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod brute_force;
pub mod chain_dp;
pub mod cost_model;
pub mod dag_schedule;
pub mod error;
pub mod evaluate;
pub mod general_failures;
pub mod heuristics;
pub mod instance;
pub mod moldable;
pub mod order_search;
pub mod parallel;
pub mod schedule;
pub mod solver_stats;
pub mod three_partition;

pub use error::ScheduleError;
pub use instance::{ProblemInstance, ProblemInstanceBuilder};
pub use schedule::Schedule;

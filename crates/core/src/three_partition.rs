//! The Proposition 2 reduction: strong NP-completeness via 3-PARTITION.
//!
//! Proposition 2 reduces 3-PARTITION to the independent-task scheduling
//! problem: given `3n` integers `a_1 … a_{3n}` summing to `n·T` with
//! `T/4 < a_i < T/2`, build `3n` independent tasks of weight `w_i = a_i`,
//! set `λ = 1/(2T)`, `C = R = (ln 2 − ½)/λ`, `D = 0`, and ask whether a
//! schedule of expected makespan at most
//! `K = n·(e^{λC}/λ)·(e^{λ(T+C)} − 1)` exists. The proof shows the bound is
//! reached **exactly** when the tasks can be grouped into `n` checkpointed
//! batches of total weight `T` each — i.e. exactly when the 3-PARTITION
//! instance is a YES instance.
//!
//! This module builds the reduction, verifies candidate schedules, extracts
//! partitions back from schedules, and provides a small exact 3-PARTITION
//! solver so that experiment E5 can generate certified YES and NO instances.

use ckpt_dag::{generators, TaskId};

use crate::error::ScheduleError;
use crate::evaluate::expected_makespan;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// A 3-PARTITION instance: `3n` positive integers that sum to `n·target`,
/// with every value strictly between `target/4` and `target/2`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreePartitionInstance {
    values: Vec<u64>,
    target: u64,
}

/// The scheduling instance produced by the Proposition 2 reduction, together
/// with the decision bound `K`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// The independent-task scheduling instance.
    pub instance: ProblemInstance,
    /// The decision bound `K` on the expected makespan.
    pub bound: f64,
    /// The common checkpoint/recovery cost `C` chosen by the reduction.
    pub checkpoint_cost: f64,
    /// The failure rate `λ = 1/(2T)` chosen by the reduction.
    pub lambda: f64,
}

impl ThreePartitionInstance {
    /// Creates an instance, validating the 3-PARTITION constraints.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidThreePartition`] if the value count is
    /// not a positive multiple of 3, the values do not sum to `n·target`, or
    /// some value lies outside `(target/4, target/2)`.
    pub fn new(values: Vec<u64>, target: u64) -> Result<Self, ScheduleError> {
        if values.is_empty() || !values.len().is_multiple_of(3) {
            return Err(ScheduleError::InvalidThreePartition {
                reason: "the number of values must be a positive multiple of 3",
            });
        }
        let n = (values.len() / 3) as u64;
        let sum: u64 = values.iter().sum();
        if sum != n * target {
            return Err(ScheduleError::InvalidThreePartition {
                reason: "values must sum to n times the target",
            });
        }
        if values.iter().any(|&v| 4 * v <= target || 2 * v >= target) {
            return Err(ScheduleError::InvalidThreePartition {
                reason: "every value must lie strictly between target/4 and target/2",
            });
        }
        Ok(ThreePartitionInstance { values, target })
    }

    /// The values `a_1 … a_{3n}`.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The per-subset target `T`.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// The number of subsets `n` a solution must form.
    pub fn subset_count(&self) -> usize {
        self.values.len() / 3
    }

    /// Generates a certified YES instance with `n` subsets, built by sampling
    /// `n` triples that each sum to `target`, then shuffling them together.
    ///
    /// `target` must be a multiple of 4 and at least 8 so that valid triples
    /// exist around `target/3`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidThreePartition`] if `n == 0` or `target`
    /// is too small or not a multiple of 4.
    pub fn generate_yes(n: usize, target: u64, seed: u64) -> Result<Self, ScheduleError> {
        if n == 0 || target < 8 || !target.is_multiple_of(4) {
            return Err(ScheduleError::InvalidThreePartition {
                reason: "need n >= 1 and a target that is a multiple of 4 and at least 8",
            });
        }
        // Each triple is (t/4 + 1 + x, t/4 + 1 + y, rest) with small jitter,
        // kept inside the open interval (t/4, t/2).
        let quarter = target / 4;
        let half = target / 2;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound.max(1)
        };
        let mut values = Vec::with_capacity(3 * n);
        for _ in 0..n {
            // Choose a and b near target/3 so that c = target - a - b also
            // stays inside (quarter, half).
            loop {
                let span = (half - quarter - 2).max(1);
                let a = quarter + 1 + next(span);
                let b = quarter + 1 + next(span);
                if a + b >= target {
                    continue;
                }
                let c = target - a - b;
                if c > quarter && c < half {
                    values.push(a);
                    values.push(b);
                    values.push(c);
                    break;
                }
            }
        }
        // Shuffle deterministically so triples are not adjacent.
        for i in (1..values.len()).rev() {
            let j = (next(i as u64 + 1)) as usize;
            values.swap(i, j);
        }
        ThreePartitionInstance::new(values, target)
    }

    /// Exhaustively decides the instance, returning a partition (as lists of
    /// value indices, `n` groups of 3) if one exists.
    ///
    /// Intended for the small instances of experiment E5 (`n ≤ 4`, i.e. at
    /// most 12 values).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::TooLargeForBruteForce`] for more than 12
    /// values.
    pub fn solve_exact(&self) -> Result<Option<Vec<Vec<usize>>>, ScheduleError> {
        if self.values.len() > 12 {
            return Err(ScheduleError::TooLargeForBruteForce {
                tasks: self.values.len(),
                limit: 12,
            });
        }
        let mut used = vec![false; self.values.len()];
        let mut groups = Vec::new();
        if self.backtrack(&mut used, &mut groups) {
            Ok(Some(groups))
        } else {
            Ok(None)
        }
    }

    fn backtrack(&self, used: &mut Vec<bool>, groups: &mut Vec<Vec<usize>>) -> bool {
        let first = match used.iter().position(|&u| !u) {
            None => return true,
            Some(i) => i,
        };
        used[first] = true;
        for j in first + 1..self.values.len() {
            if used[j] {
                continue;
            }
            used[j] = true;
            for k in j + 1..self.values.len() {
                if used[k] {
                    continue;
                }
                if self.values[first] + self.values[j] + self.values[k] == self.target {
                    used[k] = true;
                    groups.push(vec![first, j, k]);
                    if self.backtrack(used, groups) {
                        return true;
                    }
                    groups.pop();
                    used[k] = false;
                }
            }
            used[j] = false;
        }
        used[first] = false;
        false
    }

    /// Builds the Proposition 2 reduction: the scheduling instance and the
    /// decision bound `K`.
    ///
    /// # Errors
    ///
    /// Propagates instance-construction errors (cannot occur for valid
    /// 3-PARTITION instances).
    pub fn reduce(&self) -> Result<Reduction, ScheduleError> {
        let t = self.target as f64;
        let lambda = 1.0 / (2.0 * t);
        let c = (std::f64::consts::LN_2 - 0.5) / lambda;
        let weights: Vec<f64> = self.values.iter().map(|&v| v as f64).collect();
        let graph = generators::independent(&weights).map_err(|_| ScheduleError::EmptyInstance)?;
        // All checkpoint *and* recovery costs equal C, including the recovery
        // of the initial state: this way every segment of total work W costs
        // exactly e^{λC}(e^{λ(W+C)} − 1)/λ, the quantity the proof of
        // Proposition 2 manipulates.
        let instance = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(c)
            .uniform_recovery_cost(c)
            .downtime(0.0)
            .initial_recovery(c)
            .platform_lambda(lambda)
            .build()?;
        let n = self.subset_count() as f64;
        let bound = n * (lambda * c).exp() / lambda * ((lambda * (t + c)).exp() - 1.0);
        Ok(Reduction { instance, bound, checkpoint_cost: c, lambda })
    }

    /// Builds the canonical schedule associated with a partition: each group's
    /// three tasks are executed consecutively and a checkpoint is taken after
    /// the third one. Its expected makespan equals the bound `K` exactly
    /// (this is the "⇒" direction of the Proposition 2 proof).
    ///
    /// # Errors
    ///
    /// Propagates schedule-validation errors; returns
    /// [`ScheduleError::InvalidThreePartition`] if `partition` does not cover
    /// every value exactly once or a group does not sum to the target.
    pub fn schedule_from_partition(
        &self,
        reduction: &Reduction,
        partition: &[Vec<usize>],
    ) -> Result<Schedule, ScheduleError> {
        let mut seen = vec![false; self.values.len()];
        for group in partition {
            let sum: u64 = group.iter().map(|&i| self.values[i]).sum();
            if sum != self.target {
                return Err(ScheduleError::InvalidThreePartition {
                    reason: "a group does not sum to the target",
                });
            }
            for &i in group {
                if seen[i] {
                    return Err(ScheduleError::InvalidThreePartition {
                        reason: "a value is used twice",
                    });
                }
                seen[i] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(ScheduleError::InvalidThreePartition {
                reason: "the partition does not cover every value",
            });
        }
        let mut order = Vec::with_capacity(self.values.len());
        let mut checkpoints = Vec::with_capacity(self.values.len());
        for group in partition {
            for (pos, &i) in group.iter().enumerate() {
                order.push(TaskId(i));
                checkpoints.push(pos == group.len() - 1);
            }
        }
        Schedule::new(&reduction.instance, order, checkpoints)
    }

    /// Checks whether a schedule certifies a YES answer: its expected makespan
    /// must not exceed the bound (up to a relative tolerance of 1e-9), and in
    /// that case the checkpointed groups are returned as a partition.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn partition_from_schedule(
        &self,
        reduction: &Reduction,
        schedule: &Schedule,
    ) -> Result<Option<Vec<Vec<usize>>>, ScheduleError> {
        let value = expected_makespan(&reduction.instance, schedule)?;
        if value > reduction.bound * (1.0 + 1e-9) {
            return Ok(None);
        }
        // Extract the groups delimited by checkpoints.
        let mut groups = Vec::new();
        let mut current = Vec::new();
        for (pos, &task) in schedule.order().iter().enumerate() {
            current.push(task.0);
            if schedule.checkpoint_after()[pos] {
                groups.push(std::mem::take(&mut current));
            }
        }
        // By the convexity argument of the proof, meeting the bound forces
        // every group to weigh exactly T; double-check before vouching.
        for group in &groups {
            let sum: u64 = group.iter().map(|&i| self.values[i]).sum();
            if sum != self.target {
                return Ok(None);
            }
        }
        Ok(Some(groups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;

    /// A tiny YES instance: n = 2, T = 100.
    fn yes_instance() -> ThreePartitionInstance {
        ThreePartitionInstance::new(vec![30, 35, 35, 26, 33, 41], 100).unwrap()
    }

    #[test]
    fn validation_rejects_malformed_instances() {
        // Not a multiple of 3.
        assert!(ThreePartitionInstance::new(vec![30, 35], 100).is_err());
        // Wrong sum.
        assert!(ThreePartitionInstance::new(vec![30, 35, 36], 100).is_err());
        // Value out of the (T/4, T/2) window.
        assert!(ThreePartitionInstance::new(vec![25, 25, 50], 100).is_err());
        // Valid.
        assert!(ThreePartitionInstance::new(vec![30, 35, 35], 100).is_ok());
    }

    #[test]
    fn accessors() {
        let inst = yes_instance();
        assert_eq!(inst.values().len(), 6);
        assert_eq!(inst.target(), 100);
        assert_eq!(inst.subset_count(), 2);
    }

    #[test]
    fn exact_solver_finds_partition_of_yes_instance() {
        let inst = yes_instance();
        let partition = inst.solve_exact().unwrap().expect("instance is YES");
        assert_eq!(partition.len(), 2);
        for group in &partition {
            let sum: u64 = group.iter().map(|&i| inst.values()[i]).sum();
            assert_eq!(sum, 100);
        }
    }

    #[test]
    fn exact_solver_detects_no_instance() {
        // Sum and window constraints hold but no grouping into 100s exists:
        // values 26,26,26,40,41,41 — only combinations: 26+26+40=92, 26+26+41=93,
        // 26+40+41=107, 26+41+41=108, 40+41+41=122, 26+26+26=78 — none is 100...
        // but the sum must be 200. 26*3+40+41*2 = 78+40+82 = 200. Good.
        let inst = ThreePartitionInstance::new(vec![26, 26, 26, 40, 41, 41], 100).unwrap();
        assert!(inst.solve_exact().unwrap().is_none());
    }

    #[test]
    fn exact_solver_guards_size() {
        let inst = ThreePartitionInstance::generate_yes(5, 100, 3).unwrap();
        assert!(inst.solve_exact().is_err());
    }

    #[test]
    fn generated_yes_instances_are_valid_and_solvable() {
        for seed in 0..5 {
            let inst = ThreePartitionInstance::generate_yes(3, 120, seed).unwrap();
            assert_eq!(inst.values().len(), 9);
            assert_eq!(inst.values().iter().sum::<u64>(), 3 * 120);
            // Each generated instance is YES by construction.
            assert!(inst.solve_exact().unwrap().is_some());
        }
        assert!(ThreePartitionInstance::generate_yes(0, 120, 1).is_err());
        assert!(ThreePartitionInstance::generate_yes(2, 6, 1).is_err());
        assert!(ThreePartitionInstance::generate_yes(2, 121, 1).is_err());
    }

    #[test]
    fn reduction_parameters_match_the_paper() {
        let inst = yes_instance();
        let red = inst.reduce().unwrap();
        let t = 100.0;
        assert!((red.lambda - 1.0 / (2.0 * t)).abs() < 1e-15);
        assert!((red.checkpoint_cost - (std::f64::consts::LN_2 - 0.5) * 2.0 * t).abs() < 1e-9);
        // The pivotal identity of the proof: e^{λ(T+C)} = 2.
        let factor = (red.lambda * (t + red.checkpoint_cost)).exp();
        assert!((factor - 2.0).abs() < 1e-12);
        assert_eq!(red.instance.task_count(), 6);
        assert_eq!(red.instance.downtime(), 0.0);
    }

    #[test]
    fn partition_schedule_meets_the_bound_exactly() {
        let inst = yes_instance();
        let red = inst.reduce().unwrap();
        let partition = inst.solve_exact().unwrap().unwrap();
        let schedule = inst.schedule_from_partition(&red, &partition).unwrap();
        let value = expected_makespan(&red.instance, &schedule).unwrap();
        assert!(
            (value - red.bound).abs() / red.bound < 1e-12,
            "value {value} vs bound {}",
            red.bound
        );
        // And the verifier recovers a partition from it.
        let recovered = inst.partition_from_schedule(&red, &schedule).unwrap();
        assert!(recovered.is_some());
    }

    #[test]
    fn unbalanced_schedules_exceed_the_bound() {
        let inst = yes_instance();
        let red = inst.reduce().unwrap();
        // Group the six tasks as 2 + 4 instead of 3 + 3 (weights will not be
        // T each), expected makespan must exceed K by convexity.
        let order: Vec<TaskId> = (0..6).map(TaskId).collect();
        let checkpoints = vec![false, true, false, false, false, true];
        let schedule = Schedule::new(&red.instance, order, checkpoints).unwrap();
        let value = expected_makespan(&red.instance, &schedule).unwrap();
        assert!(value > red.bound);
        assert!(inst.partition_from_schedule(&red, &schedule).unwrap().is_none());
    }

    #[test]
    fn schedule_from_partition_validates_its_input() {
        let inst = yes_instance();
        let red = inst.reduce().unwrap();
        // Group sums wrong (91 and 109 instead of 100 and 100).
        assert!(inst.schedule_from_partition(&red, &[vec![0, 1, 3], vec![2, 4, 5]]).is_err());
        // Missing values.
        let partition = inst.solve_exact().unwrap().unwrap();
        assert!(inst.schedule_from_partition(&red, &partition[..1]).is_err());
    }

    #[test]
    fn brute_force_optimum_matches_bound_for_yes_instances() {
        // The optimal expected makespan of the reduced instance equals K for
        // YES instances (the proof's "⇐" direction, checked exhaustively).
        let inst = yes_instance();
        let red = inst.reduce().unwrap();
        let best = brute_force::optimal_schedule(&red.instance).unwrap();
        assert!(
            (best.expected_makespan - red.bound).abs() / red.bound < 1e-9,
            "optimal {} vs bound {}",
            best.expected_makespan,
            red.bound
        );
    }

    #[test]
    fn brute_force_optimum_exceeds_bound_for_no_instances() {
        let inst = ThreePartitionInstance::new(vec![26, 26, 26, 40, 41, 41], 100).unwrap();
        assert!(inst.solve_exact().unwrap().is_none());
        let red = inst.reduce().unwrap();
        let best = brute_force::optimal_schedule(&red.instance).unwrap();
        assert!(best.expected_makespan > red.bound * (1.0 + 1e-9));
    }
}

//! Linearisation search: local search over topological orders.
//!
//! Proposition 2 shows the joint order+checkpoint problem is strongly
//! NP-complete, which makes heuristic search over linearisations the
//! practically interesting regime. [`crate::dag_schedule::schedule_dag_best_of`]
//! only tries a fixed handful of [`LinearizationStrategy`] orders; this module
//! *searches* the order space around them:
//!
//! * **starts** — every deterministic strategy plus seeded random
//!   linearisations (the exact candidate set `schedule_dag_best_of` would
//!   evaluate, so the search result can never be worse);
//! * **moves** — precedence-preserving adjacent swaps and window rotations
//!   ([`ckpt_dag::neighborhood`]), proposed by a seeded RNG and accepted on
//!   strict improvement (first-improvement hill climbing) or, under
//!   [`AcceptanceRule::SimulatedAnnealing`], by the Metropolis rule with
//!   geometric cooling (degrading moves accepted with probability
//!   `exp(−Δ/T)`, `Δ` the relative degradation; per-restart derived RNG
//!   streams keep the runs deterministic, and the best order seen — not the
//!   final wander position — is what a run reports);
//! * **evaluation** — each candidate order is costed under the requested
//!   [`CheckpointCostModel`] with one incremental live-set sweep
//!   ([`CheckpointCostModel::costs_along_order`], `O(n + E)`), one
//!   [`SegmentCostTable`] build, and a **suffix-reusing** Algorithm 1 solve
//!   ([`ResumableDp`]): a move inside the window `[i, j]` leaves every table
//!   position `≥ j + 2` unchanged, so only the prefix of the recurrence is
//!   recomputed;
//! * **parallelism** — independent runs (one per start order) are spread
//!   across threads with the same deterministic contiguous-chunk pattern as
//!   the Monte-Carlo engine: per-run RNG streams are derived from the master
//!   seed and the run index, and the winner is selected in run order, so the
//!   outcome is **identical for any thread count**.
//!
//! Experiment `e10_order_search` measures search quality against
//! `schedule_dag_best_of` on chains, wide fork-joins and layered random
//! DAGs; bench `b6_order_search` tracks its throughput.
//!
//! [`SegmentCostTable`]: ckpt_expectation::segment_cost::SegmentCostTable

use ckpt_dag::neighborhood::{apply_move, is_valid_move, OrderMove};
use ckpt_dag::{linearize, properties, LinearizationStrategy, TaskId};
use ckpt_expectation::segment_cost::SegmentCostTable;
use ckpt_failure::{Pcg64, RandomSource};

use crate::chain_dp::{scalable_placement_on_table, ResumableDp};
use crate::cost_model::{CheckpointCostModel, LiveSetCostSweep};
use crate::dag_schedule::DagSolution;
use crate::error::ScheduleError;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// How candidate moves are accepted during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcceptanceRule {
    /// Accept strictly improving moves only (first-improvement hill
    /// climbing, the default). Deterministically identical to the behaviour
    /// before this enum existed.
    HillClimb,
    /// Metropolis acceptance with geometric cooling: a move degrading the
    /// incumbent by a relative `Δ > 0` is accepted with probability
    /// `exp(−Δ/T)`, and after every evaluated candidate the temperature is
    /// multiplied by `cooling`. Escapes the plateaus pure hill climbing
    /// stalls on (large windows, heterogeneous checkpoint costs); the run
    /// still reports the **best** order it visited, so the search never
    /// returns worse than its starts.
    SimulatedAnnealing {
        /// Initial temperature, in units of relative degradation — `0.02`
        /// accepts a 2 % degradation with probability `e⁻¹` at the start.
        initial_temperature: f64,
        /// Geometric cooling factor per evaluated candidate, in `(0, 1]`.
        cooling: f64,
    },
}

/// Tuning knobs of [`schedule_dag_search`].
#[derive(Debug, Clone)]
pub struct OrderSearchConfig {
    /// Seeded random start orders explored on top of the four deterministic
    /// strategies — the same `Random(0..restarts)` set
    /// [`crate::dag_schedule::schedule_dag_best_of`] tries with
    /// `random_tries = restarts`.
    pub restarts: u64,
    /// Move proposals per start order; `0` picks `min(4n + 64, 2048)`.
    pub steps: usize,
    /// Largest window span (in positions, inclusive) a rotation may cover;
    /// values below 2 are treated as 2 (adjacent swaps only).
    pub max_window: usize,
    /// Worker threads runs are spread across; `0` means one per available
    /// core. The result is identical for every thread count.
    pub threads: usize,
    /// Master seed; each run derives its own RNG stream from it.
    pub seed: u64,
    /// Move-acceptance rule; [`AcceptanceRule::HillClimb`] by default.
    pub acceptance: AcceptanceRule,
}

impl Default for OrderSearchConfig {
    fn default() -> Self {
        OrderSearchConfig {
            restarts: 8,
            steps: 0,
            max_window: 12,
            threads: 0,
            seed: 0x02DE2,
            acceptance: AcceptanceRule::HillClimb,
        }
    }
}

/// The result of a linearisation search.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSearchOutcome {
    /// The best schedule found (order + optimal checkpoints for it), with
    /// its values under the per-last-task model and the requested model.
    /// `solution.strategy` records the start strategy of the winning run.
    pub solution: DagSolution,
    /// Distinct start orders that were searched (duplicates of earlier
    /// starts — e.g. every strategy on a chain — are searched once).
    pub starts: usize,
    /// Moves accepted across all runs.
    pub accepted_moves: usize,
    /// Accepted moves that **strictly degraded** the incumbent — the
    /// Metropolis uphill acceptances under simulated annealing (sideways
    /// drift within the acceptance margin is not counted). Always 0 under
    /// [`AcceptanceRule::HillClimb`].
    pub degrading_moves: usize,
    /// Moves proposed across all runs (valid or not).
    pub proposed_moves: usize,
}

impl OrderSearchOutcome {
    /// The expected makespan of the best schedule under the searched model —
    /// the value [`schedule_dag_search`] minimised, never worse than
    /// [`crate::dag_schedule::schedule_dag_best_of`]'s with the same
    /// `random_tries`/`restarts`.
    pub fn expected_makespan_under_model(&self) -> f64 {
        self.solution.expected_makespan_under_model
    }
}

/// Searches the space of linearisations of `instance` for a schedule with a
/// small expected makespan under `model`, starting from every order
/// [`crate::dag_schedule::schedule_dag_best_of`] would try (with
/// `random_tries = config.restarts`) and hill-climbing through
/// precedence-preserving moves.
///
/// **Dominance:** the start orders are evaluated with exactly the same
/// table-and-DP pipeline `schedule_dag_best_of` uses and only improving
/// moves are accepted, so the returned value is never worse than the
/// best-of baseline's.
///
/// # Example
///
/// ```
/// use ckpt_core::cost_model::CheckpointCostModel;
/// use ckpt_core::order_search::{schedule_dag_search, OrderSearchConfig};
/// use ckpt_core::{dag_schedule, ProblemInstance};
/// use ckpt_dag::generators;
///
/// let graph = generators::fork_join(4, &[500.0, 300.0, 700.0, 400.0], 100.0, 200.0)?;
/// let instance = ProblemInstance::builder(graph)
///     .uniform_checkpoint_cost(40.0)
///     .uniform_recovery_cost(80.0)
///     .platform_lambda(1.0 / 3_000.0)
///     .build()?;
/// let config = OrderSearchConfig { restarts: 4, steps: 128, threads: 1, ..Default::default() };
/// let model = CheckpointCostModel::LiveSetSum;
/// let found = schedule_dag_search(&instance, model, &config)?;
/// let baseline = dag_schedule::schedule_dag_best_of(&instance, model, 4)?;
/// assert!(
///     found.expected_makespan_under_model() <= baseline.expected_makespan_under_model
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates validation errors; cannot fail for instances built through
/// [`ProblemInstance::builder`].
pub fn schedule_dag_search(
    instance: &ProblemInstance,
    model: CheckpointCostModel,
    config: &OrderSearchConfig,
) -> Result<OrderSearchOutcome, ScheduleError> {
    validate_acceptance(config)?;
    let strategies = default_start_strategies(config.restarts);

    // Materialise distinct start orders (on chains all strategies coincide —
    // searching one copy is enough), keeping the strategy of each retained
    // start aligned with it.
    let mut kept_strategies: Vec<LinearizationStrategy> = Vec::new();
    let mut starts: Vec<Vec<TaskId>> = Vec::new();
    for strategy in strategies {
        let order = linearize::linearize(instance.graph(), strategy);
        if !starts.contains(&order) {
            kept_strategies.push(strategy);
            starts.push(order);
        }
    }

    let runs = run_all(instance, model, config, &starts)?;
    let winner = winning_run(&runs);
    let best = &runs[winner];

    let schedule = Schedule::new(instance, best.order.clone(), best.checkpoint_after.clone())?;
    let expected_makespan = crate::evaluate::expected_makespan(instance, &schedule)?;
    let solution = DagSolution {
        schedule,
        expected_makespan,
        expected_makespan_under_model: best.value,
        strategy: kept_strategies[winner],
    };
    Ok(OrderSearchOutcome {
        solution,
        starts: starts.len(),
        accepted_moves: runs.iter().map(|r| r.accepted).sum(),
        degrading_moves: runs.iter().map(|r| r.degrading).sum(),
        proposed_moves: runs.iter().map(|r| r.proposed).sum(),
    })
}

/// The start-strategy set of [`schedule_dag_search`] and
/// [`crate::dag_schedule::schedule_dag_best_of`]: the four deterministic
/// strategies plus `restarts` seeded random linearisations. Exposed in one
/// place so callers seeding [`search_from_starts`] with fresh strategy
/// orders (e.g. the online re-linearisation policies) can never silently
/// diverge from the offline planners' candidate set.
pub fn default_start_strategies(restarts: u64) -> Vec<LinearizationStrategy> {
    let mut strategies = vec![
        LinearizationStrategy::IdOrder,
        LinearizationStrategy::HeaviestFirst,
        LinearizationStrategy::LightestFirst,
        LinearizationStrategy::CriticalPathFirst,
    ];
    strategies.extend((0..restarts).map(LinearizationStrategy::Random));
    strategies
}

/// The result of a [`search_from_starts`] run: the best order found and its
/// optimal placement, without the strategy bookkeeping of
/// [`schedule_dag_search`] (caller-seeded starts have no
/// [`LinearizationStrategy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SeededSearchOutcome {
    /// The best order found, never worse (under the model) than any start.
    pub order: Vec<TaskId>,
    /// The optimal checkpoint placement for that order under the model.
    pub checkpoint_after: Vec<bool>,
    /// The expected makespan of the order + placement under the model.
    pub value: f64,
    /// Index (into the deduplicated start list) of the winning start.
    pub winning_start: usize,
    /// Distinct start orders searched.
    pub starts: usize,
    /// Moves accepted across all runs.
    pub accepted_moves: usize,
    /// Moves proposed across all runs (valid or not).
    pub proposed_moves: usize,
}

/// [`schedule_dag_search`]'s engine over **caller-supplied** start orders:
/// each start is validated as a topological order of the instance graph,
/// duplicates are searched once, and every run uses the same moves,
/// evaluation and deterministic threading as `schedule_dag_search`. The
/// returned value is never worse than the best start evaluated through the
/// `schedule_dag_best_of` pipeline — so passing the incumbent order as a
/// start makes the search a strict-improvement step.
///
/// This is the online re-linearisation primitive: the `ckpt-adaptive`
/// `DagRelinearise` policy extracts the remaining graph after a failure
/// ([`ckpt_dag::subgraph::suffix_subgraph`]), seeds this search with the
/// current suffix order plus fresh strategy orders of the subgraph, and
/// splices the winner back into its execution order.
///
/// # Errors
///
/// * [`ScheduleError::EmptyInstance`] if `starts` is empty;
/// * [`ScheduleError::InvalidOrder`] if any start is not a topological
///   order of the instance graph;
/// * the [`AcceptanceRule`] validation errors of [`schedule_dag_search`].
pub fn search_from_starts(
    instance: &ProblemInstance,
    model: CheckpointCostModel,
    config: &OrderSearchConfig,
    starts: &[Vec<TaskId>],
) -> Result<SeededSearchOutcome, ScheduleError> {
    validate_acceptance(config)?;
    if starts.is_empty() {
        return Err(ScheduleError::EmptyInstance);
    }
    let mut deduped: Vec<Vec<TaskId>> = Vec::new();
    for order in starts {
        if !ckpt_dag::topo::is_topological_order(instance.graph(), order) {
            return Err(ScheduleError::InvalidOrder);
        }
        if !deduped.contains(order) {
            deduped.push(order.clone());
        }
    }

    let runs = run_all(instance, model, config, &deduped)?;
    let winner = winning_run(&runs);
    let accepted_moves = runs.iter().map(|r| r.accepted).sum();
    let proposed_moves = runs.iter().map(|r| r.proposed).sum();
    let best = runs.into_iter().nth(winner).expect("winner index is in range");
    Ok(SeededSearchOutcome {
        order: best.order,
        checkpoint_after: best.checkpoint_after,
        value: best.value,
        winning_start: winner,
        starts: deduped.len(),
        accepted_moves,
        proposed_moves,
    })
}

/// Validates the acceptance-rule parameters of a config.
fn validate_acceptance(config: &OrderSearchConfig) -> Result<(), ScheduleError> {
    if let AcceptanceRule::SimulatedAnnealing { initial_temperature, cooling } = config.acceptance {
        if !initial_temperature.is_finite() || initial_temperature <= 0.0 {
            return Err(ScheduleError::NonPositiveParameter {
                name: "initial_temperature",
                value: initial_temperature,
            });
        }
        if !cooling.is_finite() || cooling <= 0.0 || cooling > 1.0 {
            return Err(ScheduleError::NonPositiveParameter { name: "cooling", value: cooling });
        }
    }
    Ok(())
}

/// Deterministic winner selection: smallest value, ties broken by run index.
fn winning_run(runs: &[RunResult]) -> usize {
    runs.iter()
        .enumerate()
        .min_by(|(ia, a), (ib, b)| a.value.total_cmp(&b.value).then(ia.cmp(ib)))
        .map(|(index, _)| index)
        .expect("at least one start order exists")
}

/// The outcome of one start order's local search.
struct RunResult {
    order: Vec<TaskId>,
    checkpoint_after: Vec<bool>,
    /// Expected makespan under the model, evaluated with the same
    /// table-and-DP pipeline `schedule_dag_best_of` uses.
    value: f64,
    accepted: usize,
    degrading: usize,
    proposed: usize,
}

/// Runs every start's local search, spreading runs across worker threads in
/// contiguous chunks (the Monte-Carlo engine's deterministic pattern: run
/// `k`'s result always lands in slot `k`, whatever the thread count).
fn run_all(
    instance: &ProblemInstance,
    model: CheckpointCostModel,
    config: &OrderSearchConfig,
    starts: &[Vec<TaskId>],
) -> Result<Vec<RunResult>, ScheduleError> {
    crate::parallel::chunked_map_with(
        starts,
        config.threads,
        || (),
        |_, run_index, start| local_search_run(instance, model, config, start, run_index),
    )
    .into_iter()
    .collect()
}

/// Relative improvement a candidate must show to be accepted — comfortably
/// above the ~1e-15 noise the suffix-reusing evaluation can carry (prefix
/// sums re-associate when a window is permuted), so accepted improvements
/// are always real.
const ACCEPT_MARGIN: f64 = 1e-10;

/// Hill-climbs from one start order. Proposes `steps` seeded random moves,
/// evaluates each with a window-local vector update plus a suffix-reusing DP
/// resolve, and accepts strict improvements. The returned value is a final
/// from-scratch evaluation of the best order through the same
/// table-and-placement pipeline `schedule_dag_best_of` uses.
fn local_search_run(
    instance: &ProblemInstance,
    model: CheckpointCostModel,
    config: &OrderSearchConfig,
    start_order: &[TaskId],
    run_index: usize,
) -> Result<RunResult, ScheduleError> {
    let n = start_order.len();
    let mut state = OrderState::new(instance, model, start_order.to_vec());
    let mut accepted = 0usize;
    let mut degrading = 0usize;
    let mut proposed = 0usize;

    // On a chain the topological order is unique: no move can be valid, so
    // skip straight to the final evaluation.
    let searchable = n >= 2 && !properties::is_chain(instance.graph());
    if searchable {
        let steps = if config.steps == 0 { (4 * n + 64).min(2048) } else { config.steps };
        let max_window = config.max_window.max(2).min(n);
        let mut rng = Pcg64::seed_from_u64(config.seed).derive(run_index as u64);
        let mut dp = ResumableDp::new();
        let mut incumbent = dp.solve(&state.table()?);

        // Annealing state: under the Metropolis rule the walk may wander
        // uphill, so the best order *seen* is tracked separately and
        // restored at the end (`None` = the start order is still the best).
        let mut temperature = match config.acceptance {
            AcceptanceRule::HillClimb => 0.0,
            AcceptanceRule::SimulatedAnnealing { initial_temperature, .. } => initial_temperature,
        };
        let mut best_value = incumbent;
        let mut best_order: Option<Vec<TaskId>> = None;

        for _ in 0..steps {
            proposed += 1;
            let mv = propose_move(&mut rng, n, max_window);
            if !is_valid_move(instance.graph(), &state.order, &mv) {
                continue;
            }
            let (_, hi) = mv.window();
            apply_move(&mut state.order, &mv);
            state.refresh_candidate_vectors(mv.window());
            let candidate_table = state.candidate_table()?;
            let value = dp.try_prefix(&candidate_table, hi + 2);
            let improving = value < incumbent * (1.0 - ACCEPT_MARGIN);
            let accept = improving
                || match config.acceptance {
                    AcceptanceRule::HillClimb => false,
                    AcceptanceRule::SimulatedAnnealing { .. } => {
                        // Metropolis on the relative degradation: sideways
                        // and (sub-margin) downhill moves always pass,
                        // uphill moves pass with probability exp(−Δ/T) —
                        // explicitly 0 once the temperature underflows, so
                        // a frozen walk is greedy rather than NaN-driven.
                        // The draw comes from the run's derived stream, so
                        // the walk stays deterministic per (seed, run
                        // index).
                        let delta = (value - incumbent) / incumbent;
                        let probability = if delta <= 0.0 {
                            1.0
                        } else if temperature > 0.0 {
                            (-delta / temperature).exp()
                        } else {
                            0.0
                        };
                        rng.next_f64() < probability
                    }
                };
            if accept {
                state.commit_candidate();
                dp.commit_trial();
                if value > incumbent {
                    // A strict degradation of the incumbent (Metropolis
                    // uphill acceptance) — sideways drift within the margin
                    // is not counted.
                    degrading += 1;
                }
                incumbent = value;
                accepted += 1;
                if value < best_value * (1.0 - ACCEPT_MARGIN) {
                    best_value = value;
                    if !matches!(config.acceptance, AcceptanceRule::HillClimb) {
                        best_order = Some(state.order.clone());
                    }
                }
            } else {
                apply_move(&mut state.order, &mv.inverse());
            }
            if let AcceptanceRule::SimulatedAnnealing { cooling, .. } = config.acceptance {
                temperature *= cooling;
            }
        }

        // Hill climbing is monotone: the current order IS the best seen.
        // Under annealing, fall back to the best recorded order (or the
        // start order if nothing ever improved on it).
        if !matches!(config.acceptance, AcceptanceRule::HillClimb) {
            state.order = best_order.unwrap_or_else(|| start_order.to_vec());
        }
    }

    // Final from-scratch evaluation: bitwise the same pipeline as
    // `schedule_dag_best_of` (model table + scalable placement), so start
    // orders score identically to the baseline and dominance is exact.
    let table = crate::dag_schedule::model_cost_table(instance, &state.order, model)?;
    let placement = scalable_placement_on_table(&table);
    Ok(RunResult {
        order: state.order,
        checkpoint_after: placement.checkpoint_after(),
        value: placement.expected_makespan,
        accepted,
        degrading,
        proposed,
    })
}

/// Draws one random move: adjacent swaps and both rotation directions with
/// equal probability, windows uniform in `2..=max_window` positions.
fn propose_move(rng: &mut Pcg64, n: usize, max_window: usize) -> OrderMove {
    let kind = rng.next_u64() % 3;
    if kind == 0 || max_window == 2 || n < 3 {
        OrderMove::SwapAdjacent { i: (rng.next_u64() as usize) % (n - 1) }
    } else {
        let span = 2 + (rng.next_u64() as usize) % (max_window - 1);
        let span = span.min(n);
        let i = (rng.next_u64() as usize) % (n - span + 1);
        let j = i + span - 1;
        if kind == 1 {
            OrderMove::RotateLeft { i, j }
        } else {
            OrderMove::RotateRight { i, j }
        }
    }
}

/// The committed positional data of the current order plus a candidate
/// buffer, so rejected moves never have to rebuild the committed vectors.
/// All working memory (candidate vectors, the live-set sweep state and its
/// lazy max-heaps) is held here and reused: the proposal loop allocates
/// nothing.
struct OrderState<'a> {
    instance: &'a ProblemInstance,
    model: CheckpointCostModel,
    order: Vec<TaskId>,
    cost_sweep: LiveSetCostSweep<'a>,
    /// Committed positional vectors of `order` *before* the pending move.
    weights: Vec<f64>,
    ckpt: Vec<f64>,
    recoveries: Vec<f64>,
    /// Candidate vectors for the move currently applied to `order`.
    cand_weights: Vec<f64>,
    cand_ckpt: Vec<f64>,
    cand_recoveries: Vec<f64>,
    /// Scratch for the raw (unshifted) per-position recovery costs.
    raw_rec: Vec<f64>,
}

impl<'a> OrderState<'a> {
    fn new(instance: &'a ProblemInstance, model: CheckpointCostModel, order: Vec<TaskId>) -> Self {
        let mut state = OrderState {
            instance,
            model,
            order,
            cost_sweep: LiveSetCostSweep::new(instance.graph()),
            weights: Vec::new(),
            ckpt: Vec::new(),
            recoveries: Vec::new(),
            cand_weights: Vec::new(),
            cand_ckpt: Vec::new(),
            cand_recoveries: Vec::new(),
            raw_rec: Vec::new(),
        };
        state.rebuild_committed();
        state
    }

    /// Rebuilds the committed vectors from scratch for the current order.
    fn rebuild_committed(&mut self) {
        self.weights.clear();
        self.weights.extend(self.order.iter().map(|&t| self.instance.weight(t)));
        self.cost_sweep.costs_into(
            self.model,
            self.instance,
            &self.order,
            &mut self.ckpt,
            &mut self.raw_rec,
        );
        shift_recoveries(self.instance.initial_recovery(), &self.raw_rec, &mut self.recoveries);
    }

    /// Fills the candidate vectors for the move just applied to `order`,
    /// whose position window is `(lo, hi)`. Weights are patched inside the
    /// window only; under the live-set models the cost vectors are re-swept
    /// (one `O(n + E)` pass through the reused sweep state — the live set of
    /// prefixes inside the window genuinely changes), under the
    /// per-last-task model they are patched in `O(hi − lo)` too.
    fn refresh_candidate_vectors(&mut self, (lo, hi): (usize, usize)) {
        let n = self.order.len();
        self.cand_weights.clone_from(&self.weights);
        for p in lo..=hi {
            self.cand_weights[p] = self.instance.weight(self.order[p]);
        }
        match self.model {
            CheckpointCostModel::PerLastTask => {
                self.cand_ckpt.clone_from(&self.ckpt);
                self.cand_recoveries.clone_from(&self.recoveries);
                for p in lo..=hi {
                    self.cand_ckpt[p] = self.instance.checkpoint_cost(self.order[p]);
                    if p + 1 < n {
                        self.cand_recoveries[p + 1] = self.instance.recovery_cost(self.order[p]);
                    }
                }
            }
            CheckpointCostModel::LiveSetSum | CheckpointCostModel::LiveSetMax => {
                self.cost_sweep.costs_into(
                    self.model,
                    self.instance,
                    &self.order,
                    &mut self.cand_ckpt,
                    &mut self.raw_rec,
                );
                shift_recoveries(
                    self.instance.initial_recovery(),
                    &self.raw_rec,
                    &mut self.cand_recoveries,
                );
            }
        }
    }

    /// Promotes the candidate vectors to committed (the move was accepted).
    fn commit_candidate(&mut self) {
        std::mem::swap(&mut self.weights, &mut self.cand_weights);
        std::mem::swap(&mut self.ckpt, &mut self.cand_ckpt);
        std::mem::swap(&mut self.recoveries, &mut self.cand_recoveries);
    }

    fn table(&self) -> Result<SegmentCostTable, ScheduleError> {
        SegmentCostTable::new(
            self.instance.lambda(),
            self.instance.downtime(),
            &self.weights,
            &self.ckpt,
            &self.recoveries,
        )
        .map_err(ScheduleError::from_expectation)
    }

    fn candidate_table(&self) -> Result<SegmentCostTable, ScheduleError> {
        SegmentCostTable::new(
            self.instance.lambda(),
            self.instance.downtime(),
            &self.cand_weights,
            &self.cand_ckpt,
            &self.cand_recoveries,
        )
        .map_err(ScheduleError::from_expectation)
    }
}

/// Turns raw per-position recovery costs into the protecting-recovery vector
/// (`out[0] = R₀`, `out[x] = raw[x − 1]`), reusing `out`'s capacity.
fn shift_recoveries(initial: f64, raw: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.push(initial);
    out.extend(raw.iter().take(raw.len() - 1).copied());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_dp;
    use crate::dag_schedule::schedule_dag_best_of;
    use ckpt_dag::generators;

    fn fork_join_instance() -> ProblemInstance {
        let graph =
            generators::fork_join(5, &[500.0, 300.0, 700.0, 150.0, 900.0], 100.0, 200.0).unwrap();
        ProblemInstance::builder(graph)
            .checkpoint_costs(vec![40.0, 10.0, 120.0, 35.0, 80.0, 20.0, 55.0])
            .uniform_recovery_cost(80.0)
            .downtime(10.0)
            .platform_lambda(1.0 / 3_000.0)
            .build()
            .unwrap()
    }

    fn layered_instance(seed: u64) -> ProblemInstance {
        use ckpt_failure::{Pcg64, RandomSource};
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut coin_rng = rng.derive(7);
        let graph = generators::layered_random(
            &[2, 4, 3, 4, 2],
            |lvl, idx| 100.0 + 150.0 * ((lvl * 3 + idx) % 5) as f64,
            0.4,
            move || coin_rng.next_f64(),
        )
        .unwrap();
        let n = graph.task_count();
        let ckpt: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 90.0).collect();
        let rec: Vec<f64> = (0..n).map(|_| 10.0 + rng.next_f64() * 90.0).collect();
        ProblemInstance::builder(graph)
            .checkpoint_costs(ckpt)
            .recovery_costs(rec)
            .downtime(5.0)
            .platform_lambda(1.0 / 2_500.0)
            .build()
            .unwrap()
    }

    const MODELS: [CheckpointCostModel; 3] = [
        CheckpointCostModel::PerLastTask,
        CheckpointCostModel::LiveSetSum,
        CheckpointCostModel::LiveSetMax,
    ];

    #[test]
    fn search_never_worse_than_best_of() {
        let config =
            OrderSearchConfig { restarts: 4, steps: 300, threads: 1, ..Default::default() };
        for inst in [fork_join_instance(), layered_instance(1), layered_instance(2)] {
            for model in MODELS {
                let found = schedule_dag_search(&inst, model, &config).unwrap();
                let baseline = schedule_dag_best_of(&inst, model, config.restarts).unwrap();
                assert!(
                    found.expected_makespan_under_model() <= baseline.expected_makespan_under_model,
                    "{model}: search {} vs best-of {}",
                    found.expected_makespan_under_model(),
                    baseline.expected_makespan_under_model
                );
            }
        }
    }

    #[test]
    fn search_on_chain_returns_the_chain_optimum() {
        let graph = generators::chain(&[400.0, 100.0, 900.0, 250.0, 650.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(60.0)
            .uniform_recovery_cost(60.0)
            .downtime(30.0)
            .platform_lambda(1.0 / 4_000.0)
            .build()
            .unwrap();
        let found =
            schedule_dag_search(&inst, CheckpointCostModel::PerLastTask, &Default::default())
                .unwrap();
        let chain = chain_dp::optimal_chain_schedule(&inst).unwrap();
        assert!((found.solution.expected_makespan - chain.expected_makespan).abs() < 1e-9);
        // A chain has a unique linearisation: one start, no proposals.
        assert_eq!(found.starts, 1);
        assert_eq!(found.proposed_moves, 0);
    }

    #[test]
    fn outcome_is_identical_for_any_thread_count() {
        let inst = layered_instance(5);
        let base = OrderSearchConfig { restarts: 6, steps: 200, threads: 1, ..Default::default() };
        let single = schedule_dag_search(&inst, CheckpointCostModel::LiveSetSum, &base).unwrap();
        for threads in [2usize, 3, 8] {
            let config = OrderSearchConfig { threads, ..base.clone() };
            let multi =
                schedule_dag_search(&inst, CheckpointCostModel::LiveSetSum, &config).unwrap();
            assert_eq!(single.solution, multi.solution, "differs at {threads} threads");
            assert_eq!(single.accepted_moves, multi.accepted_moves);
        }
    }

    #[test]
    fn search_improves_on_an_adversarial_independent_instance() {
        // Independent tasks with wildly heterogeneous checkpoint costs: the
        // fixed strategies order by weight, but the best orders interleave
        // cheap-checkpoint tasks at segment ends. Search must find strictly
        // better than the deterministic starts here.
        use ckpt_failure::{Pcg64, RandomSource};
        let mut rng = Pcg64::seed_from_u64(42);
        let n = 12;
        let weights: Vec<f64> = (0..n).map(|_| 200.0 + rng.next_f64() * 1_000.0).collect();
        let graph = generators::independent(&weights).unwrap();
        let ckpt: Vec<f64> = (0..n).map(|_| rng.next_f64() * 400.0).collect();
        let inst = ProblemInstance::builder(graph)
            .checkpoint_costs(ckpt)
            .uniform_recovery_cost(50.0)
            .platform_lambda(1.0 / 1_500.0)
            .build()
            .unwrap();
        let config =
            OrderSearchConfig { restarts: 4, steps: 800, threads: 1, ..Default::default() };
        let model = CheckpointCostModel::PerLastTask;
        let found = schedule_dag_search(&inst, model, &config).unwrap();
        let baseline = schedule_dag_best_of(&inst, model, config.restarts).unwrap();
        assert!(
            found.expected_makespan_under_model() < baseline.expected_makespan_under_model,
            "search {} should beat best-of {} here",
            found.expected_makespan_under_model(),
            baseline.expected_makespan_under_model
        );
        assert!(found.accepted_moves > 0);
    }

    mod search_properties {
        use super::*;
        use ckpt_failure::Pcg64;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Every valid neighbourhood move maps a topological order to a
            /// topological order — validated through `Schedule::new`, the
            /// constructor every search result must pass anyway.
            #[test]
            fn prop_moves_yield_orders_schedule_new_accepts(seed in any::<u64>()) {
                let inst = layered_instance(seed);
                let n = inst.task_count();
                let order = linearize::linearize(
                    inst.graph(),
                    LinearizationStrategy::Random(seed ^ 0x5A5A),
                );
                let mut rng = Pcg64::seed_from_u64(seed);
                let mut current = order;
                for _ in 0..80 {
                    let mv = propose_move(&mut rng, n, 8);
                    if !is_valid_move(inst.graph(), &current, &mv) {
                        continue;
                    }
                    apply_move(&mut current, &mv);
                    let flags = vec![true; n];
                    let schedule = Schedule::new(&inst, current.clone(), flags);
                    prop_assert!(schedule.is_ok(), "{:?} produced an invalid order", mv);
                }
            }

            /// The search never returns a worse model value than
            /// `schedule_dag_best_of` with the matching random-tries count.
            #[test]
            fn prop_search_dominates_best_of(seed in any::<u64>()) {
                let inst = layered_instance(seed);
                let config = OrderSearchConfig {
                    restarts: 3,
                    steps: 60,
                    threads: 1,
                    seed,
                    ..Default::default()
                };
                for model in MODELS {
                    let found = schedule_dag_search(&inst, model, &config).unwrap();
                    let baseline = schedule_dag_best_of(&inst, model, config.restarts).unwrap();
                    prop_assert!(
                        found.expected_makespan_under_model()
                            <= baseline.expected_makespan_under_model,
                        "{}: search {} vs best-of {}",
                        model,
                        found.expected_makespan_under_model(),
                        baseline.expected_makespan_under_model
                    );
                }
            }
        }
    }

    /// The annealing configuration the tests exercise: hot enough to accept
    /// degrading moves early, cooling to effectively greedy behaviour.
    fn annealing() -> AcceptanceRule {
        AcceptanceRule::SimulatedAnnealing { initial_temperature: 0.05, cooling: 0.99 }
    }

    #[test]
    fn annealing_accepts_degrading_moves_but_never_returns_worse() {
        let config = OrderSearchConfig {
            restarts: 4,
            steps: 400,
            threads: 1,
            acceptance: annealing(),
            ..Default::default()
        };
        for inst in [fork_join_instance(), layered_instance(1), layered_instance(4)] {
            for model in MODELS {
                let found = schedule_dag_search(&inst, model, &config).unwrap();
                let baseline = schedule_dag_best_of(&inst, model, config.restarts).unwrap();
                assert!(
                    found.expected_makespan_under_model() <= baseline.expected_makespan_under_model,
                    "{model}: annealed search {} vs best-of {}",
                    found.expected_makespan_under_model(),
                    baseline.expected_makespan_under_model
                );
            }
        }
        // At this temperature some uphill moves must be taken on the
        // heterogeneous layered instance.
        let found =
            schedule_dag_search(&layered_instance(1), CheckpointCostModel::LiveSetSum, &config)
                .unwrap();
        assert!(found.degrading_moves > 0, "no degrading move was ever accepted");
        assert!(found.accepted_moves >= found.degrading_moves);
    }

    #[test]
    fn hill_climbing_never_accepts_degrading_moves() {
        let config =
            OrderSearchConfig { restarts: 4, steps: 300, threads: 1, ..Default::default() };
        let found =
            schedule_dag_search(&layered_instance(1), CheckpointCostModel::LiveSetSum, &config)
                .unwrap();
        assert_eq!(found.degrading_moves, 0);
    }

    #[test]
    fn annealing_outcome_is_identical_for_any_thread_count() {
        let inst = layered_instance(5);
        let base = OrderSearchConfig {
            restarts: 6,
            steps: 200,
            threads: 1,
            acceptance: annealing(),
            ..Default::default()
        };
        let single = schedule_dag_search(&inst, CheckpointCostModel::LiveSetSum, &base).unwrap();
        for threads in [2usize, 3, 8] {
            let config = OrderSearchConfig { threads, ..base.clone() };
            let multi =
                schedule_dag_search(&inst, CheckpointCostModel::LiveSetSum, &config).unwrap();
            assert_eq!(single.solution, multi.solution, "differs at {threads} threads");
            assert_eq!(single.accepted_moves, multi.accepted_moves);
            assert_eq!(single.degrading_moves, multi.degrading_moves);
        }
    }

    #[test]
    fn annealing_validates_its_parameters() {
        let inst = fork_join_instance();
        for (t, c) in [(0.0, 0.9), (-1.0, 0.9), (f64::NAN, 0.9), (0.1, 0.0), (0.1, 1.5)] {
            let config = OrderSearchConfig {
                acceptance: AcceptanceRule::SimulatedAnnealing {
                    initial_temperature: t,
                    cooling: c,
                },
                ..Default::default()
            };
            assert!(
                schedule_dag_search(&inst, CheckpointCostModel::PerLastTask, &config).is_err(),
                "temperature {t}, cooling {c} should be rejected"
            );
        }
    }

    #[test]
    fn search_from_starts_never_worse_than_its_seeds() {
        let inst = layered_instance(9);
        let config = OrderSearchConfig { steps: 120, threads: 1, ..Default::default() };
        let seed_orders: Vec<Vec<TaskId>> = [
            LinearizationStrategy::IdOrder,
            LinearizationStrategy::Random(3),
            LinearizationStrategy::Random(3), // duplicate: searched once
        ]
        .into_iter()
        .map(|s| linearize::linearize(inst.graph(), s))
        .collect();
        for model in MODELS {
            let found = search_from_starts(&inst, model, &config, &seed_orders).unwrap();
            assert_eq!(found.starts, 2, "duplicate start must be deduplicated");
            assert!(found.winning_start < found.starts);
            for order in &seed_orders {
                let table = crate::dag_schedule::model_cost_table(&inst, order, model).unwrap();
                let seed_value = scalable_placement_on_table(&table).expected_makespan;
                assert!(
                    found.value <= seed_value,
                    "{model}: seeded search {} worse than its start {seed_value}",
                    found.value
                );
            }
            // The returned order + placement re-evaluate to the reported
            // value through the same pipeline.
            let table = crate::dag_schedule::model_cost_table(&inst, &found.order, model).unwrap();
            let value = table.total_cost(&found.checkpoint_after);
            assert!((value - found.value).abs() <= 1e-10 * value.abs().max(1.0));
        }
    }

    #[test]
    fn search_from_starts_validates_inputs() {
        let inst = layered_instance(9);
        let config = OrderSearchConfig { threads: 1, ..Default::default() };
        assert!(matches!(
            search_from_starts(&inst, CheckpointCostModel::PerLastTask, &config, &[]),
            Err(ScheduleError::EmptyInstance)
        ));
        let mut bad = linearize::linearize(inst.graph(), LinearizationStrategy::IdOrder);
        bad.reverse();
        assert!(matches!(
            search_from_starts(&inst, CheckpointCostModel::PerLastTask, &config, &[bad]),
            Err(ScheduleError::InvalidOrder)
        ));
    }

    #[test]
    fn returned_schedule_is_consistent_with_its_reported_values() {
        let inst = layered_instance(3);
        let config =
            OrderSearchConfig { restarts: 3, steps: 150, threads: 1, ..Default::default() };
        for model in MODELS {
            let found = schedule_dag_search(&inst, model, &config).unwrap();
            // The order is a valid topological order (Schedule::new validated
            // it) and the model value matches re-evaluating the order.
            let table = crate::dag_schedule::model_cost_table(
                &inst,
                found.solution.schedule.order(),
                model,
            )
            .unwrap();
            let value = table.total_cost(found.solution.schedule.checkpoint_after());
            let gap = (value - found.expected_makespan_under_model()).abs() / value;
            assert!(gap < 1e-10, "{model}: reported value off by {gap}");
            let eval = crate::evaluate::expected_makespan(&inst, &found.solution.schedule).unwrap();
            let gap = (eval - found.solution.expected_makespan).abs() / eval;
            assert!(gap < 1e-10, "{model}: per-last-task value off by {gap}");
        }
    }
}

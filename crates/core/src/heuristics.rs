//! Checkpoint-placement heuristics and baselines (paper §7 related work,
//! plus the independent-task heuristics motivated by Proposition 2).
//!
//! Since choosing an order and checkpoint positions for independent tasks is
//! strongly NP-complete (Proposition 2), practical schedulers need heuristics.
//! This module provides the baselines the experiments compare against:
//!
//! * fixed-order placements: checkpoint after every task, only at the end,
//!   every `k` tasks, or whenever the accumulated work exceeds a *period*
//!   (Young/Daly-style periodic checkpointing transplanted to task
//!   boundaries);
//! * order heuristics for independent tasks (LPT / SPT);
//! * a local-search improver that perturbs checkpoint decisions and adjacent
//!   task pairs.

use ckpt_dag::{linearize, topo, LinearizationStrategy, TaskId};
use ckpt_expectation::approximations::young_period;
use ckpt_expectation::segment_cost::SegmentCostTable;

use crate::error::ScheduleError;
use crate::evaluate::{expected_makespan, lambda_sweep_for_order, segment_cost_table};
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// Checkpoint after every `k`-th task of `order` (and after the last task).
///
/// # Errors
///
/// * [`ScheduleError::NonPositiveParameter`] if `k == 0`;
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order.
pub fn checkpoint_every_k(
    instance: &ProblemInstance,
    order: Vec<TaskId>,
    k: usize,
) -> Result<Schedule, ScheduleError> {
    if k == 0 {
        return Err(ScheduleError::NonPositiveParameter { name: "k", value: 0.0 });
    }
    let n = order.len();
    let mut checkpoints = vec![false; n];
    for (pos, decision) in checkpoints.iter_mut().enumerate() {
        if (pos + 1).is_multiple_of(k) {
            *decision = true;
        }
    }
    if let Some(last) = checkpoints.last_mut() {
        *last = true;
    }
    Schedule::new(instance, order, checkpoints)
}

/// Periodic checkpointing at task granularity: walk `order` accumulating work
/// and checkpoint after the first task that pushes the accumulated work to
/// `period` or beyond.
///
/// # Errors
///
/// * [`ScheduleError::NonPositiveParameter`] if `period ≤ 0`;
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order.
pub fn checkpoint_by_period(
    instance: &ProblemInstance,
    order: Vec<TaskId>,
    period: f64,
) -> Result<Schedule, ScheduleError> {
    if !period.is_finite() || period <= 0.0 {
        return Err(ScheduleError::NonPositiveParameter { name: "period", value: period });
    }
    let weights: Vec<f64> = order.iter().map(|&t| instance.weight(t)).collect();
    let checkpoints = period_flags(&weights, period);
    Schedule::new(instance, order, checkpoints)
}

/// Periodic checkpointing using Young's first-order period `√(2·C̄/λ)`, where
/// `C̄` is the mean per-task checkpoint cost. This is the natural transplant of
/// divisible-load periodic checkpointing (paper §7) to the task model.
///
/// # Errors
///
/// Propagates errors from [`checkpoint_by_period`] (e.g. all-zero checkpoint
/// costs make the Young period undefined).
pub fn young_periodic_schedule(
    instance: &ProblemInstance,
    order: Vec<TaskId>,
) -> Result<Schedule, ScheduleError> {
    let period = young_period_for(instance, instance.lambda())?;
    checkpoint_by_period(instance, order, period)
}

/// The Young period `√(2·C̄/λ)` of `instance`'s mean per-task checkpoint cost
/// at rate `lambda` — shared by [`young_periodic_schedule`] and
/// [`baseline_lambda_sweep`] so the two can never diverge on the definition.
fn young_period_for(instance: &ProblemInstance, lambda: f64) -> Result<f64, ScheduleError> {
    young_period_for_mean(mean_checkpoint_cost(instance), lambda)
}

/// The λ-independent half of [`young_period_for`], hoisted out of per-rate
/// loops.
fn mean_checkpoint_cost(instance: &ProblemInstance) -> f64 {
    instance.checkpoint_costs().iter().sum::<f64>() / instance.task_count() as f64
}

/// The λ-dependent half of [`young_period_for`].
fn young_period_for_mean(mean_c: f64, lambda: f64) -> Result<f64, ScheduleError> {
    young_period(mean_c, lambda).map_err(|_| ScheduleError::NonPositiveParameter {
        name: "mean checkpoint cost",
        value: mean_c,
    })
}

/// One row of [`baseline_lambda_sweep`]: the expected makespan of the three
/// standard fixed-order baselines at one failure rate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaselineSweepPoint {
    /// The platform failure rate of this point.
    pub lambda: f64,
    /// Expected makespan of checkpointing after every task.
    pub everywhere: f64,
    /// Expected makespan of the single mandatory final checkpoint.
    pub final_only: f64,
    /// Expected makespan of Young-periodic placement (the period `√(2C̄/λ)`
    /// is recomputed at each rate, so the placement adapts with λ).
    pub young: f64,
}

/// Evaluates the checkpoint-everywhere, final-only and Young-periodic
/// baselines along `order` across a whole vector of failure rates, sharing
/// the order's λ-independent precomputation
/// (via [`LambdaSweep`](ckpt_expectation::sweep::LambdaSweep)) between the
/// rates — the batched baseline curves experiment E9 plots against the
/// re-optimised [`crate::analysis::lambda_sweep`].
///
/// # Errors
///
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order;
/// * [`ScheduleError::NonPositiveParameter`] if a rate is not strictly
///   positive or the mean checkpoint cost is zero (the Young period is then
///   undefined).
pub fn baseline_lambda_sweep(
    instance: &ProblemInstance,
    order: &[TaskId],
    lambdas: &[f64],
) -> Result<Vec<BaselineSweepPoint>, ScheduleError> {
    let sweep = lambda_sweep_for_order(instance, order)?;
    let n = order.len();
    let everywhere = vec![true; n];
    let mut final_only = vec![false; n];
    final_only[n - 1] = true;
    let weights: Vec<f64> = order.iter().map(|&t| instance.weight(t)).collect();
    let mean_c = mean_checkpoint_cost(instance);
    lambdas
        .iter()
        .map(|&lambda| {
            let table = sweep.table_for(lambda).map_err(ScheduleError::from_expectation)?;
            let period = young_period_for_mean(mean_c, lambda)?;
            let young = table.total_cost(&period_flags(&weights, period));
            Ok(BaselineSweepPoint {
                lambda,
                everywhere: table.total_cost(&everywhere),
                final_only: table.total_cost(&final_only),
                young,
            })
        })
        .collect()
}

/// The checkpoint decisions of periodic placement at task granularity (the
/// walk of [`checkpoint_by_period`], on positional weights).
fn period_flags(weights: &[f64], period: f64) -> Vec<bool> {
    let mut flags = vec![false; weights.len()];
    let mut accumulated = 0.0;
    for (pos, &w) in weights.iter().enumerate() {
        accumulated += w;
        if accumulated >= period {
            flags[pos] = true;
            accumulated = 0.0;
        }
    }
    if let Some(last) = flags.last_mut() {
        *last = true;
    }
    flags
}

/// Longest-Processing-Time-first order for independent tasks.
///
/// # Errors
///
/// Returns [`ScheduleError::NotIndependent`] if the instance has dependences.
pub fn lpt_order(instance: &ProblemInstance) -> Result<Vec<TaskId>, ScheduleError> {
    if instance.graph().edge_count() != 0 {
        return Err(ScheduleError::NotIndependent);
    }
    Ok(linearize::linearize(instance.graph(), LinearizationStrategy::HeaviestFirst))
}

/// Shortest-Processing-Time-first order for independent tasks.
///
/// # Errors
///
/// Returns [`ScheduleError::NotIndependent`] if the instance has dependences.
pub fn spt_order(instance: &ProblemInstance) -> Result<Vec<TaskId>, ScheduleError> {
    if instance.graph().edge_count() != 0 {
        return Err(ScheduleError::NotIndependent);
    }
    Ok(linearize::linearize(instance.graph(), LinearizationStrategy::LightestFirst))
}

/// Result of the local-search improver.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSearchResult {
    /// The improved schedule.
    pub schedule: Schedule,
    /// Its expected makespan.
    pub expected_makespan: f64,
    /// Number of accepted improving moves.
    pub improvements: u64,
}

/// The makespan change from toggling the checkpoint decision at `pos`: only
/// the segments adjacent to `pos` are re-evaluated (three exp-free table
/// costs), not the whole schedule.
fn toggle_delta(table: &SegmentCostTable, checkpoints: &[bool], pos: usize) -> f64 {
    let start = checkpoints[..pos].iter().rposition(|&c| c).map_or(0, |q| q + 1);
    let next = pos
        + 1
        + checkpoints[pos + 1..]
            .iter()
            .position(|&c| c)
            .expect("the final checkpoint is mandatory");
    if checkpoints[pos] {
        // Removing the checkpoint merges the two segments around pos.
        -table.split_delta(start, pos, next)
    } else {
        // Adding one splits the segment containing pos.
        table.split_delta(start, pos, next)
    }
}

/// First-improvement local search over a schedule.
///
/// Two move families are explored repeatedly until a full pass yields no
/// improvement (or `max_passes` passes have been made):
///
/// 1. toggling the checkpoint decision at any non-final position — evaluated
///    incrementally through the order's [`SegmentCostTable`], so a toggle
///    costs three exp-free segment costs instead of a full re-evaluation;
/// 2. swapping two adjacent tasks in the order, when the swap keeps the order
///    topologically valid (an order change rebuilds the table once).
///
/// The search is deterministic; it never degrades the starting schedule.
///
/// # Errors
///
/// Propagates evaluation errors (cannot occur for valid instances).
pub fn local_search(
    instance: &ProblemInstance,
    start: Schedule,
    max_passes: usize,
) -> Result<LocalSearchResult, ScheduleError> {
    let mut order: Vec<TaskId> = start.order().to_vec();
    let mut checkpoints: Vec<bool> = start.checkpoint_after().to_vec();
    let mut table = segment_cost_table(instance, &order)?;
    let mut best_value = table.total_cost(&checkpoints);
    let mut improvements = 0u64;
    let n = order.len();

    for _ in 0..max_passes {
        let mut improved = false;

        // Move family 1: toggle checkpoint decisions (the final one is fixed).
        for pos in 0..n.saturating_sub(1) {
            let delta = toggle_delta(&table, &checkpoints, pos);
            if delta < -1e-12 {
                checkpoints[pos] = !checkpoints[pos];
                best_value += delta;
                improvements += 1;
                improved = true;
            }
        }

        // Move family 2: adjacent swaps that preserve precedence.
        for pos in 0..n.saturating_sub(1) {
            order.swap(pos, pos + 1);
            if topo::is_topological_order(instance.graph(), &order) {
                let candidate_table = segment_cost_table(instance, &order)?;
                let value = candidate_table.total_cost(&checkpoints);
                if value + 1e-12 < best_value {
                    best_value = value;
                    table = candidate_table;
                    improvements += 1;
                    improved = true;
                    continue;
                }
            }
            order.swap(pos, pos + 1);
        }

        if !improved {
            break;
        }
    }

    let schedule = Schedule::new(instance, order, checkpoints)?;
    // Report the exact analytical value of the final schedule rather than the
    // incrementally tracked one (they agree to ~1e-12 relative error).
    let expected_makespan = expected_makespan(instance, &schedule)?;
    Ok(LocalSearchResult { schedule, expected_makespan, improvements })
}

/// End-to-end heuristic for independent tasks (the Proposition 2 setting):
/// LPT order, Young-periodic checkpoint placement, then local search.
///
/// # Errors
///
/// Returns [`ScheduleError::NotIndependent`] if the instance has dependences.
pub fn independent_tasks_heuristic(
    instance: &ProblemInstance,
    local_search_passes: usize,
) -> Result<LocalSearchResult, ScheduleError> {
    let order = lpt_order(instance)?;
    let start = young_periodic_schedule(instance, order)
        .or_else(|_| Schedule::checkpoint_everywhere(instance, lpt_order(instance)?))?;
    local_search(instance, start, local_search_passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use ckpt_dag::generators;

    fn independent_instance(weights: &[f64], c: f64, lambda: f64) -> ProblemInstance {
        let graph = generators::independent(weights).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(c)
            .uniform_recovery_cost(c)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    fn id_order(n: usize) -> Vec<TaskId> {
        (0..n).map(TaskId).collect()
    }

    #[test]
    fn every_k_places_expected_checkpoints() {
        let inst = independent_instance(&[10.0; 7], 1.0, 1e-3);
        let s = checkpoint_every_k(&inst, id_order(7), 3).unwrap();
        // Positions 2, 5 and the final 6.
        assert_eq!(s.checkpoint_after(), &[false, false, true, false, false, true, true]);
        assert!(checkpoint_every_k(&inst, id_order(7), 0).is_err());
    }

    #[test]
    fn every_one_is_checkpoint_everywhere() {
        let inst = independent_instance(&[10.0; 4], 1.0, 1e-3);
        let s = checkpoint_every_k(&inst, id_order(4), 1).unwrap();
        assert_eq!(s.checkpoint_count(), 4);
    }

    #[test]
    fn period_grouping_accumulates_work() {
        let inst = independent_instance(&[100.0, 100.0, 100.0, 100.0, 100.0], 1.0, 1e-3);
        // Period 250: checkpoint after the 3rd task (300 >= 250) and after the
        // last one.
        let s = checkpoint_by_period(&inst, id_order(5), 250.0).unwrap();
        assert_eq!(s.checkpoint_after(), &[false, false, true, false, true]);
        assert!(checkpoint_by_period(&inst, id_order(5), 0.0).is_err());
    }

    #[test]
    fn tiny_period_checkpoints_everywhere() {
        let inst = independent_instance(&[100.0; 3], 1.0, 1e-3);
        let s = checkpoint_by_period(&inst, id_order(3), 1.0).unwrap();
        assert_eq!(s.checkpoint_count(), 3);
    }

    #[test]
    fn young_periodic_schedule_is_valid_and_reasonable() {
        let inst = independent_instance(&[600.0; 20], 60.0, 1.0 / 10_000.0);
        let s = young_periodic_schedule(&inst, id_order(20)).unwrap();
        // Young period = sqrt(2*60*10000) ≈ 1095 s → groups of 2 tasks.
        assert!(
            s.checkpoint_count() >= 9 && s.checkpoint_count() <= 11,
            "{}",
            s.checkpoint_count()
        );
    }

    #[test]
    fn baseline_sweep_matches_per_rate_schedule_evaluation() {
        let inst = independent_instance(&[600.0; 12], 60.0, 1.0 / 10_000.0);
        let order = id_order(12);
        let lambdas = [1e-6, 1e-5, 1e-4, 1e-3];
        let rows = baseline_lambda_sweep(&inst, &order, &lambdas).unwrap();
        assert_eq!(rows.len(), lambdas.len());
        for row in &rows {
            let swept = inst.with_lambda(row.lambda).unwrap();
            let everywhere = Schedule::checkpoint_everywhere(&swept, order.clone()).unwrap();
            let final_only = Schedule::checkpoint_final_only(&swept, order.clone()).unwrap();
            let young = young_periodic_schedule(&swept, order.clone()).unwrap();
            let tol = 1e-9;
            assert!(
                (row.everywhere - expected_makespan(&swept, &everywhere).unwrap()).abs()
                    / row.everywhere
                    < tol
            );
            assert!(
                (row.final_only - expected_makespan(&swept, &final_only).unwrap()).abs()
                    / row.final_only
                    < tol
            );
            assert!(
                (row.young - expected_makespan(&swept, &young).unwrap()).abs() / row.young < tol,
                "young mismatch at λ {}",
                row.lambda
            );
        }
        // At high rates, adaptive-period Young beats the single checkpoint.
        assert!(rows.last().unwrap().young < rows.last().unwrap().final_only);
    }

    #[test]
    fn baseline_sweep_validates_inputs() {
        let inst = independent_instance(&[100.0; 3], 10.0, 1e-4);
        assert!(baseline_lambda_sweep(&inst, &id_order(3), &[0.0]).is_err());
        let zero_cost = independent_instance(&[100.0; 3], 0.0, 1e-4);
        assert!(baseline_lambda_sweep(&zero_cost, &id_order(3), &[1e-4]).is_err());
    }

    #[test]
    fn lpt_and_spt_orders() {
        let inst = independent_instance(&[5.0, 9.0, 1.0, 7.0], 1.0, 1e-3);
        assert_eq!(lpt_order(&inst).unwrap(), vec![TaskId(1), TaskId(3), TaskId(0), TaskId(2)]);
        assert_eq!(spt_order(&inst).unwrap(), vec![TaskId(2), TaskId(0), TaskId(3), TaskId(1)]);
        let chain_graph = generators::chain(&[1.0, 2.0]).unwrap();
        let chain_inst = ProblemInstance::builder(chain_graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        assert!(matches!(lpt_order(&chain_inst), Err(ScheduleError::NotIndependent)));
        assert!(matches!(spt_order(&chain_inst), Err(ScheduleError::NotIndependent)));
    }

    #[test]
    fn local_search_never_degrades() {
        let inst = independent_instance(&[300.0, 80.0, 550.0, 120.0, 410.0], 40.0, 1.0 / 2_000.0);
        let start = Schedule::checkpoint_everywhere(&inst, id_order(5)).unwrap();
        let start_value = expected_makespan(&inst, &start).unwrap();
        let result = local_search(&inst, start, 50).unwrap();
        assert!(result.expected_makespan <= start_value + 1e-9);
        assert!(
            (expected_makespan(&inst, &result.schedule).unwrap() - result.expected_makespan).abs()
                < 1e-9
        );
    }

    #[test]
    fn local_search_with_zero_passes_returns_start() {
        let inst = independent_instance(&[10.0, 20.0], 1.0, 1e-3);
        let start = Schedule::checkpoint_everywhere(&inst, id_order(2)).unwrap();
        let value = expected_makespan(&inst, &start).unwrap();
        let result = local_search(&inst, start.clone(), 0).unwrap();
        assert_eq!(result.schedule, start);
        assert_eq!(result.improvements, 0);
        assert!((result.expected_makespan - value).abs() < 1e-12);
    }

    #[test]
    fn heuristic_is_close_to_brute_force_on_small_instances() {
        let inst =
            independent_instance(&[320.0, 75.0, 410.0, 150.0, 260.0, 90.0], 30.0, 1.0 / 1_500.0);
        let heuristic = independent_tasks_heuristic(&inst, 100).unwrap();
        let brute = brute_force::optimal_schedule(&inst).unwrap();
        let gap = heuristic.expected_makespan / brute.expected_makespan;
        assert!(gap < 1.02, "optimality gap {gap}");
        assert!(heuristic.expected_makespan >= brute.expected_makespan - 1e-9);
    }

    #[test]
    fn heuristic_rejects_dependent_tasks() {
        let chain_graph = generators::chain(&[1.0, 2.0, 3.0]).unwrap();
        let inst = ProblemInstance::builder(chain_graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        assert!(matches!(
            independent_tasks_heuristic(&inst, 10),
            Err(ScheduleError::NotIndependent)
        ));
    }

    #[test]
    fn local_search_respects_dependences_when_swapping() {
        // On a chain, adjacent swaps are never valid, so the order must be
        // unchanged after local search.
        let graph = generators::chain(&[100.0, 200.0, 300.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(10.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let start = Schedule::checkpoint_everywhere(&inst, id_order(3)).unwrap();
        let result = local_search(&inst, start, 20).unwrap();
        assert_eq!(result.schedule.order(), &id_order(3)[..]);
    }
}

//! The scheduling problem instance (paper §2).

use ckpt_dag::{TaskGraph, TaskId};

use crate::error::{ensure_non_negative, ensure_positive, ScheduleError};

/// A complete instance of the checkpoint-scheduling problem:
///
/// * a task graph `G = (V, E)` with computational weights `w_i`,
/// * per-task checkpoint costs `C_i` (cost of checkpointing right after `T_i`),
/// * per-task recovery costs `R_i` (cost of recovering from the checkpoint
///   taken after `T_i`),
/// * an initial recovery cost `R₀` (restoring the initial state when no
///   checkpoint has been taken yet),
/// * a downtime `D`, and
/// * the platform failure rate `λ = p·λ_proc` of the Exponential failure law.
///
/// Instances are immutable once built; construct them through
/// [`ProblemInstance::builder`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProblemInstance {
    graph: TaskGraph,
    checkpoint_costs: Vec<f64>,
    recovery_costs: Vec<f64>,
    initial_recovery: f64,
    downtime: f64,
    lambda: f64,
}

impl ProblemInstance {
    /// Starts building an instance over `graph`.
    pub fn builder(graph: TaskGraph) -> ProblemInstanceBuilder {
        ProblemInstanceBuilder::new(graph)
    }

    /// The task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The number of tasks.
    pub fn task_count(&self) -> usize {
        self.graph.task_count()
    }

    /// The weight `w_i` of task `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to the instance.
    pub fn weight(&self, task: TaskId) -> f64 {
        self.graph.weight(task)
    }

    /// The checkpoint cost `C_i` of task `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to the instance.
    pub fn checkpoint_cost(&self, task: TaskId) -> f64 {
        self.checkpoint_costs[task.0]
    }

    /// The recovery cost `R_i` of task `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to the instance.
    pub fn recovery_cost(&self, task: TaskId) -> f64 {
        self.recovery_costs[task.0]
    }

    /// The initial recovery cost `R₀`.
    pub fn initial_recovery(&self) -> f64 {
        self.initial_recovery
    }

    /// The downtime `D`.
    pub fn downtime(&self) -> f64 {
        self.downtime
    }

    /// The platform failure rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The total computational weight of the instance.
    pub fn total_weight(&self) -> f64 {
        self.graph.total_weight()
    }

    /// All checkpoint costs, indexed by task id.
    pub fn checkpoint_costs(&self) -> &[f64] {
        &self.checkpoint_costs
    }

    /// All recovery costs, indexed by task id.
    pub fn recovery_costs(&self) -> &[f64] {
        &self.recovery_costs
    }

    /// Returns a copy of the instance with a different platform failure rate —
    /// convenient for λ sweeps in experiments.
    ///
    /// # Errors
    ///
    /// Returns an error if `lambda` is not strictly positive and finite.
    pub fn with_lambda(&self, lambda: f64) -> Result<ProblemInstance, ScheduleError> {
        Ok(ProblemInstance { lambda: ensure_positive("lambda", lambda)?, ..self.clone() })
    }
}

/// Builder for [`ProblemInstance`] (non-consuming terminal method `build`).
#[derive(Debug, Clone)]
pub struct ProblemInstanceBuilder {
    graph: TaskGraph,
    checkpoint_costs: Option<Vec<f64>>,
    recovery_costs: Option<Vec<f64>>,
    uniform_checkpoint: Option<f64>,
    uniform_recovery: Option<f64>,
    initial_recovery: f64,
    downtime: f64,
    lambda: f64,
}

impl ProblemInstanceBuilder {
    /// Creates a builder with the paper's defaults: `D = 0`, `R₀ = 0`, and a
    /// platform MTBF of one day (`λ = 1/86 400 s⁻¹`). Checkpoint and recovery
    /// costs must be supplied explicitly.
    pub fn new(graph: TaskGraph) -> Self {
        ProblemInstanceBuilder {
            graph,
            checkpoint_costs: None,
            recovery_costs: None,
            uniform_checkpoint: None,
            uniform_recovery: None,
            initial_recovery: 0.0,
            downtime: 0.0,
            lambda: 1.0 / 86_400.0,
        }
    }

    /// Uses the same checkpoint cost `c` for every task.
    pub fn uniform_checkpoint_cost(&mut self, c: f64) -> &mut Self {
        self.uniform_checkpoint = Some(c);
        self.checkpoint_costs = None;
        self
    }

    /// Uses the same recovery cost `r` for every task.
    pub fn uniform_recovery_cost(&mut self, r: f64) -> &mut Self {
        self.uniform_recovery = Some(r);
        self.recovery_costs = None;
        self
    }

    /// Uses per-task checkpoint costs, indexed by task id.
    pub fn checkpoint_costs(&mut self, costs: Vec<f64>) -> &mut Self {
        self.checkpoint_costs = Some(costs);
        self.uniform_checkpoint = None;
        self
    }

    /// Uses per-task recovery costs, indexed by task id.
    pub fn recovery_costs(&mut self, costs: Vec<f64>) -> &mut Self {
        self.recovery_costs = Some(costs);
        self.uniform_recovery = None;
        self
    }

    /// Sets the initial recovery cost `R₀` (default 0).
    pub fn initial_recovery(&mut self, r0: f64) -> &mut Self {
        self.initial_recovery = r0;
        self
    }

    /// Sets the downtime `D` (default 0).
    pub fn downtime(&mut self, d: f64) -> &mut Self {
        self.downtime = d;
        self
    }

    /// Sets the platform failure rate `λ`.
    pub fn platform_lambda(&mut self, lambda: f64) -> &mut Self {
        self.lambda = lambda;
        self
    }

    /// Sets the platform failure rate from a per-processor rate and a
    /// processor count (`λ = p·λ_proc`, paper §2).
    pub fn per_processor_lambda(&mut self, lambda_proc: f64, processors: u32) -> &mut Self {
        self.lambda = lambda_proc * f64::from(processors);
        self
    }

    /// Builds the instance, validating every parameter.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::EmptyInstance`] if the graph has no tasks;
    /// * [`ScheduleError::CostVectorLength`] if a per-task cost vector has the
    ///   wrong length;
    /// * [`ScheduleError::NegativeParameter`] /
    ///   [`ScheduleError::NonPositiveParameter`] for invalid numeric values;
    ///   checkpoint and recovery costs must be supplied (uniform or per-task).
    pub fn build(&self) -> Result<ProblemInstance, ScheduleError> {
        let n = self.graph.task_count();
        if n == 0 {
            return Err(ScheduleError::EmptyInstance);
        }
        let checkpoint_costs = match (&self.checkpoint_costs, self.uniform_checkpoint) {
            (Some(costs), _) => {
                if costs.len() != n {
                    return Err(ScheduleError::CostVectorLength {
                        what: "checkpoint costs",
                        expected: n,
                        actual: costs.len(),
                    });
                }
                costs.clone()
            }
            (None, Some(c)) => vec![c; n],
            (None, None) => {
                return Err(ScheduleError::CostVectorLength {
                    what: "checkpoint costs",
                    expected: n,
                    actual: 0,
                })
            }
        };
        let recovery_costs = match (&self.recovery_costs, self.uniform_recovery) {
            (Some(costs), _) => {
                if costs.len() != n {
                    return Err(ScheduleError::CostVectorLength {
                        what: "recovery costs",
                        expected: n,
                        actual: costs.len(),
                    });
                }
                costs.clone()
            }
            (None, Some(r)) => vec![r; n],
            // Default: recover costs equal checkpoint costs (C = R), the most
            // common assumption in the paper's examples.
            (None, None) => checkpoint_costs.clone(),
        };
        for (i, &c) in checkpoint_costs.iter().enumerate() {
            ensure_non_negative("checkpoint cost", c)
                .map_err(|_| ScheduleError::NegativeParameter { name: "checkpoint cost", value: c })
                .map(|_| i)?;
        }
        for &r in &recovery_costs {
            ensure_non_negative("recovery cost", r)?;
        }
        Ok(ProblemInstance {
            graph: self.graph.clone(),
            checkpoint_costs,
            recovery_costs,
            initial_recovery: ensure_non_negative("initial recovery", self.initial_recovery)?,
            downtime: ensure_non_negative("downtime", self.downtime)?,
            lambda: ensure_positive("lambda", self.lambda)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dag::generators;

    fn chain3() -> TaskGraph {
        generators::chain(&[10.0, 20.0, 30.0]).unwrap()
    }

    #[test]
    fn builder_with_uniform_costs() {
        let inst = ProblemInstance::builder(chain3())
            .uniform_checkpoint_cost(5.0)
            .uniform_recovery_cost(7.0)
            .downtime(1.0)
            .initial_recovery(2.0)
            .platform_lambda(0.001)
            .build()
            .unwrap();
        assert_eq!(inst.task_count(), 3);
        assert_eq!(inst.checkpoint_cost(TaskId(1)), 5.0);
        assert_eq!(inst.recovery_cost(TaskId(2)), 7.0);
        assert_eq!(inst.downtime(), 1.0);
        assert_eq!(inst.initial_recovery(), 2.0);
        assert_eq!(inst.lambda(), 0.001);
        assert_eq!(inst.total_weight(), 60.0);
        assert_eq!(inst.weight(TaskId(2)), 30.0);
    }

    #[test]
    fn builder_with_per_task_costs() {
        let inst = ProblemInstance::builder(chain3())
            .checkpoint_costs(vec![1.0, 2.0, 3.0])
            .recovery_costs(vec![4.0, 5.0, 6.0])
            .platform_lambda(0.01)
            .build()
            .unwrap();
        assert_eq!(inst.checkpoint_costs(), &[1.0, 2.0, 3.0]);
        assert_eq!(inst.recovery_costs(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn recovery_defaults_to_checkpoint_costs() {
        let inst = ProblemInstance::builder(chain3())
            .checkpoint_costs(vec![1.0, 2.0, 3.0])
            .platform_lambda(0.01)
            .build()
            .unwrap();
        assert_eq!(inst.recovery_costs(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn builder_validates_lengths_and_values() {
        assert!(matches!(
            ProblemInstance::builder(chain3()).checkpoint_costs(vec![1.0, 2.0]).build(),
            Err(ScheduleError::CostVectorLength { .. })
        ));
        assert!(matches!(
            ProblemInstance::builder(chain3())
                .uniform_checkpoint_cost(1.0)
                .recovery_costs(vec![1.0])
                .build(),
            Err(ScheduleError::CostVectorLength { .. })
        ));
        assert!(ProblemInstance::builder(chain3()).build().is_err()); // no costs given
        assert!(ProblemInstance::builder(chain3()).uniform_checkpoint_cost(-1.0).build().is_err());
        assert!(ProblemInstance::builder(chain3())
            .uniform_checkpoint_cost(1.0)
            .downtime(-1.0)
            .build()
            .is_err());
        assert!(ProblemInstance::builder(chain3())
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn empty_graph_is_rejected() {
        let graph = TaskGraph::new();
        assert!(matches!(
            ProblemInstance::builder(graph).uniform_checkpoint_cost(1.0).build(),
            Err(ScheduleError::EmptyInstance)
        ));
    }

    #[test]
    fn zero_checkpoint_costs_are_allowed() {
        let inst = ProblemInstance::builder(chain3())
            .uniform_checkpoint_cost(0.0)
            .platform_lambda(1e-4)
            .build()
            .unwrap();
        assert_eq!(inst.checkpoint_cost(TaskId(0)), 0.0);
    }

    #[test]
    fn per_processor_lambda_multiplies() {
        let inst = ProblemInstance::builder(chain3())
            .uniform_checkpoint_cost(1.0)
            .per_processor_lambda(1e-5, 128)
            .build()
            .unwrap();
        assert!((inst.lambda() - 128.0e-5).abs() < 1e-12);
    }

    #[test]
    fn with_lambda_replaces_rate() {
        let inst = ProblemInstance::builder(chain3())
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let swept = inst.with_lambda(1e-2).unwrap();
        assert_eq!(swept.lambda(), 1e-2);
        assert_eq!(swept.task_count(), 3);
        assert!(inst.with_lambda(-1.0).is_err());
    }
}

//! Exhaustive-search baselines for small instances.
//!
//! Proposition 2 tells us the general problem (choose an order *and* the
//! checkpoint positions) is strongly NP-complete, so exhaustive search is the
//! only exact reference for non-chain instances. These solvers are used by the
//! test suite and by experiment E2/E4 to certify optimality of the chain DP
//! and to measure the optimality gap of the heuristics on small instances.
//!
//! The subset enumeration walks the `2^{n−1}` checkpoint subsets in **Gray
//! code** order: consecutive subsets differ in exactly one checkpoint
//! decision, and flipping the decision at position `p` only merges or splits
//! the two segments adjacent to `p`. With the per-order
//! [`SegmentCostTable`](ckpt_expectation::segment_cost::SegmentCostTable)
//! each step therefore costs `O(log n)` (a neighbour lookup plus three
//! exp-free segment costs) instead of re-evaluating the whole schedule in
//! `O(n)` with two `exp` calls per segment.

use std::collections::BTreeSet;

use ckpt_dag::{topo, TaskId};
use ckpt_expectation::storage::StorageLevels;

use crate::error::ScheduleError;
use crate::evaluate::{levelled_cost_table, segment_cost_table};
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// An exhaustive-search result.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceSolution {
    /// The optimal schedule found.
    pub schedule: Schedule,
    /// Its expected makespan.
    pub expected_makespan: f64,
    /// How many (order, checkpoint-set) candidates were evaluated.
    pub candidates_evaluated: u64,
}

/// The largest task count accepted by [`optimal_schedule`].
///
/// `n!·2^{n−1}` candidates grow extremely fast; 9 tasks already means
/// 92 897 280 evaluations in the worst (independent) case.
pub const MAX_BRUTE_FORCE_TASKS: usize = 9;

/// The best checkpoint subset found by one Gray-code walk over an order.
#[derive(Debug, Clone)]
struct OrderScan {
    checkpoint_after: Vec<bool>,
    expected_makespan: f64,
    candidates: u64,
}

/// Walks all `2^{n−1}` checkpoint subsets of `order` in Gray-code order,
/// re-evaluating only the segments touched by each single-bit flip.
///
/// The running total accumulates exact per-flip deltas; whenever it signals a
/// new incumbent, the candidate is confirmed with a fresh `O(n)` sum so that
/// incremental floating-point drift can never crown a wrong winner.
fn scan_order_gray(
    instance: &ProblemInstance,
    order: &[TaskId],
) -> Result<OrderScan, ScheduleError> {
    let n = order.len();
    let table = segment_cost_table(instance, order)?;
    // Start of the walk: Gray code 0, i.e. only the mandatory final checkpoint.
    let mut checkpoints = vec![false; n];
    checkpoints[n - 1] = true;
    let mut positions: BTreeSet<usize> = BTreeSet::new();
    positions.insert(n - 1);
    let mut current = table.cost(0, n - 1);
    let mut best_value = current;
    let mut best_checkpoints = checkpoints.clone();
    let mut candidates = 1u64;

    for i in 1..(1u64 << (n - 1)) {
        // gray(i−1) and gray(i) differ exactly in bit `trailing_zeros(i)`.
        let p = i.trailing_zeros() as usize;
        let delta = if checkpoints[p] {
            // Removing the checkpoint at p merges its two segments.
            positions.remove(&p);
            checkpoints[p] = false;
            let start = positions.range(..p).next_back().map_or(0, |&q| q + 1);
            let next = *positions.range(p + 1..).next().expect("final checkpoint is mandatory");
            -table.split_delta(start, p, next)
        } else {
            // Adding a checkpoint at p splits the segment containing it.
            let start = positions.range(..p).next_back().map_or(0, |&q| q + 1);
            let next = *positions.range(p + 1..).next().expect("final checkpoint is mandatory");
            positions.insert(p);
            checkpoints[p] = true;
            table.split_delta(start, p, next)
        };
        current += delta;
        candidates += 1;
        if current < best_value {
            let exact = table.total_cost(&checkpoints);
            if exact < best_value {
                best_value = exact;
                best_checkpoints.copy_from_slice(&checkpoints);
            }
        }
    }
    Ok(OrderScan { checkpoint_after: best_checkpoints, expected_makespan: best_value, candidates })
}

/// Finds the optimal schedule by enumerating **all** topological orders and
/// **all** checkpoint subsets (the final checkpoint being mandatory), the
/// subsets via the incremental Gray-code walk.
///
/// # Errors
///
/// * [`ScheduleError::TooLargeForBruteForce`] if the instance has more than
///   [`MAX_BRUTE_FORCE_TASKS`] tasks;
/// * [`ScheduleError::EmptyInstance`] if it has none.
pub fn optimal_schedule(instance: &ProblemInstance) -> Result<BruteForceSolution, ScheduleError> {
    let n = instance.task_count();
    if n == 0 {
        return Err(ScheduleError::EmptyInstance);
    }
    if n > MAX_BRUTE_FORCE_TASKS {
        return Err(ScheduleError::TooLargeForBruteForce {
            tasks: n,
            limit: MAX_BRUTE_FORCE_TASKS,
        });
    }
    let orders = topo::all_topological_orders(instance.graph());
    let mut best: Option<(Vec<TaskId>, OrderScan)> = None;
    let mut candidates = 0u64;
    for order in orders {
        let scan = scan_order_gray(instance, &order)?;
        candidates += scan.candidates;
        if best
            .as_ref()
            .is_none_or(|(_, incumbent)| scan.expected_makespan < incumbent.expected_makespan)
        {
            best = Some((order, scan));
        }
    }
    let (order, scan) = best.expect("n >= 1 so at least one candidate exists");
    let schedule = Schedule::new(instance, order, scan.checkpoint_after)?;
    Ok(BruteForceSolution {
        schedule,
        expected_makespan: scan.expected_makespan,
        candidates_evaluated: candidates,
    })
}

/// Finds the optimal checkpoint positions for a **fixed** execution order by
/// enumerating all `2^{n−1}` checkpoint subsets.
///
/// # Errors
///
/// * [`ScheduleError::TooLargeForBruteForce`] if the instance has more than
///   20 tasks (the subset enumeration alone stays tractable a bit longer than
///   the full order × subset search);
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order.
pub fn optimal_checkpoints_for_order(
    instance: &ProblemInstance,
    order: Vec<ckpt_dag::TaskId>,
) -> Result<BruteForceSolution, ScheduleError> {
    let n = instance.task_count();
    if n == 0 {
        return Err(ScheduleError::EmptyInstance);
    }
    const LIMIT: usize = 20;
    if n > LIMIT {
        return Err(ScheduleError::TooLargeForBruteForce { tasks: n, limit: LIMIT });
    }
    if !topo::is_topological_order(instance.graph(), &order) {
        return Err(ScheduleError::InvalidOrder);
    }
    let scan = scan_order_gray(instance, &order)?;
    let schedule = Schedule::new(instance, order, scan.checkpoint_after)?;
    Ok(BruteForceSolution {
        schedule,
        expected_makespan: scan.expected_makespan,
        candidates_evaluated: scan.candidates,
    })
}

/// An exhaustive levelled-search result: the best joint `(position, level)`
/// checkpoint assignment for a fixed execution order over a storage
/// hierarchy (see [`optimal_levelled_checkpoints_for_order`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelledBruteForceSolution {
    /// The optimal expected makespan found.
    pub expected_makespan: f64,
    /// Its checkpoints as `(position, level)` pairs in increasing position
    /// order, the final position being `n − 1`.
    pub checkpoints: Vec<(usize, usize)>,
    /// How many feasible (position-set, level-assignment) candidates were
    /// evaluated.
    pub candidates_evaluated: u64,
}

/// Finds the optimal `(position, level)` checkpoint assignment for a
/// **fixed** execution order by enumerating all `2^{n−1}` checkpoint subsets
/// **times** all `L^k` level assignments of each subset, skipping
/// assignments that overrun a bounded level's slots. The exact reference
/// the levelled chain DP
/// ([`crate::chain_dp::optimal_levelled_schedule`]) is certified against.
///
/// # Errors
///
/// * [`ScheduleError::TooLargeForBruteForce`] if the instance has more than
///   [`MAX_BRUTE_FORCE_TASKS`] tasks (the position × level product grows as
///   `(2L)^n`);
/// * [`ScheduleError::InvalidOrder`] if `order` is not a topological order;
/// * [`ScheduleError::EmptyInstance`] if the instance has no tasks.
pub fn optimal_levelled_checkpoints_for_order(
    instance: &ProblemInstance,
    order: &[TaskId],
    levels: &StorageLevels,
) -> Result<LevelledBruteForceSolution, ScheduleError> {
    let n = instance.task_count();
    if n == 0 {
        return Err(ScheduleError::EmptyInstance);
    }
    if n > MAX_BRUTE_FORCE_TASKS {
        return Err(ScheduleError::TooLargeForBruteForce {
            tasks: n,
            limit: MAX_BRUTE_FORCE_TASKS,
        });
    }
    let table = levelled_cost_table(instance, order, levels.clone())?;
    let level_count = levels.len() as u64;
    let bounded = levels.bounded();
    let mut best: Option<(f64, Vec<(usize, usize)>)> = None;
    let mut candidates = 0u64;
    let mut plan: Vec<(usize, usize)> = Vec::with_capacity(n);
    for mask in 0..(1u64 << (n - 1)) {
        let positions: Vec<usize> =
            (0..n - 1).filter(|&p| mask & (1 << p) != 0).chain(std::iter::once(n - 1)).collect();
        let assignments = level_count.pow(positions.len() as u32);
        for code in 0..assignments {
            plan.clear();
            let mut digits = code;
            for &pos in &positions {
                plan.push((pos, (digits % level_count) as usize));
                digits /= level_count;
            }
            if let Some((level, slots)) = bounded {
                if plan.iter().filter(|&&(_, l)| l == level).count() > slots {
                    continue;
                }
            }
            candidates += 1;
            let cost = table.total_cost(&plan);
            if best.as_ref().is_none_or(|(incumbent, _)| cost < *incumbent) {
                best = Some((cost, plan.clone()));
            }
        }
    }
    let (expected_makespan, checkpoints) = best.ok_or(ScheduleError::EmptyInstance)?;
    Ok(LevelledBruteForceSolution {
        expected_makespan,
        checkpoints,
        candidates_evaluated: candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_dp::optimal_chain_schedule;
    use crate::evaluate::expected_makespan;
    use ckpt_dag::{generators, TaskId};

    /// The pre-Gray-code formulation: every subset evaluated from scratch
    /// through the analytical evaluator. Kept as the oracle for the walk.
    fn direct_enumeration(instance: &ProblemInstance, order: &[TaskId]) -> f64 {
        let n = order.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u64 << (n - 1)) {
            let mut checkpoints = vec![false; n];
            checkpoints[n - 1] = true;
            for (pos, flag) in checkpoints.iter_mut().enumerate().take(n - 1) {
                *flag = mask & (1 << pos) != 0;
            }
            let schedule = Schedule::new(instance, order.to_vec(), checkpoints).unwrap();
            best = best.min(expected_makespan(instance, &schedule).unwrap());
        }
        best
    }

    fn independent_instance(weights: &[f64], c: f64, lambda: f64) -> ProblemInstance {
        let graph = generators::independent(weights).unwrap();
        ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(c)
            .uniform_recovery_cost(c)
            .platform_lambda(lambda)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_oversized_instances() {
        let inst = independent_instance(&[1.0; 10], 1.0, 1e-3);
        assert!(matches!(
            optimal_schedule(&inst),
            Err(ScheduleError::TooLargeForBruteForce { .. })
        ));
        let big = independent_instance(&[1.0; 21], 1.0, 1e-3);
        let order: Vec<TaskId> = (0..21).map(TaskId).collect();
        assert!(optimal_checkpoints_for_order(&big, order).is_err());
    }

    #[test]
    fn single_task_instance() {
        let inst = independent_instance(&[100.0], 5.0, 1e-3);
        let sol = optimal_schedule(&inst).unwrap();
        assert_eq!(sol.candidates_evaluated, 1);
        assert_eq!(sol.schedule.checkpoint_count(), 1);
    }

    #[test]
    fn candidate_count_is_factorial_times_subsets() {
        let inst = independent_instance(&[10.0, 20.0, 30.0], 2.0, 1e-2);
        let sol = optimal_schedule(&inst).unwrap();
        // 3! orders × 2^2 checkpoint subsets = 24.
        assert_eq!(sol.candidates_evaluated, 24);
    }

    #[test]
    fn brute_force_matches_chain_dp_on_chains() {
        let graph = generators::chain(&[300.0, 500.0, 200.0, 400.0, 100.0, 600.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .checkpoint_costs(vec![30.0, 10.0, 50.0, 20.0, 5.0, 40.0])
            .recovery_costs(vec![60.0, 20.0, 100.0, 40.0, 10.0, 80.0])
            .downtime(12.0)
            .platform_lambda(1.0 / 2_500.0)
            .build()
            .unwrap();
        let dp = optimal_chain_schedule(&inst).unwrap();
        let brute = optimal_schedule(&inst).unwrap();
        assert!(
            (dp.expected_makespan - brute.expected_makespan).abs() / brute.expected_makespan
                < 1e-10,
            "dp {} vs brute {}",
            dp.expected_makespan,
            brute.expected_makespan
        );
        // A chain has a single topological order, so the schedules coincide too.
        assert_eq!(dp.schedule, brute.schedule);
    }

    #[test]
    fn fixed_order_search_matches_full_search_for_symmetric_instances() {
        // For identical independent tasks every order is equivalent, so
        // optimising checkpoints over one order gives the global optimum.
        let inst = independent_instance(&[250.0; 6], 20.0, 1.0 / 1_000.0);
        let order: Vec<TaskId> = (0..6).map(TaskId).collect();
        let fixed = optimal_checkpoints_for_order(&inst, order).unwrap();
        let full = optimal_schedule(&inst).unwrap();
        assert!((fixed.expected_makespan - full.expected_makespan).abs() < 1e-9);
    }

    #[test]
    fn optimal_uses_grouping_when_checkpoints_are_expensive() {
        // Expensive checkpoints and moderate failure rate: the optimum groups
        // several tasks per checkpoint rather than checkpointing every task.
        let inst = independent_instance(&[100.0; 6], 400.0, 1.0 / 5_000.0);
        let sol = optimal_schedule(&inst).unwrap();
        assert!(sol.schedule.checkpoint_count() < 6);
    }

    #[test]
    fn optimal_checkpoints_everywhere_when_failures_frequent_and_checkpoints_free() {
        let inst = independent_instance(&[100.0; 5], 0.001, 1.0 / 80.0);
        let sol = optimal_schedule(&inst).unwrap();
        assert_eq!(sol.schedule.checkpoint_count(), 5);
    }

    #[test]
    fn gray_code_walk_matches_direct_enumeration() {
        // Heterogeneous chain so merges/splits touch genuinely different
        // costs, plus an independent instance exercising several orders.
        let graph = generators::chain(&[320.0, 75.0, 410.0, 150.0, 260.0, 90.0, 505.0]).unwrap();
        let chain = ProblemInstance::builder(graph)
            .checkpoint_costs(vec![30.0, 5.0, 60.0, 0.0, 45.0, 10.0, 25.0])
            .recovery_costs(vec![60.0, 10.0, 120.0, 5.0, 90.0, 20.0, 50.0])
            .initial_recovery(40.0)
            .downtime(8.0)
            .platform_lambda(1.0 / 1_800.0)
            .build()
            .unwrap();
        let order: Vec<TaskId> = (0..7).map(TaskId).collect();
        let fixed = optimal_checkpoints_for_order(&chain, order.clone()).unwrap();
        let direct = direct_enumeration(&chain, &order);
        assert!(
            (fixed.expected_makespan - direct).abs() / direct < 1e-10,
            "gray {} vs direct {direct}",
            fixed.expected_makespan
        );
        assert!(
            (expected_makespan(&chain, &fixed.schedule).unwrap() - fixed.expected_makespan).abs()
                / fixed.expected_makespan
                < 1e-10
        );

        let independent =
            independent_instance(&[250.0, 80.0, 400.0, 120.0, 310.0], 35.0, 1.0 / 2_000.0);
        let full = optimal_schedule(&independent).unwrap();
        let order: Vec<TaskId> = (0..5).map(TaskId).collect();
        // Identical tasks costs aside: the optimum over one order equals the
        // minimum of direct enumeration over all orders for this symmetric
        // cost structure; at minimum the reported value must evaluate back.
        let eval = expected_makespan(&independent, &full.schedule).unwrap();
        assert!((full.expected_makespan - eval).abs() / eval < 1e-10);
        assert!(full.expected_makespan <= direct_enumeration(&independent, &order) + 1e-9);
    }

    #[test]
    fn invalid_order_is_rejected() {
        let graph = generators::chain(&[1.0, 2.0, 3.0]).unwrap();
        let inst = ProblemInstance::builder(graph)
            .uniform_checkpoint_cost(1.0)
            .platform_lambda(1e-3)
            .build()
            .unwrap();
        let bad_order = vec![TaskId(2), TaskId(1), TaskId(0)];
        assert!(matches!(
            optimal_checkpoints_for_order(&inst, bad_order),
            Err(ScheduleError::InvalidOrder)
        ));
    }
}

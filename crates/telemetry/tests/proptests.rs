//! Property tests for the two quantitative promises the histogram layer
//! makes:
//!
//! 1. **Shard merging is exact.** Splitting a value stream into contiguous
//!    per-worker chunks, recording each chunk into its own shard on a real
//!    thread and folding the shards back in chunk order yields a histogram
//!    *bitwise identical* to recording the stream sequentially — at 1, 2, 3
//!    and 8 workers. This is the property that lets the Monte-Carlo runners
//!    record metrics without perturbing their deterministic results.
//! 2. **Quantiles are bucket-accurate.** For samples inside the finite
//!    bucket range, `LogHistogram::quantile` is within one bucket's relative
//!    width (a multiplicative factor of [`HistogramSpec::growth`]) of the
//!    exact order statistic computed by `select_nth_unstable_by` on the raw
//!    samples.

use std::thread;

use ckpt_telemetry::{HistogramSpec, LogHistogram};
use proptest::prelude::*;

/// Deterministic splitmix64 stream — the vendored proptest shim only samples
/// scalars, so vector-valued cases derive their content from a sampled seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A mixed value stream: mostly finite-bucket samples (log-uniform across
/// the default spec's range), with underflow, overflow, negative and
/// non-finite observations sprinkled in so the merge property covers every
/// recording path.
fn mixed_values(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| match splitmix64(&mut state) % 16 {
            0 => -1.0 - unit_f64(&mut state),         // invalid: negative
            1 => f64::NAN,                            // invalid: non-finite
            2 => 1e-4 * unit_f64(&mut state),         // underflow (< scale)
            3 => 1e14 * (1.0 + unit_f64(&mut state)), // overflow
            _ => {
                // Log-uniform across the finite buckets: 1e-3 … 1e12.
                let log10 = -3.0 + 15.0 * unit_f64(&mut state);
                10f64.powf(log10)
            }
        })
        .collect()
}

/// Records `values` sequentially into one histogram.
fn sequential(values: &[f64]) -> LogHistogram {
    let mut histogram = LogHistogram::new(HistogramSpec::default());
    for &value in values {
        histogram.record(value);
    }
    histogram
}

/// Records `values` split into `workers` contiguous chunks, one shard per
/// chunk on its own OS thread, then merges the shards in chunk order.
fn sharded(values: &[f64], workers: usize) -> LogHistogram {
    let chunk = values.len().div_ceil(workers).max(1);
    let shards: Vec<LogHistogram> = thread::scope(|scope| {
        let handles: Vec<_> =
            values.chunks(chunk).map(|slice| scope.spawn(move || sequential(slice))).collect();
        handles.into_iter().map(|handle| handle.join().expect("shard worker")).collect()
    });
    let mut merged = LogHistogram::new(HistogramSpec::default());
    for shard in &shards {
        merged.merge_from(shard).expect("same spec");
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunk-ordered shard merges are bitwise lossless at every worker
    /// count the engines use.
    #[test]
    fn shard_merge_is_bitwise_identical_at_any_worker_count(
        seed in any::<u64>(),
        len in 0usize..300,
    ) {
        let values = mixed_values(seed, len);
        let reference = sequential(&values);
        for workers in [1usize, 2, 3, 8] {
            let merged = sharded(&values, workers);
            prop_assert_eq!(&merged, &reference);
            prop_assert_eq!(merged.count(), len as u64 - merged.invalid_count());
        }
    }

    /// `quantile` agrees with the exact `select_nth_unstable_by` order
    /// statistic to within one bucket's relative width.
    #[test]
    fn quantiles_are_within_one_bucket_of_exact(
        seed in any::<u64>(),
        len in 1usize..400,
        q_raw in 0.0f64..1.0,
    ) {
        let mut state = seed;
        let values: Vec<f64> = (0..len)
            .map(|_| {
                let log10 = -3.0 + 15.0 * unit_f64(&mut state);
                10f64.powf(log10)
            })
            .collect();
        let histogram = sequential(&values);
        let growth = histogram.spec().growth();
        for q in [0.0, q_raw, 0.5, 1.0] {
            let rank = ((len - 1) as f64 * q).round() as usize;
            let mut scratch = values.clone();
            let (_, exact, _) =
                scratch.select_nth_unstable_by(rank, |a, b| a.total_cmp(b));
            let exact = *exact;
            let estimate = histogram.quantile(q).expect("non-empty histogram");
            prop_assert!(
                estimate <= exact * growth * (1.0 + 1e-12)
                    && estimate >= exact / growth * (1.0 - 1e-12),
                "quantile {} estimate {} not within growth {} of exact {}",
                q, estimate, growth, exact
            );
        }
    }
}

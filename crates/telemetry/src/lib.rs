//! Deterministic observability for the checkpoint-scheduling workspace.
//!
//! The workspace's engines promise bit-identical results at any thread count;
//! an observability layer bolted on afterwards must not be the thing that
//! breaks the promise. `ckpt-telemetry` is therefore built determinism-first:
//!
//! * **Metrics** ([`MetricsRegistry`], [`LogHistogram`]): counters, gauges
//!   and log-bucketed histograms whose shard merges are *exact* — fixed
//!   bucket boundaries, `u64` bucket counts, no floating-point running sums.
//!   Give each worker its own registry and fold the shards back in chunk
//!   order (the `chunked_map_with` pattern); the merged state is bitwise
//!   identical at 1, 2, 3 or 8 threads.
//! * **Static counters** ([`StaticCounter`]): `const`-constructible relaxed
//!   atomics for hot solver paths (DP candidate pruning, Li Chao tree
//!   activity, suffix reuse) where threading a registry through the call
//!   graph would contaminate signatures. Observation-only, commutative adds.
//! * **Tracing** ([`TraceEvent`], [`Span`], [`TelemetrySink`]): structured
//!   events with an explicit [`TimeDomain`] — engine events stamp
//!   *simulated* time and are part of the deterministic output surface
//!   (digestable via [`DigestSink`]); service-tier events stamp wall time in
//!   a clearly separated non-deterministic domain. Sinks are pluggable
//!   ([`NoopSink`], [`RingBufferSink`], [`JsonlSink`], [`TeeSink`]) and the
//!   no-op default costs a single branch.
//! * **Exposition** ([`export::prometheus_text`],
//!   [`MetricsRegistry::to_json`]): Prometheus-style text and flat JSON,
//!   byte-deterministic for deterministic registry state.
//!
//! This crate has **zero dependencies** so every other workspace crate can
//! record into it without cycles.
//!
//! # Example
//!
//! ```rust
//! use ckpt_telemetry::{DigestSink, MetricsRegistry, TelemetrySink, TraceEvent};
//!
//! let mut shard_a = MetricsRegistry::new();
//! let mut shard_b = MetricsRegistry::new();
//! shard_a.counter_add("trials_total", 2);
//! shard_b.counter_add("trials_total", 3);
//! shard_a.observe("makespan", 1250.0);
//! shard_b.observe("makespan", 980.0);
//!
//! let mut merged = MetricsRegistry::new();
//! merged.merge_from(&shard_a)?;
//! merged.merge_from(&shard_b)?;
//! assert_eq!(merged.counter("trials_total"), 5);
//! assert_eq!(merged.histogram("makespan").unwrap().count(), 2);
//!
//! let mut digest = DigestSink::new();
//! digest.record(&TraceEvent::sim("repair", 321.5).with("machine", 2usize));
//! assert_eq!(digest.hex().len(), 16);
//! # Ok::<(), ckpt_telemetry::TelemetryError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod export;
pub mod json;
pub mod metrics;
pub mod trace;

pub use counters::StaticCounter;
pub use export::prometheus_text;
pub use metrics::{HistogramSpec, LogHistogram, MetricView, MetricsRegistry, TelemetryError};
pub use trace::{
    wall_seconds, DigestSink, FieldValue, JsonlSink, NoopSink, RingBufferSink, Span, TeeSink,
    TelemetrySink, TimeDomain, TraceEvent,
};

//! Process-wide static counters for hot solver paths.
//!
//! A [`MetricsRegistry`](crate::MetricsRegistry) is a plain value that must be
//! threaded through call sites; deep solver internals (the chain-DP inner
//! loop, the Li Chao tree) have no such channel without contaminating their
//! signatures. [`StaticCounter`] fills that gap: a `const`-constructible
//! relaxed `AtomicU64` that instrumented code bumps **once per call** with a
//! locally accumulated total, never per inner-loop iteration.
//!
//! Determinism contract: relaxed `u64` additions commute, so the value read
//! at any quiescent point (no solver running) is independent of thread
//! interleaving — the counters are observation-only and never feed back into
//! any computation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `const`-constructible, relaxed atomic counter for global solver stats.
pub struct StaticCounter(AtomicU64);

impl std::fmt::Debug for StaticCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("StaticCounter").field(&self.get()).finish()
    }
}

impl Default for StaticCounter {
    fn default() -> Self {
        StaticCounter::new()
    }
}

impl StaticCounter {
    /// A counter starting at zero, usable in `static` position.
    pub const fn new() -> Self {
        StaticCounter(AtomicU64::new(0))
    }

    /// Adds `delta` (relaxed). Accumulate locally and call this once per
    /// solver invocation, not per inner-loop step.
    #[inline]
    pub fn add(&self, delta: u64) {
        if delta > 0 {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (relaxed; exact when no instrumented code is running).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Returns the current value and resets to zero in one atomic step.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: StaticCounter = StaticCounter::new();

    #[test]
    fn static_counter_accumulates_and_resets() {
        TEST_COUNTER.reset();
        TEST_COUNTER.add(3);
        TEST_COUNTER.add(0);
        TEST_COUNTER.add(4);
        assert_eq!(TEST_COUNTER.get(), 7);
        assert_eq!(TEST_COUNTER.take(), 7);
        assert_eq!(TEST_COUNTER.get(), 0);
    }
}

//! Metrics: counters, gauges and log-bucketed histograms in a named registry.
//!
//! Everything here is built around one invariant: **recording metrics never
//! perturbs results and never depends on thread interleaving**. Counters and
//! histogram buckets are plain `u64` adds (associative and commutative, so
//! per-worker shards merge to the same totals in any order); histograms have
//! *fixed* bucket boundaries derived from their [`HistogramSpec`] (never
//! rebalanced from data), so merging two shards is exact bucket-wise addition;
//! and no `f64` running sum is kept anywhere, because floating-point addition
//! is not associative and a chunk-order-dependent sum would break the
//! workspace's bit-identity-at-any-thread-count contract.
//!
//! The intended sharding pattern mirrors `ckpt_core::parallel::chunked_map_with`:
//! give each worker its own [`MetricsRegistry`], then fold the shards into the
//! main registry **in chunk order** with [`MetricsRegistry::merge_from`]. The
//! result is bitwise identical at 1, 2, 3 or 8 threads (asserted by proptests
//! in `ckpt-core`).

use std::collections::HashMap;

use crate::json::{json_number, json_string};

/// Errors from histogram construction and registry/histogram merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// A [`HistogramSpec`] parameter was out of range.
    InvalidSpec(&'static str),
    /// Two histograms (or registries holding them) could not be merged
    /// because their specs or metric kinds differ.
    MergeMismatch {
        /// The metric name (or `"<histogram>"` for a bare histogram merge).
        name: String,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::InvalidSpec(what) => {
                write!(f, "invalid histogram spec: {what}")
            }
            TelemetryError::MergeMismatch { name } => {
                write!(f, "cannot merge metric {name:?}: kind or spec mismatch")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Fixed bucket layout of a [`LogHistogram`]: geometric buckets
/// `[scale·growth^i, scale·growth^(i+1))` for `i` in `0..buckets`, plus an
/// underflow bucket for values below `scale` and an overflow bucket above
/// the last boundary.
///
/// Two histograms merge exactly iff their specs are identical, so specs are
/// part of every merge check. The default spec covers `1e-3 .. 1e13` with a
/// relative bucket width of `10^(1/40) ≈ 5.9 %` — wide enough for microsecond
/// latencies and simulated-time durations alike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    scale: f64,
    growth: f64,
    buckets: usize,
}

impl Default for HistogramSpec {
    fn default() -> Self {
        HistogramSpec { scale: 1e-3, growth: 10f64.powf(1.0 / 40.0), buckets: 640 }
    }
}

impl HistogramSpec {
    /// A spec with the first finite bucket starting at `scale`, geometric
    /// bucket growth factor `growth`, and `buckets` finite buckets.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::InvalidSpec`] unless `scale` is finite and positive,
    /// `growth` is finite and greater than 1, and `buckets` is nonzero.
    pub fn new(scale: f64, growth: f64, buckets: usize) -> Result<Self, TelemetryError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(TelemetryError::InvalidSpec("scale must be finite and > 0"));
        }
        if !(growth.is_finite() && growth > 1.0) {
            return Err(TelemetryError::InvalidSpec("growth must be finite and > 1"));
        }
        if buckets == 0 {
            return Err(TelemetryError::InvalidSpec("need at least one bucket"));
        }
        Ok(HistogramSpec { scale, growth, buckets })
    }

    /// Start of the first finite bucket.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Geometric growth factor between consecutive bucket boundaries; also
    /// the histogram's relative quantile error bound (see
    /// [`LogHistogram::quantile`]).
    pub fn growth(&self) -> f64 {
        self.growth
    }

    /// Number of finite buckets (excluding underflow/overflow).
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// `[lower, upper)` boundaries of finite bucket `index`.
    pub fn bucket_bounds(&self, index: usize) -> (f64, f64) {
        let lo = self.scale * self.growth.powi(index as i32);
        let hi = self.scale * self.growth.powi(index as i32 + 1);
        (lo, hi)
    }
}

/// A histogram over fixed log-spaced buckets whose shard merges are exact.
///
/// Stores only `u64` bucket counts plus the exact observed `min`/`max` —
/// deliberately **no running `f64` sum** (non-associative adds would make the
/// sum depend on chunk order and break bit-identity across thread counts).
///
/// Quantiles are answered from bucket counts: the reported value is the
/// geometric midpoint of the bucket holding the requested order statistic,
/// clamped to the observed `[min, max]`, so for any sample inside the finite
/// bucket range the reported quantile is within one bucket's relative width
/// (a multiplicative factor of [`HistogramSpec::growth`]) of the exact
/// `select_nth_unstable_by` quantile.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    spec: HistogramSpec,
    inv_ln_growth: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    invalid: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl PartialEq for LogHistogram {
    /// Bitwise state equality: bucket counts and the `min`/`max` bit patterns
    /// must match exactly. This is what the determinism walls assert.
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.buckets == other.buckets
            && self.underflow == other.underflow
            && self.overflow == other.overflow
            && self.invalid == other.invalid
            && self.count == other.count
            && self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(HistogramSpec::default())
    }
}

impl LogHistogram {
    /// An empty histogram with the given bucket layout.
    pub fn new(spec: HistogramSpec) -> Self {
        LogHistogram {
            spec,
            inv_ln_growth: 1.0 / spec.growth.ln(),
            buckets: vec![0; spec.buckets],
            underflow: 0,
            overflow: 0,
            invalid: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The fixed bucket layout.
    pub fn spec(&self) -> &HistogramSpec {
        &self.spec
    }

    /// Records one observation.
    ///
    /// Finite, non-negative values land in their log bucket (or the
    /// underflow/overflow bucket) and update the exact `min`/`max`; negative
    /// or non-finite values are counted in [`LogHistogram::invalid_count`]
    /// and otherwise ignored, so one bad sample cannot poison quantiles.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            self.invalid += 1;
            return;
        }
        let slot = self.bucket_index(value);
        match slot {
            BucketSlot::Underflow => self.underflow += 1,
            BucketSlot::Finite(i) => self.buckets[i] += 1,
            BucketSlot::Overflow => self.overflow += 1,
        }
        self.count += 1;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    fn bucket_index(&self, value: f64) -> BucketSlot {
        if value < self.spec.scale {
            return BucketSlot::Underflow;
        }
        let raw = ((value / self.spec.scale).ln() * self.inv_ln_growth).floor();
        if raw < 0.0 {
            // Rounding near the first boundary can land just below zero.
            return BucketSlot::Finite(0);
        }
        let index = raw as usize;
        if index >= self.spec.buckets {
            BucketSlot::Overflow
        } else {
            BucketSlot::Finite(index)
        }
    }

    /// Folds another histogram into this one. Exact: bucket-wise `u64`
    /// addition plus min/max of the extremes, so `merge(a, b)` equals a
    /// histogram that observed both sample streams in any order.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::MergeMismatch`] when the specs differ.
    pub fn merge_from(&mut self, other: &LogHistogram) -> Result<(), TelemetryError> {
        if self.spec != other.spec {
            return Err(TelemetryError::MergeMismatch { name: "<histogram>".to_string() });
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.invalid += other.invalid;
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        Ok(())
    }

    /// Number of valid observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest valid observation, `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest valid observation, `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Per-bucket counts for the finite buckets.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the first finite bucket.
    pub fn underflow_count(&self) -> u64 {
        self.underflow
    }

    /// Observations above the last finite bucket.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Rejected observations (negative or non-finite).
    pub fn invalid_count(&self) -> u64 {
        self.invalid
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), or `None` for an empty
    /// histogram — the edge case ad-hoc percentile helpers tend to miss.
    ///
    /// Uses the same order-statistic convention as a sorted-array lookup at
    /// `round((count − 1) · q)`. For samples inside the finite bucket range
    /// the result is within a multiplicative factor of
    /// [`HistogramSpec::growth`] of the exact quantile; ranks landing in the
    /// underflow (overflow) bucket report the exact observed min (max).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cumulative = self.underflow;
        if rank < cumulative {
            return Some(self.min);
        }
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if rank < cumulative {
                let representative =
                    self.spec.scale * (self.spec.growth.ln() * (index as f64 + 0.5)).exp();
                return Some(representative.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

enum BucketSlot {
    Underflow,
    Finite(usize),
    Overflow,
}

/// One metric slot in a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
enum MetricSlot {
    Counter(u64),
    Gauge(u64), // f64 bit pattern, so slot equality is bitwise
    Histogram(LogHistogram),
}

/// A read-only view of one registered metric, yielded by
/// [`MetricsRegistry::iter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricView<'a> {
    /// A monotonically increasing `u64` counter.
    Counter(u64),
    /// A last-write-wins `f64` gauge.
    Gauge(f64),
    /// A log-bucketed histogram.
    Histogram(&'a LogHistogram),
}

/// A named, insertion-ordered collection of counters, gauges and histograms.
///
/// Metrics are created lazily on first touch and keep their insertion order,
/// so two registries fed the same event stream are identical — including
/// their iteration (and therefore exposition) order. Registries are plain
/// values: shard one per worker, then fold the shards back
/// **in chunk order** with [`MetricsRegistry::merge_from`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    names: Vec<String>,
    index: HashMap<String, usize>,
    slots: Vec<MetricSlot>,
}

impl PartialEq for MetricsRegistry {
    /// Bitwise equality: same names in the same order with identical slot
    /// state (gauges compared by `f64` bit pattern).
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names && self.slots == other.slots
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no metric has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn slot_index(&mut self, name: &str, default: MetricSlot) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.slots.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        self.slots.push(default);
        i
    }

    /// Adds `delta` to the named counter, creating it at zero on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let i = self.slot_index(name, MetricSlot::Counter(0));
        match &mut self.slots[i] {
            MetricSlot::Counter(v) => *v += delta,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Current value of the named counter (0 when absent).
    ///
    /// # Panics
    ///
    /// If `name` is registered as a gauge or histogram.
    pub fn counter(&self, name: &str) -> u64 {
        match self.index.get(name).map(|&i| &self.slots[i]) {
            None => 0,
            Some(MetricSlot::Counter(v)) => *v,
            Some(_) => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Sets the named gauge (last write wins).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a counter or histogram.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let i = self.slot_index(name, MetricSlot::Gauge(value.to_bits()));
        match &mut self.slots[i] {
            MetricSlot::Gauge(v) => *v = value.to_bits(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Current value of the named gauge, `None` when absent.
    ///
    /// # Panics
    ///
    /// If `name` is registered as a counter or histogram.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.index.get(name).map(|&i| &self.slots[i]) {
            None => None,
            Some(MetricSlot::Gauge(v)) => Some(f64::from_bits(*v)),
            Some(_) => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Records into the named histogram, creating it with the default
    /// [`HistogramSpec`] on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a counter or gauge.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_with(name, HistogramSpec::default(), value);
    }

    /// Records into the named histogram, creating it with `spec` on first
    /// use (an existing histogram keeps its original spec).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a counter or gauge.
    pub fn observe_with(&mut self, name: &str, spec: HistogramSpec, value: f64) {
        let i = self.slot_index(name, MetricSlot::Histogram(LogHistogram::new(spec)));
        match &mut self.slots[i] {
            MetricSlot::Histogram(h) => h.record(value),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// The named histogram, `None` when absent.
    ///
    /// # Panics
    ///
    /// If `name` is registered as a counter or gauge.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        match self.index.get(name).map(|&i| &self.slots[i]) {
            None => None,
            Some(MetricSlot::Histogram(h)) => Some(h),
            Some(_) => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Folds another registry (a worker shard) into this one: counters and
    /// histogram buckets add exactly, gauges take the incoming value, and
    /// metrics new to `self` are appended in `other`'s insertion order. Call
    /// this once per shard **in chunk order** for deterministic registry
    /// state at any thread count.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::MergeMismatch`] when a name is registered with
    /// different metric kinds (or histogram specs) on the two sides; `self`
    /// may be partially merged when an error is returned.
    pub fn merge_from(&mut self, other: &MetricsRegistry) -> Result<(), TelemetryError> {
        for (name, slot) in other.names.iter().zip(&other.slots) {
            let mismatch = || TelemetryError::MergeMismatch { name: name.clone() };
            match self.index.get(name) {
                None => {
                    let i = self.slots.len();
                    self.names.push(name.clone());
                    self.index.insert(name.clone(), i);
                    self.slots.push(slot.clone());
                }
                Some(&i) => match (&mut self.slots[i], slot) {
                    (MetricSlot::Counter(mine), MetricSlot::Counter(theirs)) => {
                        *mine += theirs;
                    }
                    (MetricSlot::Gauge(mine), MetricSlot::Gauge(theirs)) => *mine = *theirs,
                    (MetricSlot::Histogram(mine), MetricSlot::Histogram(theirs)) => {
                        mine.merge_from(theirs).map_err(|_| mismatch())?;
                    }
                    _ => return Err(mismatch()),
                },
            }
        }
        Ok(())
    }

    /// Iterates metrics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricView<'_>)> {
        self.names.iter().zip(&self.slots).map(|(name, slot)| match slot {
            MetricSlot::Counter(v) => (name.as_str(), MetricView::Counter(*v)),
            MetricSlot::Gauge(v) => (name.as_str(), MetricView::Gauge(f64::from_bits(*v))),
            MetricSlot::Histogram(h) => (name.as_str(), MetricView::Histogram(h)),
        })
    }

    /// The registry as one flat JSON object: counters and gauges as numbers,
    /// histograms expanded to `_count` / `_p50` / `_p99` / `_min` / `_max`
    /// keys. Insertion-ordered and byte-deterministic for deterministic
    /// inputs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let mut push = |out: &mut String, key: &str, value: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&json_string(key));
            out.push(':');
            out.push_str(&value);
        };
        for (name, view) in self.iter() {
            match view {
                MetricView::Counter(v) => push(&mut out, name, v.to_string()),
                MetricView::Gauge(v) => push(&mut out, name, json_number(v)),
                MetricView::Histogram(h) => {
                    push(&mut out, &format!("{name}_count"), h.count().to_string());
                    for (suffix, value) in [
                        ("p50", h.quantile(0.50)),
                        ("p99", h.quantile(0.99)),
                        ("min", h.min()),
                        ("max", h.max()),
                    ] {
                        push(
                            &mut out,
                            &format!("{name}_{suffix}"),
                            json_number(value.unwrap_or(f64::NAN)),
                        );
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantile_is_none() {
        let h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = LogHistogram::default();
        h.record(42.0);
        // min == max == 42 clamps every representative to the exact value.
        assert_eq!(h.quantile(0.0), Some(42.0));
        assert_eq!(h.quantile(0.5), Some(42.0));
        assert_eq!(h.quantile(1.0), Some(42.0));
    }

    #[test]
    fn invalid_values_are_quarantined() {
        let mut h = LogHistogram::default();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.invalid_count(), 3);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_equals_single_stream() {
        let spec = HistogramSpec::new(1e-3, 1.1, 300).unwrap();
        let values: Vec<f64> = (0..500).map(|i| 0.01 * (i as f64 + 1.0) * 1.7).collect();
        let mut whole = LogHistogram::new(spec);
        for &v in &values {
            whole.record(v);
        }
        let mut merged = LogHistogram::new(spec);
        for chunk in values.chunks(77) {
            let mut shard = LogHistogram::new(spec);
            for &v in chunk {
                shard.record(v);
            }
            merged.merge_from(&shard).unwrap();
        }
        assert_eq!(whole, merged);
    }

    #[test]
    fn merge_rejects_spec_mismatch() {
        let mut a = LogHistogram::new(HistogramSpec::new(1.0, 2.0, 8).unwrap());
        let b = LogHistogram::new(HistogramSpec::new(1.0, 2.0, 9).unwrap());
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn quantile_matches_rank_convention_on_exact_buckets() {
        // Powers of two with growth 2: every value sits alone in its bucket,
        // min/max clamping leaves interior representatives at sqrt(2)·value.
        let spec = HistogramSpec::new(1.0, 2.0, 12).unwrap();
        let mut h = LogHistogram::new(spec);
        for e in 0..8 {
            h.record(f64::powi(2.0, e));
        }
        // Rank round((8-1)*0.5) = 4 -> sample 16 in bucket 4; representative
        // 2^4.5 is within a factor of 2.
        let q = h.quantile(0.5).unwrap();
        assert!((q / 16.0) < 2.0 && (16.0 / q) < 2.0, "q = {q}");
    }

    #[test]
    fn registry_round_trip_and_merge() {
        let mut a = MetricsRegistry::new();
        a.counter_add("requests_total", 3);
        a.gauge_set("depth", 2.5);
        a.observe("latency_us", 120.0);

        let mut b = MetricsRegistry::new();
        b.counter_add("requests_total", 4);
        b.gauge_set("depth", 7.0);
        b.observe("latency_us", 240.0);
        b.counter_add("only_in_b", 1);

        a.merge_from(&b).unwrap();
        assert_eq!(a.counter("requests_total"), 7);
        assert_eq!(a.gauge("depth"), Some(7.0));
        assert_eq!(a.histogram("latency_us").unwrap().count(), 2);
        assert_eq!(a.counter("only_in_b"), 1);
        assert_eq!(a.counter("never_touched"), 0);
    }

    #[test]
    fn registry_equality_is_order_sensitive() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.counter_add("y", 1);
        let mut b = MetricsRegistry::new();
        b.counter_add("y", 1);
        b.counter_add("x", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn registry_json_is_flat_and_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("hits", 2);
        r.gauge_set("load", 0.5);
        let json = r.to_json();
        assert_eq!(json, "{\"hits\":2,\"load\":0.5}");
    }
}

//! Metric exposition: Prometheus-style text format and flat JSON.
//!
//! Both expositions iterate the registry in insertion order and render
//! numbers through the shared [`json`](crate::json) helpers, so their output
//! is byte-deterministic for deterministic registry state — the property the
//! golden-snapshot CI tests rely on.

use std::fmt::Write as _;

use crate::metrics::{MetricView, MetricsRegistry};

/// Renders the registry in the Prometheus text exposition format
/// (`# TYPE` lines plus samples).
///
/// Histograms render cumulative `_bucket{le="…"}` samples for their
/// **non-empty** buckets plus the `+Inf` bucket and a `_count` sample, and
/// exact `_min`/`_max` gauges. There is deliberately **no `_sum`**: the
/// histogram keeps no floating-point running sum because such a sum would
/// depend on merge order and break the workspace's bit-identity contract.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, view) in registry.iter() {
        match view {
            MetricView::Counter(value) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricView::Gauge(value) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricView::Histogram(histogram) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = histogram.underflow_count();
                if cumulative > 0 {
                    let (lower, _) = histogram.spec().bucket_bounds(0);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{lower}\"}} {cumulative}");
                }
                for (index, &count) in histogram.bucket_counts().iter().enumerate() {
                    cumulative += count;
                    if count > 0 {
                        let (_, upper) = histogram.spec().bucket_bounds(index);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
                    }
                }
                let total = cumulative + histogram.overflow_count();
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
                let _ = writeln!(out, "{name}_count {total}");
                if let (Some(min), Some(max)) = (histogram.min(), histogram.max()) {
                    let _ = writeln!(out, "# TYPE {name}_min gauge");
                    let _ = writeln!(out, "{name}_min {min}");
                    let _ = writeln!(out, "# TYPE {name}_max gauge");
                    let _ = writeln!(out, "{name}_max {max}");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSpec;

    #[test]
    fn prometheus_counters_and_gauges() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("requests_total", 12);
        registry.gauge_set("queue_depth", 3.0);
        let text = prometheus_text(&registry);
        assert_eq!(
            text,
            "# TYPE requests_total counter\nrequests_total 12\n\
             # TYPE queue_depth gauge\nqueue_depth 3\n"
        );
    }

    #[test]
    fn prometheus_histogram_has_cumulative_buckets_and_no_sum() {
        let mut registry = MetricsRegistry::new();
        let spec = HistogramSpec::new(1.0, 2.0, 4).unwrap();
        registry.observe_with("latency", spec, 1.5);
        registry.observe_with("latency", spec, 3.0);
        registry.observe_with("latency", spec, 100.0); // overflow
        let text = prometheus_text(&registry);
        assert!(text.contains("# TYPE latency histogram"), "{text}");
        assert!(text.contains("latency_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("latency_bucket{le=\"4\"} 2"), "{text}");
        assert!(text.contains("latency_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("latency_count 3"), "{text}");
        assert!(text.contains("latency_min 1.5"), "{text}");
        assert!(text.contains("latency_max 100"), "{text}");
        assert!(!text.contains("latency_sum"), "{text}");
    }

    /// Extracts the cumulative `_bucket` sample values of `name`, in
    /// rendering order, plus the rendered `_count` value.
    fn bucket_series(text: &str, name: &str) -> (Vec<u64>, u64) {
        let bucket_prefix = format!("{name}_bucket{{le=");
        let count_prefix = format!("{name}_count ");
        let mut buckets = Vec::new();
        let mut count = None;
        for line in text.lines() {
            if line.starts_with(&bucket_prefix) {
                let value = line.rsplit(' ').next().expect("sample value");
                buckets.push(value.parse().expect("integer bucket count"));
            } else if let Some(rest) = line.strip_prefix(&count_prefix) {
                count = Some(rest.parse().expect("integer count"));
            }
        }
        (buckets, count.expect("histogram renders a _count sample"))
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_count_includes_the_open_ends() {
        // Observations landing in the underflow bucket, several finite
        // buckets (some left empty) and the overflow bucket: the rendered
        // `_bucket` series must be non-decreasing (cumulative, not
        // per-bucket), terminate in a `+Inf` sample, and `_count` must equal
        // the total number of valid observations — under- and overflow
        // included, invalid (NaN) excluded.
        let mut registry = MetricsRegistry::new();
        let spec = HistogramSpec::new(1.0, 2.0, 4).unwrap(); // buckets up to 16
        let observations = [0.25, 0.5, 1.5, 1.7, 6.0, 40.0, 400.0];
        for value in observations {
            registry.observe_with("latency", spec, value);
        }
        registry.observe_with("latency", spec, f64::NAN); // rejected, not counted

        let text = prometheus_text(&registry);
        let (buckets, count) = bucket_series(&text, "latency");
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "cumulative bucket counts must be non-decreasing: {buckets:?}\n{text}"
        );
        assert_eq!(
            buckets.last().copied(),
            Some(observations.len() as u64),
            "the +Inf bucket must cover every valid observation\n{text}"
        );
        assert_eq!(count, observations.len() as u64, "{text}");
        assert!(text.contains("latency_bucket{le=\"+Inf\"} 7"), "{text}");
        // The underflow samples surface as a bucket at the first finite
        // lower bound, so scrapes see them instead of a silent gap.
        assert!(text.contains("latency_bucket{le=\"1\"} 2"), "{text}");
    }

    #[test]
    fn underflow_only_histogram_renders_well_formed() {
        // Every observation below the first finite bucket: the exposition
        // must still render a cumulative series ending in `+Inf`, a `_count`
        // equal to the observation count, and min/max gauges — not an empty
        // or truncated histogram block.
        let mut registry = MetricsRegistry::new();
        let spec = HistogramSpec::new(1.0, 2.0, 4).unwrap();
        registry.observe_with("tiny", spec, 0.125);
        registry.observe_with("tiny", spec, 0.25);
        registry.observe_with("tiny", spec, 0.0625);

        let text = prometheus_text(&registry);
        let (buckets, count) = bucket_series(&text, "tiny");
        assert_eq!(count, 3, "{text}");
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}\n{text}");
        assert_eq!(buckets.last().copied(), Some(3), "{text}");
        assert!(text.contains("tiny_bucket{le=\"1\"} 3"), "{text}");
        assert!(text.contains("tiny_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("tiny_min 0.0625"), "{text}");
        assert!(text.contains("tiny_max 0.25"), "{text}");
    }

    #[test]
    fn exposition_is_deterministic() {
        let build = || {
            let mut registry = MetricsRegistry::new();
            registry.counter_add("a", 1);
            registry.observe("h", 2.5);
            registry.gauge_set("g", -0.25);
            prometheus_text(&registry)
        };
        assert_eq!(build(), build());
    }
}

//! Structured event tracing: spans, events, time domains and pluggable sinks.
//!
//! Every [`TraceEvent`] carries an explicit [`TimeDomain`]:
//!
//! * [`TimeDomain::Sim`] — **simulated** time, stamped by the engines
//!   (simulator, cluster, adaptive tiers). Sim-domain traces are part of the
//!   deterministic output surface: the same scenario at any thread count must
//!   produce byte-identical sim-domain trace lines, and [`DigestSink`] turns
//!   that into a checkable fingerprint.
//! * [`TimeDomain::Wall`] — wall-clock time, stamped by the service tier
//!   (batch phase timings). Wall-domain events are explicitly outside the
//!   determinism contract; deterministic sinks ([`DigestSink`]) skip them.
//!
//! Sinks implement [`TelemetrySink`]. Instrumented engines accept
//! `&mut dyn TelemetrySink` and guard event construction behind
//! [`TelemetrySink::enabled`], so the default [`NoopSink`] path does no
//! allocation and no formatting — the "~0 % overhead when off" half of the
//! e15 target.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt::{self, Write as _};
use std::io;
use std::time::Instant;

use crate::json::{write_json_number, write_json_string};

/// Which clock stamped an event's `time` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeDomain {
    /// Simulated time — deterministic, part of the reproducibility contract.
    Sim,
    /// Wall-clock time — non-deterministic by nature, excluded from digests.
    Wall,
}

impl TimeDomain {
    /// The lowercase label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            TimeDomain::Sim => "sim",
            TimeDomain::Wall => "wall",
        }
    }
}

/// A typed field value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (indices, counts, depths).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point (times, durations).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// String label.
    Str(Cow<'static, str>),
}

impl FieldValue {
    fn write_into<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(out, "{v}"),
            FieldValue::I64(v) => write!(out, "{v}"),
            FieldValue::F64(v) => write_json_number(out, *v),
            FieldValue::Bool(v) => write!(out, "{v}"),
            FieldValue::Str(v) => write_json_string(out, v),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(Cow::Owned(v))
    }
}

/// One structured event: a name, a time stamp in an explicit domain, and
/// ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    domain: TimeDomain,
    time: f64,
    name: Cow<'static, str>,
    fields: Vec<(Cow<'static, str>, FieldValue)>,
}

impl TraceEvent {
    /// An event stamped with simulated time.
    pub fn sim(name: impl Into<Cow<'static, str>>, time: f64) -> Self {
        TraceEvent { domain: TimeDomain::Sim, time, name: name.into(), fields: Vec::new() }
    }

    /// An event stamped with wall-clock time (seconds, see [`wall_seconds`]).
    pub fn wall(name: impl Into<Cow<'static, str>>, time: f64) -> Self {
        TraceEvent { domain: TimeDomain::Wall, time, name: name.into(), fields: Vec::new() }
    }

    /// Appends a field (builder style; field order is preserved in output).
    pub fn with(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// The stamping clock domain.
    pub fn domain(&self) -> TimeDomain {
        self.domain
    }

    /// The time stamp (simulated seconds or wall seconds, per domain).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The event name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered fields.
    pub fn fields(&self) -> &[(Cow<'static, str>, FieldValue)] {
        &self.fields
    }

    /// The event as one JSON object line (no trailing newline):
    /// `{"domain":"sim","time":T,"event":NAME, ...fields}`. Byte-deterministic
    /// for identical events.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = self.write_json(&mut out);
        out
    }

    /// Streams [`TraceEvent::to_json`]'s byte-identical output into `out`
    /// without intermediate allocations — the form the live sinks use so a
    /// recording sink costs formatting, not heap churn.
    pub fn write_json<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        out.write_str("{\"domain\":")?;
        write_json_string(out, self.domain.label())?;
        out.write_str(",\"time\":")?;
        write_json_number(out, self.time)?;
        out.write_str(",\"event\":")?;
        write_json_string(out, &self.name)?;
        for (key, value) in &self.fields {
            out.write_char(',')?;
            write_json_string(out, key)?;
            out.write_char(':')?;
            value.write_into(out)?;
        }
        out.write_char('}')
    }
}

/// An open span: emit the closing event with [`Span::end_at`], which reports
/// `start`, `end` and `duration` fields on one event named after the span.
#[derive(Debug, Clone)]
pub struct Span {
    domain: TimeDomain,
    name: Cow<'static, str>,
    start: f64,
}

impl Span {
    /// Opens a sim-time span at `start`.
    pub fn sim(name: impl Into<Cow<'static, str>>, start: f64) -> Self {
        Span { domain: TimeDomain::Sim, name: name.into(), start }
    }

    /// Opens a wall-time span starting now (see [`wall_seconds`]).
    pub fn wall(name: impl Into<Cow<'static, str>>) -> Self {
        Span { domain: TimeDomain::Wall, name: name.into(), start: wall_seconds() }
    }

    /// The span's start stamp.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Closes the span at `end`, emitting one event into `sink`.
    pub fn end_at(self, end: f64, sink: &mut dyn TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        let duration = end - self.start;
        let event = match self.domain {
            TimeDomain::Sim => TraceEvent::sim(self.name, end),
            TimeDomain::Wall => TraceEvent::wall(self.name, end),
        };
        sink.record(&event.with("start", self.start).with("duration", duration));
    }

    /// Closes a wall-time span at the current wall clock.
    pub fn end_wall(self, sink: &mut dyn TelemetrySink) {
        let end = wall_seconds();
        self.end_at(end, sink);
    }
}

/// Seconds elapsed since the first call in this process — the wall-clock
/// stamp used by [`TimeDomain::Wall`] events. Monotonic and cheap; anchored
/// per process, so wall stamps are only comparable within one run (which is
/// all the non-deterministic domain promises).
pub fn wall_seconds() -> f64 {
    use std::sync::OnceLock;
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// A destination for trace events.
///
/// Instrumented code must guard event construction with [`TelemetrySink::enabled`]
/// so disabled sinks cost one branch, not an allocation.
pub trait TelemetrySink {
    /// Whether this sink wants events at all. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);
}

/// The default sink: disabled, records nothing, costs one branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// A bounded in-memory sink keeping the most recent events (older events are
/// dropped and counted once capacity is reached).
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (capacity 0 drops everything).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink { capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or rejected at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TelemetrySink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// A sink writing one JSON line per event to an [`io::Write`] destination
/// (reusing the workspace-wide JSON escaping, so trace lines and `--json`
/// summaries render values identically).
pub struct JsonlSink<W: io::Write> {
    writer: W,
    buffer: String,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: io::Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl<W: io::Write> JsonlSink<W> {
    /// A sink appending JSONL to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, buffer: String::new(), lines: 0, error: None }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, surfacing the first write error (a
    /// failed write disables further output rather than panicking mid-trace).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: io::Write> TelemetrySink for JsonlSink<W> {
    fn enabled(&self) -> bool {
        self.error.is_none()
    }

    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        self.buffer.clear();
        let _ = event.write_json(&mut self.buffer);
        self.buffer.push('\n');
        if let Err(error) = self.writer.write_all(self.buffer.as_bytes()) {
            self.error = Some(error);
        } else {
            self.lines += 1;
        }
    }
}

/// A sink reducing the **sim-domain** trace to a 64-bit FNV-1a digest of its
/// JSONL byte stream. Wall-domain events are skipped (their stamps are
/// non-deterministic), so two runs of the same deterministic scenario must
/// produce equal digests — the byte-determinism wall e15 asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestSink {
    hash: u64,
    sim_events: u64,
    wall_events_skipped: u64,
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl DigestSink {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// An empty digest.
    pub fn new() -> Self {
        DigestSink { hash: Self::FNV_OFFSET, sim_events: 0, wall_events_skipped: 0 }
    }

    /// The FNV-1a digest over all sim-domain event lines so far.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// The digest as a fixed-width lowercase hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// Sim-domain events folded into the digest.
    pub fn sim_events(&self) -> u64 {
        self.sim_events
    }

    /// Wall-domain events seen and skipped.
    pub fn wall_events_skipped(&self) -> u64 {
        self.wall_events_skipped
    }
}

/// A `fmt::Write` adapter folding every formatted byte into an FNV-1a state,
/// so [`DigestSink`] digests the JSONL stream without building the line.
struct FnvWriter<'a> {
    hash: &'a mut u64,
}

impl fmt::Write for FnvWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for byte in s.bytes() {
            *self.hash ^= u64::from(byte);
            *self.hash = self.hash.wrapping_mul(DigestSink::FNV_PRIME);
        }
        Ok(())
    }
}

impl TelemetrySink for DigestSink {
    fn record(&mut self, event: &TraceEvent) {
        if event.domain() == TimeDomain::Wall {
            self.wall_events_skipped += 1;
            return;
        }
        let mut writer = FnvWriter { hash: &mut self.hash };
        let _ = event.write_json(&mut writer);
        let _ = writer.write_char('\n');
        self.sim_events += 1;
    }
}

/// A sink forwarding every event to two child sinks (e.g. a digest plus a
/// JSONL file). Enabled iff either child is.
pub struct TeeSink<'a> {
    first: &'a mut dyn TelemetrySink,
    second: &'a mut dyn TelemetrySink,
}

impl std::fmt::Debug for TeeSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink")
            .field("first_enabled", &self.first.enabled())
            .field("second_enabled", &self.second.enabled())
            .finish_non_exhaustive()
    }
}

impl<'a> TeeSink<'a> {
    /// Tees events into `first` and `second`, in that order.
    pub fn new(first: &'a mut dyn TelemetrySink, second: &'a mut dyn TelemetrySink) -> Self {
        TeeSink { first, second }
    }
}

impl TelemetrySink for TeeSink<'_> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn record(&mut self, event: &TraceEvent) {
        if self.first.enabled() {
            self.first.record(event);
        }
        if self.second.enabled() {
            self.second.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shape() {
        let event = TraceEvent::sim("failure", 120.5)
            .with("machine", 3usize)
            .with("job", 7u64)
            .with("action", "migrate")
            .with("recovered", true);
        assert_eq!(
            event.to_json(),
            "{\"domain\":\"sim\",\"time\":120.5,\"event\":\"failure\",\
             \"machine\":3,\"job\":7,\"action\":\"migrate\",\"recovered\":true}"
        );
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut sink = RingBufferSink::new(2);
        for i in 0..5u64 {
            sink.record(&TraceEvent::sim("tick", i as f64));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let times: Vec<f64> = sink.events().map(|e| e.time()).collect();
        assert_eq!(times, vec![3.0, 4.0]);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&TraceEvent::sim("a", 1.0));
        sink.record(&TraceEvent::wall("b", 2.0).with("k", 1u64));
        assert_eq!(sink.lines(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"domain\":\"sim\",\"time\":1,\"event\":\"a\"}\n\
             {\"domain\":\"wall\",\"time\":2,\"event\":\"b\",\"k\":1}\n"
        );
    }

    #[test]
    fn digest_ignores_wall_events_and_is_reproducible() {
        let mut a = DigestSink::new();
        let mut b = DigestSink::new();
        a.record(&TraceEvent::sim("x", 1.0));
        a.record(&TraceEvent::wall("noise", 123.456));
        b.record(&TraceEvent::sim("x", 1.0));
        b.record(&TraceEvent::wall("noise", 789.0));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.sim_events(), 1);
        assert_eq!(a.wall_events_skipped(), 1);
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn span_emits_duration_event() {
        let mut sink = RingBufferSink::new(4);
        Span::sim("phase", 10.0).end_at(14.5, &mut sink);
        let event = sink.events().next().unwrap();
        assert_eq!(event.name(), "phase");
        assert_eq!(event.time(), 14.5);
        assert_eq!(event.fields()[1], (Cow::Borrowed("duration"), FieldValue::F64(4.5)));
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut ring = RingBufferSink::new(4);
        let mut digest = DigestSink::new();
        {
            let mut tee = TeeSink::new(&mut ring, &mut digest);
            assert!(tee.enabled());
            tee.record(&TraceEvent::sim("x", 1.0));
        }
        assert_eq!(ring.len(), 1);
        assert_eq!(digest.sim_events(), 1);
    }
}

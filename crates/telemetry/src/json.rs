//! Minimal JSON value rendering shared across the workspace.
//!
//! The offline build has no `serde`; the trace sinks, the metric expositions
//! and `ckpt_bench`'s `--json` experiment summaries all emit flat JSON through
//! these two helpers so that escaping and number formatting stay identical
//! everywhere (a trace line and a summary line for the same value must be
//! byte-identical — the golden-snapshot CI tests compare them as bytes).

use std::fmt::{self, Write};

/// Serialises a finite number in Rust `Display` form (valid JSON for every
/// finite `f64`); non-finite values become `null`.
///
/// `Display` omits a trailing `.0` for integral values, which JSON accepts as
/// an integer — fine for metric consumers, and crucially *deterministic*: the
/// same `f64` bit pattern always renders to the same bytes.
pub fn json_number(value: f64) -> String {
    let mut out = String::new();
    let _ = write_json_number(&mut out, value);
    out
}

/// Streams [`json_number`]'s byte-identical output into `out` without
/// allocating — the hot-path form used by the trace sinks.
pub fn write_json_number<W: Write>(out: &mut W, value: f64) -> fmt::Result {
    if value.is_finite() {
        write!(out, "{value}")
    } else {
        out.write_str("null")
    }
}

/// Serialises a string with the JSON escapes our keys and values can need
/// (`"`, `\`, newline, carriage return, tab, and any other control character
/// as `\uXXXX`).
pub fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    let _ = write_json_string(&mut out, value);
    out
}

/// Streams [`json_string`]'s byte-identical output into `out` without
/// allocating — the hot-path form used by the trace sinks.
pub fn write_json_string<W: Write>(out: &mut W, value: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in value.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip_display() {
        assert_eq!(json_number(0.000015), "0.000015");
        assert_eq!(json_number(-3.0), "-3");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(
            json_string("line\nbreak\\slash\"q\"\u{1}"),
            "\"line\\nbreak\\\\slash\\\"q\\\"\\u0001\""
        );
        assert_eq!(json_string("plain"), "\"plain\"");
    }
}

use ckpt_failure::{ClusterFailureInjector, Exponential, RepairModel, ShockConfig};

#[test]
fn pending_natural_candidate_survives_short_repair() {
    let law = Exponential::from_mtbf(100.0).unwrap();
    // Reference: no shocks — the machine's own first failure.
    let mut plain = ClusterFailureInjector::homogeneous(1, law, 42).unwrap();
    let natural = plain.next_failure_after(0, 0.0);

    // Same seed, same per-machine sub-streams, plus a dense shock process.
    let mut shocked = ClusterFailureInjector::homogeneous(1, law, 42)
        .unwrap()
        .with_shocks(ShockConfig::new(1.0, 1.0, 0.0).unwrap())
        .with_repair(RepairModel::Immediate)
        .unwrap();
    let first = shocked.next_failure_after(0, 0.0);
    assert!(first < natural, "test setup: first failure should be a shock hit");
    let done = shocked.begin_repair(0, first);
    assert_eq!(done, first, "immediate repair");

    // Walk forward past all shock hits below `natural`: the natural failure
    // at `natural` should still be observed (the machine was up at that time,
    // and `begin_repair` docs promise only candidates inside the repair
    // interval are silenced).
    let mut t = done;
    let mut saw_natural = false;
    for _ in 0..10_000 {
        t = shocked.next_failure_after(0, t);
        if (t - natural).abs() < 1e-9 {
            saw_natural = true;
            break;
        }
        if t > natural {
            break;
        }
        shocked.begin_repair(0, t);
    }
    assert!(saw_natural, "natural failure at {natural} was silently dropped");
}

//! Composition helpers: shifted distributions and finite mixtures.
//!
//! Real failure logs are rarely well described by a single textbook law;
//! Heien et al. (cited in §6 of the paper) model heterogeneous failure causes
//! as mixtures. [`Mixture`] lets the trace generator produce such synthetic
//! logs, and [`Shifted`] models a minimum inter-failure separation (e.g. the
//! time to detect the previous failure).

use crate::distribution::{DistributionKind, FailureDistribution};
use crate::error::{ensure_non_negative, FailureModelError};
use crate::rng::RandomSource;

/// A distribution shifted right by a constant offset: `X' = X + shift`.
#[derive(Debug)]
pub struct Shifted<D> {
    inner: D,
    shift: f64,
}

impl<D: FailureDistribution> Shifted<D> {
    /// Wraps `inner`, adding `shift ≥ 0` to every sample.
    ///
    /// # Errors
    ///
    /// Returns an error if `shift` is negative or not finite.
    pub fn new(inner: D, shift: f64) -> Result<Self, FailureModelError> {
        Ok(Shifted { inner, shift: ensure_non_negative("shift", shift)? })
    }

    /// The underlying distribution.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The shift added to every sample.
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

impl<D: FailureDistribution> FailureDistribution for Shifted<D> {
    fn kind(&self) -> DistributionKind {
        DistributionKind::Other
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        self.inner.sample(rng) + self.shift
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.shift {
            0.0
        } else {
            self.inner.pdf(x - self.shift)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.shift {
            0.0
        } else {
            self.inner.cdf(x - self.shift)
        }
    }

    fn mean(&self) -> f64 {
        self.inner.mean() + self.shift
    }

    fn quantile(&self, p: f64) -> f64 {
        self.inner.quantile(p) + self.shift
    }
}

/// A finite mixture of failure distributions with normalised weights.
#[derive(Debug)]
pub struct Mixture {
    components: Vec<(f64, Box<dyn FailureDistribution>)>,
}

impl Mixture {
    /// Builds a mixture from `(weight, distribution)` pairs.
    ///
    /// Weights are normalised to sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`FailureModelError::EmptyMixture`] if no components are given,
    /// and [`FailureModelError::InvalidMixtureWeights`] if any weight is
    /// negative, non-finite, or all weights are zero.
    pub fn new(
        components: Vec<(f64, Box<dyn FailureDistribution>)>,
    ) -> Result<Self, FailureModelError> {
        if components.is_empty() {
            return Err(FailureModelError::EmptyMixture);
        }
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        if !total.is_finite()
            || total <= 0.0
            || components.iter().any(|(w, _)| *w < 0.0 || !w.is_finite())
        {
            return Err(FailureModelError::InvalidMixtureWeights);
        }
        let normalised = components.into_iter().map(|(w, d)| (w / total, d)).collect();
        Ok(Mixture { components: normalised })
    }

    /// The number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the mixture has no components (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The normalised weights of the components.
    pub fn weights(&self) -> Vec<f64> {
        self.components.iter().map(|(w, _)| *w).collect()
    }
}

impl FailureDistribution for Mixture {
    fn kind(&self) -> DistributionKind {
        DistributionKind::Other
    }

    fn sample(&self, rng: &mut dyn RandomSource) -> f64 {
        let u = rng.next_f64();
        let mut acc = 0.0;
        for (w, d) in &self.components {
            acc += w;
            if u < acc {
                return d.sample(rng);
            }
        }
        // Floating-point slack: fall through to the last component.
        self.components.last().expect("mixture is never empty").1.sample(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.cdf(x)).sum()
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
        // Bisection on the mixture CDF (monotone).
        let mut lo = 0.0;
        let mut hi =
            self.components.iter().map(|(_, d)| d.quantile(p.max(0.5))).fold(1.0, f64::max) * 4.0
                + 1.0;
        // Grow `hi` until it brackets the quantile.
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e300 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::rng::Pcg64;
    use crate::weibull::Weibull;

    #[test]
    fn shifted_moves_support() {
        let exp = Exponential::new(0.01).unwrap();
        let sh = Shifted::new(exp, 50.0).unwrap();
        assert_eq!(sh.cdf(25.0), 0.0);
        assert_eq!(sh.pdf(25.0), 0.0);
        assert!((sh.mean() - 150.0).abs() < 1e-9);
        assert!(sh.quantile(0.5) >= 50.0);
    }

    #[test]
    fn shifted_samples_respect_minimum() {
        let exp = Exponential::new(0.1).unwrap();
        let sh = Shifted::new(exp, 10.0).unwrap();
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sh.sample(&mut rng) >= 10.0);
        }
    }

    #[test]
    fn shifted_rejects_negative_shift() {
        let exp = Exponential::new(0.1).unwrap();
        assert!(Shifted::new(exp, -1.0).is_err());
    }

    #[test]
    fn mixture_requires_components_and_valid_weights() {
        assert!(matches!(Mixture::new(vec![]), Err(FailureModelError::EmptyMixture)));
        let bad: Vec<(f64, Box<dyn FailureDistribution>)> =
            vec![(-1.0, Box::new(Exponential::new(1.0).unwrap()))];
        assert!(matches!(Mixture::new(bad), Err(FailureModelError::InvalidMixtureWeights)));
        let zero: Vec<(f64, Box<dyn FailureDistribution>)> =
            vec![(0.0, Box::new(Exponential::new(1.0).unwrap()))];
        assert!(Mixture::new(zero).is_err());
    }

    #[test]
    fn mixture_normalises_weights() {
        let mix = Mixture::new(vec![
            (2.0, Box::new(Exponential::new(1.0).unwrap()) as Box<dyn FailureDistribution>),
            (6.0, Box::new(Exponential::new(2.0).unwrap())),
        ])
        .unwrap();
        let w = mix.weights();
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
        assert_eq!(mix.len(), 2);
        assert!(!mix.is_empty());
    }

    #[test]
    fn mixture_mean_is_weighted_average() {
        let mix = Mixture::new(vec![
            (1.0, Box::new(Exponential::from_mtbf(100.0).unwrap()) as Box<dyn FailureDistribution>),
            (1.0, Box::new(Exponential::from_mtbf(300.0).unwrap())),
        ])
        .unwrap();
        assert!((mix.mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_cdf_is_weighted_average() {
        let e1 = Exponential::new(0.01).unwrap();
        let e2 = Exponential::new(0.05).unwrap();
        let mix = Mixture::new(vec![
            (0.3, Box::new(e1) as Box<dyn FailureDistribution>),
            (0.7, Box::new(e2)),
        ])
        .unwrap();
        for &x in &[0.0, 10.0, 100.0] {
            let expected = 0.3 * e1.cdf(x) + 0.7 * e2.cdf(x);
            assert!((mix.cdf(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn mixture_quantile_inverts_cdf() {
        let mix = Mixture::new(vec![
            (0.5, Box::new(Exponential::from_mtbf(100.0).unwrap()) as Box<dyn FailureDistribution>),
            (0.5, Box::new(Weibull::with_mean(0.7, 1000.0).unwrap())),
        ])
        .unwrap();
        for &p in &[0.1, 0.5, 0.9] {
            let x = mix.quantile(p);
            assert!((mix.cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn mixture_sample_mean_converges() {
        let mix = Mixture::new(vec![
            (0.5, Box::new(Exponential::from_mtbf(100.0).unwrap()) as Box<dyn FailureDistribution>),
            (0.5, Box::new(Exponential::from_mtbf(500.0).unwrap())),
        ])
        .unwrap();
        let mut rng = Pcg64::seed_from_u64(77);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| mix.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 300.0).abs() < 5.0, "sample mean = {mean}");
    }
}

//! Special functions used by the failure distributions.
//!
//! Self-contained implementations of the gamma function (Lanczos
//! approximation), the error function family and the standard normal CDF and
//! quantile (Acklam's algorithm). These are the only special functions needed
//! by the Weibull and log-normal models; accuracies are well below the
//! statistical noise of any Monte-Carlo experiment in this workspace
//! (relative error ≲ 1e-9 over the ranges used).

/// Lanczos coefficients (g = 7, n = 9) for the gamma function.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// # Panics
///
/// Panics if `x` is not strictly positive or not finite.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS_COEFFS[0];
        for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + LANCZOS_G + 0.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// # Panics
///
/// Panics if `x` is not strictly positive or not finite.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// The error function `erf(x)`.
///
/// Uses the Abramowitz & Stegun 7.1.26-style rational approximation refined
/// with one step through `erfc` for large arguments; absolute error is below
/// 1.5e-7 which is sufficient for the log-normal CDF used in experiments.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    // Abramowitz & Stegun formula 7.1.26.
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    1.0 - poly * (-x * x).exp()
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Peter Acklam's rational approximation with a single Halley refinement
/// step, giving roughly 1e-9 relative accuracy.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method against the accurate CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Numerically stable `e^x - 1`.
///
/// Thin wrapper over [`f64::exp_m1`] named for symmetry with the formulas in
/// the paper where `e^{λ(W+C)} − 1` appears repeatedly.
pub fn exp_m1(x: f64) -> f64 {
    x.exp_m1()
}

/// Numerically stable `ln(1 + x)`.
pub fn ln_1p(x: f64) -> f64 {
    x.ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn gamma_of_integers_is_factorial() {
        assert_close(gamma(1.0), 1.0, 1e-10);
        assert_close(gamma(2.0), 1.0, 1e-10);
        assert_close(gamma(3.0), 2.0, 1e-10);
        assert_close(gamma(4.0), 6.0, 1e-10);
        assert_close(gamma(5.0), 24.0, 1e-10);
        assert_close(gamma(10.0), 362_880.0, 1e-9);
    }

    #[test]
    fn gamma_of_half_is_sqrt_pi() {
        assert_close(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-9);
        assert_close(gamma(1.5), 0.5 * std::f64::consts::PI.sqrt(), 1e-9);
    }

    #[test]
    fn ln_gamma_matches_gamma() {
        for &x in &[0.3, 0.7, 1.2, 2.5, 5.5, 11.25] {
            assert_close(ln_gamma(x).exp(), gamma(x), 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-12);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 2e-6);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 2e-6);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 2e-6);
    }

    #[test]
    fn erfc_is_complement() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.0] {
            assert_close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-9);
        }
        assert_close(std_normal_cdf(0.0), 0.5, 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = std_normal_quantile(p);
            assert_close(std_normal_cdf(x), p, 5e-6);
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        assert_close(std_normal_quantile(0.5), 0.0, 1e-9);
        assert_close(std_normal_quantile(0.975), 1.959_963_984_540_054, 1e-4);
        assert_close(std_normal_quantile(0.025), -1.959_963_984_540_054, 1e-4);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0, 1)")]
    fn normal_quantile_rejects_zero() {
        std_normal_quantile(0.0);
    }

    #[test]
    fn exp_m1_is_stable_for_tiny_arguments() {
        let x = 1e-15;
        assert!(exp_m1(x) > 0.0);
        assert_close(exp_m1(x), x, 1e-9);
    }
}

//! Process-wide fault-injection counters (telemetry).
//!
//! The cluster injector's shock bursts and repairs are the phenomena the
//! robustness experiments stress; these [`StaticCounter`]s make them
//! observable across every injector instance in the process without
//! threading a registry through trial construction. Recording is a relaxed
//! atomic increment — it never perturbs the injector's deterministic
//! streams.

use ckpt_telemetry::{MetricsRegistry, StaticCounter};

/// Correlated shocks materialised by
/// [`ClusterFailureInjector`](crate::ClusterFailureInjector) (arrival
/// instants of the shared Poisson shock process actually drawn).
pub static SHOCKS_TOTAL: StaticCounter = StaticCounter::new();

/// Machines struck by a materialised shock (one shock can hit many
/// machines — this counts the fan-out).
pub static SHOCK_HITS_TOTAL: StaticCounter = StaticCounter::new();

/// Machine repairs started via
/// [`begin_repair`](crate::ClusterFailureInjector::begin_repair).
pub static REPAIRS_TOTAL: StaticCounter = StaticCounter::new();

/// A point-in-time copy of the fault-injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStatsSnapshot {
    /// [`SHOCKS_TOTAL`] at snapshot time.
    pub shocks: u64,
    /// [`SHOCK_HITS_TOTAL`] at snapshot time.
    pub shock_hits: u64,
    /// [`REPAIRS_TOTAL`] at snapshot time.
    pub repairs: u64,
}

impl FailureStatsSnapshot {
    /// The counter increments between `earlier` and `self` (saturating).
    pub fn since(&self, earlier: &FailureStatsSnapshot) -> FailureStatsSnapshot {
        FailureStatsSnapshot {
            shocks: self.shocks.saturating_sub(earlier.shocks),
            shock_hits: self.shock_hits.saturating_sub(earlier.shock_hits),
            repairs: self.repairs.saturating_sub(earlier.repairs),
        }
    }

    /// Adds the snapshot to `metrics` under the `failure_*_total` names.
    pub fn record_into(&self, metrics: &mut MetricsRegistry) {
        metrics.counter_add("failure_shocks_total", self.shocks);
        metrics.counter_add("failure_shock_hits_total", self.shock_hits);
        metrics.counter_add("failure_repairs_total", self.repairs);
    }
}

/// Reads all fault-injection counters at once.
pub fn snapshot() -> FailureStatsSnapshot {
    FailureStatsSnapshot {
        shocks: SHOCKS_TOTAL.get(),
        shock_hits: SHOCK_HITS_TOTAL.get(),
        repairs: REPAIRS_TOTAL.get(),
    }
}

/// Resets all fault-injection counters to zero (test isolation).
pub fn reset() {
    SHOCKS_TOTAL.reset();
    SHOCK_HITS_TOTAL.reset();
    REPAIRS_TOTAL.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_registry_export() {
        let before = snapshot();
        SHOCKS_TOTAL.add(1);
        SHOCK_HITS_TOTAL.add(3);
        REPAIRS_TOTAL.add(2);
        let delta = snapshot().since(&before);
        assert_eq!((delta.shocks, delta.shock_hits, delta.repairs), (1, 3, 2));
        let mut metrics = MetricsRegistry::new();
        delta.record_into(&mut metrics);
        assert_eq!(metrics.counter("failure_shock_hits_total"), 3);
    }
}

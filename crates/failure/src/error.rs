//! Error type for failure-model construction and validation.

use std::error::Error;
use std::fmt;

/// Error returned when a failure model is constructed with invalid parameters.
///
/// All constructors in this crate validate their arguments eagerly
/// (`C-VALIDATE`): a distribution with a non-positive rate, a platform with
/// zero processors or a trace with non-monotone timestamps is rejected at
/// construction time rather than producing NaNs later.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModelError {
    /// A numeric parameter was expected to be strictly positive and finite.
    NonPositiveParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A numeric parameter was expected to be finite.
    NonFiniteParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A probability was outside of `[0, 1]`.
    InvalidProbability {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A platform must have at least one processor.
    EmptyPlatform,
    /// A mixture distribution needs at least one component.
    EmptyMixture,
    /// Mixture weights must sum to a strictly positive value.
    InvalidMixtureWeights,
    /// A failure trace must have non-decreasing timestamps.
    NonMonotoneTrace {
        /// Index of the first out-of-order event.
        index: usize,
    },
    /// A trace event referenced a processor outside of the platform.
    UnknownProcessor {
        /// The offending processor index.
        processor: usize,
        /// The number of processors in the platform.
        platform_size: usize,
    },
}

impl fmt::Display for FailureModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureModelError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be strictly positive, got {value}")
            }
            FailureModelError::NonFiniteParameter { name, value } => {
                write!(f, "parameter `{name}` must be finite, got {value}")
            }
            FailureModelError::InvalidProbability { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1], got {value}")
            }
            FailureModelError::EmptyPlatform => {
                write!(f, "a platform must contain at least one processor")
            }
            FailureModelError::EmptyMixture => {
                write!(f, "a mixture distribution needs at least one component")
            }
            FailureModelError::InvalidMixtureWeights => {
                write!(f, "mixture weights must be non-negative and sum to a positive value")
            }
            FailureModelError::NonMonotoneTrace { index } => {
                write!(
                    f,
                    "failure trace timestamps must be non-decreasing (violated at index {index})"
                )
            }
            FailureModelError::UnknownProcessor { processor, platform_size } => {
                write!(
                    f,
                    "trace event references processor {processor} but the platform only has {platform_size} processors"
                )
            }
        }
    }
}

impl Error for FailureModelError {}

/// Validates that `value` is strictly positive and finite.
pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<f64, FailureModelError> {
    if !value.is_finite() {
        return Err(FailureModelError::NonFiniteParameter { name, value });
    }
    if value <= 0.0 {
        return Err(FailureModelError::NonPositiveParameter { name, value });
    }
    Ok(value)
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn ensure_non_negative(
    name: &'static str,
    value: f64,
) -> Result<f64, FailureModelError> {
    if !value.is_finite() {
        return Err(FailureModelError::NonFiniteParameter { name, value });
    }
    if value < 0.0 {
        return Err(FailureModelError::NonPositiveParameter { name, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = FailureModelError::NonPositiveParameter { name: "lambda", value: -1.0 };
        let msg = err.to_string();
        assert!(msg.contains("lambda"));
        assert!(msg.contains("-1"));
    }

    #[test]
    fn ensure_positive_accepts_positive() {
        assert_eq!(ensure_positive("x", 2.0).unwrap(), 2.0);
    }

    #[test]
    fn ensure_positive_rejects_zero_and_negative() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -3.0).is_err());
    }

    #[test]
    fn ensure_positive_rejects_nan_and_inf() {
        assert!(matches!(
            ensure_positive("x", f64::NAN),
            Err(FailureModelError::NonFiniteParameter { .. })
        ));
        assert!(matches!(
            ensure_positive("x", f64::INFINITY),
            Err(FailureModelError::NonFiniteParameter { .. })
        ));
    }

    #[test]
    fn ensure_non_negative_accepts_zero() {
        assert_eq!(ensure_non_negative("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FailureModelError>();
    }
}
